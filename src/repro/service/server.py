"""Stdlib HTTP front for the certification service.

One thread per connection (``ThreadingHTTPServer``), which is exactly
right here: concurrency is bounded by the service's admission control,
not by the socket layer, and the handler does nothing but translate
documents.  Routes:

``POST /v1/verify``
    Body: a JSON request document (see ``docs/service.md``).  The
    response document comes straight from
    :meth:`~repro.service.core.CertificationService.submit`; the HTTP
    status is derived from it — 200 for ``ok``/``unknown``, 429 for
    ``shed`` (with a ``Retry-After`` header), and the
    :data:`~repro.service.protocol.ERROR_CODES` mapping for errors
    (503 quarantined carries ``Retry-After`` too).

``GET /v1/health``
    200 with the service's telemetry snapshot (counters, pool and
    breaker state, cache statistics).

``python -m repro serve`` builds a service from CLI flags and runs
:func:`serve`; tests use :func:`start_server` for an ephemeral-port
instance on a daemon thread.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.core import CertificationService, ServiceConfig
from repro.service.protocol import ERROR_CODES

__all__ = ["http_status_of", "make_server", "start_server", "serve"]

_MAX_BODY = 16 * 1024 * 1024


def http_status_of(response: dict) -> int:
    """The HTTP status a service response document maps to."""
    status = response.get("status")
    if status in ("ok", "unknown"):
        return 200
    if status == "shed":
        return 429
    code = (response.get("error") or {}).get("code", "internal")
    return ERROR_CODES.get(code, 500)


class _Handler(BaseHTTPRequestHandler):
    # Set by make_server on the handler subclass.
    service: CertificationService

    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the service keeps counters; per-request stderr spam helps nobody

    def _send_json(self, status: int, doc: dict) -> None:
        body = json.dumps(doc).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        retry_after = doc.get("retry_after")
        if retry_after is not None and status in (429, 503):
            self.send_header("Retry-After", str(max(1, round(retry_after))))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802
        if self.path != "/v1/health":
            self._send_json(404, _err("bad-request", f"no route {self.path}"))
            return
        self._send_json(200, self.service.health())

    def do_POST(self) -> None:  # noqa: N802
        if self.path != "/v1/verify":
            self._send_json(404, _err("bad-request", f"no route {self.path}"))
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if not 0 < length <= _MAX_BODY:
            self._send_json(
                400, _err("bad-request", "missing or oversized body")
            )
            return
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(400, _err("bad-request", f"body is not JSON: {exc}"))
            return
        response = self.service.submit(doc)
        self._send_json(http_status_of(response), response)


def _err(code: str, message: str) -> dict:
    return {"status": "error", "error": {"code": code, "message": message}}


def make_server(
    service: CertificationService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """An HTTP server bound to ``host:port`` (0 = ephemeral) serving
    ``service``; caller owns both lifetimes."""
    handler = type("Handler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def start_server(
    service: CertificationService, host: str = "127.0.0.1", port: int = 0
) -> tuple[ThreadingHTTPServer, str]:
    """Serve on a daemon thread; returns ``(server, base_url)``.

    Tests and benchmarks call this, hit the URL, then
    ``server.shutdown()`` and ``service.close()``.
    """
    server = make_server(service, host, port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    bound_host, bound_port = server.server_address[:2]
    return server, f"http://{bound_host}:{bound_port}"


def serve(
    config: ServiceConfig, host: str = "127.0.0.1", port: int = 8421
) -> None:
    """Run the service until interrupted (the CLI entry point)."""
    with CertificationService(config) as service:
        server = make_server(service, host, port)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.shutdown()
            server.server_close()
