"""A minimal stdlib client for the certification service.

``urllib``-based, synchronous, and deliberately thin — it exists so the
benchmarks, the chaos driver, and tests all speak to the server the
same way a well-behaved external caller would:

- non-2xx responses with a JSON body are **returned**, not raised (the
  response document is the API; the HTTP status is a rendering of it);
- 429/503 respect ``Retry-After`` up to ``max_retries`` times before
  giving the shed/quarantine document back to the caller;
- transport errors (connection refused, socket timeout) raise
  ``OSError`` — the server being *gone* is different from the server
  *answering* "not now", and conflating them is how callers end up
  retrying against a corpse.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

__all__ = ["ServiceClient"]


class ServiceClient:
    """Client for one service base URL (e.g. ``http://127.0.0.1:8421``)."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 120.0,
        max_retries: int = 3,
        retry_cap: float = 5.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_retries = max_retries
        self.retry_cap = retry_cap

    def verify(self, request: dict[str, Any]) -> dict[str, Any]:
        """POST one request document; returns the response document.

        Retries shed (429) and quarantined (503) answers per their
        ``Retry-After`` up to ``max_retries`` times, then returns the
        last document as-is.
        """
        for attempt in range(self.max_retries + 1):
            status, doc = self._post("/v1/verify", request)
            if status not in (429, 503) or attempt == self.max_retries:
                return doc
            delay = doc.get("retry_after", 0.1)
            try:
                delay = float(delay)
            except (TypeError, ValueError):
                delay = 0.1
            time.sleep(min(max(delay, 0.0), self.retry_cap))
        return doc  # pragma: no cover

    def health(self) -> dict[str, Any]:
        req = urllib.request.Request(self.base_url + "/v1/health")
        with urllib.request.urlopen(req, timeout=self.timeout) as resp:
            return json.loads(resp.read().decode("utf-8"))

    def _post(self, path: str, doc: dict[str, Any]) -> tuple[int, dict]:
        body = json.dumps(doc).encode("utf-8")
        req = urllib.request.Request(
            self.base_url + path,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            # Structured service answers ride on error statuses too.
            raw = exc.read()
            try:
                return exc.code, json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                return exc.code, {
                    "status": "error",
                    "error": {
                        "code": "internal",
                        "message": f"HTTP {exc.code} with non-JSON body",
                    },
                }
