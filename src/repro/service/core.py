"""The certification service façade: admit, coalesce, cache, dispatch.

:class:`CertificationService` is the HTTP-free heart of the server —
tests and benchmarks drive it directly; :mod:`repro.service.server`
merely maps it onto HTTP.  One request flows through five gates, each a
distinct way of *not* spending a worker:

1. **Validation** — malformed documents are refused
   (``code="bad-request"``) before anything else happens.
2. **Admission** — at most ``max_pending`` requests are in flight;
   beyond that the service **sheds** (``status="shed"``,
   ``code="overloaded"``, with a ``retry_after`` hint) instead of
   queueing unboundedly.  Load shedding is the robustness feature: a
   bounded queue keeps latency bounded, and an honest 429 beats a
   socket that times out after a minute of silence.
3. **Parse + identity** — the program and property are parsed in the
   *parent* (parse errors never burn a worker) and hashed into the
   content-addressed request key.
4. **Cache** — a decided verdict under that key is served immediately
   (``cached=true``); the fail-closed story lives in
   :mod:`repro.service.cache`.
5. **Coalescing** — concurrent requests for the *same key* collapse
   onto one worker dispatch; followers wait for the leader's answer.
   Without this, a cold cache plus a popular program turns into N
   identical explorations racing each other.

Only then does the request reach :class:`~repro.service.supervisor.
WorkerPool.submit`, whose crash/retry/quarantine/watchdog contract is
documented there.  Every path out of :meth:`submit` — including every
failure path — returns a structured response document; the service
never raises on a well-formed request.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro import obs
from repro.errors import DslSyntaxError, ReproError
from repro.service.cache import ServiceCache
from repro.service.protocol import normalize_request, request_key
from repro.service.supervisor import (
    CircuitBreaker,
    Quarantined,
    WorkerCrash,
    WorkerPool,
    WorkerTimeout,
)
from repro.util.faultinject import fault_point

__all__ = ["ServiceConfig", "CertificationService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one service instance (all have serving defaults)."""

    workers: int = 2
    cache_dir: str | None = None
    max_pending: int = 8
    max_retries: int = 2
    default_timeout: float = 60.0
    stall_grace: float = 5.0
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    shed_retry_after: float = 1.0

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError(f"workers must be > 0, got {self.workers}")
        if self.max_pending < self.workers:
            raise ValueError(
                f"max_pending ({self.max_pending}) must be >= workers "
                f"({self.workers}) or the pool can never fill"
            )


class _Flight:
    """One in-flight computation; followers wait on ``done``."""

    __slots__ = ("done", "response")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.response: dict[str, Any] | None = None


class CertificationService:
    """Thread-safe service façade over a supervised worker pool."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.cache = (
            ServiceCache(self.config.cache_dir)
            if self.config.cache_dir
            else None
        )
        self.pool = WorkerPool(
            self.config.workers,
            cache_dir=self.config.cache_dir,
            max_retries=self.config.max_retries,
            default_timeout=self.config.default_timeout,
            stall_grace=self.config.stall_grace,
            breaker=CircuitBreaker(
                threshold=self.config.breaker_threshold,
                cooldown=self.config.breaker_cooldown,
            ),
        )
        self._admission = threading.BoundedSemaphore(self.config.max_pending)
        self._inflight: dict[str, _Flight] = {}
        self._inflight_lock = threading.Lock()
        self.requests = 0
        self.shed = 0
        self.coalesced = 0
        self._count_lock = threading.Lock()

    # -- public API ------------------------------------------------------

    def submit(self, doc: dict[str, Any]) -> dict[str, Any]:
        """Decide one request document; always returns a response doc.

        The response's ``status`` is one of ``"ok"`` / ``"unknown"`` /
        ``"error"`` / ``"shed"`` (the degradation ladder, in order);
        errors carry ``error.code`` from
        :data:`repro.service.protocol.ERROR_CODES`.
        """
        with self._count_lock:
            self.requests += 1
        rec = obs.get_recorder()
        if rec.enabled:
            rec.add("service.requests")
        try:
            request = normalize_request(doc)
        except ValueError as exc:
            return _error("bad-request", str(exc))

        try:
            fault_point("service.queue.admit")
        except Exception:
            # An injected admission fault forces a shed regardless of
            # actual queue depth (see util/faultinject.py).
            admitted = False
        else:
            admitted = self._admission.acquire(blocking=False)
        if not admitted:
            with self._count_lock:
                self.shed += 1
            if rec.enabled:
                rec.add("service.shed")
            return {
                "status": "shed",
                "error": {
                    "code": "overloaded",
                    "message": (
                        f"{self.config.max_pending} requests already "
                        "pending; retry later"
                    ),
                },
                "retry_after": self.config.shed_retry_after,
            }
        try:
            with rec.span("service.request"):
                return self._admitted(request)
        finally:
            self._admission.release()

    def health(self) -> dict[str, Any]:
        """Liveness/telemetry snapshot for the health endpoint."""
        with self._count_lock:
            counts = {
                "requests": self.requests,
                "shed": self.shed,
                "coalesced": self.coalesced,
            }
        with self._inflight_lock:
            counts["inflight"] = len(self._inflight)
        return {
            "status": "ok",
            "counters": counts,
            "pool": self.pool.stats(),
            "breakers": self.pool.breaker.snapshot(),
            "cache": self.cache.stats() if self.cache else None,
        }

    def close(self) -> None:
        self.pool.close()

    def __enter__(self) -> "CertificationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals -------------------------------------------------------

    def _admitted(self, request: dict[str, Any]) -> dict[str, Any]:
        from repro.semantics.sparse.checkpoint import program_digest
        from repro.service.worker import _parse_request_program

        rec = obs.get_recorder()
        try:
            program, _prop = _parse_request_program(request)
        except (DslSyntaxError, ReproError) as exc:
            return _error("parse-error", f"{type(exc).__name__}: {exc}")
        digest = program_digest(program)
        key = request_key(digest, request)

        if self.cache is not None:
            payload = self.cache.get_verdict(key)
            if payload is not None:
                response = dict(payload)
                response.update(key=key, cached=True)
                return response

        # Single-flight: first caller for a key computes, the rest wait.
        with self._inflight_lock:
            flight = self._inflight.get(key)
            if flight is None:
                flight = _Flight()
                self._inflight[key] = flight
                leader = True
            else:
                leader = False
        if not leader:
            with self._count_lock:
                self.coalesced += 1
            if rec.enabled:
                rec.add("service.coalesced")
            flight.done.wait()
            response = dict(flight.response or _error("internal", "lost flight"))
            response["coalesced"] = True
            return response

        try:
            response = self._dispatch(request, digest=digest, key=key)
        except Exception as exc:
            # Truly unexpected supervisor-side failure: still a
            # structured answer (and the same one for any followers).
            response = _error("internal", f"{type(exc).__name__}: {exc}")
        finally:
            flight.response = response
            with self._inflight_lock:
                self._inflight.pop(key, None)
            flight.done.set()
        return response

    def _dispatch(
        self, request: dict[str, Any], *, digest: str, key: str
    ) -> dict[str, Any]:
        try:
            payload = self.pool.submit(request, digest=digest)
        except Quarantined as exc:
            return {
                "status": "error",
                "error": {"code": "quarantined", "message": str(exc)},
                "retry_after": exc.retry_after,
                "digest": digest,
                "key": key,
            }
        except WorkerTimeout as exc:
            return _error("worker-timeout", str(exc), digest=digest, key=key)
        except WorkerCrash as exc:
            return _error("worker-crash", str(exc), digest=digest, key=key)
        response = dict(payload)
        response.update(key=key, cached=False)
        if (
            self.cache is not None
            and response.get("status") == "ok"
            and response.get("holds") is not None
        ):
            try:
                self.cache.put_verdict(key, payload)
            except OSError:
                # Cache publish is best-effort; the verdict still goes out.
                pass
        return response


def _error(code: str, message: str, **extra: Any) -> dict[str, Any]:
    doc: dict[str, Any] = {
        "status": "error",
        "error": {"code": code, "message": message},
    }
    doc.update(extra)
    return doc
