"""Certification-as-a-service: a long-lived, supervised checking server.

The CLI decides one property per invocation and exits; production
traffic is a stream of overlapping queries against a (mostly) stable
set of programs.  This package serves :func:`repro.api.verify` verdicts
and certificates continuously, with **robustness as the headline**: a
crashing, hanging, or OOM-killed check must never take the server down,
never hang a caller, and never — under any failure — turn into a wrong
verdict.

Layout (one module per degradation concern)
-------------------------------------------
- :mod:`repro.service.protocol` — the JSON request/response shapes, the
  length-prefixed pipe framing between supervisor and workers, and the
  content-addressed request keys (program digest × property × fairness).
- :mod:`repro.service.cache` — the persistent on-disk cache: verdict
  documents and :class:`~repro.semantics.sparse.explorer.
  ReachableSubspace` snapshots (``RPROCKPT1`` checkpoints), both
  **fail-closed** — a corrupt entry is detected by digest, evicted, and
  rebuilt; never served.
- :mod:`repro.service.worker` — the subprocess worker: parses a request,
  maps its deadline onto a :class:`~repro.semantics.budget.Budget`, runs
  ``verify()``, and answers over the pipe.  Workers are the crash
  isolation boundary: anything that kills one (segfault, OOM kill,
  injected ``os._exit``) is a structured error in the parent, not a
  server death.
- :mod:`repro.service.supervisor` — the supervised worker pool: death
  detection on use, respawn with exponential backoff, bounded
  retry-with-backoff for crashed requests, a per-program-digest circuit
  breaker quarantining programs that repeatedly kill workers, and a
  stall watchdog that reaps workers which outlive their deadline.
- :mod:`repro.service.core` — the service façade: admission control
  (bounded queue, load-shed with Retry-After), duplicate in-flight
  coalescing, the cache lookup/publish path, and per-request telemetry.
- :mod:`repro.service.server` — a stdlib ``ThreadingHTTPServer`` front
  (``POST /v1/verify``, ``GET /v1/health``) — ``python -m repro serve``.
- :mod:`repro.service.client` — a small ``urllib`` client that honors
  Retry-After, used by the benchmarks and the chaos driver.

The degradation ladder (every request terminates in one of these, in
order of preference — never a hang, never a wrong verdict):

1. decided verdict (cached or computed), with certificate if asked;
2. structured UNKNOWN ``PartialResult`` (deadline/budget ran out —
   resumable: the response carries the checkpoint path);
3. structured error (parse error, worker crash after retries, stall
   watchdog, quarantined digest) with a machine-readable code;
4. load shed (queue full) with ``Retry-After``.

See ``docs/service.md`` for the API, the cache format, and the chaos
coverage contract.
"""

from repro.service.cache import CacheCorrupt, ServiceCache
from repro.service.client import ServiceClient
from repro.service.core import CertificationService, ServiceConfig
from repro.service.protocol import request_key
from repro.service.server import serve, start_server

__all__ = [
    "CertificationService",
    "ServiceConfig",
    "ServiceCache",
    "CacheCorrupt",
    "ServiceClient",
    "request_key",
    "serve",
    "start_server",
]
