"""Wire shapes for the certification service.

Two concerns live here because they must never drift apart:

1. **Framing** between the supervisor and its worker subprocesses:
   length-prefixed JSON over the worker's stdin/stdout pipes (8-byte
   little-endian length, then UTF-8 JSON).  Length-prefixing — rather
   than newline-delimited JSON — makes torn writes *detectable*: a
   worker killed mid-reply leaves a short read, which
   :func:`read_frame` reports as ``None`` (EOF) instead of handing the
   parent half a document.  An implausible length (corrupt prefix, or a
   worker writing garbage to stdout) raises :class:`FrameError` so the
   supervisor can reap the worker rather than wait forever on a
   20-exabyte "frame".

2. **Request identity**: :func:`request_key` is the content-addressed
   cache/coalescing key — the program digest (see
   :func:`repro.semantics.sparse.checkpoint.program_digest`) crossed
   with every request field that can change the *answer* (property
   text, fairness, prove).  Deadlines and budgets are deliberately
   **excluded**: they change how long we try, not what is true, so a
   verdict decided under any budget is servable to every later request
   for the same key.  (UNKNOWNs are never cached — see
   :mod:`repro.service.cache`.)

The request/response documents themselves are plain dicts (this is a
stdlib-only service; no schema library), validated by
:func:`normalize_request` at the service boundary so workers only ever
see well-formed shapes.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, BinaryIO

__all__ = [
    "FrameError",
    "MAX_FRAME",
    "read_frame",
    "write_frame",
    "normalize_request",
    "request_key",
    "ERROR_CODES",
]

_LEN_BYTES = 8

#: Upper bound on a single frame's JSON payload.  Responses carry
#: verdict documents and UNKNOWN statistics — kilobytes, not gigabytes —
#: so anything near this bound is corruption, not data.
MAX_FRAME = 64 * 1024 * 1024

#: The machine-readable error codes a response's ``error.code`` may
#: carry, with the HTTP status each maps to.  One registry so the
#: server, client, docs, and chaos assertions agree.
ERROR_CODES: dict[str, int] = {
    "parse-error": 400,      # program or property text did not parse
    "bad-request": 400,      # malformed request document
    "engine-error": 400,     # engine refusal (capacity, tier mismatch, ...)
    "overloaded": 429,       # admission control shed the request
    "quarantined": 503,      # circuit breaker open for this program
    "worker-crash": 502,     # worker died, retries exhausted
    "worker-timeout": 502,   # stall watchdog reaped the worker
    "internal": 500,         # unexpected supervisor-side failure
}


class FrameError(Exception):
    """A pipe frame was structurally implausible (corrupt length)."""


def write_frame(stream: BinaryIO, doc: dict[str, Any]) -> None:
    """Write one length-prefixed JSON frame and flush."""
    blob = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    stream.write(len(blob).to_bytes(_LEN_BYTES, "little"))
    stream.write(blob)
    stream.flush()


def read_frame(stream: BinaryIO) -> dict[str, Any] | None:
    """Read one frame; ``None`` on clean or torn EOF.

    A partial frame (the peer died mid-write) is EOF, not an error —
    the caller already has to handle peer death, and a torn write
    carries no usable information.  A *complete* frame that is not a
    JSON object, or a length prefix beyond :data:`MAX_FRAME`, raises
    :class:`FrameError`: the stream is desynchronized and the only safe
    move is to drop the peer.
    """
    head = _read_exact(stream, _LEN_BYTES)
    if head is None:
        return None
    length = int.from_bytes(head, "little")
    if not 0 < length <= MAX_FRAME:
        raise FrameError(f"implausible frame length {length}")
    blob = _read_exact(stream, length)
    if blob is None:
        return None
    try:
        doc = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"corrupt frame: {exc}") from exc
    if not isinstance(doc, dict):
        raise FrameError(f"frame is not an object: {type(doc).__name__}")
    return doc


def _read_exact(stream: BinaryIO, n: int) -> bytes | None:
    buf = b""
    while len(buf) < n:
        chunk = stream.read(n - len(buf))
        if not chunk:
            return None
        buf += chunk
    return buf


def normalize_request(doc: dict[str, Any]) -> dict[str, Any]:
    """Validate and canonicalize a request document.

    Raises ``ValueError`` with a human message on any malformed field;
    the service maps that to a ``bad-request`` response without
    involving a worker.  Returns a fresh dict containing exactly the
    recognized fields, defaults filled in.
    """
    if not isinstance(doc, dict):
        raise ValueError("request must be a JSON object")
    program = doc.get("program")
    if not isinstance(program, str) or not program.strip():
        raise ValueError("'program' must be non-empty DSL source text")
    prop = doc.get("property")
    if not isinstance(prop, str) or not prop.strip():
        raise ValueError("'property' must be non-empty property text")
    fairness = doc.get("fairness", "weak")
    if fairness not in ("weak", "strong"):
        raise ValueError(f"'fairness' must be 'weak' or 'strong', got {fairness!r}")
    tier = doc.get("tier", "auto")
    if tier not in ("auto", "dense", "sparse"):
        raise ValueError(f"'tier' must be 'auto'/'dense'/'sparse', got {tier!r}")
    prove = doc.get("prove", False)
    if not isinstance(prove, bool):
        raise ValueError("'prove' must be a boolean")
    out: dict[str, Any] = {
        "program": program,
        "property": prop.strip(),
        "fairness": fairness,
        "tier": tier,
        "prove": prove,
    }
    name = doc.get("program_name")
    if name is not None:
        if not isinstance(name, str) or not name:
            raise ValueError("'program_name' must be a non-empty string")
        out["program_name"] = name
    for bound, kind in (
        ("deadline", float),
        ("node_budget", int),
        ("max_levels", int),
    ):
        val = doc.get(bound)
        if val is None:
            continue
        if isinstance(val, bool) or not isinstance(val, (int, float)):
            raise ValueError(f"'{bound}' must be a number")
        val = kind(val)
        if val <= 0 and bound != "deadline":
            raise ValueError(f"'{bound}' must be > 0")
        if val < 0:
            raise ValueError(f"'{bound}' must be >= 0")
        out[bound] = val
    return out


def request_key(program_digest: str, request: dict[str, Any]) -> str:
    """Content-addressed identity of a request's *answer*.

    ``program_digest`` is the engine's program digest; the key folds in
    the property text, fairness, and prove flag.  Budgets and deadlines
    are excluded on purpose (they bound effort, not truth), as is the
    requested tier — the engine's tiers agree wherever they overlap,
    and the response records which tier actually decided.
    """
    h = hashlib.sha256()
    h.update(program_digest.encode("ascii"))
    h.update(b"\x00")
    h.update(request["property"].encode("utf-8"))
    h.update(b"\x00")
    h.update(request["fairness"].encode("ascii"))
    h.update(b"\x00")
    h.update(b"prove" if request["prove"] else b"check")
    return h.hexdigest()
