"""Content-addressed persistent cache: verdicts and subspace snapshots.

Layout under the cache root::

    <root>/subspaces/<program_digest>.ckpt     RPROCKPT1 checkpoints
    <root>/verdicts/<request_key>.json         verdict documents

Subspace entries are ordinary engine checkpoints — written with
:func:`repro.semantics.sparse.checkpoint.save_subspace`, read with
:func:`~repro.semantics.sparse.checkpoint.resume_exploration` — so
their fail-closed story (per-array SHA-256, program-digest match,
atomic publish) is the one already pinned by ``tests/test_checkpoint``
and ``tests/test_faultinject``.

Verdict entries get the same treatment at JSON scale.  Each file is::

    {"schema": "repro.service-cache/1",
     "key": <request_key>,
     "payload_sha256": <sha256 of canonical payload JSON>,
     "payload": {...}}

and :meth:`ServiceCache.get_verdict` re-hashes the payload before
trusting it.  **Fail-closed means evict-and-rebuild, never serve**: any
defect — unreadable file, wrong schema, key mismatch, digest mismatch —
is counted, the entry is deleted, and the caller sees a miss, exactly
as if the entry had never been written.  A flipped byte can cost a
recompute; it can never flip a verdict.

Only *decided* verdicts are cached.  UNKNOWNs are a statement about the
budget that was available, not about the program, so caching them would
serve one caller's impatience to every later caller; errors likewise.
Writes are atomic (tmp + fsync + ``os.replace`` + dir fsync) with
fault points ``service.cache.write.payload`` / ``.rename`` mirroring
the checkpoint writer's, so the chaos suite can tear them mid-write and
assert nothing torn is ever served.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro import obs
from repro.core.program import Program
from repro.errors import CheckpointError
from repro.semantics.budget import Budget
from repro.semantics.sparse.checkpoint import (
    CheckpointPolicy,
    cache_path_for,
    program_digest,
    resume_exploration,
    save_subspace,
)
from repro.semantics.sparse.explorer import ReachableSubspace
from repro.util.faultinject import fault_point

__all__ = ["SCHEMA", "CacheCorrupt", "ServiceCache"]

SCHEMA = "repro.service-cache/1"


class CacheCorrupt(Exception):
    """Internal marker: a cache entry failed validation (evicted)."""


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )


class ServiceCache:
    """The service's on-disk memory; every read is verify-then-trust.

    Not thread-safe per entry by locking — atomic ``os.replace`` makes
    concurrent writers last-write-wins and concurrent readers see
    either a complete old entry or a complete new one, which is all a
    cache needs.  ``stats()`` counters are approximate under heavy
    concurrency (plain int adds), which is fine for telemetry.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = os.fspath(root)
        self.verdict_dir = os.path.join(self.root, "verdicts")
        self.subspace_dir = os.path.join(self.root, "subspaces")
        os.makedirs(self.verdict_dir, exist_ok=True)
        os.makedirs(self.subspace_dir, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writes = 0

    # -- verdict documents ----------------------------------------------

    def _verdict_path(self, key: str) -> str:
        if not key.isalnum():
            raise ValueError(f"malformed cache key {key!r}")
        return os.path.join(self.verdict_dir, f"{key}.json")

    def get_verdict(self, key: str) -> dict | None:
        """The cached payload for ``key``, or ``None`` (miss/evicted)."""
        path = self._verdict_path(key)
        try:
            with open(path, "rb") as f:
                doc = json.loads(f.read().decode("utf-8"))
            if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
                raise CacheCorrupt("wrong schema")
            if doc.get("key") != key:
                raise CacheCorrupt("key mismatch")
            payload = doc.get("payload")
            if not isinstance(payload, dict):
                raise CacheCorrupt("payload not an object")
            digest = hashlib.sha256(_canonical(payload)).hexdigest()
            if digest != doc.get("payload_sha256"):
                raise CacheCorrupt("payload digest mismatch")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, UnicodeDecodeError, CacheCorrupt):
            # ValueError covers json.JSONDecodeError.  Evict: a corrupt
            # entry must read as "never written", not as an answer.
            self._evict(path)
            self.misses += 1
            return None
        self.hits += 1
        rec = obs.get_recorder()
        if rec.enabled:
            rec.add("service.cache.verdict_hits")
        return payload

    def put_verdict(self, key: str, payload: dict) -> None:
        """Atomically publish a decided verdict payload under ``key``.

        Callers must only pass decided payloads (``status == "ok"``);
        storing an UNKNOWN or error is a programming error here, not a
        policy decision left to the call site.
        """
        if payload.get("status") != "ok" or payload.get("holds") is None:
            raise ValueError(
                "only decided verdicts are cacheable; got "
                f"status={payload.get('status')!r} holds={payload.get('holds')!r}"
            )
        path = self._verdict_path(key)
        doc = {
            "schema": SCHEMA,
            "key": key,
            "payload_sha256": hashlib.sha256(_canonical(payload)).hexdigest(),
            "payload": payload,
        }
        blob = json.dumps(doc, separators=(",", ":"), sort_keys=True).encode(
            "utf-8"
        )
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as f:
                f.write(blob)
                fault_point("service.cache.write.payload", path=path)
                f.flush()
                os.fsync(f.fileno())
            fault_point("service.cache.write.rename", path=path)
            os.replace(tmp, path)
            _fsync_dir(self.verdict_dir)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        rec = obs.get_recorder()
        if rec.enabled:
            rec.add("service.cache.verdict_writes")

    # -- subspace snapshots ---------------------------------------------

    def subspace_path(self, program: Program) -> str:
        """The digest-addressed checkpoint path for ``program``."""
        return cache_path_for(self.subspace_dir, program)

    def load_subspace(
        self, program: Program, *, budget: Budget | None = None
    ) -> ReachableSubspace | None:
        """Resume ``program``'s snapshot, or ``None`` (miss/evicted).

        A corrupt or program-mismatched checkpoint is evicted and
        reported as a miss — the caller re-explores and republishes.
        ``reason="missing"`` is the ordinary miss (nothing to evict).
        """
        path = self.subspace_path(program)
        if not os.path.exists(path):
            self.misses += 1
            return None
        try:
            sub = resume_exploration(path, program, budget=budget)
        except CheckpointError as exc:
            if exc.reason != "missing":
                self._evict(path)
            self.misses += 1
            return None
        self.hits += 1
        rec = obs.get_recorder()
        if rec.enabled:
            rec.add("service.cache.subspace_hits")
        return sub

    def store_subspace(self, sub: ReachableSubspace) -> str:
        """Snapshot a completed subspace into the cache (atomic)."""
        path = save_subspace(self.subspace_path(sub.program), sub)
        self.writes += 1
        return path

    def checkpoint_policy(self, program: Program) -> CheckpointPolicy:
        """A policy writing periodic snapshots into this cache — gives
        budget-exhausted explorations a resume point under the same
        digest-addressed path a later request will look up."""
        return CheckpointPolicy(path=self.subspace_path(program))

    # -- shared ----------------------------------------------------------

    def _evict(self, path: str) -> None:
        self.evictions += 1
        rec = obs.get_recorder()
        if rec.enabled:
            rec.add("service.cache.evictions")
        try:
            os.unlink(path)
        except OSError:
            pass

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writes": self.writes,
        }


def _fsync_dir(dirname: str) -> None:
    try:
        fd = os.open(dirname, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def verdict_program_digest(program: Program) -> str:
    """Re-export of the engine's program digest (service convenience)."""
    return program_digest(program)
