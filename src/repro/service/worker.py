"""The certification worker: one subprocess, one check at a time.

Workers are the service's **crash isolation boundary**.  The supervisor
talks to each worker over its stdin/stdout pipes (length-prefixed JSON
frames, :mod:`repro.service.protocol`); anything that kills the worker
— a segfault in a kernel, an OOM kill, an injected ``os._exit`` — is an
EOF on the parent's pipe, never an exception in the parent's process.
A worker runs **one request at a time**, so reaping a stalled worker
cancels exactly the stalled check and nothing else.

Request handling maps the service's deadline contract onto the
engine's budget machinery: the request deadline becomes a
:class:`~repro.semantics.budget.Budget`, sparse explorations checkpoint
into the shared cache's digest-addressed directory, and budget
exhaustion surfaces as a structured UNKNOWN document (with the
checkpoint path, so the *next* request for the same program resumes
instead of restarting).  The worker also publishes completed
:class:`~repro.semantics.sparse.explorer.ReachableSubspace` snapshots
to the cache after a decided sparse verdict — the expensive artifact is
the exploration, and it is property-independent.

At startup the worker calls
:func:`repro.util.faultinject.arm_from_env`, which is how the chaos
suite injects crashes/stalls *inside* the worker from outside the
process: the supervisor forwards ``REPRO_FAULTS`` verbatim.

Run directly as ``python -m repro.service.worker [--cache-dir DIR]``;
normally only the supervisor does this.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, BinaryIO

from repro.errors import BudgetExhausted, DslSyntaxError, ReproError
from repro.semantics.budget import Budget, PartialResult
from repro.service.cache import ServiceCache
from repro.service.protocol import read_frame, write_frame
from repro.util.faultinject import arm_from_env, fault_point

__all__ = ["handle_request", "run_worker", "main"]


def _parse_request_program(request: dict[str, Any]):
    """Program + property objects from a normalized request document."""
    from repro.dsl import parse_module, parse_program, parse_property

    name = request.get("program_name")
    if name is not None:
        programs = parse_module(request["program"])
        if name not in programs:
            raise DslSyntaxError(
                f"module defines no program {name!r} "
                f"(has: {', '.join(sorted(programs))})"
            )
        program = programs[name]
    else:
        program = parse_program(request["program"])
    prop = parse_property(request["property"], program)
    return program, prop


def _budget_of(request: dict[str, Any]) -> Budget | None:
    deadline = request.get("deadline")
    node_budget = request.get("node_budget")
    max_levels = request.get("max_levels")
    if deadline is None and node_budget is None and max_levels is None:
        return None
    return Budget(
        deadline=deadline, node_budget=node_budget, max_levels=max_levels
    )


def _unknown_payload(partial: PartialResult, *, tier: str = "sparse") -> dict:
    doc = partial.to_doc()
    doc["tier"] = tier
    return doc


def handle_request(
    request: dict[str, Any], cache: ServiceCache | None
) -> dict[str, Any]:
    """Decide one normalized request; always returns a response payload.

    The payload's ``status`` is ``"ok"`` (decided; ``holds`` is a
    bool), ``"unknown"`` (budget ran out; resumable statistics), or
    ``"error"`` (structured engine refusal).  Library exceptions never
    escape — but injected crash faults (``os._exit``) and genuine
    interpreter death of course do, which is the point of running this
    in a subprocess.
    """
    from repro.api import verify
    from repro.core.predicates import Predicate
    from repro.core.properties import LeadsTo
    from repro.semantics.sparse import sparse_enabled
    from repro.semantics.sparse.checkpoint import program_digest
    from repro.semantics.sparse.explorer import reachable_subspace

    try:
        program, prop = _parse_request_program(request)
    except (DslSyntaxError, ReproError) as exc:
        return _error_payload("parse-error", exc)
    digest = program_digest(program)
    budget = _budget_of(request)
    tier = request["tier"]
    fault_point("service.worker.check", digest=digest, kind=type(prop).__name__)

    routes_sparse = tier == "sparse" or (
        tier == "auto" and sparse_enabled(program.space)
    )
    subspace = None
    try:
        if routes_sparse:
            if cache is not None:
                subspace = cache.load_subspace(program, budget=budget)
                if subspace is None:
                    subspace = reachable_subspace(
                        program,
                        budget=budget,
                        checkpoint=cache.checkpoint_policy(program),
                    )
            else:
                subspace = reachable_subspace(program, budget=budget)
    except BudgetExhausted as exc:
        partial = PartialResult.from_exhaustion(
            exc, kind="exploration", subject=program.name
        )
        return _unknown_payload(partial)
    except ReproError as exc:
        return _error_payload("engine-error", exc)

    # verify() only threads a subspace into checks that can use one.
    pass_subspace = subspace if isinstance(prop, (LeadsTo, Predicate)) else None
    try:
        verdict = verify(
            program,
            prop,
            tier=tier,
            fairness=request["fairness"],
            budget=budget,
            prove=request["prove"],
            subspace=pass_subspace,
        )
    except ReproError as exc:
        return _error_payload("engine-error", exc)

    if verdict.holds is None:
        if verdict.partial is not None:
            return _unknown_payload(verdict.partial, tier=verdict.tier)
        return {
            "status": "unknown",
            "tier": verdict.tier,
            "reason": "refused",
            "message": verdict.metrics.get("message", ""),
        }

    if cache is not None and subspace is not None:
        # A returned subspace is complete by construction (exhaustion
        # raises instead); publish once per program digest.
        import os

        if not os.path.exists(cache.subspace_path(program)):
            cache.store_subspace(subspace)

    payload: dict[str, Any] = {
        "status": "ok",
        "holds": bool(verdict.holds),
        "tier": verdict.tier,
        "digest": digest,
        "subject": verdict.metrics.get("subject", ""),
        "message": verdict.metrics.get("message", ""),
        "certified": verdict.certificate is not None,
    }
    return payload


def _error_payload(code: str, exc: BaseException) -> dict[str, Any]:
    return {
        "status": "error",
        "error": {"code": code, "message": f"{type(exc).__name__}: {exc}"},
    }


def run_worker(
    stdin: BinaryIO, stdout: BinaryIO, cache: ServiceCache | None
) -> int:
    """Frame loop: read request, decide, reply; EOF ends the worker."""
    while True:
        frame = read_frame(stdin)
        if frame is None:
            return 0
        seq = frame.get("seq")
        payload = handle_request(frame.get("request", {}), cache)
        write_frame(stdout, {"seq": seq, "payload": payload})


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-service-worker")
    parser.add_argument("--cache-dir", default=None)
    opts = parser.parse_args(argv)
    arm_from_env()
    # The frames own stdout; anything the engine prints must go to
    # stderr or it would desynchronize the pipe protocol.
    out = sys.stdout.buffer
    sys.stdout = sys.stderr
    cache = ServiceCache(opts.cache_dir) if opts.cache_dir else None
    return run_worker(sys.stdin.buffer, out, cache)


if __name__ == "__main__":
    raise SystemExit(main())
