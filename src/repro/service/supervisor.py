"""Supervised worker pool: respawn, retry, quarantine, reap.

The supervisor owns the service's crash story.  Its invariants, each
pinned by ``tests/test_service_chaos.py``:

- **A worker death is a structured error, never a server death.**
  Death is detected on use (EOF / ``BrokenPipeError`` on the pipes) and
  the slot respawns with per-slot exponential backoff — a worker that
  dies at startup cannot hot-loop the supervisor into a fork bomb.
- **A crashed request is retried on a fresh worker**, up to
  ``max_retries`` times with backoff, then failed with
  ``code="worker-crash"``.  Retrying is safe because checks are pure:
  a request computes a verdict, and its only side effect — the cache
  publish — is atomic and idempotent.
- **A stalled worker is reaped, not waited on.**  Every dispatch has a
  watchdog deadline (the request deadline plus ``stall_grace``; just
  the per-request ``default_timeout`` when no deadline was given).  A
  worker that blows it is killed and the request fails with
  ``code="worker-timeout"`` — a deliberate *error*, never an UNKNOWN:
  UNKNOWN means the *engine* ran out of budget and left a resume point;
  a stall means the engine stopped reporting, and pretending that is a
  resumable state would launder a hang into a degradation the caller
  might retry forever.
- **Programs that repeatedly kill workers get quarantined.**  A
  per-program-digest circuit breaker opens after
  ``breaker_threshold`` *consecutive* crashes and fails requests for
  that digest fast (``code="quarantined"``, with a retry-after) for
  ``breaker_cooldown`` seconds; the first request after cooldown is the
  half-open trial — success closes the breaker, another crash reopens
  it.  Without the breaker, one poisonous program burns
  ``max_retries + 1`` workers per request, starving everyone else.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time

from repro import obs
from repro.service.protocol import FrameError, read_frame, write_frame
from repro.util.faultinject import FAULTS_ENV

__all__ = [
    "WorkerCrash",
    "WorkerTimeout",
    "Quarantined",
    "CircuitBreaker",
    "WorkerPool",
]


class WorkerCrash(Exception):
    """The worker died before replying (retries exhausted)."""


class WorkerTimeout(Exception):
    """The worker blew its watchdog deadline and was reaped."""


class Quarantined(Exception):
    """The circuit breaker is open for this program digest."""

    def __init__(self, digest: str, retry_after: float) -> None:
        super().__init__(
            f"program {digest[:12]}… is quarantined after repeated worker "
            f"crashes; retry in {retry_after:.0f}s"
        )
        self.digest = digest
        self.retry_after = retry_after


class CircuitBreaker:
    """Consecutive-crash breaker, one state machine per program digest."""

    def __init__(self, *, threshold: int = 3, cooldown: float = 30.0) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self._lock = threading.Lock()
        # digest -> [consecutive crashes, open-until monotonic, half-open?]
        self._state: dict[str, list] = {}

    def check(self, digest: str) -> None:
        """Raise :class:`Quarantined` if the digest's breaker is open.

        An expired cooldown admits exactly one half-open trial; further
        requests stay quarantined until the trial settles.
        """
        with self._lock:
            st = self._state.get(digest)
            if st is None:
                return
            crashes, open_until, trialing = st
            if crashes < self.threshold:
                return
            now = time.monotonic()
            if now < open_until:
                raise Quarantined(digest, open_until - now)
            if trialing:
                raise Quarantined(digest, self.cooldown)
            st[2] = True  # this caller is the half-open trial

    def record_crash(self, digest: str) -> bool:
        """Count a crash; returns True when the breaker (re)opens."""
        with self._lock:
            st = self._state.setdefault(digest, [0, 0.0, False])
            st[0] += 1
            st[2] = False
            if st[0] >= self.threshold:
                st[1] = time.monotonic() + self.cooldown
                return True
            return False

    def record_success(self, digest: str) -> None:
        with self._lock:
            self._state.pop(digest, None)

    def snapshot(self) -> dict[str, dict]:
        """Open breakers, for the health endpoint."""
        now = time.monotonic()
        out = {}
        with self._lock:
            for digest, (crashes, open_until, trialing) in self._state.items():
                if crashes >= self.threshold:
                    out[digest] = {
                        "crashes": crashes,
                        "open_for_s": max(0.0, round(open_until - now, 3)),
                        "half_open": trialing,
                    }
        return out


class _Worker:
    """One subprocess and its pipes; owned by exactly one dispatch at a
    time (the pool hands workers out under its lock)."""

    def __init__(self, argv: list[str], env: dict[str, str]) -> None:
        self.proc = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        self.seq = 0

    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill(self) -> None:
        try:
            self.proc.kill()
        except OSError:
            pass
        try:
            self.proc.wait(timeout=5)
        except Exception:
            pass

    def ask(self, request: dict, timeout: float) -> dict:
        """One request/response exchange with a hard watchdog.

        Raises :class:`WorkerCrash` on death mid-exchange and
        :class:`WorkerTimeout` when the reply does not land in
        ``timeout`` seconds (the worker is killed first, so a late
        reply can never desynchronize the next exchange).
        """
        self.seq += 1
        seq = self.seq
        try:
            write_frame(self.proc.stdin, {"seq": seq, "request": request})
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrash(f"worker died taking the request: {exc}") from exc

        result: list = [None]

        def _read() -> None:
            try:
                result[0] = read_frame(self.proc.stdout)
            except FrameError as exc:
                result[0] = exc

        reader = threading.Thread(target=_read, daemon=True)
        reader.start()
        reader.join(timeout)
        if reader.is_alive():
            self.kill()
            reader.join(1.0)
            raise WorkerTimeout(f"no reply in {timeout:.1f}s; worker reaped")
        reply = result[0]
        if reply is None:
            raise WorkerCrash(
                f"worker exited mid-check (status {self.proc.poll()})"
            )
        if isinstance(reply, FrameError):
            self.kill()
            raise WorkerCrash(f"worker pipe desynchronized: {reply}")
        if reply.get("seq") != seq:
            self.kill()
            raise WorkerCrash(
                f"out-of-order reply (seq {reply.get('seq')} != {seq})"
            )
        return reply["payload"]


class WorkerPool:
    """Fixed-size pool of supervised workers with crash-retry dispatch."""

    def __init__(
        self,
        size: int,
        *,
        cache_dir: str | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        spawn_backoff: float = 0.05,
        spawn_backoff_cap: float = 2.0,
        default_timeout: float = 60.0,
        stall_grace: float = 5.0,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"pool size must be > 0, got {size}")
        self.size = size
        self.cache_dir = cache_dir
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.spawn_backoff = spawn_backoff
        self.spawn_backoff_cap = spawn_backoff_cap
        self.default_timeout = default_timeout
        self.stall_grace = stall_grace
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._lock = threading.Lock()
        self._free = threading.Semaphore(size)
        self._idle: list[_Worker] = []
        self._spawn_failures = 0
        self.crashes = 0
        self.timeouts = 0
        self.retries = 0
        self._closed = False

    # -- spawning --------------------------------------------------------

    def _argv(self) -> list[str]:
        argv = [sys.executable, "-m", "repro.service.worker"]
        if self.cache_dir:
            argv += ["--cache-dir", self.cache_dir]
        return argv

    def _env(self) -> dict[str, str]:
        env = dict(os.environ)
        # Workers must import the same repro the supervisor runs, even
        # when it was started from a source tree without installation.
        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        parts = [src] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        faults = os.environ.get(FAULTS_ENV)
        if faults:
            env[FAULTS_ENV] = faults
        return env

    def _spawn(self) -> _Worker:
        """Spawn with exponential backoff on consecutive failures."""
        while True:
            with self._lock:
                failures = self._spawn_failures
            if failures:
                time.sleep(
                    min(
                        self.spawn_backoff * (2 ** (failures - 1)),
                        self.spawn_backoff_cap,
                    )
                )
            try:
                worker = _Worker(self._argv(), self._env())
            except OSError:
                with self._lock:
                    self._spawn_failures += 1
                continue
            with self._lock:
                self._spawn_failures = 0
            rec = obs.get_recorder()
            if rec.enabled:
                rec.add("service.worker.spawns")
            return worker

    def _checkout(self) -> _Worker:
        self._free.acquire()
        with self._lock:
            while self._idle:
                worker = self._idle.pop()
                if worker.alive():
                    return worker
                worker.kill()
        return self._spawn()

    def _checkin(self, worker: _Worker, *, broken: bool) -> None:
        if broken or not worker.alive():
            worker.kill()
        else:
            with self._lock:
                if not self._closed:
                    self._idle.append(worker)
                    worker = None  # type: ignore[assignment]
            if worker is not None:
                worker.kill()
        self._free.release()

    # -- dispatch --------------------------------------------------------

    def submit(self, request: dict, *, digest: str) -> dict:
        """Run one request on the pool; crash-retry with backoff.

        Raises :class:`Quarantined` / :class:`WorkerTimeout` /
        :class:`WorkerCrash`; any normal reply (including worker-side
        ``status="error"`` documents) is returned as-is.
        """
        self.breaker.check(digest)
        timeout = self.default_timeout
        deadline = request.get("deadline")
        if deadline is not None:
            # The engine gets `deadline` to wind down on its own; the
            # watchdog only fires when it fails to (a genuine stall).
            timeout = float(deadline) + self.stall_grace
        rec = obs.get_recorder()
        attempts = self.max_retries + 1
        for attempt in range(attempts):
            worker = self._checkout()
            try:
                payload = worker.ask(request, timeout)
            except WorkerTimeout:
                self.timeouts += 1
                self._checkin(worker, broken=True)
                if rec.enabled:
                    rec.add("service.worker.timeouts")
                # No retry: a stall is time already spent; retrying
                # doubles the caller's wait for a likely repeat.
                raise
            except WorkerCrash:
                self.crashes += 1
                self._checkin(worker, broken=True)
                if rec.enabled:
                    rec.add("service.worker.crashes")
                opened = self.breaker.record_crash(digest)
                if opened and rec.enabled:
                    rec.add("service.breaker.opens")
                if opened or attempt == attempts - 1:
                    raise
                self.retries += 1
                if rec.enabled:
                    rec.add("service.worker.retries")
                time.sleep(self.retry_backoff * (2**attempt))
                continue
            except BaseException:
                self._checkin(worker, broken=True)
                raise
            self._checkin(worker, broken=False)
            self.breaker.record_success(digest)
            return payload
        raise AssertionError("unreachable")  # pragma: no cover

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for worker in idle:
            worker.kill()

    def stats(self) -> dict:
        with self._lock:
            idle = len(self._idle)
        return {
            "size": self.size,
            "idle": idle,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "breakers_open": len(self.breaker.snapshot()),
        }
