"""Acyclicity, topological order, and the paper's Lemma 2.

§4.4: ``Acyclicity ≡ ⟨∀i : i ∉ R*(i)⟩ ≡ ⟨∀i : i ∉ A*(i)⟩``.

Lemma 2: *"There is at least one maximal node in any non-empty above-set of
a finite acyclic graph"* — the pigeonhole fact powering Property 6: a
non-priority component always has a priority component above it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.orientation import Orientation
from repro.graph.reachability import above_star_all, reach_star_all
from repro.util.bitset import bit, bitset_to_list, iter_bits

__all__ = [
    "is_acyclic",
    "acyclic_rows",
    "topological_order",
    "maximal_nodes_above",
    "lemma2_holds",
]


def is_acyclic(orientation: Orientation) -> bool:
    """``⟨∀i : i ∉ R*(i)⟩`` — no node reaches itself."""
    for i, r in enumerate(reach_star_all(orientation)):
        if r & bit(i):
            return False
    return True


def acyclic_rows(graph, edge_cols: np.ndarray) -> np.ndarray:
    """Vectorized acyclicity over a **batch** of orientations.

    ``edge_cols`` is a boolean ``(rows, graph.m)`` matrix: entry ``[r, k]``
    orients edge ``k = (a, b)`` (normalized ``a < b``) as ``a → b`` when
    true, matching the edge-variable encoding of
    :func:`repro.systems.priority.edge_var`.  Returns a length-``rows``
    boolean mask — row ``r`` is true iff its orientation is acyclic.

    This is the frontier kernel behind the scaled philosopher scenarios:
    a Kahn peel run simultaneously on every row (``graph.n`` rounds of
    ``graph.m`` vectorized column updates), with work proportional to the
    batch, never to an encoded space.  Agrees with :func:`is_acyclic`
    row-by-row (pinned by tests).
    """
    edge_cols = np.asarray(edge_cols, dtype=bool)
    rows = edge_cols.shape[0]
    n, m = graph.n, graph.m
    if edge_cols.shape != (rows, m):
        raise GraphError(
            f"edge_cols must be (rows, {m}), got {edge_cols.shape}"
        )
    indeg = np.zeros((rows, n), dtype=np.int16)
    for k, (a, b) in enumerate(graph.edges):
        fwd = edge_cols[:, k]
        indeg[:, b] += fwd
        indeg[:, a] += ~fwd
    alive = np.ones((rows, n), dtype=bool)
    for _ in range(n):
        peel = alive & (indeg == 0)
        if not peel.any():
            break
        for k, (a, b) in enumerate(graph.edges):
            fwd = edge_cols[:, k]
            indeg[:, b] -= peel[:, a] & fwd
            indeg[:, a] -= peel[:, b] & ~fwd
        alive &= ~peel
    return ~alive.any(axis=1)


def topological_order(orientation: Orientation) -> list[int]:
    """A topological order of an acyclic orientation (Kahn's algorithm):
    every arrow goes from an earlier to a later node.  Raises
    :class:`GraphError` on cyclic orientations."""
    g = orientation.graph
    indeg = [len(orientation.a_list(i)) for i in g.nodes()]
    ready = [i for i in g.nodes() if indeg[i] == 0]
    order: list[int] = []
    while ready:
        i = ready.pop()
        order.append(i)
        for j in orientation.r_list(i):
            indeg[j] -= 1
            if indeg[j] == 0:
                ready.append(j)
    if len(order) != g.n:
        raise GraphError("orientation is cyclic; no topological order")
    return order


def maximal_nodes_above(orientation: Orientation, i: int) -> list[int]:
    """Nodes ``j ∈ A*(i)`` with ``A*(j) = ∅`` — the maximal elements of the
    above-set, i.e. priority holders dominating ``i``."""
    a_all = above_star_all(orientation)
    return [j for j in iter_bits(a_all[i]) if a_all[j] == 0]


def lemma2_holds(orientation: Orientation) -> bool:
    """Lemma 2: in an acyclic orientation, every non-empty ``A*(i)``
    contains a maximal node.  (Callers should pass acyclic orientations;
    the lemma can genuinely fail on cyclic ones, which tests exploit.)"""
    a_all = above_star_all(orientation)
    for i, above in enumerate(a_all):
        if above == 0:
            continue
        if not any(a_all[j] == 0 for j in iter_bits(above)):
            return False
    return True


def cycle_witness(orientation: Orientation) -> list[int] | None:
    """Some directed cycle (node list) if one exists, else ``None``.

    Diagnostic companion to :func:`is_acyclic`; uses iterative DFS with
    colouring.
    """
    g = orientation.graph
    color = [0] * g.n  # 0 = white, 1 = on stack, 2 = done
    parent: dict[int, int] = {}
    for root in g.nodes():
        if color[root] != 0:
            continue
        stack: list[tuple[int, list[int]]] = [(root, orientation.r_list(root))]
        color[root] = 1
        while stack:
            node, todo = stack[-1]
            if todo:
                j = todo.pop()
                if color[j] == 0:
                    color[j] = 1
                    parent[j] = node
                    stack.append((j, orientation.r_list(j)))
                elif color[j] == 1:
                    # Found a back edge node → j: unwind the cycle.
                    cycle = [node]
                    cur = node
                    while cur != j:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    return cycle
            else:
                color[node] = 2
                stack.pop()
    return None


def above_sets_summary(orientation: Orientation) -> dict[int, list[int]]:
    """``{i: A*(i) as sorted list}`` — debugging/report helper."""
    return {
        i: bitset_to_list(a) for i, a in enumerate(above_star_all(orientation))
    }
