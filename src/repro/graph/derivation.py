"""Definition 1 and Lemma 1: edge-reversal derivations.

Definition 1 (§4.5): ``G →_{i₀} G'`` iff the two orientations differ only
on the edges of ``i₀``, all of which are **outgoing** in ``G`` (so
``A*(i₀) = ∅``, i.e. ``i₀`` has priority) and **incoming** in ``G'`` (so
``R*(i₀) = ∅`` afterwards).

Lemma 1: if ``G →_{i₀} G'`` then ``⟨∀i : R*_{G'}(i) ⊆ R*_G(i) ∪ {i₀}⟩`` —
reversing a priority node can only add the reversed node itself to anyone's
reachability set.  This is the graph-theoretic core of Properties 3–5
(nobody enters a reachability set before gaining priority; acyclicity is
stable).
"""

from __future__ import annotations

from repro.graph.orientation import Orientation
from repro.graph.reachability import reach_star_all
from repro.util.bitset import bit

__all__ = [
    "is_derivation",
    "apply_reversal",
    "derivations_from",
    "lemma1_bound_holds",
]


def is_derivation(g: Orientation, g2: Orientation, i0: int) -> bool:
    """Definition 1: does ``G →_{i₀} G'`` hold?

    Checks the three conjuncts exactly as stated: (a) all non-``i₀`` edges
    equal, (b) every edge of ``i₀`` outgoing in ``G`` (``A(i₀) = ∅``),
    (c) every edge of ``i₀`` incoming in ``G'`` (``R(i₀) = ∅`` in ``G'``).
    """
    if g.graph != g2.graph:
        return False
    graph = g.graph
    incident = set(graph.incident_edges(i0))
    for k in range(graph.m):
        same = (g.bits & bit(k)) == (g2.bits & bit(k))
        if k in incident:
            continue
        if not same:
            return False
    return g.a_set(i0) == 0 and g2.r_set(i0) == 0


def apply_reversal(g: Orientation, i0: int) -> Orientation:
    """The unique ``G'`` with ``G →_{i₀} G'`` (requires ``Priority(i₀)``).

    Raises :class:`ValueError` when ``i₀`` lacks priority — the §4
    components only reverse nodes that currently dominate all neighbours.
    """
    if not g.priority(i0):
        raise ValueError(
            f"node {i0} does not have priority; A({i0}) = {g.a_list(i0)}"
        )
    return g.reversed_node(i0)


def derivations_from(g: Orientation) -> list[tuple[int, Orientation]]:
    """All derivations available from ``G``: one per priority node.

    (Isolated nodes hold priority vacuously; their reversal is the
    identity, which still satisfies Definition 1.)
    """
    return [(i, g.reversed_node(i)) for i in g.priority_nodes()]


def lemma1_bound_holds(g: Orientation, g2: Orientation, i0: int) -> bool:
    """Lemma 1's bound: ``⟨∀i : R*_{G'}(i) ⊆ R*_G(i) ∪ {i₀}⟩``.

    Callers normally pass a genuine derivation (the lemma's hypothesis);
    property tests use arbitrary pairs to confirm the hypothesis matters.
    """
    before = reach_star_all(g)
    after = reach_star_all(g2)
    allowed_extra = bit(i0)
    for i in g.graph.nodes():
        if after[i] & ~(before[i] | allowed_extra):
            return False
    return True
