"""Orientations of the conflict graph: the priority relation ``i → j``.

An :class:`Orientation` pairs a :class:`~repro.graph.neighborhood.NeighborhoodGraph`
with one direction bit per edge id.  Bit ``k`` for edge ``(i, j)``
(normalized ``i < j``) is True iff ``i → j``, i.e. the lower-numbered
endpoint has priority.  The whole orientation packs into a single integer
``bits`` — which is also exactly the encoded state index of the §4 priority
*system*, so the program semantics and the graph theory share a
representation for free.

Terminology from the paper:

- ``i → j``   — ``i`` has priority over ``j`` (:meth:`arrow`);
- ``R(i)``    — ``{ j ∈ N(i) : i → j }`` (:meth:`r_set`);
- ``A(i)``    — ``{ j ∈ N(i) : j → i }`` (:meth:`a_set`);
- ``Priority(i) ≡ ⟨∀j ∈ N(i) : i → j⟩ ≡ A(i) = ∅`` (:meth:`priority`).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import GraphError
from repro.graph.neighborhood import NeighborhoodGraph
from repro.util.bitset import bit, bitset_to_list

__all__ = ["Orientation"]


class Orientation:
    """An orientation of every edge of a neighbourhood graph."""

    __slots__ = ("graph", "bits")

    def __init__(self, graph: NeighborhoodGraph, bits: int) -> None:
        if not 0 <= bits < (1 << graph.m):
            raise GraphError(
                f"orientation bits {bits} out of range for m={graph.m} edges"
            )
        self.graph = graph
        self.bits = bits

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_arrows(
        cls, graph: NeighborhoodGraph, arrows: Iterable[tuple[int, int]]
    ) -> "Orientation":
        """Build from explicit ``i → j`` pairs (every edge exactly once)."""
        bits = 0
        seen: set[int] = set()
        for i, j in arrows:
            k = graph.edge_id(i, j)
            if k in seen:
                raise GraphError(f"edge {{{i},{j}}} oriented twice")
            seen.add(k)
            if i < j:
                bits |= bit(k)
        if len(seen) != graph.m:
            raise GraphError(
                f"orientation covers {len(seen)} of {graph.m} edges"
            )
        return cls(graph, bits)

    @classmethod
    def from_ranking(
        cls, graph: NeighborhoodGraph, rank: Iterable[int] | None = None
    ) -> "Orientation":
        """Acyclic orientation induced by a total order: lower rank wins.

        With ``rank=None``, node labels are used (node 0 beats everyone).
        Rankings must be injective, which guarantees acyclicity — the
        canonical initial state of the priority system.
        """
        ranks = list(rank) if rank is not None else list(range(graph.n))
        if len(ranks) != graph.n or len(set(ranks)) != graph.n:
            raise GraphError("ranking must assign a distinct rank per node")
        bits = 0
        for k, (i, j) in enumerate(graph.edges):
            if ranks[i] < ranks[j]:
                bits |= bit(k)
        return cls(graph, bits)

    # -- arrows -------------------------------------------------------------------

    def arrow(self, i: int, j: int) -> bool:
        """``i → j`` — does ``i`` have priority over neighbour ``j``?"""
        k = self.graph.edge_id(i, j)
        toward_j = bool(self.bits & bit(k))
        return toward_j if i < j else not toward_j

    def arrows(self) -> list[tuple[int, int]]:
        """All ``(winner, loser)`` pairs."""
        out = []
        for i, j in self.graph.edges:
            out.append((i, j) if self.arrow(i, j) else (j, i))
        return out

    # -- the paper's derived sets ----------------------------------------------------

    def r_set(self, i: int) -> int:
        """``R(i)`` as a bitset: neighbours ``i`` points at."""
        mask = 0
        for j in self.graph.neighbors(i):
            if self.arrow(i, j):
                mask |= bit(j)
        return mask

    def a_set(self, i: int) -> int:
        """``A(i)`` as a bitset: neighbours pointing at ``i``."""
        mask = 0
        for j in self.graph.neighbors(i):
            if not self.arrow(i, j):
                mask |= bit(j)
        return mask

    def r_list(self, i: int) -> list[int]:
        """``R(i)`` as a sorted list."""
        return bitset_to_list(self.r_set(i))

    def a_list(self, i: int) -> list[int]:
        """``A(i)`` as a sorted list."""
        return bitset_to_list(self.a_set(i))

    def priority(self, i: int) -> bool:
        """``Priority(i) ≡ ⟨∀j ∈ N(i) : i → j⟩``.

        Note the equivalence used throughout §4.5: ``Priority(i) ≡
        A(i) = ∅ ≡ A*(i) = ∅`` (the paper's (12)).
        """
        return self.a_set(i) == 0

    def priority_nodes(self) -> list[int]:
        """All nodes currently holding priority."""
        return [i for i in self.graph.nodes() if self.priority(i)]

    # -- mutation (functional) -----------------------------------------------------

    def reversed_node(self, i: int) -> "Orientation":
        """The orientation with **all** edges of ``i`` pointing at ``i``.

        This is the move of the §4 components: on yielding, a node becomes
        lower-priority than all its neighbours at once (the way §4.1 says
        cycles are avoided).  The result is ``G'`` with ``G →_i G'`` when
        ``i`` had priority in ``G`` (Definition 1).
        """
        bits = self.bits
        for k in self.graph.incident_edges(i):
            a, _b = self.graph.edges[k]
            want_bit_set = a != i  # bit set means low endpoint wins
            if want_bit_set:
                bits |= bit(k)
            else:
                bits &= ~bit(k)
        return Orientation(self.graph, bits)

    def flipped_edge(self, i: int, j: int) -> "Orientation":
        """Single-edge flip (used by tests to perturb orientations)."""
        k = self.graph.edge_id(i, j)
        return Orientation(self.graph, self.bits ^ bit(k))

    # -- dunder ----------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Orientation)
            and other.graph == self.graph
            and other.bits == self.bits
        )

    def __hash__(self) -> int:
        return hash((Orientation, self.graph, self.bits))

    def __repr__(self) -> str:
        arrows = ", ".join(f"{a}->{b}" for a, b in self.arrows())
        return f"Orientation({arrows})"
