"""Conflict-graph families for the experiments.

The paper quantifies over all finite neighbourhood graphs; the experiment
suite sweeps these generated families (EXPERIMENTS.md, E3–E7).  All
generators are deterministic given their arguments (random graphs take a
seed) so every benchmark row is reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.neighborhood import NeighborhoodGraph
from repro.util.rng import make_rng

__all__ = [
    "ring_graph",
    "path_graph",
    "star_graph",
    "clique_graph",
    "grid_graph",
    "torus_graph",
    "hypercube_graph",
    "tree_graph",
    "random_graph",
    "random_regular_graph",
]


def ring_graph(n: int) -> NeighborhoodGraph:
    """Cycle of ``n ≥ 3`` nodes — the dining-philosophers conflict graph."""
    if n < 3:
        raise GraphError(f"a ring needs n ≥ 3 nodes, got {n}")
    return NeighborhoodGraph(n, [(i, (i + 1) % n) for i in range(n)])


def path_graph(n: int) -> NeighborhoodGraph:
    """Simple path of ``n ≥ 2`` nodes."""
    if n < 2:
        raise GraphError(f"a path needs n ≥ 2 nodes, got {n}")
    return NeighborhoodGraph(n, [(i, i + 1) for i in range(n - 1)])


def star_graph(n: int) -> NeighborhoodGraph:
    """Node 0 conflicting with all others (a shared-resource hub)."""
    if n < 2:
        raise GraphError(f"a star needs n ≥ 2 nodes, got {n}")
    return NeighborhoodGraph(n, [(0, i) for i in range(1, n)])


def clique_graph(n: int) -> NeighborhoodGraph:
    """All pairs conflicting — mutual exclusion between every pair."""
    if n < 2:
        raise GraphError(f"a clique needs n ≥ 2 nodes, got {n}")
    return NeighborhoodGraph(
        n, [(i, j) for i in range(n) for j in range(i + 1, n)]
    )


def grid_graph(rows: int, cols: int) -> NeighborhoodGraph:
    """``rows × cols`` 4-neighbour grid (node ``r·cols + c``)."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise GraphError(f"grid {rows}×{cols} too small")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return NeighborhoodGraph(rows * cols, edges)


def torus_graph(rows: int, cols: int) -> NeighborhoodGraph:
    """``rows × cols`` grid with wraparound (the 4-regular torus).

    Node ``r·cols + c`` conflicts with its four toroidal neighbours.
    Both dimensions must be ≥ 3: a wraparound over two rows (or columns)
    would duplicate the interior edge, and :class:`NeighborhoodGraph`
    rejects parallel edges.
    """
    if rows < 3 or cols < 3:
        raise GraphError(
            f"torus {rows}×{cols} too small: wraparound needs both "
            "dimensions >= 3"
        )
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            edges.append((v, r * cols + (c + 1) % cols))
            edges.append((v, ((r + 1) % rows) * cols + c))
    return NeighborhoodGraph(rows * cols, edges)


def hypercube_graph(d: int) -> NeighborhoodGraph:
    """The ``d``-dimensional hypercube ``Q_d`` (``2^d`` nodes, ``d·2^(d-1)``
    edges) — nodes are bit vectors, conflicts flip one bit."""
    if d < 1:
        raise GraphError(f"a hypercube needs dimension d >= 1, got {d}")
    n = 1 << d
    edges = []
    for v in range(n):
        for bit in range(d):
            w = v ^ (1 << bit)
            if v < w:
                edges.append((v, w))
    return NeighborhoodGraph(n, edges)


def random_regular_graph(
    n: int, d: int, *, seed: int | np.random.Generator = 0
) -> NeighborhoodGraph:
    """Random ``d``-regular graph on ``n`` nodes (configuration model).

    Pairs ``n·d`` half-edge stubs uniformly and retries the whole pairing
    whenever it produces a self-loop or parallel edge — for the small
    degrees the scenario sweeps use, a valid pairing appears within a few
    draws.  Deterministic given ``seed``; ``n·d`` must be even and
    ``d < n``.
    """
    if n < 2 or d < 1:
        raise GraphError(f"need n >= 2 nodes of degree d >= 1, got n={n}, d={d}")
    if d >= n:
        raise GraphError(f"degree d={d} impossible on n={n} nodes")
    if (n * d) % 2:
        raise GraphError(f"n*d = {n * d} is odd: no {d}-regular graph on {n} nodes")
    rng = make_rng(seed)
    stubs = np.repeat(np.arange(n), d)
    for _ in range(1000):
        rng.shuffle(stubs)
        pairs = stubs.reshape(-1, 2)
        edges = {(min(a, b), max(a, b)) for a, b in pairs}
        if len(edges) == pairs.shape[0] and all(a != b for a, b in edges):
            return NeighborhoodGraph(n, sorted(edges))
    raise GraphError(
        f"no simple {d}-regular pairing on {n} nodes found in 1000 draws"
    )


def tree_graph(n: int, *, seed: int | np.random.Generator = 0) -> NeighborhoodGraph:
    """Random labelled tree on ``n ≥ 2`` nodes (uniform attachment)."""
    if n < 2:
        raise GraphError(f"a tree needs n ≥ 2 nodes, got {n}")
    rng = make_rng(seed)
    edges = [(int(rng.integers(i)), i) for i in range(1, n)]
    return NeighborhoodGraph(n, edges)


def random_graph(
    n: int, p: float, *, seed: int | np.random.Generator = 0,
    ensure_connected_by_path: bool = True,
) -> NeighborhoodGraph:
    """Erdős–Rényi ``G(n, p)``.

    ``ensure_connected_by_path=True`` adds the path ``0-1-…-(n-1)`` so no
    node is isolated (isolated nodes hold priority vacuously forever, which
    makes liveness sweeps degenerate).
    """
    if n < 2:
        raise GraphError(f"a random graph needs n ≥ 2 nodes, got {n}")
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability must be in [0,1], got {p}")
    rng = make_rng(seed)
    edges = set()
    if ensure_connected_by_path:
        edges.update((i, i + 1) for i in range(n - 1))
    for i in range(n):
        for j in range(i + 1, n):
            if (i, j) not in edges and rng.random() < p:
                edges.add((i, j))
    return NeighborhoodGraph(n, sorted(edges))
