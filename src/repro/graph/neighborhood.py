"""The undirected conflict graph ``P`` of §4.

The paper describes ``P`` by variables ``N(i)`` (the neighbour set of
component ``i``) with two well-formedness conditions:

- ``⟨∀i : i ∉ N(i)⟩`` — no node conflicts with itself;
- ``⟨∀i,j : i ∈ N(j) ≡ j ∈ N(i)⟩`` — neighbourhood is symmetric.

:class:`NeighborhoodGraph` enforces both at construction.  Edges are
normalized to ``(i, j)`` with ``i < j`` and given dense **edge ids** — the
priority system maps edge id ``k`` to a boolean program variable, and
orientations store one direction bit per edge id.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import GraphError
from repro.util.bitset import bitset_from_iterable

__all__ = ["NeighborhoodGraph"]


class NeighborhoodGraph:
    """A finite undirected graph with normalized, dense edge ids.

    Parameters
    ----------
    n:
        Number of nodes, labelled ``0 … n-1``.
    edges:
        Iterable of pairs; ``(i, j)`` and ``(j, i)`` denote the same edge.
        Self-loops and duplicates are rejected.
    """

    __slots__ = ("n", "edges", "_edge_id", "_neighbors", "_incident")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]]) -> None:
        if n <= 0:
            raise GraphError(f"graph needs at least one node, got n={n}")
        self.n = n
        normalized: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for i, j in edges:
            if not (0 <= i < n and 0 <= j < n):
                raise GraphError(f"edge ({i},{j}) out of range for n={n}")
            if i == j:
                raise GraphError(
                    f"self-loop ({i},{i}): the paper requires i ∉ N(i)"
                )
            e = (min(i, j), max(i, j))
            if e in seen:
                raise GraphError(f"duplicate edge {e}")
            seen.add(e)
            normalized.append(e)
        self.edges: tuple[tuple[int, int], ...] = tuple(normalized)
        self._edge_id = {e: k for k, e in enumerate(self.edges)}
        neighbors: list[list[int]] = [[] for _ in range(n)]
        incident: list[list[int]] = [[] for _ in range(n)]
        for k, (i, j) in enumerate(self.edges):
            neighbors[i].append(j)
            neighbors[j].append(i)
            incident[i].append(k)
            incident[j].append(k)
        self._neighbors = tuple(tuple(sorted(ns)) for ns in neighbors)
        self._incident = tuple(tuple(ks) for ks in incident)

    # -- queries ------------------------------------------------------------

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self.edges)

    def neighbors(self, i: int) -> tuple[int, ...]:
        """``N(i)`` — sorted neighbour tuple."""
        self._check_node(i)
        return self._neighbors[i]

    def neighbor_mask(self, i: int) -> int:
        """``N(i)`` as a bitset."""
        return bitset_from_iterable(self.neighbors(i))

    def incident_edges(self, i: int) -> tuple[int, ...]:
        """Edge ids incident to node ``i``."""
        self._check_node(i)
        return self._incident[i]

    def edge_id(self, i: int, j: int) -> int:
        """Dense id of the edge ``{i, j}``."""
        try:
            return self._edge_id[(min(i, j), max(i, j))]
        except KeyError:
            raise GraphError(f"no edge between {i} and {j}") from None

    def has_edge(self, i: int, j: int) -> bool:
        """True iff ``{i, j}`` is an edge."""
        return (min(i, j), max(i, j)) in self._edge_id

    def degree(self, i: int) -> int:
        """``|N(i)|``."""
        return len(self.neighbors(i))

    def is_symmetric_and_irreflexive(self) -> bool:
        """The paper's well-formedness conditions (true by construction;
        exposed so tests can assert the representation invariant)."""
        for i in range(self.n):
            if i in self._neighbors[i]:
                return False
            for j in self._neighbors[i]:
                if i not in self._neighbors[j]:
                    return False
        return True

    def nodes(self) -> range:
        """All node labels."""
        return range(self.n)

    def _check_node(self, i: int) -> None:
        if not 0 <= i < self.n:
            raise GraphError(f"node {i} out of range for n={self.n}")

    # -- dunder ---------------------------------------------------------------

    def __repr__(self) -> str:
        return f"NeighborhoodGraph(n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NeighborhoodGraph)
            and other.n == self.n
            and set(other.edges) == set(self.edges)
        )

    def __hash__(self) -> int:
        return hash((NeighborhoodGraph, self.n, frozenset(self.edges)))
