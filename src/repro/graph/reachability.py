"""Transitive reachability: the paper's ``R*(i)`` and ``A*(i)``.

§4.4 defines (non-reflexively)::

    R¹(i) = R(i) \\ {i}        Rⁿ⁺¹(i) = Rⁿ(i) ∪ ⋃_{j ∈ Rⁿ(i)} R(j)
    R*(i) = ⋃_n Rⁿ(i)

``A*(i)`` symmetrically, and the duality (11): ``i ∈ R*(j) ≡ j ∈ A*(i)``.

Sets are Python-int bitsets; the closure is a frontier fixpoint whose inner
union is branch-free word arithmetic — ``n ≤ 64`` nodes fit one machine
word.  Note ``R*(i)`` may contain ``i`` itself when ``i`` lies on a cycle;
the paper's acyclicity definition is exactly ``⟨∀i : i ∉ R*(i)⟩``.
"""

from __future__ import annotations

from repro.graph.orientation import Orientation
from repro.util.bitset import bit, iter_bits

__all__ = ["reach_star", "above_star", "reach_star_all", "above_star_all"]


def _closure(start: int, step: list[int]) -> int:
    """Union of ``step[j]`` over everything reachable from ``start``."""
    out = start
    frontier = start
    while frontier:
        grown = 0
        for j in iter_bits(frontier):
            grown |= step[j]
        frontier = grown & ~out
        out |= grown
    return out


def reach_star(orientation: Orientation, i: int) -> int:
    """``R*(i)`` as a bitset — nodes reachable from ``i`` along arrows."""
    step = [orientation.r_set(j) for j in orientation.graph.nodes()]
    return _closure(orientation.r_set(i), step)


def above_star(orientation: Orientation, i: int) -> int:
    """``A*(i)`` as a bitset — nodes from which ``i`` is reachable."""
    step = [orientation.a_set(j) for j in orientation.graph.nodes()]
    return _closure(orientation.a_set(i), step)


def reach_star_all(orientation: Orientation) -> list[int]:
    """``R*(i)`` for every node at once (shares the one-step table)."""
    step = [orientation.r_set(j) for j in orientation.graph.nodes()]
    return [_closure(step[i], step) for i in orientation.graph.nodes()]


def above_star_all(orientation: Orientation) -> list[int]:
    """``A*(i)`` for every node at once."""
    step = [orientation.a_set(j) for j in orientation.graph.nodes()]
    return [_closure(step[i], step) for i in orientation.graph.nodes()]


def duality_holds(orientation: Orientation) -> bool:
    """The paper's (11): ``i ∈ R*(j) ≡ j ∈ A*(i)`` for all pairs."""
    r_all = reach_star_all(orientation)
    a_all = above_star_all(orientation)
    for i in orientation.graph.nodes():
        for j in orientation.graph.nodes():
            if bool(r_all[j] & bit(i)) != bool(a_all[i] & bit(j)):
                return False
    return True
