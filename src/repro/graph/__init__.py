"""Graph substrate for the §4 priority mechanism.

- :mod:`repro.graph.neighborhood` — the undirected, finite conflict graph
  ``P`` (variables ``N(i)``), with the paper's well-formedness conditions
  (irreflexive, symmetric);
- :mod:`repro.graph.orientation` — orientations of ``P`` (the priority
  relation ``i → j``), with ``Priority(i)``, ``R(i)``, ``A(i)``;
- :mod:`repro.graph.reachability` — the transitive closures ``R*(i)`` and
  ``A*(i)`` (bitset fixpoints) and the duality ``i ∈ R*(j) ≡ j ∈ A*(i)``;
- :mod:`repro.graph.acyclicity` — acyclicity, topological order, and
  Lemma 2 (every non-empty above-set of a finite acyclic graph contains a
  maximal node);
- :mod:`repro.graph.derivation` — Definition 1 (``G →_{i₀} G'``: reversal
  of all edges of a priority node) and Lemma 1 (reachability growth is
  bounded by ``{i₀}``);
- :mod:`repro.graph.generators` — graph families for experiments (ring,
  path, star, clique, grid, tree, random).
"""

from repro.graph.acyclicity import (
    is_acyclic,
    maximal_nodes_above,
    topological_order,
)
from repro.graph.derivation import (
    apply_reversal,
    derivations_from,
    is_derivation,
    lemma1_bound_holds,
)
from repro.graph.generators import (
    clique_graph,
    grid_graph,
    path_graph,
    random_graph,
    ring_graph,
    star_graph,
    tree_graph,
)
from repro.graph.neighborhood import NeighborhoodGraph
from repro.graph.orientation import Orientation
from repro.graph.reachability import above_star, reach_star

__all__ = [
    "NeighborhoodGraph",
    "Orientation",
    "reach_star",
    "above_star",
    "is_acyclic",
    "topological_order",
    "maximal_nodes_above",
    "is_derivation",
    "apply_reversal",
    "derivations_from",
    "lemma1_bound_holds",
    "ring_graph",
    "path_graph",
    "star_graph",
    "clique_graph",
    "grid_graph",
    "tree_graph",
    "random_graph",
]
