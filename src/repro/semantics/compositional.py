"""Compositional certificate checking: the product, never materialized.

:func:`check_compositional` re-establishes the conclusion of a
:class:`~repro.core.compositional.CompositionalCertificate` without ever
building the composed system's state space.  It can, because every
obligation it discharges is *local*:

- **Rule-tree obligations** mention only the variables of the predicates
  and commands involved; the logic's all-states semantics quantifies over
  every assignment of the rest, so each obligation is decided exactly on
  its footprint by :class:`~repro.semantics.obligations.FootprintKernel`.
- **Interference freedom** is per command: a command whose write set is
  disjoint from ``vars(p) ∪ vars(q)`` cannot destroy ``p ∧ ¬q`` (the
  frame rule — the ``next`` obligation reduces to the propositional
  tautology ``p ∧ ¬q ⇒ p ∨ q`` and is skipped without evaluation);
  interfering commands are checked through their symbolic ``wp``.
- **Locality side conditions** are the paper's pairwise composability
  checks (:func:`repro.core.composition.compatibility_report` with
  ``check_init=False`` — shared variables must agree on domain and
  locality), plus a symbolic consistency check of the conjunction of the
  components' ``initially`` predicates.
- **Component lemmas** (the certificate's
  :class:`~repro.core.compositional.ComponentCertificate` leaves) are
  checked on their *own* small spaces by the existing per-level kernel,
  whose semantic leaves tier-route dense/sparse per component.

The walk is memoized by node identity, so certificates that share
subtrees (the delivery certificate reuses one progress subtree across
every branch of its support split) check each shared node once — total
work linear in the number of components.

Refusals, never unsound acceptances
-----------------------------------
Wherever the kernel cannot decide an obligation locally — a footprint
beyond the cap, a non-symbolic command, a rule that needs product-global
reasoning (bare transient bases, metric induction) — it *refuses*: the
check fails with an explanation, it never guesses.  The dense per-level
kernel on small instances is the differential oracle for exactly this
contract (``tests/test_compositional.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.compositional import (
    CompositionalCertificate,
    StrongEnsures,
    SupportSplit,
    linear_terms,
)
from repro.core.proofs import ProofCheckResult, ProofFailure
from repro.core.rules import (
    Disjunction,
    Ensures,
    Implication,
    LeadsToProof,
    PSP,
    Transitivity,
)
from repro.semantics.obligations import FOOTPRINT_MAX, FootprintKernel

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.commands import Command
    from repro.core.predicates import Predicate
    from repro.core.program import Program

__all__ = ["CompositionalCheckResult", "check_compositional"]


@dataclass
class CompositionalCheckResult(ProofCheckResult):
    """A :class:`ProofCheckResult` plus composition-level accounting."""

    mode: str = "compositional"
    components_checked: int = 0
    frame_skips: int = 0
    footprint_evaluations: int = 0
    notes: dict = field(default_factory=dict)

    def explain(self) -> str:
        base = super().explain()
        if not self.ok:
            return base
        return (
            f"{base}; {self.components_checked} component lemma(s), "
            f"{self.frame_skips} frame-rule skips, "
            f"{self.footprint_evaluations} footprint evaluations"
        )


def _writes(cmd: "Command") -> frozenset:
    try:
        return cmd.writes()
    except Exception:
        return frozenset()


class _Walker:
    """One memoized walk of a certificate's rule tree."""

    def __init__(
        self,
        system: "Program",
        kernel: FootprintKernel,
        result: CompositionalCheckResult,
    ) -> None:
        self.system = system
        self.kernel = kernel
        self.result = result
        self._seen: set[int] = set()

    # -- plumbing ----------------------------------------------------------

    def fail(self, path: str, message: str) -> None:
        self.result.failures.append(ProofFailure(path, message))

    def obligation(self, path: str, res, label: str) -> None:
        self.result.obligations_checked += 1
        if not res.ok:
            self.fail(path, f"{label}: {res.message}")

    # -- the next-obligation workhorse ------------------------------------

    def check_next(
        self, path: str, pre: "Predicate", post: "Predicate", label: str
    ) -> None:
        """``pre next post`` per command: frame rule, else symbolic wp.

        Sound only when ``pre ⇒ post`` propositionally on the frame case
        — callers pass ``pre = p ∧ ¬q`` and ``post = p ∨ q``, for which a
        command not writing ``vars(pre) ∪ vars(post)`` preserves ``pre``
        and ``pre ⇒ post`` holds by construction.
        """
        relevant = set(pre.variables()) | set(post.variables())
        for cmd in self.system.commands:
            if not (_writes(cmd) & relevant):
                self.result.frame_skips += 1
                self.result.obligations_checked += 1
                continue
            res = self.kernel.check_wp(pre, cmd, post)
            self.obligation(path, res, f"{label} (command {cmd.name})")

    # -- dispatch ----------------------------------------------------------

    def walk(self, node: LeadsToProof, path: str) -> None:
        if id(node) in self._seen:
            return
        self._seen.add(id(node))
        self.result.nodes_checked += 1
        if isinstance(node, Implication):
            self.obligation(
                path, self.kernel.entails(node.p, node.q), "implication"
            )
        elif isinstance(node, Transitivity):
            self.obligation(
                path,
                self.kernel.equal(node.left.rhs(), node.right.lhs()),
                "transitivity glue",
            )
            self.walk(node.left, f"{path}.0:{node.left.rule_name}")
            self.walk(node.right, f"{path}.1:{node.right.rule_name}")
        elif isinstance(node, SupportSplit):
            self._walk_support_split(node, path)
        elif isinstance(node, Disjunction):
            self._walk_disjunction(node, path)
        elif isinstance(node, PSP):
            self._walk_psp(node, path)
        elif isinstance(node, StrongEnsures):
            self._walk_strong_ensures(node, path)
        elif isinstance(node, Ensures):
            self._walk_ensures(node, path)
        else:
            self.fail(
                path,
                f"refused: rule {node.rule_name!r} needs product-global "
                "reasoning the compositional kernel does not perform",
            )

    # -- per-rule checks ---------------------------------------------------

    def _subs_rhs_agree(self, node: Disjunction, path: str) -> None:
        q = node.subs[0].rhs()
        for i, sub in enumerate(node.subs[1:], start=1):
            self.obligation(
                path,
                self.kernel.equal(sub.rhs(), q),
                f"disjunction premise {i} right-hand side",
            )

    def _walk_disjunction(self, node: Disjunction, path: str) -> None:
        self._subs_rhs_agree(node, path)
        if node._conclude_lhs is not None:
            fold = node.subs[0].lhs()
            for sub in node.subs[1:]:
                fold = fold | sub.lhs()
            self.obligation(
                path,
                self.kernel.equal(node._conclude_lhs, fold),
                "disjunction declared left-hand side",
            )
        for i, sub in enumerate(node.subs):
            self.walk(sub, f"{path}.{i}:{sub.rule_name}")

    def _walk_support_split(self, node: SupportSplit, path: str) -> None:
        # Branch shapes: each premise must start exactly from its case.
        positives, zero = node.branch_predicates()
        for i, (sub, expected) in enumerate(
            zip(node.positive_subs, positives)
        ):
            self.obligation(
                path,
                self.kernel.equal(sub.lhs(), expected),
                f"support-split branch {i} left-hand side",
            )
        self.obligation(
            path,
            self.kernel.equal(node.zero_sub.lhs(), zero),
            "support-split zero branch left-hand side",
        )
        # Completeness: over non-negative domains,
        #   base ⇒ ⋁ᵥ (v > 0) ∨ ⋀ᵥ (v = 0)
        # is a propositional tautology — verify the domain bound, not a
        # product mask.
        self.result.obligations_checked += 1
        for v in node.split_vars:
            lo = getattr(v.domain, "lo", None)
            if lo is None:
                lo = min(v.domain.values(), default=0)
            if lo < 0:
                self.fail(
                    path,
                    f"support-split: variable {v.name} may be negative "
                    f"(domain {v.domain}); the case split is not "
                    "exhaustive",
                )
        self._subs_rhs_agree(node, path)
        for i, sub in enumerate(node.subs):
            self.walk(sub, f"{path}.{i}:{sub.rule_name}")

    def _walk_psp(self, node: PSP, path: str) -> None:
        # ``s next t`` — when s and t are the same linear equality this is
        # the conservation route: per-command weighted write deltas, an
        # obligation over vars(command) only.
        if node.s is node.t or node.s.describe() == node.t.describe():
            stable = self.kernel.check_linear_stable(
                node.s, self.system.commands
            )
            if stable.ok or _is_linear_equality(node.s):
                self.obligation(path, stable, "psp stability (linear)")
                self.walk(node.sub, f"{path}.0:{node.sub.rule_name}")
                return
        self.check_next(path, node.s, node.t, "psp next obligation")
        self.walk(node.sub, f"{path}.0:{node.sub.rule_name}")

    def _walk_ensures(self, node: Ensures, path: str) -> None:
        region = node.p & ~node.q
        self.check_next(
            path, region, node.p | node.q, "ensures next obligation"
        )
        # transient (p ∧ ¬q): some fair command exits the region from
        # every region state.  Weak-rule obligations are checked even for
        # fairness="strong" nodes — strictly stronger, hence sound.
        self.result.obligations_checked += 1
        region_vars = set(region.variables())
        candidates = sorted(
            (c for c in self.system.commands if c.name in self.system.fair_names),
            key=lambda c: (not (_writes(c) & region_vars), c.name),
        )
        last = "the program has no fair commands (D = ∅)"
        exit_pred = ~region
        for cmd in candidates:
            res = self.kernel.check_wp(region, cmd, exit_pred)
            if res.ok:
                return
            last = res.message
        self.fail(
            path,
            "ensures transient obligation: no fair command exits "
            f"{region.describe()} from every region state (last candidate: "
            f"{last})",
        )

    def _walk_strong_ensures(self, node: StrongEnsures, path: str) -> None:
        if node.helpful not in self.system.fair_names:
            self.fail(
                path,
                f"helpful command {node.helpful!r} is not in the fair "
                f"subset of {self.system.name}",
            )
            return
        rho = node.region()
        self.check_next(
            path, rho, node.p | node.q, "strong-ensures next obligation"
        )
        try:
            en = node.enabled_predicate(self.system)
        except Exception as exc:
            self.fail(path, f"refused: {exc}")
            return
        cmd = self.system.command_named(node.helpful)
        res = self.kernel.check_wp(rho & en, cmd, node.q)
        self.obligation(path, res, "strong-ensures helpful wp")
        self.obligation(
            path,
            self.kernel.equal(node.recurrence.lhs(), rho),
            "strong-ensures recurrence start",
        )
        self.obligation(
            path,
            self.kernel.entails(
                node.recurrence.rhs(), node.recurrence_target(self.system)
            ),
            "strong-ensures recurrence target",
        )
        self.walk(node.recurrence, f"{path}.0:{node.recurrence.rule_name}")


def _is_linear_equality(pred: "Predicate") -> bool:
    from repro.core.expressions import EqE

    try:
        expr = pred.as_expr()
    except Exception:
        return False
    return (
        isinstance(expr, EqE)
        and linear_terms(expr.left) is not None
        and linear_terms(expr.right) is not None
    )


# ---------------------------------------------------------------------------
# Composition-level side conditions
# ---------------------------------------------------------------------------


def _check_locality(
    cert: CompositionalCertificate, result: CompositionalCheckResult
) -> None:
    """Pairwise composability (shared vars agree on domain/locality)."""
    from repro.core.composition import compatibility_report

    comps = cert.components
    for i in range(len(comps)):
        for j in range(i + 1, len(comps)):
            result.obligations_checked += 1
            report = compatibility_report(comps[i], comps[j], check_init=False)
            if not report.ok:
                result.failures.append(
                    ProofFailure("locality", report.explain())
                )


def _check_membership(
    cert: CompositionalCertificate, result: CompositionalCheckResult
) -> None:
    """The certified system really is the union of the listed components."""
    sys_cmds = {c.name for c in cert.system.commands}
    comp_cmds = set()
    for comp in cert.components:
        comp_cmds |= {c.name for c in comp.commands}
    result.obligations_checked += 1
    if sys_cmds != comp_cmds:
        extra = sorted(sys_cmds - comp_cmds)
        missing = sorted(comp_cmds - sys_cmds)
        result.failures.append(
            ProofFailure(
                "membership",
                "system commands are not the union of component commands "
                f"(unaccounted: {extra}; missing: {missing})",
            )
        )


def _check_init_consistency(
    cert: CompositionalCertificate,
    kernel: FootprintKernel,
    result: CompositionalCheckResult,
) -> None:
    """The conjunction of component ``initially`` predicates is satisfiable.

    Checked symbolically: ``init ⇒ false`` must *fail* on the footprint.
    Constant-binding conjuncts (the common case — every scenario pins its
    variables initially) are exact; if the kernel had to drop oversized
    conjuncts the sat-finding is inconclusive and we refuse.
    """
    from repro.core.expressions import BoolConst
    from repro.core.predicates import ExprPredicate

    init = None
    for comp in cert.components:
        init = comp.init if init is None else init & comp.init
    if init is None:
        return
    result.obligations_checked += 1
    res = kernel.entails(init, ExprPredicate(BoolConst(False)))
    if res.ok:
        result.failures.append(
            ProofFailure(
                "initially",
                "conjunction of component initially predicates is "
                "unsatisfiable (no initial state of the composition)",
            )
        )
    elif res.dropped:
        result.failures.append(
            ProofFailure(
                "initially",
                "refused: initially-conjunction satisfiability is "
                "inconclusive after dropping oversized conjunct(s) "
                f"{res.dropped}",
            )
        )


def _check_components(
    cert: CompositionalCertificate, result: CompositionalCheckResult
) -> None:
    """Re-check each component lemma on the component's own space.

    These go through :meth:`ProofNode.check`, whose semantic leaves
    tier-route dense/sparse per component — the per-component routing
    that lets a big component stay checkable while the *product* never
    materializes.
    """
    for cc in cert.component_certs:
        sub = cc.proof.check(cc.component)
        result.components_checked += 1
        result.obligations_checked += sub.obligations_checked
        if not sub.ok:
            for f in sub.failures:
                result.failures.append(
                    ProofFailure(
                        f"component {cc.component.name}.{f.path}", f.message
                    )
                )
        else:
            ok_l = cc.proof.lhs().describe() == cc.p.describe()
            ok_r = cc.proof.rhs().describe() == cc.q.describe()
            if not (ok_l and ok_r):
                result.failures.append(
                    ProofFailure(
                        f"component {cc.component.name}",
                        "lemma proof concludes "
                        f"{cc.proof.lhs().describe()} ~> "
                        f"{cc.proof.rhs().describe()}, not the declared "
                        f"{cc.p.describe()} ~> {cc.q.describe()}",
                    )
                )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def check_compositional(
    cert: CompositionalCertificate,
    *,
    kernel: FootprintKernel | None = None,
    max_states: int = FOOTPRINT_MAX,
    check_components: bool = True,
) -> CompositionalCheckResult:
    """Re-check a compositional certificate without building the product.

    Discharges, in order: the pairwise locality side conditions, the
    system/component membership check, the initially-conjunction
    consistency check, the per-component lemmas (each on its own space),
    and the system-level rule tree (every obligation projected onto its
    variable footprint).  Time is linear in the number of components for
    certificates whose obligations have bounded footprints — the product
    state space is never enumerated, indexed, or even sized.
    """
    if kernel is None:
        kernel = FootprintKernel(max_states=max_states)
    result = CompositionalCheckResult()
    _check_locality(cert, result)
    _check_membership(cert, result)
    _check_init_consistency(cert, kernel, result)
    if check_components:
        _check_components(cert, result)
    walker = _Walker(cert.system, kernel, result)
    walker.walk(cert.proof, f"0:{cert.proof.rule_name}")
    # The tree must conclude what the certificate claims.
    result.obligations_checked += 2
    for got, want, side in (
        (cert.proof.lhs(), cert.p, "left"),
        (cert.proof.rhs(), cert.q, "right"),
    ):
        res = kernel.equal(got, want)
        if not res.ok:
            result.failures.append(
                ProofFailure(
                    "conclusion",
                    f"rule tree concludes a different {side}-hand side: "
                    f"{res.message}",
                )
            )
    result.footprint_evaluations = kernel.evaluations
    result.notes["footprint_spaces"] = len(kernel._spaces)
    return result
