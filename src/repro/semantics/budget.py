"""Run budgets and graceful degradation for long explorations.

The sparse tier decides 10¹²-state composition stacks by exploring only
the reachable set — but "only the reachable set" can still be a week of
BFS.  A :class:`Budget` bounds one exploration run by wall-clock
deadline, a **soft** node budget, and/or a BFS-level cap; when a budget
runs out the explorer emits a checkpoint (see
:mod:`repro.semantics.sparse.checkpoint`) and raises
:class:`~repro.errors.BudgetExhausted`, which budget-aware callers — the
routed checkers, the proof synthesizer, the CLI — convert into a
structured :class:`PartialResult` with ``status="unknown"`` instead of
letting an exception unwind through the tier router.

Soft vs hard limits.  ``Budget.node_budget`` is a *policy*: hitting it is
a resumable UNKNOWN, not an error.  The explorer's ``node_limit``
argument keeps its **fail-closed** meaning — exceeding it raises
:class:`~repro.errors.ExplorationError` and (on routed checks) triggers
the dense fallback, exactly as before this module existed.

Soundness of UNKNOWN.  Universal properties stay meaningful on a
partially explored prefix: every state the prefix *does* contain really
is reachable, so a violation found early is a real violation — but the
absence of one proves nothing until the closure is complete.  The
explorer therefore never hands a partial subspace to a checker; budget
exhaustion surfaces *before* any verdict machinery runs, and the only
outputs are "resume from here" and the explored-so-far statistics.
``tests/test_faultinject.py`` pins that no partial subspace ever yields
a HOLDS/FAILS verdict.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import BudgetExhausted

__all__ = ["Budget", "PartialResult"]


@dataclass(frozen=True)
class Budget:
    """Resource bounds for one exploration run (all limits optional).

    Attributes
    ----------
    deadline:
        Wall-clock seconds from the start of the run.  Checked between
        per-command kernels inside a BFS level (so small deadlines bind
        even on instances with few, wide levels); the run never aborts
        mid-checkpoint-write.
    node_budget:
        Soft cap on interned states.  Unlike the explorer's hard
        ``node_limit`` (fail-closed :class:`~repro.errors.
        ExplorationError`), exceeding the soft budget is a resumable
        UNKNOWN.
    max_levels:
        Cap on completed BFS levels.
    """

    deadline: float | None = None
    node_budget: int | None = None
    max_levels: int | None = None

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline < 0:
            raise ValueError(f"deadline must be >= 0, got {self.deadline}")
        if self.node_budget is not None and self.node_budget <= 0:
            raise ValueError(f"node_budget must be > 0, got {self.node_budget}")
        if self.max_levels is not None and self.max_levels <= 0:
            raise ValueError(f"max_levels must be > 0, got {self.max_levels}")

    def start(self) -> "BudgetClock":
        """A running clock over this budget (one per exploration run)."""
        return BudgetClock(self)


class BudgetClock:
    """One exploration run's view of a :class:`Budget`.

    Separating the immutable budget *spec* from the running *clock* keeps
    budgets reusable: a resumed exploration calls :meth:`Budget.start`
    again and gets a fresh deadline window.
    """

    __slots__ = ("budget", "t0")

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self.t0 = time.monotonic()

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self.t0

    def exhausted(self, *, explored: int, levels: int) -> str | None:
        """The reason this run is out of budget, or ``None``.

        ``explored`` counts interned states, ``levels`` counts
        **completed** BFS levels.
        """
        b = self.budget
        if b.deadline is not None and self.elapsed > b.deadline:
            return "deadline"
        if b.node_budget is not None and explored > b.node_budget:
            return "node-budget"
        if b.max_levels is not None and levels >= b.max_levels:
            return "level-budget"
        return None


@dataclass
class PartialResult:
    """A sound, resumable non-verdict: the run budget ran out.

    Returned (never raised) by budget-aware checkers and the proof
    synthesizer in place of a :class:`~repro.semantics.checker.
    CheckResult` / proof object.  Deliberately carries **no** ``holds``
    attribute: code that treats it as a boolean verdict fails loudly
    (``AttributeError`` on ``.holds``, ``TypeError`` on ``bool(...)``)
    instead of silently reading UNKNOWN as FAILS.

    Attributes
    ----------
    kind, subject:
        What was being decided, mirroring :class:`~repro.semantics.
        checker.CheckResult`.
    reason:
        Which budget ran out (``"deadline"`` / ``"node-budget"`` /
        ``"level-budget"``).
    explored, levels, elapsed:
        Explored-so-far statistics at exhaustion.
    checkpoint_path:
        Where to resume from (``None`` if no checkpoint policy was
        active).
    rate, frontier:
        Cumulative discovery rate (states/s, across any resumed prefix)
        and the size of the last completed BFS level — the two numbers
        that make an UNKNOWN actionable: together with ``explored`` they
        say how fast the exploration was moving and how wide the front
        still was when the budget ran out.
    """

    kind: str
    subject: str
    reason: str
    explored: int
    levels: int
    elapsed: float
    checkpoint_path: str | None = None
    witness: dict[str, Any] = field(default_factory=dict)
    status: str = "unknown"
    rate: float = 0.0
    frontier: int = 0

    @classmethod
    def from_exhaustion(
        cls, exc: BudgetExhausted, *, kind: str, subject: str
    ) -> "PartialResult":
        """Build the structured UNKNOWN from a caught exhaustion."""
        return cls(
            kind=kind,
            subject=subject,
            reason=exc.reason,
            explored=exc.explored,
            levels=exc.levels,
            elapsed=exc.elapsed,
            checkpoint_path=exc.checkpoint_path,
            witness={"tier": "sparse", "budget": exc.reason},
            rate=getattr(exc, "rate", 0.0),
            frontier=getattr(exc, "frontier", 0),
        )

    def __bool__(self) -> bool:
        raise TypeError(
            "PartialResult is not a verdict: the run budget ran out "
            f"({self.reason}) before {self.subject!r} was decided; check "
            ".status == 'unknown' and resume from .checkpoint_path"
        )

    def to_doc(self) -> dict[str, Any]:
        """JSON-safe rendering for wire protocols and manifests.

        The certification service ships UNKNOWNs to remote callers as
        structured documents; this is the one place the field set is
        spelled, so the service protocol and the run-manifest rows can
        never drift apart.  Deliberately mirrors the attribute names
        (``status`` first, so a reader skimming the document sees
        "unknown" before any statistics).
        """
        return {
            "status": self.status,
            "kind": self.kind,
            "subject": self.subject,
            "reason": self.reason,
            "explored": int(self.explored),
            "levels": int(self.levels),
            "elapsed_s": round(float(self.elapsed), 6),
            "rate": round(float(self.rate), 3),
            "frontier": int(self.frontier),
            "checkpoint_path": self.checkpoint_path,
        }

    def explain(self) -> str:
        """One-line summary, shaped like ``CheckResult.explain``."""
        pace = ""
        if self.rate > 0:
            pace = f" (≈{self.rate:,.0f} states/s"
            if self.frontier > 0:
                pace += f", last frontier {self.frontier} state(s)"
            pace += ")"
        elif self.frontier > 0:
            pace = f" (last frontier {self.frontier} state(s))"
        resume = (
            f"; resume from {self.checkpoint_path}"
            if self.checkpoint_path
            else ""
        )
        return (
            f"[UNKNOWN] {self.kind}: {self.subject} — {self.reason} "
            f"exhausted after {self.levels} BFS level(s), "
            f"{self.explored} state(s), {self.elapsed:.2f}s{pace}{resume}"
        )
