"""Transition-system extraction: programs as NumPy successor tables.

Each command of a program is a total function on states, so over the
encoded state space it is an ``int64`` array ``t`` with ``t[i]`` the
successor index of state ``i``.  The :class:`TransitionSystem` builds and
caches these tables; every semantic checker operates on them.

Tables are built once per program (``TransitionSystem.for_program`` keeps a
weak cache), so repeated property checks — the normal mode for the paper's
long proof chains — pay the vectorized construction cost once.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro import obs
from repro.core.commands import Command
from repro.core.program import Program
from repro.core.state import StateSpace

__all__ = ["TransitionSystem"]

_CACHE: "weakref.WeakKeyDictionary[Program, TransitionSystem]" = (
    weakref.WeakKeyDictionary()
)


class TransitionSystem:
    """Successor tables for every command of a program.

    Attributes
    ----------
    program, space:
        The underlying program and its state space.
    tables:
        ``dict`` command name → ``int64`` successor array of length
        ``space.size``.
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self.space: StateSpace = program.space
        # Dense-tier capacity guard: successor tables are |C| arrays of
        # length `size`; beyond DENSE_MAX the sparse tier is the only
        # engine that can hold the program.
        self.space.require_dense(
            f"building successor tables for {program.name}"
        )
        rec = obs.get_recorder()
        with rec.span(
            "dense.succ_table",
            program=program.name,
            states=int(self.space.size),
            commands=len(program.commands),
        ):
            self.tables: dict[str, np.ndarray] = {
                cmd.name: cmd.succ_table(self.space) for cmd in program.commands
            }
            if rec.enabled:
                rec.add("dense.succ_table.builds", len(self.tables))
                rec.add(
                    "dense.succ_table.entries",
                    int(self.space.size) * len(self.tables),
                )
        self._graph: "GraphBackend | None" = None

    def graph(self) -> "GraphBackend":
        """The shared CSR graph backend of this program's union transition
        graph (built lazily, cached for the lifetime of the system).

        Connectivity-only queries (reachability, closures, SCCs) should go
        through this backend; the dense per-command ``tables`` remain the
        source of truth where command identity matters (fairness, wp).
        """
        if self._graph is None:
            from repro.semantics.graph_backend import GraphBackend

            self._graph = GraphBackend(
                self.space.size, [table for _, table in self.all_tables()]
            )
        return self._graph

    @classmethod
    def for_program(cls, program: Program) -> "TransitionSystem":
        """Return the (weakly) cached transition system of ``program``."""
        ts = _CACHE.get(program)
        if ts is None:
            ts = cls(program)
            _CACHE[program] = ts
        return ts

    # -- views ----------------------------------------------------------------

    @property
    def commands(self) -> tuple[Command, ...]:
        """All commands (the set ``C``)."""
        return self.program.commands

    def table_of(self, command: Command | str) -> np.ndarray:
        """Successor table of one command."""
        name = command.name if isinstance(command, Command) else command
        return self.tables[name]

    def all_tables(self) -> list[tuple[Command, np.ndarray]]:
        """``(command, table)`` pairs for every command of ``C``."""
        return [(cmd, self.tables[cmd.name]) for cmd in self.program.commands]

    def fair_tables(self) -> list[tuple[Command, np.ndarray]]:
        """``(command, table)`` pairs for the weakly-fair subset ``D``."""
        return [
            (cmd, self.tables[cmd.name]) for cmd in self.program.fair_commands
        ]

    # -- bulk queries -----------------------------------------------------------

    def post_mask(self, mask: np.ndarray) -> np.ndarray:
        """One-step image: states reachable from ``mask`` by any command."""
        out = np.zeros(self.space.size, dtype=bool)
        src = np.flatnonzero(mask)
        for _, table in self.all_tables():
            out[table[src]] = True
        return out

    def pre_mask(self, mask: np.ndarray) -> np.ndarray:
        """One-step preimage: states with some command-successor in ``mask``."""
        out = np.zeros(self.space.size, dtype=bool)
        for _, table in self.all_tables():
            out |= mask[table]
        return out

    def edge_count(self) -> int:
        """Number of (state, command) transition pairs (bench metric)."""
        return self.space.size * len(self.program.commands)

    def __repr__(self) -> str:
        return (
            f"<TransitionSystem {self.program.name}: {self.space.size} states × "
            f"{len(self.tables)} commands>"
        )
