"""Shared CSR graph backend for the semantic engine.

The engine has two storage tiers for a program's transition relation:

1. **Dense successor tables** (:class:`~repro.semantics.transition.
   TransitionSystem`): one ``int64`` array per command, exact command
   identity preserved.  Used where *which* command moves matters —
   fairness criteria, weakest preconditions, simulation.
2. **Union CSR graph** (this module): the command-agnostic edge set
   ``{s → t : t = table_c[s] for some c, t ≠ s}``, deduplicated and stored
   as forward + reverse CSR adjacency with dtype-minimized node ids
   (``int32`` whenever the space fits).  Used where only *connectivity*
   matters — reachability, distance maps, reverse closures, SCCs.

The backend is built lazily, **once per** :class:`TransitionSystem` (which
is itself weakly cached per program), so every liveness query after the
first reuses the same adjacency instead of re-deriving it from the tables.
Self-loops are dropped at construction: they are irrelevant to
reachability and SCC structure, and fairness (where self-moves *do*
matter) is evaluated on the dense tier.

All traversals use boolean-mask frontiers — duplicate successors are
collapsed by an O(frontier) scatter (or an ``np.unique`` on small
frontiers), never by repeated per-table sort+dedup rounds.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro import obs
from repro.errors import CapacityError
from repro.semantics.scc import Condensation, condense_subgraph
from repro.util.csr import build_csr, csr_neighbors, masked_subgraph, minimal_int_dtype, union_edges

__all__ = ["GraphBackend"]

#: Node-count capacity of a dense union CSR; delegates to the single
#: policy source ``StateSpace.dense_cap`` (imported lazily to keep this
#: module free of core imports at definition time).
def _dense_max() -> int:
    from repro.core.state import StateSpace

    return StateSpace.dense_cap()


class GraphBackend:
    """Cached forward/reverse CSR view of a program's union transition graph.

    Obtain via :meth:`repro.semantics.transition.TransitionSystem.graph`
    rather than constructing directly, so the adjacency is shared by every
    checker that touches the same program.
    """

    def __init__(self, n: int, tables: list[np.ndarray]) -> None:
        if n > _dense_max():
            raise CapacityError(
                f"a union CSR over {n} nodes exceeds the dense capacity "
                f"{_dense_max()} (see StateSpace.DENSE_MAX); spaces this "
                "large route through the sparse tier, whose local "
                "backends index only discovered states"
            )
        self.n = n
        self.dtype = minimal_int_dtype(n)
        self._tables = tables
        self._fwd: tuple[np.ndarray, np.ndarray] | None = None
        self._rev: tuple[np.ndarray, np.ndarray] | None = None
        self._scratch: np.ndarray | None = None
        self._cond_cache: OrderedDict[bytes, Condensation] = OrderedDict()

    # -- construction -------------------------------------------------------

    def _edges(self) -> tuple[np.ndarray, np.ndarray]:
        # Chunked per command: each table's moved pairs land in a
        # preallocated slice instead of a concatenated list of scratch
        # arrays (see :func:`repro.util.csr.union_edges`).
        return union_edges(self.n, self._tables)

    def forward_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """``(indptr, nbr)`` of the deduplicated union graph."""
        if self._fwd is None:
            rec = obs.get_recorder()
            with rec.span("graph.union_csr", nodes=self.n):
                src, dst = self._edges()
                self._fwd = build_csr(src, dst, self.n, dtype=self.dtype)
                self._rev = build_csr(dst, src, self.n, dtype=self.dtype)
                if rec.enabled:
                    rec.add("graph.union_csr.builds")
                    rec.add("graph.union_csr.edges", int(src.shape[0]))
        return self._fwd

    def reverse_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """``(indptr, nbr)`` of the reversed union graph."""
        if self._rev is None:
            self.forward_csr()
        assert self._rev is not None
        return self._rev

    @property
    def edge_count(self) -> int:
        """Distinct non-self edges of the union graph."""
        indptr, _ = self.forward_csr()
        return int(indptr[-1])

    # -- frontier kernels ----------------------------------------------------

    def _mark_fresh(self, cand: np.ndarray) -> np.ndarray:
        """Deduplicate candidate node ids into a sorted fresh-node array.

        Small candidate sets sort directly; large ones scatter through a
        reusable boolean scratch buffer (O(n) scan beats O(c log c) sort
        once the frontier is a sizable fraction of the space).
        """
        if cand.size * 8 < self.n:
            return np.unique(cand)
        if self._scratch is None:
            self._scratch = np.zeros(self.n, dtype=bool)
        scratch = self._scratch
        scratch[cand] = True
        fresh = np.flatnonzero(scratch)
        scratch[fresh] = False
        return fresh

    def _closure(
        self,
        csr: tuple[np.ndarray, np.ndarray],
        seeds: np.ndarray,
        allowed: np.ndarray | None,
    ) -> np.ndarray:
        indptr, nbr = csr
        visited = seeds.copy()
        frontier = np.flatnonzero(visited)
        while frontier.size:
            cand = csr_neighbors(indptr, nbr, frontier)
            if allowed is not None:
                cand = cand[allowed[cand]]
            cand = cand[~visited[cand]]
            if cand.size == 0:
                break
            frontier = self._mark_fresh(cand)
            visited[frontier] = True
        return visited

    def forward_closure(
        self, seeds: np.ndarray, allowed: np.ndarray | None = None
    ) -> np.ndarray:
        """States reachable from ``seeds`` (seeds included), optionally
        only via states satisfying ``allowed`` (seeds are not filtered)."""
        return self._closure(self.forward_csr(), seeds, allowed)

    def reverse_closure(
        self, seeds: np.ndarray, allowed: np.ndarray | None = None
    ) -> np.ndarray:
        """States that can reach ``seeds`` (seeds included), optionally
        only via states satisfying ``allowed`` (seeds are not filtered)."""
        return self._closure(self.reverse_csr(), seeds, allowed)

    def distances(self, start: np.ndarray) -> np.ndarray:
        """BFS distance (in command applications) from the ``start`` mask;
        unreachable states get ``-1``."""
        indptr, nbr = self.forward_csr()
        dist = np.full(self.n, -1, dtype=np.int64)
        dist[start] = 0
        frontier = np.flatnonzero(start)
        level = 0
        while frontier.size:
            level += 1
            cand = csr_neighbors(indptr, nbr, frontier)
            cand = cand[dist[cand] < 0]
            if cand.size == 0:
                break
            frontier = self._mark_fresh(cand)
            dist[frontier] = level
        return dist

    def path_between(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        allowed: np.ndarray | None = None,
    ) -> np.ndarray | None:
        """Node ids of a shortest path from ``sources`` into ``targets``.

        BFS with parent tracking over the forward CSR: intermediate and
        target nodes must satisfy ``allowed`` when given (source nodes are
        not filtered, matching the closure kernels).  Returns the path as
        an ``int64`` array (first entry a source, last a target), or
        ``None`` when no such path exists.  This is the witness-path
        kernel behind the *confining path* diagnostics of the leads-to
        checkers: with ``allowed = ¬q`` it exhibits a concrete
        ``¬q``-confined walk from a violating state into a fair SCC.
        """
        src_idx = np.flatnonzero(sources)
        if src_idx.size == 0:
            return None
        hit = src_idx[targets[src_idx]]
        if hit.size:
            return np.array([int(hit[0])], dtype=np.int64)
        indptr, nbr = self.forward_csr()
        # Node-id-sized parents (int32 whenever the graph fits): the only
        # O(n) scratch of this kernel, kept no wider than the CSR itself.
        parent = np.full(self.n, -1, dtype=self.dtype)
        visited = sources.astype(bool).copy()
        frontier = src_idx
        while frontier.size:
            deg = (indptr[frontier + 1] - indptr[frontier]).astype(np.int64)
            cand = csr_neighbors(indptr, nbr, frontier).astype(
                np.int64, copy=False
            )
            step_src = np.repeat(frontier, deg)
            keep = ~visited[cand]
            if allowed is not None:
                keep &= allowed[cand]
            cand = cand[keep]
            step_src = step_src[keep]
            if cand.size == 0:
                return None
            # Keep the first producing edge per node (deterministic in
            # frontier order) so the parent chain is well defined.
            uniq, first = np.unique(cand, return_index=True)
            parent[uniq] = step_src[first]
            visited[uniq] = True
            hit = uniq[targets[uniq]]
            if hit.size:
                node = int(hit[0])
                path = [node]
                while parent[node] >= 0:
                    node = int(parent[node])
                    path.append(node)
                path.reverse()
                return np.array(path, dtype=np.int64)
            frontier = uniq
        return None

    # -- SCC ----------------------------------------------------------------

    #: Number of per-mask condensations to memoize.  Repeated ``p ↝ q``
    #: checks against the same ``q`` (the normal shape of a proof chain)
    #: hit the same ``¬q`` mask every time; a handful of entries covers
    #: the interleaved q's of a typical session without holding dead masks.
    COND_CACHE_SIZE = 8

    #: Skip memoization entirely above this node count: each cached
    #: Condensation pins a length-``n`` ``comp_id`` plus member arrays,
    #: and on forced-dense giant spaces 8 of those would dwarf the CSR
    #: itself.  (Spaces that large normally route to the sparse tier,
    #: whose local backends sit far below this bound.)
    COND_CACHE_MAX_NODES = 8_000_000

    def condensation(self, mask: np.ndarray) -> Condensation:
        """SCC condensation of the subgraph induced by ``mask``, emitted in
        the canonical sinks-first order (:mod:`repro.semantics.scc`).

        Memoized by a digest of the mask bits (LRU of
        :data:`COND_CACHE_SIZE` entries, bypassed above
        :data:`COND_CACHE_MAX_NODES` nodes), so repeated queries against
        the same predicate mask skip both the masked sub-CSR extraction
        and the decomposition.
        """
        rec = obs.get_recorder()
        key = None
        if self.n <= self.COND_CACHE_MAX_NODES:
            key = hashlib.blake2b(
                np.packbits(mask).tobytes(), digest_size=16
            ).digest()
            hit = self._cond_cache.get(key)
            if hit is not None:
                self._cond_cache.move_to_end(key)
                if rec.enabled:
                    rec.add("graph.condensation.hits")
                return hit
        if rec.enabled:
            rec.add("graph.condensation.misses")
        with rec.span("graph.condensation", nodes=self.n):
            fp_full, fn_full = self.forward_csr()
            fp, fn, nodes = masked_subgraph(fp_full, fn_full, mask)
            # Reverse view of the subgraph from its own edge list — cheaper
            # than a second masked extraction over the full reverse CSR.
            sub_src = np.repeat(np.arange(nodes.shape[0], dtype=np.int64), np.diff(fp))
            rp, rn = build_csr(fn, sub_src, nodes.shape[0], dtype=fn.dtype)
            cond = condense_subgraph(self.n, nodes, fp, fn, rp, rn)
            if rec.enabled:
                rec.add("graph.condensation.components", int(cond.count))
        if key is not None:
            self._cond_cache[key] = cond
            if len(self._cond_cache) > self.COND_CACHE_SIZE:
                self._cond_cache.popitem(last=False)
        return cond

    def __repr__(self) -> str:
        built = "built" if self._fwd is not None else "lazy"
        return f"<GraphBackend {self.n} states, {built}>"
