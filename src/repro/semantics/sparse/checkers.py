"""Sparse-tier property checks over the reachable subspace.

Each checker here is the local-id twin of a dense checker: the same
fair-SCC analysis (:func:`repro.semantics.leadsto._fair_flags`), the same
CSR closures, the same canonical condensation — run on the
:class:`~repro.semantics.sparse.explorer.ReachableSubspace` instead of the
encoded space.  Soundness of the restriction: the reachable set is closed
under every command, so the subgraph induced on it contains *all* edges
out of its nodes; SCCs, fair flags, and ``¬q``-confined reverse closures
computed locally agree exactly with the dense analysis restricted to
reachable states (the differential suite pins this).

What changes is the *judgment*: these checkers quantify over reachable
states only (the paper's inductive semantics quantifies over all states).
Results carry ``witness["tier"] == "sparse"`` and a message noting the
restriction, so callers that care can tell which judgment was decided.

Two checker families live here:

- the **liveness checkers** (:func:`check_leadsto_sparse`,
  :func:`check_leadsto_strong_sparse`), built on
  :func:`sparse_fair_analysis` — the local-id twin of
  :func:`repro.semantics.leadsto.fair_scc_analysis`, shared with the
  sparse proof synthesizer.  A failing verdict now carries two concrete
  walks: ``witness["path"]``, a shortest command path from the initial
  set to the violating ``p``-state (reconstructed from the explorer's BFS
  parents), and ``witness["confining_path"]``, a ``¬q``-confined walk
  from that state into a fair SCC — the scheduler's avoidance strategy,
  exhibited state by state;
- the **obligation checkers** (:func:`check_validity_sparse` …
  :func:`check_transient_strong_sparse`), the reachable-restricted twins
  of :mod:`repro.semantics.checker`'s safety checkers.  These discharge
  the leaf obligations of synthesized proof certificates through the
  frontier kernels (:meth:`Command.succ_of` / :meth:`Predicate.mask_at`)
  — nothing of length ``space.size`` is ever allocated, which is what
  lets the proof kernel re-check certificates for 10¹²-state composition
  stacks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.errors import BudgetExhausted
from repro.semantics.budget import PartialResult
from repro.semantics.checker import CheckResult
from repro.semantics.leadsto import _fair_flags, _fair_seed_mask
from repro.semantics.scc import Condensation
from repro.semantics.sparse.explorer import ReachableSubspace, reachable_subspace

__all__ = [
    "LocalFairAnalysis",
    "sparse_fair_analysis",
    "check_leadsto_sparse",
    "check_leadsto_strong_sparse",
    "check_reachable_invariant_sparse",
    "check_validity_sparse",
    "check_init_sparse",
    "check_next_sparse",
    "check_stable_sparse",
    "check_transient_sparse",
    "check_transient_strong_sparse",
    "check_obligations_batched_sparse",
]


@dataclass
class LocalFairAnalysis:
    """Fairness analysis of the local ``¬q`` subgraph (compact ids).

    The sparse twin of :class:`repro.semantics.leadsto.FairAnalysis`; all
    arrays are indexed by **local id** over ``sub.global_ids``.

    Attributes
    ----------
    sub:
        The analysed reachable subspace.
    notq:
        Local mask of reachable states violating ``q``.
    cond:
        Canonical SCC condensation of the local ``¬q`` subgraph (sinks
        first; identical to the dense condensation restricted to
        reachable states, because local ids preserve global order).
    fair_flags:
        Per-SCC fairness flags (weak or strong criterion, depending on
        how the analysis was built).
    avoid:
        Local mask of states that can reach a fair SCC inside ``¬q`` —
        the states from which the scheduler can avoid ``q`` forever.
    """

    sub: ReachableSubspace
    notq: np.ndarray
    cond: Condensation
    fair_flags: np.ndarray
    avoid: np.ndarray

    def fair_seed_mask(self) -> np.ndarray:
        """Local mask of all states lying inside a fair SCC."""
        return _fair_seed_mask(self.cond, self.fair_flags)


def sparse_fair_analysis(
    sub: ReachableSubspace, q: Predicate, *, strong: bool = False
) -> LocalFairAnalysis:
    """Analyse the local ``¬q`` subgraph for fair avoidance.

    With ``strong=True`` the per-SCC criterion is the strong-fairness one
    (:mod:`repro.semantics.strong_fairness`), evaluated over the local
    enabledness columns.  Shared by the sparse leads-to checkers and the
    sparse proof synthesizer (:mod:`repro.semantics.synthesis`), which
    turns ``cond``'s canonical sinks-first emission order directly into
    the variant metric of its induction certificates.
    """
    graph = sub.graph()
    notq = ~sub.pred_mask(q)
    cond = graph.condensation(notq)
    fair_cmds = sub.program.fair_commands
    tables = [sub.succ_local(cmd) for cmd in fair_cmds]
    enabled = [sub.enabled_local(cmd) for cmd in fair_cmds] if strong else None
    flags = _fair_flags(cond, tables, enabled=enabled)
    seeds = _fair_seed_mask(cond, flags)
    avoid = graph.reverse_closure(seeds, allowed=notq)
    return LocalFairAnalysis(
        sub=sub, notq=notq, cond=cond, fair_flags=flags, avoid=avoid
    )


def _decode_local(sub: ReachableSubspace, locals_: np.ndarray) -> list:
    return [sub.state_at_local(int(k)) for k in locals_]


def _with_metrics(witness: dict, sub: ReachableSubspace) -> dict:
    """Attach the subspace's exploration stats to a verdict witness.

    Only when a recorder is installed — with the null recorder the
    witness is byte-identical to the uninstrumented engine's, which the
    differential neutrality suite pins.
    """
    if obs.get_recorder().enabled and sub.stats:
        witness["metrics"] = dict(sub.stats)
    return witness


def _leadsto_result(
    program: Program,
    p: Predicate,
    q: Predicate,
    *,
    strong: bool,
    budget=None,
    subspace=None,
    checkpoint=None,
) -> CheckResult | PartialResult:
    kind = "leadsto-strong" if strong else "leadsto"
    arrow = "~>[strong]" if strong else "~>"
    subject = f"{p.describe()} {arrow} {q.describe()}"
    try:
        sub = (
            subspace
            if subspace is not None
            else reachable_subspace(program, budget=budget, checkpoint=checkpoint)
        )
    except BudgetExhausted as exc:
        # Graceful degradation: the budget ran out before the reachable
        # closure was complete, so no verdict is sound — return the
        # structured UNKNOWN (with the resume path) instead of letting
        # the exception unwind through the tier router.
        return PartialResult.from_exhaustion(exc, kind=kind, subject=subject)
    if sub.size == 0:
        return CheckResult(
            True,
            kind,
            subject,
            message="no reachable states (vacuous over the sparse tier)",
            witness=_with_metrics({"tier": "sparse", "reachable": 0}, sub),
        )
    analysis = sparse_fair_analysis(sub, q, strong=strong)
    bad = sub.pred_mask(p) & analysis.avoid
    idx = np.flatnonzero(bad)
    if idx.size == 0:
        return CheckResult(
            True,
            kind,
            subject,
            message=(
                f"holds from every reachable p-state (sparse tier: "
                f"{sub.size} reachable of {sub.space.size} encoded states)"
            ),
            witness=_with_metrics({"tier": "sparse", "reachable": sub.size}, sub),
        )
    k = int(idx[0])
    state = sub.state_at_local(k)
    # Two concrete walks: how the counterexample is reached, and how the
    # scheduler confines the run away from q once there.
    path_states, path_cmds = sub.witness_path(k)
    sources = np.zeros(sub.size, dtype=bool)
    sources[k] = True
    confining = sub.graph().path_between(
        sources, analysis.fair_seed_mask(), allowed=analysis.notq
    )
    confining_states = (
        _decode_local(sub, confining) if confining is not None else [state]
    )
    return CheckResult(
        False,
        kind,
        subject,
        message=(
            f"from reachable p-state {state!r} the scheduler can avoid q "
            f"forever (sparse tier: {sub.size} reachable states; "
            f"confining path of {len(confining_states)} ¬q-states into a "
            f"fair SCC in the witness)"
        ),
        witness=_with_metrics(
            {
                "tier": "sparse",
                "state": state,
                "violations": int(idx.size),
                "reachable": sub.size,
                "path": path_states,
                "path_commands": path_cmds,
                "confining_path": confining_states,
            },
            sub,
        ),
    )


def check_leadsto_sparse(
    program: Program,
    p: Predicate,
    q: Predicate,
    *,
    budget=None,
    subspace=None,
    checkpoint=None,
) -> CheckResult | PartialResult:
    """``p ↝ q`` under weak fairness, from every **reachable** ``p``-state.

    With a ``budget``, exhaustion degrades to a
    :class:`~repro.semantics.budget.PartialResult` (``status="unknown"``,
    resumable) instead of raising.  ``subspace`` forces the judgment onto
    an explicit :class:`~repro.semantics.sparse.explorer.ReachableSubspace`
    instead of the cached default exploration.
    """
    return _leadsto_result(
        program,
        p,
        q,
        strong=False,
        budget=budget,
        subspace=subspace,
        checkpoint=checkpoint,
    )


def check_leadsto_strong_sparse(
    program: Program,
    p: Predicate,
    q: Predicate,
    *,
    budget=None,
    subspace=None,
    checkpoint=None,
) -> CheckResult | PartialResult:
    """``p ↝ q`` under strong fairness, from every **reachable** ``p``-state."""
    return _leadsto_result(
        program,
        p,
        q,
        strong=True,
        budget=budget,
        subspace=subspace,
        checkpoint=checkpoint,
    )


def check_reachable_invariant_sparse(
    program: Program,
    p: Predicate,
    *,
    budget=None,
    subspace=None,
    checkpoint=None,
) -> CheckResult | PartialResult:
    """``p`` holds on every reachable state — the same judgment as
    :func:`repro.semantics.checker.check_reachable_invariant`, decided
    without full-space arrays.  With a ``budget``, exhaustion degrades to
    a resumable ``status="unknown"`` :class:`~repro.semantics.budget.
    PartialResult` instead of raising."""
    subject = f"reachable-invariant {p.describe()}"
    try:
        sub = (
            subspace
            if subspace is not None
            else reachable_subspace(program, budget=budget, checkpoint=checkpoint)
        )
    except BudgetExhausted as exc:
        return PartialResult.from_exhaustion(
            exc, kind="reachable-invariant", subject=subject
        )
    bad = ~sub.pred_mask(p)
    idx = np.flatnonzero(bad)
    if idx.size == 0:
        return CheckResult(
            True,
            "reachable-invariant",
            subject,
            message=f"holds on all {sub.size} reachable states",
            witness=_with_metrics({"tier": "sparse", "reachable": sub.size}, sub),
        )
    k = int(idx[0])
    state = sub.state_at_local(k)
    path_states, path_cmds = sub.witness_path(k)
    return CheckResult(
        False,
        "reachable-invariant",
        subject,
        message=f"reachable state {state!r} violates p",
        witness=_with_metrics(
            {
                "tier": "sparse",
                "state": state,
                "violations": int(idx.size),
                "reachable": sub.size,
                "path": path_states,
                "path_commands": path_cmds,
            },
            sub,
        ),
    )


# ---------------------------------------------------------------------------
# Reachable-restricted obligation checkers (proof-kernel leaves)
# ---------------------------------------------------------------------------


def check_validity_sparse(program: Program, p: Predicate, q: Predicate) -> CheckResult:
    """``p ⇒ q`` on every **reachable** state (sparse validity)."""
    sub = reachable_subspace(program)
    subject = f"{p.describe()} => {q.describe()}"
    bad = sub.pred_mask(p) & ~sub.pred_mask(q)
    idx = np.flatnonzero(bad)
    if idx.size == 0:
        return CheckResult(
            True,
            "validity",
            subject,
            message=f"valid on all {sub.size} reachable states (sparse tier)",
            witness={"tier": "sparse", "reachable": sub.size},
        )
    state = sub.state_at_local(int(idx[0]))
    return CheckResult(
        False,
        "validity",
        subject,
        message=f"violated at reachable {state!r} (+{idx.size - 1} more)",
        witness={"tier": "sparse", "state": state, "violations": int(idx.size)},
    )


def check_init_sparse(program: Program, p: Predicate) -> CheckResult:
    """``init p`` over the sparse enumeration of the initial states."""
    sub = reachable_subspace(program)
    subject = f"init {p.describe()}"
    init = sub.init_local
    bad = init[~p.mask_at(sub.space, sub.global_ids[init])] if init.size else init
    if bad.size == 0:
        return CheckResult(
            True,
            "init",
            subject,
            message=f"holds on all {init.size} initial states (sparse tier)",
            witness={"tier": "sparse"},
        )
    state = sub.state_at_local(int(bad[0]))
    return CheckResult(
        False,
        "init",
        subject,
        message=f"initial state {state!r} violates p",
        witness={"tier": "sparse", "state": state, "violations": int(bad.size)},
    )


def check_next_sparse(program: Program, p: Predicate, q: Predicate) -> CheckResult:
    """``p next q`` from every **reachable** state, through the local
    successor columns (one gather per command, no full tables)."""
    sub = reachable_subspace(program)
    subject = f"{p.describe()} next {q.describe()}"
    pm = sub.pred_mask(p)
    qm = sub.pred_mask(q)
    for cmd in sub.program.commands:
        table = sub.succ_local(cmd)
        bad = pm & ~qm[table]
        idx = np.flatnonzero(bad)
        if idx.size:
            k = int(idx[0])
            state = sub.state_at_local(k)
            succ = sub.state_at_local(int(table[k]))
            return CheckResult(
                False,
                "next",
                subject,
                message=(
                    f"command {cmd.name} steps reachable {state!r} to "
                    f"{succ!r}, which violates q"
                ),
                witness={
                    "tier": "sparse",
                    "state": state,
                    "command": cmd.name,
                    "successor": succ,
                    "violations": int(idx.size),
                },
            )
    return CheckResult(
        True,
        "next",
        subject,
        message=f"holds from all {sub.size} reachable states (sparse tier)",
        witness={"tier": "sparse", "reachable": sub.size},
    )


def check_stable_sparse(program: Program, p: Predicate) -> CheckResult:
    """``stable p ≡ p next p`` over reachable states."""
    result = check_next_sparse(program, p, p)
    return CheckResult(
        result.holds,
        "stable",
        f"stable {p.describe()}",
        message=result.message,
        witness=result.witness,
    )


def check_transient_sparse(program: Program, p: Predicate) -> CheckResult:
    """``transient p`` over reachable states: some fair command falsifies
    ``p`` from every reachable ``p``-state (the paper's single-helpful-
    command rule, restricted to the subspace)."""
    sub = reachable_subspace(program)
    subject = f"transient {p.describe()}"
    pm = sub.pred_mask(p)
    fair = sub.program.fair_commands
    if not fair:
        if not pm.any():
            return CheckResult(
                True,
                "transient",
                subject,
                message=(
                    "p is unsatisfiable on the reachable set "
                    "(vacuously transient, sparse tier)"
                ),
                witness={"tier": "sparse"},
            )
        return CheckResult(
            False,
            "transient",
            subject,
            message="the program has no fair commands (D = ∅)",
            witness={"tier": "sparse"},
        )
    failures: dict[str, object] = {}
    for cmd in fair:
        bad = pm & pm[sub.succ_local(cmd)]
        idx = np.flatnonzero(bad)
        if idx.size == 0:
            return CheckResult(
                True,
                "transient",
                subject,
                message=(
                    f"command {cmd.name} falsifies p from every reachable "
                    "p-state (sparse tier)"
                ),
                witness={"tier": "sparse", "command": cmd.name},
            )
        failures[cmd.name] = sub.state_at_local(int(idx[0]))
    return CheckResult(
        False,
        "transient",
        subject,
        message=(
            "no single fair command falsifies p from every reachable "
            "p-state; per-command stuck states recorded in the witness"
        ),
        witness={"tier": "sparse", "stuck_states": failures},
    )


def check_obligations_batched_sparse(sub: ReachableSubspace, layout):
    """Sparse twin of the batched certificate kernel: discharge every
    obligation of a columnar certificate over the reachable subspace.

    The local-id counterpart of
    :func:`repro.semantics.checker.check_obligations_batched`: members
    map to local ids (entries outside the reachable set are dropped —
    they are invisible to every reachable-restricted mask the per-level
    oracle computes), successors come from the cached
    :meth:`~repro.semantics.sparse.explorer.ReachableSubspace.succ_local`
    columns, and nothing of length ``space.size`` is allocated.  Called
    through :func:`repro.semantics.synthesis.check_certificate_batched`.
    """
    from repro.semantics.obligations import check_columnar_obligations

    gids = sub.global_ids

    def to_local(arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # One binary search yields both the membership mask and the local
        # positions (kept entries have pos < gids.size, so pos == clipped).
        if gids.size == 0:
            return arr[:0], np.zeros(arr.shape[0], dtype=bool)
        pos = np.searchsorted(gids, arr)
        clipped = np.minimum(pos, gids.size - 1)
        keep = (pos < gids.size) & (gids[clipped] == arr)
        return pos[keep], keep

    level_local = [to_local(m)[0] for m in layout.level_members]
    pref_local, pref_keep = to_local(layout.prefix_members)
    program = sub.program
    commands = [
        (cmd.name, (lambda ids, c=cmd: sub.succ_local(c)[ids]))
        for cmd in program.commands
    ]
    fair = [
        (cmd.name, (lambda ids, c=cmd: sub.succ_local(c)[ids]))
        for cmd in program.fair_commands
    ]

    def enabled_at(name: str, ids: np.ndarray) -> np.ndarray:
        return sub.enabled_local(name)[ids]

    return check_columnar_obligations(
        n=sub.size,
        p_mask=sub.pred_mask(layout.p),
        q_mask=sub.pred_mask(layout.q),
        level_members=level_local,
        prefix_members=pref_local,
        prefix_ranks=layout.prefix_ranks[pref_keep],
        commands=commands,
        fair=fair,
        strong=layout.fairness == "strong",
        enabled_at=enabled_at,
        decode=sub.state_at_local,
        tier="sparse tier",
    )


def check_transient_strong_sparse(program: Program, p: Predicate) -> CheckResult:
    """``p`` is transient under **strong** fairness, over reachable states.

    Finite-state criterion (see :mod:`repro.semantics.strong_fairness`):
    no SCC of the reachable ``p``-subgraph passes the strong-fairness
    test — every component has a helpful ``d ∈ D`` that is enabled at
    some member and exits the component from *every* member that enables
    it, so a strongly-fair run must keep descending the condensation DAG
    until it leaves ``p``.
    """
    sub = reachable_subspace(program)
    subject = f"transient[strong] {p.describe()}"
    pm = sub.pred_mask(p)
    if not pm.any():
        return CheckResult(
            True,
            "transient-strong",
            subject,
            message=(
                "p is unsatisfiable on the reachable set "
                "(vacuously transient, sparse tier)"
            ),
            witness={"tier": "sparse"},
        )
    fair = sub.program.fair_commands
    cond = sub.graph().condensation(pm)
    flags = _fair_flags(
        cond,
        [sub.succ_local(cmd) for cmd in fair],
        enabled=[sub.enabled_local(cmd) for cmd in fair],
    )
    hit = np.flatnonzero(flags)
    if hit.size == 0:
        return CheckResult(
            True,
            "transient-strong",
            subject,
            message=(
                f"every SCC of the reachable p-subgraph "
                f"({cond.count} component(s)) has an enabled exiting fair "
                "command (sparse tier)"
            ),
            witness={"tier": "sparse", "components": cond.count},
        )
    state = sub.state_at_local(int(cond.components[int(hit[0])][0]))
    return CheckResult(
        False,
        "transient-strong",
        subject,
        message=(
            f"a strongly-fair execution can stay inside p forever "
            f"(e.g. in the component of {state!r})"
        ),
        witness={
            "tier": "sparse",
            "state": state,
            "fair_components": int(hit.size),
        },
    )
