"""Sparse-tier property checks over the reachable subspace.

Each checker here is the local-id twin of a dense checker: the same
fair-SCC analysis (:func:`repro.semantics.leadsto._fair_flags`), the same
CSR closures, the same canonical condensation — run on the
:class:`~repro.semantics.sparse.explorer.ReachableSubspace` instead of the
encoded space.  Soundness of the restriction: the reachable set is closed
under every command, so the subgraph induced on it contains *all* edges
out of its nodes; SCCs, fair flags, and ``¬q``-confined reverse closures
computed locally agree exactly with the dense analysis restricted to
reachable states (the differential suite pins this).

What changes is the *judgment*: these checkers quantify over reachable
states only (the paper's inductive semantics quantifies over all states).
Results carry ``witness["tier"] == "sparse"`` and a message noting the
restriction, so callers that care can tell which judgment was decided.
"""

from __future__ import annotations

import numpy as np

from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.semantics.checker import CheckResult
from repro.semantics.leadsto import _fair_flags, _fair_seed_mask
from repro.semantics.sparse.explorer import ReachableSubspace, reachable_subspace

__all__ = [
    "check_leadsto_sparse",
    "check_leadsto_strong_sparse",
    "check_reachable_invariant_sparse",
]


def _avoid_mask(
    sub: ReachableSubspace, q: Predicate, *, strong: bool
) -> np.ndarray:
    """Local mask of reachable states that can avoid ``q`` forever."""
    graph = sub.graph()
    notq = ~sub.pred_mask(q)
    cond = graph.condensation(notq)
    fair_cmds = sub.program.fair_commands
    tables = [sub.succ_local(cmd) for cmd in fair_cmds]
    enabled = (
        [sub.enabled_local(cmd) for cmd in fair_cmds] if strong else None
    )
    flags = _fair_flags(cond, tables, enabled=enabled)
    seeds = _fair_seed_mask(cond, flags)
    return graph.reverse_closure(seeds, allowed=notq)


def _leadsto_result(
    program: Program,
    p: Predicate,
    q: Predicate,
    *,
    strong: bool,
) -> CheckResult:
    sub = reachable_subspace(program)
    kind = "leadsto-strong" if strong else "leadsto"
    arrow = "~>[strong]" if strong else "~>"
    subject = f"{p.describe()} {arrow} {q.describe()}"
    if sub.size == 0:
        return CheckResult(
            True, kind, subject,
            message="no reachable states (vacuous over the sparse tier)",
            witness={"tier": "sparse", "reachable": 0},
        )
    avoid = _avoid_mask(sub, q, strong=strong)
    bad = sub.pred_mask(p) & avoid
    idx = np.flatnonzero(bad)
    if idx.size == 0:
        return CheckResult(
            True, kind, subject,
            message=(
                f"holds from every reachable p-state (sparse tier: "
                f"{sub.size} reachable of {sub.space.size} encoded states)"
            ),
            witness={"tier": "sparse", "reachable": sub.size},
        )
    state = sub.state_at_local(int(idx[0]))
    return CheckResult(
        False, kind, subject,
        message=(
            f"from reachable p-state {state!r} the scheduler can avoid q "
            f"forever (sparse tier: {sub.size} reachable states)"
        ),
        witness={
            "tier": "sparse",
            "state": state,
            "violations": int(idx.size),
            "reachable": sub.size,
        },
    )


def check_leadsto_sparse(program: Program, p: Predicate, q: Predicate) -> CheckResult:
    """``p ↝ q`` under weak fairness, from every **reachable** ``p``-state."""
    return _leadsto_result(program, p, q, strong=False)


def check_leadsto_strong_sparse(
    program: Program, p: Predicate, q: Predicate
) -> CheckResult:
    """``p ↝ q`` under strong fairness, from every **reachable** ``p``-state."""
    return _leadsto_result(program, p, q, strong=True)


def check_reachable_invariant_sparse(program: Program, p: Predicate) -> CheckResult:
    """``p`` holds on every reachable state — the same judgment as
    :func:`repro.semantics.checker.check_reachable_invariant`, decided
    without full-space arrays."""
    sub = reachable_subspace(program)
    subject = f"reachable-invariant {p.describe()}"
    bad = ~sub.pred_mask(p)
    idx = np.flatnonzero(bad)
    if idx.size == 0:
        return CheckResult(
            True, "reachable-invariant", subject,
            message=f"holds on all {sub.size} reachable states",
            witness={"tier": "sparse", "reachable": sub.size},
        )
    state = sub.state_at_local(int(idx[0]))
    return CheckResult(
        False,
        "reachable-invariant",
        subject,
        message=f"reachable state {state!r} violates p",
        witness={
            "tier": "sparse",
            "state": state,
            "violations": int(idx.size),
            "reachable": sub.size,
        },
    )
