"""Sub-CSR assembly: the reachable subspace as a first-class graph backend.

The sparse explorer produces per-command **local successor columns** —
length-``m`` ``int64`` arrays over the compact ids of the reachable
subspace.  Those columns have exactly the shape of dense successor tables
over an ``m``-state space, so the entire dense connectivity tier —
:class:`repro.semantics.graph_backend.GraphBackend`, the
:mod:`repro.util.csr` kernels, and the canonical SCC condensation of
:mod:`repro.semantics.scc` — runs on the subspace **unchanged**.  This
module is the assembly point: it deduplicates the union edge set, drops
self-loops, and hands back a backend whose node ids are local ids.

Because ``global_ids`` is sorted ascending, local ids preserve global
index order; the canonical (smallest-member) tie-breaks of the SCC
emission order therefore agree with the dense tier wherever both can run,
which is what the differential suite pins.
"""

from __future__ import annotations

import numpy as np

from repro.semantics.graph_backend import GraphBackend
from repro.semantics.sparse.explorer import ReachableSubspace

__all__ = ["assemble_backend", "local_condensation"]


def assemble_backend(sub: ReachableSubspace) -> GraphBackend:
    """Union CSR backend of the subspace's transition graph on local ids.

    One successor column per non-skip command; the backend lazily
    deduplicates the union edge set and builds forward + reverse CSR with
    dtype-minimized node ids, exactly as the dense tier does for full
    spaces.  Prefer :meth:`ReachableSubspace.graph`, which caches the
    assembly per subspace.
    """
    tables = [sub.succ_local(cmd) for cmd in sub.program.commands if not cmd.is_skip()]
    return GraphBackend(sub.size, tables)


def local_condensation(sub: ReachableSubspace, mask_local: np.ndarray):
    """Canonical SCC condensation of the subgraph induced by a local mask.

    Thin convenience over ``sub.graph().condensation``; the returned
    :class:`repro.semantics.scc.Condensation` uses **local** ids (map
    members through ``sub.global_ids`` for global indices).
    """
    return sub.graph().condensation(np.asarray(mask_local, dtype=bool))
