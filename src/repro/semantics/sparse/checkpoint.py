"""Atomic, digest-keyed checkpoints for the sparse BFS exploration.

A checkpoint captures :class:`~repro.semantics.sparse.explorer._BfsState`
— the per-level node/parent/command arrays whose concatenation *is* the
intern table, plus the RNG-free level counter implicit in their count —
at a **level boundary**, so a resumed run replays the remaining levels
bit-identically to an uninterrupted one (the BFS is deterministic in
command order and sorted-array interning; nothing ambient feeds it).
Complete checkpoints additionally carry the per-command successor
columns already materialized on the subspace, so a resume of a finished
run rebuilds those without re-running the kernels.

File format (version ``RPROCKPT1``)
-----------------------------------
::

    MAGIC (10 bytes)  b"RPROCKPT1\\n"
    HLEN  (8 bytes)   little-endian length of the JSON header
    HEADER            UTF-8 JSON (see below)
    PAYLOAD           the raw bytes of each array, in header order

The header records, per array: name, dtype string, shape, byte length,
and SHA-256 of the raw bytes.  It also records the **program digest** —
SHA-256 over ``program.describe()`` (every variable, domain, command and
fairness marker), the encoded space size, and the sorted fair-command
names — so resuming against an edited program or a different space fails
loudly with :class:`~repro.errors.CheckpointError` before a single array
is trusted.

Atomicity
---------
:func:`write_checkpoint` writes to ``<path>.tmp.<pid>`` in the target
directory, fsyncs the file, ``os.replace``\\ s it over the destination,
then fsyncs the directory.  A crash at any point leaves either the old
checkpoint or the new one — never a torn file — which
``tests/test_faultinject.py`` pins by injecting crashes at every write
stage.

Fail-closed loading
-------------------
:func:`load_checkpoint` re-hashes every payload array and verifies the
magic, header digest fields, and program digest before returning.  Any
mismatch — flipped byte, truncation, wrong program — raises
:class:`~repro.errors.CheckpointError`; there is no partial load.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.program import Program
from repro.errors import CheckpointError
from repro.semantics.budget import Budget
from repro.semantics.sparse.explorer import (
    ReachableSubspace,
    _BfsState,
    _run_bfs,
    adopt_subspace,
)
from repro.util.faultinject import fault_point

__all__ = [
    "MAGIC",
    "CheckpointPolicy",
    "program_digest",
    "cache_path_for",
    "write_checkpoint",
    "load_checkpoint",
    "resume_exploration",
    "save_subspace",
]

#: Format magic + version.  Bumped on any incompatible layout change, so
#: old readers refuse new files (and vice versa) instead of misparsing.
MAGIC = b"RPROCKPT1\n"

_HLEN_BYTES = 8


@dataclass(frozen=True)
class CheckpointPolicy:
    """When and where the explorer snapshots its BFS state.

    ``path`` is the checkpoint file (atomically replaced on every write).
    A snapshot is due when either ``every_levels`` completed levels or
    ``every_nodes`` newly interned states have accumulated since the last
    write; one final snapshot (marked ``complete``) is always written at
    closure, and one on budget exhaustion.
    """

    path: str | os.PathLike
    every_levels: int | None = 16
    every_nodes: int | None = None

    def __post_init__(self) -> None:
        if self.every_levels is not None and self.every_levels <= 0:
            raise ValueError(
                f"every_levels must be > 0, got {self.every_levels}"
            )
        if self.every_nodes is not None and self.every_nodes <= 0:
            raise ValueError(f"every_nodes must be > 0, got {self.every_nodes}")

    def due(self, *, levels_since: int, nodes_since: int) -> bool:
        """Whether a snapshot is due at this level boundary."""
        if self.every_levels is not None and levels_since >= self.every_levels:
            return True
        if self.every_nodes is not None and nodes_since >= self.every_nodes:
            return True
        return False


def program_digest(program: Program) -> str:
    """SHA-256 identity of a program for checkpoint compatibility.

    Hashes the full structural description (variables, domains, initial
    predicate, every command and its fairness marker), the encoded space
    size, and the sorted fair-command names.  Any edit that could change
    the BFS — a command body, the initial condition, a domain bound —
    changes the digest, so a stale checkpoint is refused loudly.
    """
    h = hashlib.sha256()
    h.update(program.describe().encode("utf-8"))
    h.update(str(program.space.size).encode("ascii"))
    h.update(",".join(sorted(program.fair_names)).encode("utf-8"))
    return h.hexdigest()


def _array_entry(name: str, arr: np.ndarray) -> dict:
    raw = np.ascontiguousarray(arr).tobytes()
    return {
        "name": name,
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
        "nbytes": len(raw),
        "sha256": hashlib.sha256(raw).hexdigest(),
    }


def write_checkpoint(
    path: str | os.PathLike,
    program: Program,
    *,
    level_nodes: list[np.ndarray],
    level_parents: list[np.ndarray],
    level_pcmds: list[np.ndarray],
    mover_names: list[str],
    complete: bool,
    succ_columns: dict[str, np.ndarray] | None = None,
    metrics: dict | None = None,
) -> str:
    """Atomically write a checkpoint; returns the (string) path.

    The per-level lists are serialized as one offsets array plus the
    concatenation of each list — CSR-style — so the payload is a handful
    of large contiguous arrays regardless of level count.

    ``metrics`` is an optional JSON-safe snapshot of the exploration
    statistics so far (``explored`` / ``levels`` / ``elapsed_s``),
    recorded in the header: a resumed run reads it back and reports
    *cumulative* figures instead of just the post-resume slice.  Purely
    observational — the loader validates the arrays, not the metrics.
    """
    path = os.fspath(path)
    rec = obs.get_recorder()
    offsets = np.zeros(len(level_nodes) + 1, dtype=np.int64)
    np.cumsum([n.shape[0] for n in level_nodes], out=offsets[1:])
    arrays: list[tuple[str, np.ndarray]] = [
        ("level_offsets", offsets),
        ("level_nodes", _concat(level_nodes)),
        ("level_parents", _concat(level_parents)),
        ("level_pcmds", _concat(level_pcmds)),
    ]
    if succ_columns:
        for name in sorted(succ_columns):
            arrays.append((f"succ:{name}", succ_columns[name]))
    header = {
        "magic": MAGIC.decode("ascii").strip(),
        "program": program.name,
        "program_digest": program_digest(program),
        "space_size": int(program.space.size),
        "levels": len(level_nodes),
        "explored": int(offsets[-1]),
        "complete": bool(complete),
        "mover_names": list(mover_names),
        "arrays": [_array_entry(name, arr) for name, arr in arrays],
    }
    if metrics is not None:
        header["metrics"] = dict(metrics)
    blob = json.dumps(header, separators=(",", ":")).encode("utf-8")
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with rec.span("checkpoint.write", path=path, complete=bool(complete)):
            with open(tmp, "wb") as f:
                fault_point("checkpoint.write.begin", path=path)
                f.write(MAGIC)
                f.write(len(blob).to_bytes(_HLEN_BYTES, "little"))
                f.write(blob)
                for name, arr in arrays:
                    f.write(np.ascontiguousarray(arr).tobytes())
                    fault_point("checkpoint.write.payload", path=path, array=name)
                f.flush()
                os.fsync(f.fileno())
            fault_point("checkpoint.write.rename", path=path)
            os.replace(tmp, path)
            _fsync_dir(os.path.dirname(path) or ".")
            if rec.enabled:
                rec.add("checkpoint.writes")
                payload = sum(entry["nbytes"] for entry in header["arrays"])
                rec.add(
                    "checkpoint.bytes_written",
                    len(MAGIC) + _HLEN_BYTES + len(blob) + payload,
                )
    except BaseException:
        # Best-effort removal of the temp file; the *destination* is
        # untouched by construction (os.replace is the only publish).
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def _concat(parts: list[np.ndarray]) -> np.ndarray:
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate([np.asarray(p, dtype=np.int64) for p in parts])


def _fsync_dir(dirname: str) -> None:
    try:
        fd = os.open(dirname, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def load_checkpoint(
    path: str | os.PathLike, program: Program | None = None
) -> dict:
    """Read and fully validate a checkpoint; fail-closed on any defect.

    Returns ``{"header": dict, "arrays": {name: ndarray}}``.  When
    ``program`` is given, the header's program digest must match
    :func:`program_digest` of it — resuming against an edited program or
    a different space raises :class:`~repro.errors.CheckpointError`.
    """
    path = os.fspath(path)
    rec = obs.get_recorder()
    with rec.span("checkpoint.load", path=path):
        return _load_checkpoint(path, program, rec)


def _load_checkpoint(path: str, program: Program | None, rec) -> dict:
    try:
        with open(path, "rb") as f:
            magic = f.read(len(MAGIC))
            if magic != MAGIC:
                raise CheckpointError(
                    f"{path}: not a checkpoint (bad magic {magic!r}; "
                    f"expected {MAGIC!r})",
                    reason="bad-magic",
                )
            hlen_raw = f.read(_HLEN_BYTES)
            if len(hlen_raw) != _HLEN_BYTES:
                raise CheckpointError(
                    f"{path}: truncated before header length",
                    reason="truncated",
                )
            hlen = int.from_bytes(hlen_raw, "little")
            if not 0 < hlen <= 1 << 30:
                raise CheckpointError(
                    f"{path}: implausible header length {hlen}",
                    reason="corrupt-header",
                )
            blob = f.read(hlen)
            if len(blob) != hlen:
                raise CheckpointError(f"{path}: truncated header", reason="truncated")
            try:
                header = json.loads(blob.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise CheckpointError(
                    f"{path}: corrupt header ({exc})", reason="corrupt-header"
                ) from exc
            arrays: dict[str, np.ndarray] = {}
            for entry in header.get("arrays", []):
                raw = f.read(entry["nbytes"])
                if len(raw) != entry["nbytes"]:
                    raise CheckpointError(
                        f"{path}: truncated payload for array "
                        f"{entry['name']!r}",
                        reason="truncated",
                    )
                digest = hashlib.sha256(raw).hexdigest()
                if digest != entry["sha256"]:
                    raise CheckpointError(
                        f"{path}: payload digest mismatch for array "
                        f"{entry['name']!r} (corrupt checkpoint)",
                        reason="payload-digest",
                    )
                arrays[entry["name"]] = np.frombuffer(
                    raw, dtype=np.dtype(entry["dtype"])
                ).reshape(entry["shape"])
            if f.read(1):
                raise CheckpointError(
                    f"{path}: trailing bytes after payload",
                    reason="trailing-bytes",
                )
    except OSError as exc:
        raise CheckpointError(
            f"{path}: cannot read checkpoint: {exc}", reason="io"
        ) from exc
    for required in ("level_offsets", "level_nodes", "level_parents",
                     "level_pcmds"):
        if required not in arrays:
            raise CheckpointError(
                f"{path}: missing array {required!r}", reason="inconsistent"
            )
    offsets = arrays["level_offsets"]
    if (
        offsets.ndim != 1
        or offsets.shape[0] != header.get("levels", -1) + 1
        or offsets[-1] != header.get("explored", -1)
        or offsets.shape[0] < 2
        or (np.diff(offsets) < 0).any()
    ):
        raise CheckpointError(
            f"{path}: inconsistent level offsets", reason="inconsistent"
        )
    for name in ("level_nodes", "level_parents", "level_pcmds"):
        if arrays[name].shape[0] != offsets[-1]:
            raise CheckpointError(
                f"{path}: array {name!r} length disagrees with offsets",
                reason="inconsistent",
            )
    if program is not None:
        want = program_digest(program)
        got = header.get("program_digest")
        if got != want:
            raise CheckpointError(
                f"{path}: checkpoint was written for a different program "
                f"or space (digest {got} != {want}); refusing to resume",
                reason="program-digest",
            )
        movers = [c.name for c in program.commands if not c.is_skip()]
        if header.get("mover_names") != movers:
            raise CheckpointError(
                f"{path}: command set changed since the checkpoint "
                "was written; refusing to resume",
                reason="command-set",
            )
    if rec.enabled:
        rec.add("checkpoint.loads")
    return {"header": header, "arrays": arrays}


def _split_levels(arrays: dict[str, np.ndarray]) -> _BfsState:
    offsets = arrays["level_offsets"]
    bounds = [
        (int(offsets[i]), int(offsets[i + 1]))
        for i in range(offsets.shape[0] - 1)
    ]
    # .copy() so the state owns writable arrays (frombuffer is read-only).
    level_nodes = [arrays["level_nodes"][a:b].copy() for a, b in bounds]
    level_parents = [arrays["level_parents"][a:b].copy() for a, b in bounds]
    level_pcmds = [arrays["level_pcmds"][a:b].copy() for a, b in bounds]
    known = np.sort(np.concatenate(level_nodes))
    return _BfsState(
        level_nodes=level_nodes,
        level_parents=level_parents,
        level_pcmds=level_pcmds,
        known=known,
    )


def cache_path_for(root: str | os.PathLike, program: Program) -> str:
    """The digest-addressed checkpoint path of ``program`` under ``root``.

    The certification service (and any caller keeping a directory of
    checkpoints rather than naming files) stores one checkpoint per
    program identity: ``<root>/<program_digest>.ckpt``.  Content
    addressing makes the stale-resume problem structural — an edited
    program hashes to a different path, so it can never even *find* the
    old checkpoint, let alone resume from it.
    """
    return os.path.join(os.fspath(root), f"{program_digest(program)}.ckpt")


def resume_exploration(
    path: str | os.PathLike,
    program: Program,
    *,
    budget: Budget | None = None,
    checkpoint: CheckpointPolicy | None = None,
    node_limit: int | None = None,
) -> ReachableSubspace:
    """Resume a checkpointed exploration of ``program`` to closure.

    ``path`` may be a checkpoint file, or a **directory** holding
    digest-addressed checkpoints — in which case the file is resolved by
    :func:`cache_path_for` and a missing entry is refused with a
    structured ``reason="missing"`` :class:`~repro.errors.CheckpointError`
    (so cache-directory callers can distinguish "never built" from
    "corrupt").

    Validates the checkpoint against the program digest (fail-closed),
    rebuilds the BFS state from the stored levels, and continues the loop
    — with a fresh budget window if ``budget`` is given, and further
    snapshots if ``checkpoint`` is.  The result is bit-identical to an
    uninterrupted :func:`~repro.semantics.sparse.explorer.explore` (same
    global ids, distances, parents, successor columns), and is published
    to the per-program cache so subsequently routed checks reuse it.
    """
    from repro.semantics.sparse.explorer import DEFAULT_NODE_LIMIT

    if os.path.isdir(path):
        path = cache_path_for(path, program)
        if not os.path.exists(path):
            raise CheckpointError(
                f"{path}: no checkpoint for {program.name} "
                f"(digest {program_digest(program)}) in the cache directory",
                reason="missing",
            )
    loaded = load_checkpoint(path, program)
    header, arrays = loaded["header"], loaded["arrays"]
    state = _split_levels(arrays)
    # Cumulative statistics: credit the checkpointed prefix's recorded
    # elapsed time, so the resumed run reports whole-exploration figures
    # (nodes/levels already accumulate through the restored levels).
    recorded = header.get("metrics")
    if isinstance(recorded, dict):
        try:
            state.elapsed_base = float(recorded.get("elapsed_s", 0.0))
        except (TypeError, ValueError):
            state.elapsed_base = 0.0
    if checkpoint is None:
        checkpoint = CheckpointPolicy(path=os.fspath(path))
    sub = _run_bfs(
        program,
        state,
        node_limit=node_limit if node_limit is not None else DEFAULT_NODE_LIMIT,
        budget=budget,
        checkpoint=checkpoint,
    )
    # Complete checkpoints may carry materialized successor columns;
    # restore them so a post-resume proof pass skips the kernels.
    if header.get("complete"):
        for name, arr in arrays.items():
            if name.startswith("succ:"):
                sub._succ[name[len("succ:"):]] = arr.copy()
    adopt_subspace(program, sub)
    return sub


def save_subspace(path: str | os.PathLike, sub: ReachableSubspace) -> str:
    """Write a **complete** checkpoint of an already-explored subspace.

    Reconstructs the per-level structure from the stored distances and
    parents (levels are contiguous runs of ``dist`` over the sorted
    global ids — exactly how :func:`~repro.semantics.sparse.explorer.
    _assemble` laid them down), and includes every successor column the
    subspace has materialized so far.
    """
    program = sub.program
    level_nodes: list[np.ndarray] = []
    level_parents: list[np.ndarray] = []
    level_pcmds: list[np.ndarray] = []
    for level in range(sub.levels):
        sel = np.flatnonzero(sub.dist == level)
        nodes = sub.global_ids[sel]
        pg = np.full(sel.shape[0], -1, dtype=np.int64)
        has = sub.parent[sel] >= 0
        pg[has] = sub.global_ids[sub.parent[sel][has]]
        level_nodes.append(nodes)
        level_parents.append(pg)
        level_pcmds.append(sub.parent_cmd[sel].copy())
    return write_checkpoint(
        path,
        program,
        level_nodes=level_nodes,
        level_parents=level_parents,
        level_pcmds=level_pcmds,
        mover_names=list(sub.mover_names),
        complete=True,
        succ_columns=dict(sub._succ),
        metrics={
            "explored": sub.size,
            "levels": sub.levels,
            "elapsed_s": float(sub.stats.get("elapsed_s", 0.0)),
        },
    )
