"""Sparse frontier exploration: reachable subspaces without full-space arrays.

Two pieces live here:

1. :func:`initial_indices` — enumerate the ``initially`` states of a
   program as **global state indices** directly from the predicate's
   conjunct structure, by a vectorized join over the declared variables:
   bind one variable at a time (cross product with its domain), and filter
   by every conjunct as soon as its variables are all bound.  Composed
   programs conjoin component ``initially`` predicates, so the join
   frontier stays near the true initial-state count instead of the encoded
   product.

2. :func:`explore` — BFS from the initial states through the per-command
   frontier kernels (:meth:`repro.core.commands.Command.succ_of`), with
   sorted-array interning of discovered global indices (merge + binary
   search per level; Python work per BFS *level*, not per state).  The
   result is a :class:`ReachableSubspace`: sorted global ids (the local id
   of a state is its rank), per-command **local** successor columns, BFS
   distances, **BFS parents** (first-discovery edges, so every reachable
   state carries a concrete command path back to the initial set — the raw
   material of the witness paths attached by the sparse checkers and the
   proof synthesizer's refusal diagnostics), and the local initial set —
   everything the sub-CSR assembly (:mod:`repro.semantics.sparse.subgraph`)
   and the sparse checkers need.

Canonical-order invariant (documented; relied on by
:mod:`repro.semantics.synthesis`): ``global_ids`` is sorted ascending, so
local ids preserve the global index order.  The canonical sinks-first SCC
emission of :mod:`repro.semantics.scc` breaks ties by smallest member
node; because the order-preserving id map keeps "smallest member" the
same state on both tiers, the local condensation of the sub-CSR equals
the dense condensation restricted to reachable states *component for
component, in the same order* — which is exactly what lets the sparse
proof synthesizer reuse the emission order as its variant metric (cf.
the paper's §4.6 "induction on the cardinality of A*(i)").

No function in this module allocates an array of length ``space.size``;
all work is proportional to the reachable set and the frontier.
"""

from __future__ import annotations

import threading
import time
import traceback as _traceback
import weakref
from dataclasses import dataclass

import numpy as np

from repro import obs

from repro.core.commands import Command
from repro.core.expressions import And, Expr
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State, StateSpace
from repro.errors import BudgetExhausted, ExplorationError, PropertyError
from repro.semantics.budget import Budget
from repro.util.csr import in_sorted
from repro.util.faultinject import fault_point

__all__ = [
    "DEFAULT_NODE_LIMIT",
    "DEFAULT_MAX_STATES",
    "DEFAULT_JOIN_LIMIT",
    "initial_indices",
    "explore",
    "reachable_subspace",
    "adopt_subspace",
    "ReachableSubspace",
    "ExplorationFailure",
]

#: Default cap on the number of **discovered** reachable states.  This is
#: the sparse tier's protective wall — the per-tier replacement of the old
#: ``StateSpace.MAX_SIZE`` constructor cap: encoded size is unbounded, the
#: interned node count is what costs memory.
DEFAULT_NODE_LIMIT = 2_000_000

#: Legacy alias of :data:`DEFAULT_NODE_LIMIT` (pre-capacity-tier name).
DEFAULT_MAX_STATES = DEFAULT_NODE_LIMIT

#: Default cap on the intermediate width of the initial-state join.
DEFAULT_JOIN_LIMIT = 2_000_000


# ---------------------------------------------------------------------------
# Initial-state enumeration (vectorized conjunct join)
# ---------------------------------------------------------------------------


def _conjuncts(pred: Predicate) -> list[Expr]:
    """The top-level conjuncts of a predicate's expression form.

    Raises :class:`ExplorationError` for mask/callable-backed predicates —
    those only exist as full-space artifacts, which the sparse tier must
    not touch.
    """
    try:
        expr = pred.as_expr()
    except PropertyError:
        raise ExplorationError(
            "sparse exploration needs an expression-backed `initially` "
            f"predicate to enumerate initial states; got {pred.describe()!r}"
        ) from None
    if isinstance(expr, And):
        return list(expr.operands)
    return [expr]


def initial_indices(
    program: Program, *, join_limit: int = DEFAULT_JOIN_LIMIT
) -> np.ndarray:
    """Sorted global indices of the states satisfying ``initially``.

    The join binds variables in declaration order; a conjunct filters the
    partial assignments at the first point all of its variables are bound.
    The intermediate width is capped by ``join_limit``: conjuncts whose
    variables are declared far apart can make the intermediate product
    exceed the final set (raise the limit, or reorder declarations so
    related variables sit together).
    """
    space = program.space
    space.require_vector_indexable("sparse initial-state enumeration")
    conjuncts = [(c, c.variables()) for c in _conjuncts(program.init)]
    idx = np.zeros(1, dtype=np.int64)
    env: dict = {}
    bound: set = set()
    for var in space.vars:
        d = var.domain.size
        if idx.size * d > join_limit:
            raise ExplorationError(
                f"initial-state join exceeded {join_limit} partial "
                f"assignments while binding {var.name}; raise join_limit "
                "or tighten the `initially` predicate"
            )
        dom_idx = np.arange(d, dtype=np.int64)
        values = var.domain.decode_array(dom_idx)
        stride = space.stride_of(var)
        k = idx.size
        idx = (idx[:, None] + dom_idx[None, :] * stride).ravel()
        for v in bound:
            env[v] = np.repeat(env[v], d)
        env[var] = np.tile(values, k)
        bound.add(var)
        ready = [c for c in conjuncts if c[1] <= bound]
        if not ready:
            continue
        conjuncts = [c for c in conjuncts if not (c[1] <= bound)]
        keep = np.ones(idx.size, dtype=bool)
        for expr, _ in ready:
            m = np.asarray(expr.eval_vec(env), dtype=bool)
            if m.ndim == 0:
                if not m:
                    keep[:] = False
                    break
            else:
                keep &= m
        if not keep.all():
            idx = idx[keep]
            env = {v: a[keep] for v, a in env.items()}
        if idx.size == 0:
            break
    idx.sort()
    return idx


# ---------------------------------------------------------------------------
# Reachable subspace
# ---------------------------------------------------------------------------


class ReachableSubspace:
    """The reachable slice of a program's encoded space, on compact ids.

    Local id ``k`` denotes the state with global index ``global_ids[k]``;
    ``global_ids`` is sorted ascending, so local ids preserve the global
    order (which keeps the canonical SCC emission order of
    :mod:`repro.semantics.scc` identical to the dense tier's).

    The subspace references its program **weakly**: it may be held in the
    module's weak cache, and a strong back-reference would pin every
    explored program (and its successor columns and CSR caches) forever.
    Hold the :class:`Program` yourself while using the subspace.

    Attributes
    ----------
    space:
        The program's (never-materialized) state space.
    global_ids:
        Sorted ``int64`` global indices of the reachable states.
    dist:
        BFS distance (command applications from the initial set) per
        local id.
    init_local:
        Local ids of the initial states.
    levels:
        Number of BFS levels the exploration ran.
    parent:
        BFS parent per local id: the local id of the state whose command
        application first discovered it (``-1`` for the initial states).
        Following parents yields a shortest command path back to the
        initial set (:meth:`path_to_local` / :meth:`witness_path`).
    parent_cmd:
        Index into :attr:`mover_names` of the discovering command per
        local id (``-1`` for the initial states).
    mover_names:
        Names of the non-skip commands, in exploration order —
        the label namespace of :attr:`parent_cmd`.
    stats:
        Exploration statistics set by the BFS driver (nodes, levels,
        cumulative elapsed seconds and discovery rate — resumed runs
        include the checkpointed prefix's recorded elapsed time).
        Observational metadata only; empty for hand-built subspaces.
    """

    __slots__ = (
        "_program_ref",
        "space",
        "global_ids",
        "dist",
        "init_local",
        "levels",
        "parent",
        "parent_cmd",
        "mover_names",
        "stats",
        "_succ",
        "_enabled",
        "_graph",
        "__weakref__",
    )

    def __init__(
        self,
        program: Program,
        space: StateSpace,
        global_ids: np.ndarray,
        dist: np.ndarray,
        init_local: np.ndarray,
        levels: int,
        parent: np.ndarray | None = None,
        parent_cmd: np.ndarray | None = None,
        mover_names: tuple[str, ...] = (),
    ) -> None:
        self._program_ref = weakref.ref(program)
        self.space = space
        self.global_ids = global_ids
        self.dist = dist
        self.init_local = init_local
        self.levels = levels
        m = int(global_ids.shape[0])
        self.parent = parent if parent is not None else np.full(m, -1, dtype=np.int64)
        self.parent_cmd = (
            parent_cmd if parent_cmd is not None else np.full(m, -1, dtype=np.int64)
        )
        self.mover_names = mover_names
        self.stats: dict = {}
        self._succ: dict[str, np.ndarray] = {}
        self._enabled: dict[str, np.ndarray] = {}
        self._graph: object | None = None

    @property
    def program(self) -> Program:
        """The explored program (weakly referenced; see class docstring)."""
        program = self._program_ref()
        if program is None:
            raise ExplorationError(
                "the explored program has been garbage-collected; a "
                "ReachableSubspace does not keep its program alive"
            )
        return program

    @property
    def size(self) -> int:
        """Number of reachable states (the local space's size)."""
        return int(self.global_ids.shape[0])

    # -- id maps --------------------------------------------------------------

    def local_of(self, global_idx: np.ndarray) -> np.ndarray:
        """Map global state indices to local ids (must all be members)."""
        global_idx = np.asarray(global_idx, dtype=np.int64)
        pos = np.searchsorted(self.global_ids, global_idx)
        ok = in_sorted(self.global_ids, global_idx)
        if not ok.all():
            missing = global_idx[~ok][:3].tolist()
            raise ExplorationError(
                f"global indices {missing} are not in the reachable subspace"
            )
        return pos

    def state_at_local(self, k: int) -> State:
        """Decode local id ``k`` into a :class:`State`."""
        return self.space.state_at(int(self.global_ids[int(k)]))

    # -- witness paths ---------------------------------------------------------

    def path_to_local(self, k: int) -> list[int]:
        """Local ids of a shortest path from the initial set to ``k``.

        Reconstructed from the BFS parents; the first entry is an initial
        state, the last is ``k``, and consecutive entries are related by
        one command application (named by :meth:`witness_path`).
        """
        k = int(k)
        path = [k]
        while self.parent[path[-1]] >= 0:
            path.append(int(self.parent[path[-1]]))
            if len(path) > self.levels + 1:  # pragma: no cover - invariant
                raise ExplorationError("BFS parent chain exceeds level count")
        path.reverse()
        return path

    def witness_path(self, k: int) -> tuple[list[State], list[str]]:
        """Decoded shortest path from the initial set to local state ``k``.

        Returns ``(states, commands)`` with ``len(commands) ==
        len(states) - 1``: ``commands[i]`` is the command stepping
        ``states[i]`` to ``states[i + 1]``.
        """
        locs = self.path_to_local(k)
        states = [self.state_at_local(i) for i in locs]
        commands = [self.mover_names[int(self.parent_cmd[i])] for i in locs[1:]]
        return states, commands

    # -- per-command columns ---------------------------------------------------

    def succ_local(self, command: Command | str) -> np.ndarray:
        """Local successor column of one command (length ``size``).

        The reachable set is closed under every command, so the column is
        total: ``succ_local(c)[k]`` is the local id of ``c``'s successor of
        local state ``k``.
        """
        if isinstance(command, str):
            cmd = self.program.command_named(command)
        else:
            cmd = command
        col = self._succ.get(cmd.name)
        if col is None:
            if cmd.is_skip():
                col = np.arange(self.size, dtype=np.int64)
            else:
                col = self.local_of(cmd.succ_of(self.space, self.global_ids))
            self._succ[cmd.name] = col
        return col

    def enabled_local(self, command: Command | str) -> np.ndarray:
        """Local enabledness column of one command (length ``size``)."""
        if isinstance(command, str):
            cmd = self.program.command_named(command)
        else:
            cmd = command
        col = self._enabled.get(cmd.name)
        if col is None:
            col = cmd.enabled_at(self.space, self.global_ids)
            self._enabled[cmd.name] = col
        return col

    # -- predicates ------------------------------------------------------------

    def pred_mask(self, pred: Predicate) -> np.ndarray:
        """Satisfaction mask of ``pred`` over the local ids."""
        return pred.mask_at(self.space, self.global_ids)

    # -- graph ----------------------------------------------------------------

    def graph(self):
        """The union sub-CSR backend over local ids (built lazily, cached).

        A :class:`repro.semantics.graph_backend.GraphBackend`, so every
        closure/distance/condensation kernel of the dense tier runs
        unchanged on the subspace.
        """
        if self._graph is None:
            from repro.semantics.sparse.subgraph import assemble_backend

            self._graph = assemble_backend(self)
        return self._graph

    def __repr__(self) -> str:
        program = self._program_ref()
        name = program.name if program is not None else "<collected>"
        return (
            f"<ReachableSubspace {name}: {self.size} of "
            f"{self.space.size} states, {self.levels} BFS levels>"
        )


@dataclass
class _BfsState:
    """Mutable BFS progress — exactly what a checkpoint must capture.

    ``level_nodes[d]`` are the sorted global indices first discovered at
    distance ``d`` (``level_nodes[0]`` is the start set); ``level_parents``
    and ``level_pcmds`` are aligned per level with the *global* parent
    index and mover index that first produced each fresh state (``-1``
    for roots).  ``known`` is the sorted union of all levels — the intern
    table.  The level counter is ``len(level_nodes)``: no RNG, no clock,
    nothing ambient — which is what makes a resumed run bit-identical to
    an uninterrupted one.
    """

    level_nodes: list[np.ndarray]
    level_parents: list[np.ndarray]
    level_pcmds: list[np.ndarray]
    known: np.ndarray
    #: Wall seconds already spent on this state before the current run —
    #: restored from the checkpoint's metrics header on resume, so the
    #: cumulative statistics (elapsed, rate) span the whole exploration,
    #: not just the post-resume slice.  Observational only: it never
    #: feeds the BFS itself, which stays bit-identical on resume.
    elapsed_base: float = 0.0

    @property
    def levels(self) -> int:
        """Completed BFS levels (the RNG-free progress counter)."""
        return len(self.level_nodes)

    @property
    def explored(self) -> int:
        return int(self.known.shape[0])

    @property
    def frontier(self) -> np.ndarray:
        return self.level_nodes[-1]


def _assemble(program: Program, state: _BfsState, movers) -> ReachableSubspace:
    """Fold completed BFS levels into a :class:`ReachableSubspace`.

    Deterministic in the level structure alone, so assembling a resumed
    run yields arrays bit-identical to the uninterrupted exploration.
    """
    known = state.known
    m = known.shape[0]
    dist = np.full(m, -1, dtype=np.int64)
    parent = np.full(m, -1, dtype=np.int64)
    parent_cmd = np.full(m, -1, dtype=np.int64)
    for level, nodes in enumerate(state.level_nodes):
        if nodes.size:
            loc = np.searchsorted(known, nodes)
            dist[loc] = level
            pg = state.level_parents[level]
            has = pg >= 0
            if has.any():
                ploc = np.full(nodes.shape[0], -1, dtype=np.int64)
                ploc[has] = np.searchsorted(known, pg[has])
                parent[loc] = ploc
                parent_cmd[loc] = state.level_pcmds[level]
    start = state.level_nodes[0]
    return ReachableSubspace(
        program,
        program.space,
        known,
        dist,
        np.searchsorted(known, start) if m else start,
        state.levels,
        parent,
        parent_cmd,
        tuple(c.name for c in movers),
    )


def _run_bfs(
    program: Program,
    state: _BfsState,
    *,
    node_limit: int,
    budget: Budget | None = None,
    checkpoint=None,
) -> ReachableSubspace:
    """Drive the BFS loop from ``state`` to closure (the resumable core).

    ``budget`` bounds the run (deadline checked between per-command
    kernels, node/level budgets at level boundaries); on exhaustion a
    checkpoint is written (if a policy is active) and
    :class:`~repro.errors.BudgetExhausted` carries its path.
    ``checkpoint`` is a :class:`~repro.semantics.sparse.checkpoint.
    CheckpointPolicy`; snapshots are written atomically at level
    boundaries per its cadence, plus one final snapshot marked complete.
    """
    movers = [c for c in program.commands if not c.is_skip()]
    clock = budget.start() if budget is not None else None
    rec = obs.get_recorder()
    t_run = time.perf_counter()
    resumed_levels = state.levels

    def cumulative_elapsed() -> float:
        """Wall seconds across the whole exploration, resumed prefix
        included (the prefix's elapsed rides in the checkpoint header)."""
        return state.elapsed_base + (time.perf_counter() - t_run)

    def cumulative_rate() -> float:
        elapsed = cumulative_elapsed()
        return state.explored / elapsed if elapsed > 0 else 0.0

    def write_snapshot(*, complete: bool) -> str:
        from repro.semantics.sparse.checkpoint import write_checkpoint

        path = write_checkpoint(
            checkpoint.path,
            program,
            level_nodes=state.level_nodes,
            level_parents=state.level_parents,
            level_pcmds=state.level_pcmds,
            mover_names=[c.name for c in movers],
            complete=complete,
            metrics={
                "explored": state.explored,
                "levels": state.levels,
                "elapsed_s": round(cumulative_elapsed(), 6),
            },
        )
        return str(path)

    def exhaust(reason: str) -> None:
        path = write_snapshot(complete=False) if checkpoint is not None else None
        rate = cumulative_rate()
        frontier_size = int(state.frontier.shape[0])
        raise BudgetExhausted(
            f"exploration of {program.name} ran out of budget ({reason}) "
            f"after {state.levels} completed BFS level(s), "
            f"{state.explored} state(s), {clock.elapsed:.3f}s "
            f"(≈{rate:,.0f} states/s, last frontier {frontier_size})"
            + (f"; resume from {path}" if path else ""),
            reason=reason,
            explored=state.explored,
            levels=state.levels,
            elapsed=clock.elapsed,
            checkpoint_path=path,
            rate=rate,
            frontier=frontier_size,
        )

    frontier = state.frontier
    with rec.span("sparse.bfs", program=program.name, resumed_levels=resumed_levels):
        try:
            frontier = _bfs_loop(
                program,
                state,
                movers,
                frontier,
                node_limit=node_limit,
                clock=clock,
                checkpoint=checkpoint,
                exhaust=exhaust,
                write_snapshot=write_snapshot if checkpoint is not None else None,
                cumulative_elapsed=cumulative_elapsed,
            )
        except KeyboardInterrupt:
            # Interrupted mid-run: salvage the completed levels.  A partially
            # recorded level (the interrupt can land between the per-level
            # appends) is dropped before the snapshot, so the checkpoint is
            # always a consistent level-boundary state — never half a level.
            if checkpoint is not None:
                n = len(state.level_nodes)
                del state.level_parents[n:]
                del state.level_pcmds[n:]
                write_snapshot(complete=False)
            raise
        if checkpoint is not None:
            write_snapshot(complete=True)
        sub = _assemble(program, state, movers)
    sub.stats = {
        "nodes": sub.size,
        "levels": sub.levels,
        "elapsed_s": round(cumulative_elapsed(), 6),
        "rate": round(cumulative_rate(), 3),
    }
    if resumed_levels > 1:
        sub.stats["resumed_levels"] = resumed_levels
    if rec.enabled:
        rec.heartbeat(
            phase="sparse.bfs",
            level=sub.levels,
            nodes=sub.size,
            rate=f"{sub.stats['rate']:,.0f}/s",
            final=True,
        )
    return sub


def _bfs_loop(
    program: Program,
    state: _BfsState,
    movers,
    frontier: np.ndarray,
    *,
    node_limit: int,
    clock,
    checkpoint,
    exhaust,
    write_snapshot,
    cumulative_elapsed=None,
):
    """The level loop of :func:`_run_bfs` (split out so the interrupt
    handler in the driver sees every exit path uniformly).

    Instrumentation is observation-only: every counter, span, and
    heartbeat reads BFS state without influencing it, so recorder-on and
    recorder-off runs intern bit-identical subspaces (pinned by
    ``tests/test_obs.py``).
    """
    space = program.space
    rec = obs.get_recorder()
    last_write_level = state.levels
    last_write_nodes = state.explored
    while frontier.size:
        fault_point(
            "sparse.explore.level", level=state.levels, explored=state.explored
        )
        if clock is not None:
            reason = clock.exhausted(explored=state.explored, levels=state.levels)
            if reason is not None:
                exhaust(reason)
        deadline = None if clock is None else clock.budget.deadline
        with rec.span(
            "sparse.bfs.level", level=state.levels, frontier=int(frontier.shape[0])
        ):
            cols = []
            for cmd in movers:
                if rec.enabled:
                    k0 = time.perf_counter()
                    cols.append(cmd.succ_of(space, frontier))
                    rec.add("kernel.succ_of.seconds", time.perf_counter() - k0)
                    rec.add("kernel.succ_of.calls")
                else:
                    cols.append(cmd.succ_of(space, frontier))
                # Deadline granularity is per command kernel, not per level:
                # an aborted level is discarded whole, so the checkpoint (and
                # the exhaustion statistics) reflect completed levels only.
                if deadline is not None and clock.elapsed > deadline:
                    exhaust("deadline")
            if not cols:
                break
            fault_point(
                "sparse.explore.alloc",
                level=state.levels,
                entries=frontier.shape[0] * len(cols),
            )
            all_succ = np.concatenate(cols)
            cand = np.unique(all_succ)
            fresh = cand[~in_sorted(state.known, cand)]
            if fresh.size == 0:
                break
            # Both arrays are sorted and disjoint: a positional insert is the
            # O(m) merge (no per-level re-sort of the whole intern table).
            state.known = np.insert(
                state.known, np.searchsorted(state.known, fresh), fresh
            )
            if state.known.size > node_limit:
                raise ExplorationError(
                    f"reachable exploration of {program.name} exceeded "
                    f"node_limit={node_limit} (encoded space {space.size}); "
                    "raise the limit if the workload is expected"
                )
            # First-discovery parents: among the stacked (command, frontier)
            # successor entries that land on fresh states, keep the first per
            # state — deterministic in (command order, frontier order), which
            # pins the witness paths across runs.
            take = in_sorted(fresh, all_succ)
            succ_f = all_succ[take]
            src_f = np.tile(frontier, len(cols))[take]
            cmd_ids = np.repeat(np.arange(len(cols), dtype=np.int64), frontier.shape[0])
            cmd_f = cmd_ids[take]
            _, first = np.unique(succ_f, return_index=True)
            state.level_parents.append(src_f[first])
            state.level_pcmds.append(cmd_f[first])
            state.level_nodes.append(fresh)
            if rec.enabled:
                rec.add("sparse.bfs.levels")
                rec.add("sparse.bfs.nodes", int(fresh.shape[0]))
                rec.add("sparse.bfs.succ_entries", int(all_succ.shape[0]))
                rec.gauge_max(
                    "sparse.bfs.peak_bytes",
                    int(state.known.nbytes + all_succ.nbytes * 2),
                )
                beat = {
                    "level": state.levels - 1,
                    "nodes": state.explored,
                    "frontier": int(fresh.shape[0]),
                }
                if cumulative_elapsed is not None:
                    elapsed = cumulative_elapsed()
                    if elapsed > 0:
                        beat["rate"] = f"{state.explored / elapsed:,.0f}/s"
                if deadline is not None:
                    beat["budget_left"] = f"{max(deadline - clock.elapsed, 0.0):.1f}s"
                rec.heartbeat(**beat)
            frontier = fresh
        if checkpoint is not None and checkpoint.due(
            levels_since=state.levels - last_write_level,
            nodes_since=state.explored - last_write_nodes,
        ):
            write_snapshot(complete=False)
            last_write_level = state.levels
            last_write_nodes = state.explored
    return frontier


def explore(
    program: Program,
    *,
    seeds: np.ndarray | None = None,
    node_limit: int | None = None,
    max_states: int | None = None,
    join_limit: int = DEFAULT_JOIN_LIMIT,
    budget: Budget | None = None,
    checkpoint=None,
) -> ReachableSubspace:
    """BFS-expand the reachable subspace of ``program``.

    ``seeds`` overrides the start set (global indices; default: the sparse
    enumeration of ``initially``).  Raises :class:`ExplorationError` when
    the discovered set exceeds ``node_limit`` (default
    :data:`DEFAULT_NODE_LIMIT`; ``max_states`` is the deprecated alias) —
    the sparse tier's only **hard** size wall: the *encoded* space is
    unbounded up to the ``int64`` index range.

    ``budget`` bounds the run softly (see :class:`~repro.semantics.
    budget.Budget`): on exhaustion the exploration raises
    :class:`~repro.errors.BudgetExhausted` — resumable, not fail-closed.
    ``checkpoint`` takes a :class:`~repro.semantics.sparse.checkpoint.
    CheckpointPolicy`; BFS state is snapshotted atomically at level
    boundaries per its cadence (plus once on budget exhaustion and once,
    marked complete, at closure), and
    :func:`~repro.semantics.sparse.checkpoint.resume_exploration`
    round-trips bit-identically with an uninterrupted run.
    """
    if max_states is not None:
        import warnings

        warnings.warn(
            "explore(max_states=...) is deprecated; use node_limit=",
            DeprecationWarning,
            stacklevel=2,
        )
    if node_limit is None:
        node_limit = max_states if max_states is not None else DEFAULT_NODE_LIMIT
    space = program.space
    space.require_vector_indexable("sparse exploration")
    if seeds is None:
        start = initial_indices(program, join_limit=join_limit)
    else:
        start = np.unique(np.asarray(seeds, dtype=np.int64))
        if start.size and (start[0] < 0 or start[-1] >= space.size):
            raise ExplorationError(f"seed indices outside [0, {space.size})")
    if start.size > node_limit:
        raise ExplorationError(
            f"start set of {program.name} already exceeds "
            f"node_limit={node_limit}"
        )
    state = _BfsState(
        level_nodes=[start],
        level_parents=[np.full(start.shape[0], -1, dtype=np.int64)],
        level_pcmds=[np.full(start.shape[0], -1, dtype=np.int64)],
        known=start,
    )
    return _run_bfs(
        program, state, node_limit=node_limit, budget=budget, checkpoint=checkpoint
    )


@dataclass(frozen=True)
class ExplorationFailure:
    """Structured record of a cached sparse-tier failure.

    The negative cache must not hold the exception object itself (its
    traceback would strongly pin the program and every array hanging off
    it), but a bare message string loses the original raise site and any
    checkpoint the failed run left behind.  This record keeps both as
    plain strings: re-raises carry it as ``exc.failure``.
    """

    message: str
    exc_type: str
    traceback: str
    checkpoint_path: str | None = None


#: Weak per-program cache of the default exploration.  Values are either
#: the :class:`ReachableSubspace` or, for programs the sparse tier cannot
#: decide, an :class:`ExplorationFailure` (a negative entry — structured
#: strings only, never the exception object, whose traceback would
#: strongly pin the program).
_CACHE: "weakref.WeakKeyDictionary[Program, ReachableSubspace | ExplorationFailure]" = weakref.WeakKeyDictionary()

#: Per-program exploration locks (single-flight): concurrent
#: ``reachable_subspace`` callers that miss the cache must share ONE
#: BFS, not race N identical explorations — the certification service
#: routes many threads at the same program on a cold start.  Weak keys
#: so the lock table never pins a program.
_EXPLORE_LOCKS: "weakref.WeakKeyDictionary[Program, threading.Lock]" = weakref.WeakKeyDictionary()
_LOCKS_GUARD = threading.Lock()


def _explore_lock(program: Program) -> threading.Lock:
    with _LOCKS_GUARD:
        lock = _EXPLORE_LOCKS.get(program)
        if lock is None:
            lock = threading.Lock()
            _EXPLORE_LOCKS[program] = lock
        return lock


def adopt_subspace(program: Program, sub: ReachableSubspace) -> None:
    """Publish a completed exploration as ``program``'s cached subspace.

    Used by :func:`~repro.semantics.sparse.checkpoint.resume_exploration`
    so that checks routed after a resume reuse the resumed work instead
    of re-exploring from scratch.  Overwrites any negative entry.
    """
    _CACHE[program] = sub


def reachable_subspace(
    program: Program,
    *,
    budget: Budget | None = None,
    checkpoint=None,
) -> ReachableSubspace:
    """The (weakly) cached default exploration of ``program``.

    Mirrors ``TransitionSystem.for_program``: repeated sparse checks — the
    normal mode for the paper's proof chains — share one exploration.
    Failures are cached too (as structured negative entries, see
    :class:`ExplorationFailure`), so a proof chain over a program the
    sparse tier cannot decide pays the doomed BFS once, not once per
    routed check, before each check's dense fallback.

    ``budget`` / ``checkpoint`` are forwarded to :func:`explore` on a
    cache miss (a cached complete subspace satisfies any budget
    trivially).  :class:`~repro.errors.BudgetExhausted` is **not**
    cached: running out of budget is transient, not a property of the
    program.

    Thread safety: misses are **single-flight** per program — concurrent
    callers serialize on a per-program lock, the first runs the BFS, the
    rest find its published result on wake-up.  (Cache publication via
    :func:`adopt_subspace` is a plain dict store under the GIL; the lock
    exists to prevent N identical explorations, not to protect the
    dict.)
    """
    rec = obs.get_recorder()
    cached = _CACHE.get(program)
    if isinstance(cached, ReachableSubspace):
        if rec.enabled:
            rec.add("sparse.subspace_cache.hits")
        return cached
    with _explore_lock(program):
        # Re-check under the lock: a concurrent caller may have finished
        # (or failed) this exploration while we waited.
        cached = _CACHE.get(program)
        if isinstance(cached, ReachableSubspace):
            if rec.enabled:
                rec.add("sparse.subspace_cache.hits")
            return cached
        if rec.enabled:
            rec.add("sparse.subspace_cache.misses")
        if cached is not None:
            err = ExplorationError(
                f"{cached.message} (cached sparse-tier failure; the original "
                "traceback is preserved on this exception's .failure record)"
            )
            err.failure = cached
            raise err
        try:
            sub = explore(program, budget=budget, checkpoint=checkpoint)
        except ExplorationError as exc:
            _CACHE[program] = ExplorationFailure(
                message=str(exc),
                exc_type=type(exc).__name__,
                traceback="".join(_traceback.format_exception(exc)),
                checkpoint_path=getattr(exc, "checkpoint_path", None),
            )
            raise
        _CACHE[program] = sub
        return sub
