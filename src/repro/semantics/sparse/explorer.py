"""Sparse frontier exploration: reachable subspaces without full-space arrays.

Two pieces live here:

1. :func:`initial_indices` — enumerate the ``initially`` states of a
   program as **global state indices** directly from the predicate's
   conjunct structure, by a vectorized join over the declared variables:
   bind one variable at a time (cross product with its domain), and filter
   by every conjunct as soon as its variables are all bound.  Composed
   programs conjoin component ``initially`` predicates, so the join
   frontier stays near the true initial-state count instead of the encoded
   product.

2. :func:`explore` — BFS from the initial states through the per-command
   frontier kernels (:meth:`repro.core.commands.Command.succ_of`), with
   sorted-array interning of discovered global indices (merge + binary
   search per level; Python work per BFS *level*, not per state).  The
   result is a :class:`ReachableSubspace`: sorted global ids (the local id
   of a state is its rank), per-command **local** successor columns, BFS
   distances, and the local initial set — everything the sub-CSR assembly
   (:mod:`repro.semantics.sparse.subgraph`) and the sparse checkers need.

No function in this module allocates an array of length ``space.size``;
all work is proportional to the reachable set and the frontier.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.core.commands import Command
from repro.core.expressions import And, Expr
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State, StateSpace
from repro.errors import ExplorationError, PropertyError

__all__ = [
    "DEFAULT_NODE_LIMIT",
    "DEFAULT_MAX_STATES",
    "DEFAULT_JOIN_LIMIT",
    "initial_indices",
    "explore",
    "reachable_subspace",
    "ReachableSubspace",
]

#: Default cap on the number of **discovered** reachable states.  This is
#: the sparse tier's protective wall — the per-tier replacement of the old
#: ``StateSpace.MAX_SIZE`` constructor cap: encoded size is unbounded, the
#: interned node count is what costs memory.
DEFAULT_NODE_LIMIT = 2_000_000

#: Legacy alias of :data:`DEFAULT_NODE_LIMIT` (pre-capacity-tier name).
DEFAULT_MAX_STATES = DEFAULT_NODE_LIMIT

#: Default cap on the intermediate width of the initial-state join.
DEFAULT_JOIN_LIMIT = 2_000_000


# ---------------------------------------------------------------------------
# Initial-state enumeration (vectorized conjunct join)
# ---------------------------------------------------------------------------


def _conjuncts(pred: Predicate) -> list[Expr]:
    """The top-level conjuncts of a predicate's expression form.

    Raises :class:`ExplorationError` for mask/callable-backed predicates —
    those only exist as full-space artifacts, which the sparse tier must
    not touch.
    """
    try:
        expr = pred.as_expr()
    except PropertyError:
        raise ExplorationError(
            "sparse exploration needs an expression-backed `initially` "
            f"predicate to enumerate initial states; got {pred.describe()!r}"
        ) from None
    if isinstance(expr, And):
        return list(expr.operands)
    return [expr]


def initial_indices(
    program: Program, *, join_limit: int = DEFAULT_JOIN_LIMIT
) -> np.ndarray:
    """Sorted global indices of the states satisfying ``initially``.

    The join binds variables in declaration order; a conjunct filters the
    partial assignments at the first point all of its variables are bound.
    The intermediate width is capped by ``join_limit``: conjuncts whose
    variables are declared far apart can make the intermediate product
    exceed the final set (raise the limit, or reorder declarations so
    related variables sit together).
    """
    space = program.space
    space.require_vector_indexable("sparse initial-state enumeration")
    conjuncts = [(c, c.variables()) for c in _conjuncts(program.init)]
    idx = np.zeros(1, dtype=np.int64)
    env: dict = {}
    bound: set = set()
    for var in space.vars:
        d = var.domain.size
        if idx.size * d > join_limit:
            raise ExplorationError(
                f"initial-state join exceeded {join_limit} partial "
                f"assignments while binding {var.name}; raise join_limit "
                "or tighten the `initially` predicate"
            )
        dom_idx = np.arange(d, dtype=np.int64)
        values = var.domain.decode_array(dom_idx)
        stride = space.stride_of(var)
        k = idx.size
        idx = (idx[:, None] + dom_idx[None, :] * stride).ravel()
        for v in bound:
            env[v] = np.repeat(env[v], d)
        env[var] = np.tile(values, k)
        bound.add(var)
        ready = [c for c in conjuncts if c[1] <= bound]
        if not ready:
            continue
        conjuncts = [c for c in conjuncts if not (c[1] <= bound)]
        keep = np.ones(idx.size, dtype=bool)
        for expr, _ in ready:
            m = np.asarray(expr.eval_vec(env), dtype=bool)
            if m.ndim == 0:
                if not m:
                    keep[:] = False
                    break
            else:
                keep &= m
        if not keep.all():
            idx = idx[keep]
            env = {v: a[keep] for v, a in env.items()}
        if idx.size == 0:
            break
    idx.sort()
    return idx


# ---------------------------------------------------------------------------
# Reachable subspace
# ---------------------------------------------------------------------------


def _in_sorted(sorted_arr: np.ndarray, vals: np.ndarray) -> np.ndarray:
    """Membership mask of ``vals`` in the sorted array ``sorted_arr``."""
    if sorted_arr.size == 0:
        return np.zeros(vals.shape[0], dtype=bool)
    pos = np.searchsorted(sorted_arr, vals)
    clipped = np.minimum(pos, sorted_arr.size - 1)
    return (pos < sorted_arr.size) & (sorted_arr[clipped] == vals)


class ReachableSubspace:
    """The reachable slice of a program's encoded space, on compact ids.

    Local id ``k`` denotes the state with global index ``global_ids[k]``;
    ``global_ids`` is sorted ascending, so local ids preserve the global
    order (which keeps the canonical SCC emission order of
    :mod:`repro.semantics.scc` identical to the dense tier's).

    The subspace references its program **weakly**: it may be held in the
    module's weak cache, and a strong back-reference would pin every
    explored program (and its successor columns and CSR caches) forever.
    Hold the :class:`Program` yourself while using the subspace.

    Attributes
    ----------
    space:
        The program's (never-materialized) state space.
    global_ids:
        Sorted ``int64`` global indices of the reachable states.
    dist:
        BFS distance (command applications from the initial set) per
        local id.
    init_local:
        Local ids of the initial states.
    levels:
        Number of BFS levels the exploration ran.
    """

    __slots__ = (
        "_program_ref", "space", "global_ids", "dist", "init_local",
        "levels", "_succ", "_enabled", "_graph", "__weakref__",
    )

    def __init__(
        self,
        program: Program,
        space: StateSpace,
        global_ids: np.ndarray,
        dist: np.ndarray,
        init_local: np.ndarray,
        levels: int,
    ) -> None:
        self._program_ref = weakref.ref(program)
        self.space = space
        self.global_ids = global_ids
        self.dist = dist
        self.init_local = init_local
        self.levels = levels
        self._succ: dict[str, np.ndarray] = {}
        self._enabled: dict[str, np.ndarray] = {}
        self._graph: object | None = None

    @property
    def program(self) -> Program:
        """The explored program (weakly referenced; see class docstring)."""
        program = self._program_ref()
        if program is None:
            raise ExplorationError(
                "the explored program has been garbage-collected; a "
                "ReachableSubspace does not keep its program alive"
            )
        return program

    @property
    def size(self) -> int:
        """Number of reachable states (the local space's size)."""
        return int(self.global_ids.shape[0])

    # -- id maps --------------------------------------------------------------

    def local_of(self, global_idx: np.ndarray) -> np.ndarray:
        """Map global state indices to local ids (must all be members)."""
        global_idx = np.asarray(global_idx, dtype=np.int64)
        pos = np.searchsorted(self.global_ids, global_idx)
        ok = _in_sorted(self.global_ids, global_idx)
        if not ok.all():
            missing = global_idx[~ok][:3].tolist()
            raise ExplorationError(
                f"global indices {missing} are not in the reachable subspace"
            )
        return pos

    def state_at_local(self, k: int) -> State:
        """Decode local id ``k`` into a :class:`State`."""
        return self.space.state_at(int(self.global_ids[int(k)]))

    # -- per-command columns ---------------------------------------------------

    def succ_local(self, command: Command | str) -> np.ndarray:
        """Local successor column of one command (length ``size``).

        The reachable set is closed under every command, so the column is
        total: ``succ_local(c)[k]`` is the local id of ``c``'s successor of
        local state ``k``.
        """
        cmd = (
            self.program.command_named(command)
            if isinstance(command, str)
            else command
        )
        col = self._succ.get(cmd.name)
        if col is None:
            if cmd.is_skip():
                col = np.arange(self.size, dtype=np.int64)
            else:
                col = self.local_of(cmd.succ_of(self.space, self.global_ids))
            self._succ[cmd.name] = col
        return col

    def enabled_local(self, command: Command | str) -> np.ndarray:
        """Local enabledness column of one command (length ``size``)."""
        cmd = (
            self.program.command_named(command)
            if isinstance(command, str)
            else command
        )
        col = self._enabled.get(cmd.name)
        if col is None:
            col = cmd.enabled_at(self.space, self.global_ids)
            self._enabled[cmd.name] = col
        return col

    # -- predicates ------------------------------------------------------------

    def pred_mask(self, pred: Predicate) -> np.ndarray:
        """Satisfaction mask of ``pred`` over the local ids."""
        return pred.mask_at(self.space, self.global_ids)

    # -- graph ----------------------------------------------------------------

    def graph(self):
        """The union sub-CSR backend over local ids (built lazily, cached).

        A :class:`repro.semantics.graph_backend.GraphBackend`, so every
        closure/distance/condensation kernel of the dense tier runs
        unchanged on the subspace.
        """
        if self._graph is None:
            from repro.semantics.sparse.subgraph import assemble_backend

            self._graph = assemble_backend(self)
        return self._graph

    def __repr__(self) -> str:
        program = self._program_ref()
        name = program.name if program is not None else "<collected>"
        return (
            f"<ReachableSubspace {name}: {self.size} of "
            f"{self.space.size} states, {self.levels} BFS levels>"
        )


#: Weak per-program cache of the default exploration.  Values are either
#: the :class:`ReachableSubspace` or, for programs the sparse tier cannot
#: decide, the failure message (a negative entry — message only, never
#: the exception object, whose traceback would strongly pin the program).
_CACHE: "weakref.WeakKeyDictionary[Program, ReachableSubspace | str]" = (
    weakref.WeakKeyDictionary()
)


def explore(
    program: Program,
    *,
    seeds: np.ndarray | None = None,
    node_limit: int | None = None,
    max_states: int | None = None,
    join_limit: int = DEFAULT_JOIN_LIMIT,
) -> ReachableSubspace:
    """BFS-expand the reachable subspace of ``program``.

    ``seeds`` overrides the start set (global indices; default: the sparse
    enumeration of ``initially``).  Raises :class:`ExplorationError` when
    the discovered set exceeds ``node_limit`` (default
    :data:`DEFAULT_NODE_LIMIT`; ``max_states`` is the deprecated alias) —
    the sparse tier's only size wall: the *encoded* space is unbounded up
    to the ``int64`` index range.
    """
    if node_limit is None:
        node_limit = max_states if max_states is not None else DEFAULT_NODE_LIMIT
    space = program.space
    space.require_vector_indexable("sparse exploration")
    if seeds is None:
        start = initial_indices(program, join_limit=join_limit)
    else:
        start = np.unique(np.asarray(seeds, dtype=np.int64))
        if start.size and (start[0] < 0 or start[-1] >= space.size):
            raise ExplorationError(
                f"seed indices outside [0, {space.size})"
            )
    if start.size > node_limit:
        raise ExplorationError(
            f"start set of {program.name} already exceeds "
            f"node_limit={node_limit}"
        )
    movers = [c for c in program.commands if not c.is_skip()]
    known = start
    frontier = start
    level_sets = [start]
    while frontier.size:
        cols = [cmd.succ_of(space, frontier) for cmd in movers]
        if not cols:
            break
        cand = np.unique(np.concatenate(cols))
        fresh = cand[~_in_sorted(known, cand)]
        if fresh.size == 0:
            break
        # Both arrays are sorted and disjoint: a positional insert is the
        # O(m) merge (no per-level re-sort of the whole intern table).
        known = np.insert(known, np.searchsorted(known, fresh), fresh)
        if known.size > node_limit:
            raise ExplorationError(
                f"reachable exploration of {program.name} exceeded "
                f"node_limit={node_limit} (encoded space {space.size}); "
                "raise the limit if the workload is expected"
            )
        level_sets.append(fresh)
        frontier = fresh
    m = known.shape[0]
    dist = np.full(m, -1, dtype=np.int64)
    for level, nodes in enumerate(level_sets):
        if nodes.size:
            dist[np.searchsorted(known, nodes)] = level
    return ReachableSubspace(
        program,
        space,
        known,
        dist,
        np.searchsorted(known, start) if m else start,
        len(level_sets),
    )


def reachable_subspace(program: Program) -> ReachableSubspace:
    """The (weakly) cached default exploration of ``program``.

    Mirrors ``TransitionSystem.for_program``: repeated sparse checks — the
    normal mode for the paper's proof chains — share one exploration.
    Failures are cached too (as negative entries), so a proof chain over a
    program the sparse tier cannot decide pays the doomed BFS once, not
    once per routed check, before each check's dense fallback.
    """
    cached = _CACHE.get(program)
    if isinstance(cached, ReachableSubspace):
        return cached
    if cached is not None:
        raise ExplorationError(cached)
    try:
        sub = explore(program)
    except ExplorationError as exc:
        _CACHE[program] = str(exc)
        raise
    _CACHE[program] = sub
    return sub
