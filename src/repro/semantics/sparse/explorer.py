"""Sparse frontier exploration: reachable subspaces without full-space arrays.

Two pieces live here:

1. :func:`initial_indices` — enumerate the ``initially`` states of a
   program as **global state indices** directly from the predicate's
   conjunct structure, by a vectorized join over the declared variables:
   bind one variable at a time (cross product with its domain), and filter
   by every conjunct as soon as its variables are all bound.  Composed
   programs conjoin component ``initially`` predicates, so the join
   frontier stays near the true initial-state count instead of the encoded
   product.

2. :func:`explore` — BFS from the initial states through the per-command
   frontier kernels (:meth:`repro.core.commands.Command.succ_of`), with
   sorted-array interning of discovered global indices (merge + binary
   search per level; Python work per BFS *level*, not per state).  The
   result is a :class:`ReachableSubspace`: sorted global ids (the local id
   of a state is its rank), per-command **local** successor columns, BFS
   distances, **BFS parents** (first-discovery edges, so every reachable
   state carries a concrete command path back to the initial set — the raw
   material of the witness paths attached by the sparse checkers and the
   proof synthesizer's refusal diagnostics), and the local initial set —
   everything the sub-CSR assembly (:mod:`repro.semantics.sparse.subgraph`)
   and the sparse checkers need.

Canonical-order invariant (documented; relied on by
:mod:`repro.semantics.synthesis`): ``global_ids`` is sorted ascending, so
local ids preserve the global index order.  The canonical sinks-first SCC
emission of :mod:`repro.semantics.scc` breaks ties by smallest member
node; because the order-preserving id map keeps "smallest member" the
same state on both tiers, the local condensation of the sub-CSR equals
the dense condensation restricted to reachable states *component for
component, in the same order* — which is exactly what lets the sparse
proof synthesizer reuse the emission order as its variant metric (cf.
the paper's §4.6 "induction on the cardinality of A*(i)").

No function in this module allocates an array of length ``space.size``;
all work is proportional to the reachable set and the frontier.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.core.commands import Command
from repro.core.expressions import And, Expr
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State, StateSpace
from repro.errors import ExplorationError, PropertyError
from repro.util.csr import in_sorted

__all__ = [
    "DEFAULT_NODE_LIMIT",
    "DEFAULT_MAX_STATES",
    "DEFAULT_JOIN_LIMIT",
    "initial_indices",
    "explore",
    "reachable_subspace",
    "ReachableSubspace",
]

#: Default cap on the number of **discovered** reachable states.  This is
#: the sparse tier's protective wall — the per-tier replacement of the old
#: ``StateSpace.MAX_SIZE`` constructor cap: encoded size is unbounded, the
#: interned node count is what costs memory.
DEFAULT_NODE_LIMIT = 2_000_000

#: Legacy alias of :data:`DEFAULT_NODE_LIMIT` (pre-capacity-tier name).
DEFAULT_MAX_STATES = DEFAULT_NODE_LIMIT

#: Default cap on the intermediate width of the initial-state join.
DEFAULT_JOIN_LIMIT = 2_000_000


# ---------------------------------------------------------------------------
# Initial-state enumeration (vectorized conjunct join)
# ---------------------------------------------------------------------------


def _conjuncts(pred: Predicate) -> list[Expr]:
    """The top-level conjuncts of a predicate's expression form.

    Raises :class:`ExplorationError` for mask/callable-backed predicates —
    those only exist as full-space artifacts, which the sparse tier must
    not touch.
    """
    try:
        expr = pred.as_expr()
    except PropertyError:
        raise ExplorationError(
            "sparse exploration needs an expression-backed `initially` "
            f"predicate to enumerate initial states; got {pred.describe()!r}"
        ) from None
    if isinstance(expr, And):
        return list(expr.operands)
    return [expr]


def initial_indices(
    program: Program, *, join_limit: int = DEFAULT_JOIN_LIMIT
) -> np.ndarray:
    """Sorted global indices of the states satisfying ``initially``.

    The join binds variables in declaration order; a conjunct filters the
    partial assignments at the first point all of its variables are bound.
    The intermediate width is capped by ``join_limit``: conjuncts whose
    variables are declared far apart can make the intermediate product
    exceed the final set (raise the limit, or reorder declarations so
    related variables sit together).
    """
    space = program.space
    space.require_vector_indexable("sparse initial-state enumeration")
    conjuncts = [(c, c.variables()) for c in _conjuncts(program.init)]
    idx = np.zeros(1, dtype=np.int64)
    env: dict = {}
    bound: set = set()
    for var in space.vars:
        d = var.domain.size
        if idx.size * d > join_limit:
            raise ExplorationError(
                f"initial-state join exceeded {join_limit} partial "
                f"assignments while binding {var.name}; raise join_limit "
                "or tighten the `initially` predicate"
            )
        dom_idx = np.arange(d, dtype=np.int64)
        values = var.domain.decode_array(dom_idx)
        stride = space.stride_of(var)
        k = idx.size
        idx = (idx[:, None] + dom_idx[None, :] * stride).ravel()
        for v in bound:
            env[v] = np.repeat(env[v], d)
        env[var] = np.tile(values, k)
        bound.add(var)
        ready = [c for c in conjuncts if c[1] <= bound]
        if not ready:
            continue
        conjuncts = [c for c in conjuncts if not (c[1] <= bound)]
        keep = np.ones(idx.size, dtype=bool)
        for expr, _ in ready:
            m = np.asarray(expr.eval_vec(env), dtype=bool)
            if m.ndim == 0:
                if not m:
                    keep[:] = False
                    break
            else:
                keep &= m
        if not keep.all():
            idx = idx[keep]
            env = {v: a[keep] for v, a in env.items()}
        if idx.size == 0:
            break
    idx.sort()
    return idx


# ---------------------------------------------------------------------------
# Reachable subspace
# ---------------------------------------------------------------------------


class ReachableSubspace:
    """The reachable slice of a program's encoded space, on compact ids.

    Local id ``k`` denotes the state with global index ``global_ids[k]``;
    ``global_ids`` is sorted ascending, so local ids preserve the global
    order (which keeps the canonical SCC emission order of
    :mod:`repro.semantics.scc` identical to the dense tier's).

    The subspace references its program **weakly**: it may be held in the
    module's weak cache, and a strong back-reference would pin every
    explored program (and its successor columns and CSR caches) forever.
    Hold the :class:`Program` yourself while using the subspace.

    Attributes
    ----------
    space:
        The program's (never-materialized) state space.
    global_ids:
        Sorted ``int64`` global indices of the reachable states.
    dist:
        BFS distance (command applications from the initial set) per
        local id.
    init_local:
        Local ids of the initial states.
    levels:
        Number of BFS levels the exploration ran.
    parent:
        BFS parent per local id: the local id of the state whose command
        application first discovered it (``-1`` for the initial states).
        Following parents yields a shortest command path back to the
        initial set (:meth:`path_to_local` / :meth:`witness_path`).
    parent_cmd:
        Index into :attr:`mover_names` of the discovering command per
        local id (``-1`` for the initial states).
    mover_names:
        Names of the non-skip commands, in exploration order —
        the label namespace of :attr:`parent_cmd`.
    """

    __slots__ = (
        "_program_ref",
        "space",
        "global_ids",
        "dist",
        "init_local",
        "levels",
        "parent",
        "parent_cmd",
        "mover_names",
        "_succ",
        "_enabled",
        "_graph",
        "__weakref__",
    )

    def __init__(
        self,
        program: Program,
        space: StateSpace,
        global_ids: np.ndarray,
        dist: np.ndarray,
        init_local: np.ndarray,
        levels: int,
        parent: np.ndarray | None = None,
        parent_cmd: np.ndarray | None = None,
        mover_names: tuple[str, ...] = (),
    ) -> None:
        self._program_ref = weakref.ref(program)
        self.space = space
        self.global_ids = global_ids
        self.dist = dist
        self.init_local = init_local
        self.levels = levels
        m = int(global_ids.shape[0])
        self.parent = parent if parent is not None else np.full(m, -1, dtype=np.int64)
        self.parent_cmd = (
            parent_cmd if parent_cmd is not None else np.full(m, -1, dtype=np.int64)
        )
        self.mover_names = mover_names
        self._succ: dict[str, np.ndarray] = {}
        self._enabled: dict[str, np.ndarray] = {}
        self._graph: object | None = None

    @property
    def program(self) -> Program:
        """The explored program (weakly referenced; see class docstring)."""
        program = self._program_ref()
        if program is None:
            raise ExplorationError(
                "the explored program has been garbage-collected; a "
                "ReachableSubspace does not keep its program alive"
            )
        return program

    @property
    def size(self) -> int:
        """Number of reachable states (the local space's size)."""
        return int(self.global_ids.shape[0])

    # -- id maps --------------------------------------------------------------

    def local_of(self, global_idx: np.ndarray) -> np.ndarray:
        """Map global state indices to local ids (must all be members)."""
        global_idx = np.asarray(global_idx, dtype=np.int64)
        pos = np.searchsorted(self.global_ids, global_idx)
        ok = in_sorted(self.global_ids, global_idx)
        if not ok.all():
            missing = global_idx[~ok][:3].tolist()
            raise ExplorationError(
                f"global indices {missing} are not in the reachable subspace"
            )
        return pos

    def state_at_local(self, k: int) -> State:
        """Decode local id ``k`` into a :class:`State`."""
        return self.space.state_at(int(self.global_ids[int(k)]))

    # -- witness paths ---------------------------------------------------------

    def path_to_local(self, k: int) -> list[int]:
        """Local ids of a shortest path from the initial set to ``k``.

        Reconstructed from the BFS parents; the first entry is an initial
        state, the last is ``k``, and consecutive entries are related by
        one command application (named by :meth:`witness_path`).
        """
        k = int(k)
        path = [k]
        while self.parent[path[-1]] >= 0:
            path.append(int(self.parent[path[-1]]))
            if len(path) > self.levels + 1:  # pragma: no cover - invariant
                raise ExplorationError("BFS parent chain exceeds level count")
        path.reverse()
        return path

    def witness_path(self, k: int) -> tuple[list[State], list[str]]:
        """Decoded shortest path from the initial set to local state ``k``.

        Returns ``(states, commands)`` with ``len(commands) ==
        len(states) - 1``: ``commands[i]`` is the command stepping
        ``states[i]`` to ``states[i + 1]``.
        """
        locs = self.path_to_local(k)
        states = [self.state_at_local(i) for i in locs]
        commands = [self.mover_names[int(self.parent_cmd[i])] for i in locs[1:]]
        return states, commands

    # -- per-command columns ---------------------------------------------------

    def succ_local(self, command: Command | str) -> np.ndarray:
        """Local successor column of one command (length ``size``).

        The reachable set is closed under every command, so the column is
        total: ``succ_local(c)[k]`` is the local id of ``c``'s successor of
        local state ``k``.
        """
        if isinstance(command, str):
            cmd = self.program.command_named(command)
        else:
            cmd = command
        col = self._succ.get(cmd.name)
        if col is None:
            if cmd.is_skip():
                col = np.arange(self.size, dtype=np.int64)
            else:
                col = self.local_of(cmd.succ_of(self.space, self.global_ids))
            self._succ[cmd.name] = col
        return col

    def enabled_local(self, command: Command | str) -> np.ndarray:
        """Local enabledness column of one command (length ``size``)."""
        if isinstance(command, str):
            cmd = self.program.command_named(command)
        else:
            cmd = command
        col = self._enabled.get(cmd.name)
        if col is None:
            col = cmd.enabled_at(self.space, self.global_ids)
            self._enabled[cmd.name] = col
        return col

    # -- predicates ------------------------------------------------------------

    def pred_mask(self, pred: Predicate) -> np.ndarray:
        """Satisfaction mask of ``pred`` over the local ids."""
        return pred.mask_at(self.space, self.global_ids)

    # -- graph ----------------------------------------------------------------

    def graph(self):
        """The union sub-CSR backend over local ids (built lazily, cached).

        A :class:`repro.semantics.graph_backend.GraphBackend`, so every
        closure/distance/condensation kernel of the dense tier runs
        unchanged on the subspace.
        """
        if self._graph is None:
            from repro.semantics.sparse.subgraph import assemble_backend

            self._graph = assemble_backend(self)
        return self._graph

    def __repr__(self) -> str:
        program = self._program_ref()
        name = program.name if program is not None else "<collected>"
        return (
            f"<ReachableSubspace {name}: {self.size} of "
            f"{self.space.size} states, {self.levels} BFS levels>"
        )


#: Weak per-program cache of the default exploration.  Values are either
#: the :class:`ReachableSubspace` or, for programs the sparse tier cannot
#: decide, the failure message (a negative entry — message only, never
#: the exception object, whose traceback would strongly pin the program).
_CACHE: "weakref.WeakKeyDictionary[Program, ReachableSubspace | str]" = (
    weakref.WeakKeyDictionary()
)


def explore(
    program: Program,
    *,
    seeds: np.ndarray | None = None,
    node_limit: int | None = None,
    max_states: int | None = None,
    join_limit: int = DEFAULT_JOIN_LIMIT,
) -> ReachableSubspace:
    """BFS-expand the reachable subspace of ``program``.

    ``seeds`` overrides the start set (global indices; default: the sparse
    enumeration of ``initially``).  Raises :class:`ExplorationError` when
    the discovered set exceeds ``node_limit`` (default
    :data:`DEFAULT_NODE_LIMIT`; ``max_states`` is the deprecated alias) —
    the sparse tier's only size wall: the *encoded* space is unbounded up
    to the ``int64`` index range.
    """
    if node_limit is None:
        node_limit = max_states if max_states is not None else DEFAULT_NODE_LIMIT
    space = program.space
    space.require_vector_indexable("sparse exploration")
    if seeds is None:
        start = initial_indices(program, join_limit=join_limit)
    else:
        start = np.unique(np.asarray(seeds, dtype=np.int64))
        if start.size and (start[0] < 0 or start[-1] >= space.size):
            raise ExplorationError(f"seed indices outside [0, {space.size})")
    if start.size > node_limit:
        raise ExplorationError(
            f"start set of {program.name} already exceeds "
            f"node_limit={node_limit}"
        )
    movers = [c for c in program.commands if not c.is_skip()]
    known = start
    frontier = start
    level_sets = [start]
    # Per level, aligned with level_sets: the *global* parent index and
    # mover index that first produced each fresh state (-1 for roots).
    parent_sets = [np.full(start.shape[0], -1, dtype=np.int64)]
    pcmd_sets = [np.full(start.shape[0], -1, dtype=np.int64)]
    while frontier.size:
        cols = [cmd.succ_of(space, frontier) for cmd in movers]
        if not cols:
            break
        all_succ = np.concatenate(cols)
        cand = np.unique(all_succ)
        fresh = cand[~in_sorted(known, cand)]
        if fresh.size == 0:
            break
        # Both arrays are sorted and disjoint: a positional insert is the
        # O(m) merge (no per-level re-sort of the whole intern table).
        known = np.insert(known, np.searchsorted(known, fresh), fresh)
        if known.size > node_limit:
            raise ExplorationError(
                f"reachable exploration of {program.name} exceeded "
                f"node_limit={node_limit} (encoded space {space.size}); "
                "raise the limit if the workload is expected"
            )
        # First-discovery parents: among the stacked (command, frontier)
        # successor entries that land on fresh states, keep the first per
        # state — deterministic in (command order, frontier order), which
        # pins the witness paths across runs.
        take = in_sorted(fresh, all_succ)
        succ_f = all_succ[take]
        src_f = np.tile(frontier, len(cols))[take]
        cmd_ids = np.repeat(np.arange(len(cols), dtype=np.int64), frontier.shape[0])
        cmd_f = cmd_ids[take]
        _, first = np.unique(succ_f, return_index=True)
        parent_sets.append(src_f[first])
        pcmd_sets.append(cmd_f[first])
        level_sets.append(fresh)
        frontier = fresh
    m = known.shape[0]
    dist = np.full(m, -1, dtype=np.int64)
    parent = np.full(m, -1, dtype=np.int64)
    parent_cmd = np.full(m, -1, dtype=np.int64)
    for level, nodes in enumerate(level_sets):
        if nodes.size:
            loc = np.searchsorted(known, nodes)
            dist[loc] = level
            pg = parent_sets[level]
            has = pg >= 0
            if has.any():
                ploc = np.full(nodes.shape[0], -1, dtype=np.int64)
                ploc[has] = np.searchsorted(known, pg[has])
                parent[loc] = ploc
                parent_cmd[loc] = pcmd_sets[level]
    return ReachableSubspace(
        program,
        space,
        known,
        dist,
        np.searchsorted(known, start) if m else start,
        len(level_sets),
        parent,
        parent_cmd,
        tuple(c.name for c in movers),
    )


def reachable_subspace(program: Program) -> ReachableSubspace:
    """The (weakly) cached default exploration of ``program``.

    Mirrors ``TransitionSystem.for_program``: repeated sparse checks — the
    normal mode for the paper's proof chains — share one exploration.
    Failures are cached too (as negative entries), so a proof chain over a
    program the sparse tier cannot decide pays the doomed BFS once, not
    once per routed check, before each check's dense fallback.
    """
    cached = _CACHE.get(program)
    if isinstance(cached, ReachableSubspace):
        return cached
    if cached is not None:
        raise ExplorationError(cached)
    try:
        sub = explore(program)
    except ExplorationError as exc:
        _CACHE[program] = str(exc)
        raise
    _CACHE[program] = sub
    return sub
