"""Sparse on-the-fly exploration engine (tier 3 of the semantic engine).

Composition multiplies the *encoded* state space (``F ∘ G ∘ H`` lives in
the product of the component spaces) while the *reachable* set typically
stays a sliver of it — conservation laws, lockstep counters, and locality
all cut exponentially.  The dense tiers (successor tables, union CSR)
allocate arrays of length ``space.size`` and therefore stop scaling long
before composition stacks get interesting.  This package is the third
tier: it **never allocates a full-space array**.  Categorically, the
product object is queried through its projections — per-variable frontier
decodes — instead of being materialized.

Layout
------
- :mod:`repro.semantics.sparse.explorer` — sparse enumeration of the
  initial states (a vectorized join over the ``initially`` conjuncts),
  breadth-first frontier expansion through the per-command
  ``Command.succ_of`` kernels with sorted-array interning of discovered
  global indices, and the resulting :class:`ReachableSubspace` (global ↔
  local id maps, per-command local successor columns, BFS distances).
- :mod:`repro.semantics.sparse.subgraph` — assembly of the subspace's
  union sub-CSR on **local** ids, feeding the existing
  :mod:`repro.util.csr` kernels and :mod:`repro.semantics.scc`
  condensation unchanged.
- :mod:`repro.semantics.sparse.checkers` — leads-to (weak and strong
  fairness) and reachable-invariant checks over local ids, plus the
  reachable-restricted obligation checkers (validity / init / next /
  stable / transient / strong transient) that discharge the leaves of
  synthesized proof certificates through the frontier kernels.

Routing
-------
The dense checkers consult :func:`sparse_enabled` and hand off to this
tier when ``space.size > SPARSE_THRESHOLD``; callers of ``check_leadsto``
/ ``check_leadsto_strong`` / ``check_reachable_invariant`` /
``reachable_states`` never need to know which tier ran.

Semantics note.  The paper's property semantics is *inductive* — it
quantifies over **all** states, reachable or not.  A sparse check can
only ever see the reachable part, so the sparse tier decides the
**reachable-restricted** judgment: ``p ↝ q`` from every *reachable*
``p``-state.  For ``check_reachable_invariant`` the two coincide by
definition; for leads-to the sparse verdict can differ from the dense one
exactly on properties whose counterexamples are unreachable (the
restriction every execution-based interpretation uses anyway).  Each
sparse :class:`~repro.semantics.checker.CheckResult` records the
restriction in its message and witness.

Certification.  Since the sparse tier decides judgments, it also
*certifies* them: :func:`repro.semantics.synthesis.synthesize_leadsto_proof`
builds reachable-restricted induction certificates directly on a
:class:`ReachableSubspace`, with levels that are
:class:`~repro.core.predicates.SupportPredicate` sets of reachable global
indices and leaf obligations discharged by this package's obligation
checkers.  The variant metric of those certificates is the **canonical
sinks-first SCC emission order** of :mod:`repro.semantics.scc`, which the
local-id sub-CSR reproduces exactly (``global_ids`` is sorted, so local
ids preserve the global order and every canonical tie-break) — see
``docs/proofs.md`` for the full invariant and its paper cross-references
(§2 proof rules, §4.6 metric induction).
"""

from __future__ import annotations

from repro.core.state import StateSpace
from repro.errors import CapacityError, ExplorationError

from repro.semantics.sparse.explorer import (
    ReachableSubspace,
    adopt_subspace,
    explore,
    initial_indices,
    reachable_subspace,
)
from repro.semantics.sparse.checkpoint import (
    CheckpointPolicy,
    cache_path_for,
    load_checkpoint,
    program_digest,
    resume_exploration,
    save_subspace,
)
from repro.semantics.sparse.subgraph import assemble_backend
from repro.semantics.sparse.checkers import (
    LocalFairAnalysis,
    check_init_sparse,
    check_leadsto_sparse,
    check_leadsto_strong_sparse,
    check_next_sparse,
    check_obligations_batched_sparse,
    check_reachable_invariant_sparse,
    check_stable_sparse,
    check_transient_sparse,
    check_transient_strong_sparse,
    check_validity_sparse,
    sparse_fair_analysis,
)

__all__ = [
    "SPARSE_THRESHOLD",
    "sparse_enabled",
    "routed_subspace",
    "dense_fallback",
    "ReachableSubspace",
    "explore",
    "initial_indices",
    "reachable_subspace",
    "adopt_subspace",
    "CheckpointPolicy",
    "cache_path_for",
    "load_checkpoint",
    "program_digest",
    "resume_exploration",
    "save_subspace",
    "assemble_backend",
    "LocalFairAnalysis",
    "sparse_fair_analysis",
    "check_leadsto_sparse",
    "check_leadsto_strong_sparse",
    "check_reachable_invariant_sparse",
    "check_validity_sparse",
    "check_init_sparse",
    "check_next_sparse",
    "check_stable_sparse",
    "check_transient_sparse",
    "check_transient_strong_sparse",
    "check_obligations_batched_sparse",
]

#: Spaces larger than this are routed to the sparse tier by the dense
#: checkers (dense masks/tables above it cost tens of MB per array and
#: minutes of table construction).  This is the **public tier knob**:
#: because routing also switches the leads-to judgment to the
#: reachable-restricted one (see above), callers that need the inductive
#: all-states verdict on a large space can set it to ``float("inf")``
#: (force dense, at dense memory cost), and tests set it to ``0``/``1``
#: to force the sparse tier on small spaces.  The explicit
#: ``check_*_sparse`` functions in :mod:`repro.semantics.sparse.checkers`
#: are always available regardless of the threshold.
SPARSE_THRESHOLD: float = 1_000_000


def sparse_enabled(space: StateSpace) -> bool:
    """True iff checks over ``space`` should run on the sparse tier."""
    return space.size > SPARSE_THRESHOLD


def dense_fallback(space: StateSpace, dense_op: str, exc: Exception) -> None:
    """Gate the sparse→dense fallback, chaining the sparse failure.

    The single place every fallback site goes through after the sparse
    tier raised ``exc``: returns normally when the space fits the dense
    tier (the caller then runs densely), and re-raises the
    :class:`~repro.errors.CapacityError` **with ``exc`` as its
    ``__cause__``** when it does not — so the original traceback (and any
    checkpoint path riding on it) survives the tier router instead of
    being flattened into a message string.
    """
    try:
        space.require_dense(
            f"the dense fallback for {dense_op} (sparse tier failed: {exc})"
        )
    except CapacityError as cap:
        raise cap from exc


def routed_subspace(program, dense_op: str, *, budget=None, checkpoint=None):
    """The cached reachable subspace when ``program`` routes sparse.

    The single source of the tier-routing fallback policy for callers
    that work on the subspace directly (proof side conditions, the proof
    synthesizer; the routed checkers in :mod:`repro.semantics.checker`
    wrap their sparse twins the same way).  Returns ``None`` when the
    caller should run densely — either the space is below the threshold,
    or the sparse tier failed *and* the space fits the dense tier (beyond
    ``DENSE_MAX`` the fallback refuses with a
    :class:`~repro.errors.CapacityError` chaining the sparse failure).

    ``budget`` / ``checkpoint`` are forwarded to the exploration;
    :class:`~repro.errors.BudgetExhausted` propagates to the caller
    (budget exhaustion is resumable, never grounds for a dense restart).
    """
    space = program.space
    if not sparse_enabled(space):
        return None
    try:
        return reachable_subspace(program, budget=budget, checkpoint=checkpoint)
    except ExplorationError as exc:
        dense_fallback(space, dense_op, exc)
        return None
