"""Batched obligation kernels for columnar induction certificates.

The per-level proof kernel (:meth:`repro.core.proofs.ProofNode.check`)
discharges roughly ten semantic obligations per induction level — one
``check_next``/``check_transient``/validity call each, every one paying
predicate-mask evaluation over the working state set.  For the
certificates the synthesizer emits (10⁴–10⁵ levels on composition
stacks), that per-level loop is the entire cost of checking: the 4×4
philosopher-grid certificate synthesizes in seconds but its ~43k levels
made the old kernel walk infeasible.

This module is the batched twin.  It exploits the *columnar* certificate
layout (:class:`repro.core.predicates.SupportTable`): every level's
members sit in one level-major table, so each obligation family becomes
**one vectorized pass per command over all levels at once** —

- *coverage* (``p ⇒ q ∨ ⋁ levels``): one membership scatter;
- *exit-ladder entailment* (``exit[n] ⇒ q ∨ lower levels`` for every
  ``n``): one cumulative-membership comparison over the shared sorted
  ``(member, rank)`` columns — each entry is checked against its own
  tightest cutoff instead of re-deriving the quadratic ``lower`` union
  per level;
- *next* (``Lₙ∧¬Eₙ next Lₙ∨Eₙ``): per command, gather the successors of
  **all** level members once, decide membership by ``np.searchsorted``
  rank lookups against the stacked table, and reduce one flag per level
  with a segmented ``bincount``;
- *weak transient*: same stacked pass per fair command, accumulating
  "some fair command exits everywhere" per level;
- *strong transient*: the per-level SCC criterion, evaluated as **one**
  condensation of the disjoint union of the per-level subgraphs (a
  "position graph" whose nodes are table entries, so levels never merge)
  followed by one batched :func:`repro.semantics.leadsto._fair_flags`
  pass.

Everything else the per-level walk checks — the ``Ensures`` expansion's
intermediate equalities, the implication leaves ``X ⇒ exit`` and
``L ∧ exit ⇒ exit``, the declared disjunction left-hand sides — is a
predicate-calculus tautology *for any table contents* once the
certificate has the synthesized shape (the driver verifies that shape
structurally; see :func:`repro.semantics.synthesis.
check_certificate_batched`).  The batched kernel therefore discharges
exactly the same obligation set as the per-level oracle and counts it
identically; ``tests/test_batched_check.py`` pins verdict equality on
both tiers, including injected-fault certificates.

The kernel is tier-agnostic: it works over a compact id universe
(global indices on the dense tier, local ids on the sparse tier) through
a handful of array-valued callables, so nothing here ever allocates an
array of length ``space.size`` unless the adapter's universe *is* the
space.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.predicates import Predicate
from repro.core.proofs import ProofCheckResult, ProofFailure

__all__ = [
    "CertificateLayout",
    "check_columnar_obligations",
    "FootprintResult",
    "FootprintKernel",
    "FOOTPRINT_MAX",
]


@dataclass
class CertificateLayout:
    """The validated columnar view of a synthesized certificate.

    Extracted (and structurally verified) from a
    :class:`~repro.core.rules.MetricInduction` tree by
    :func:`repro.semantics.synthesis.check_certificate_batched`; consumed
    by the tier adapters (:func:`repro.semantics.checker.
    check_obligations_batched` and :func:`repro.semantics.sparse.checkers.
    check_obligations_batched_sparse`).

    ``level_members[n]`` is level ``n``'s sorted global-index array (the
    backing array of its :class:`~repro.core.predicates.SupportPredicate`);
    ``prefix_members``/``prefix_ranks`` are the shared sorted columns of
    the rank-gated exit ladder.  The two describe the *same* table for a
    healthy certificate, but the kernel treats them independently — an
    injected inconsistency (corrupted member, broken rank gate) must be
    refused, not assumed away.
    """

    p: Predicate
    q: Predicate
    level_members: list[np.ndarray]
    prefix_members: np.ndarray
    prefix_ranks: np.ndarray
    fairness: str


def _rank_lookup(
    sorted_ids: np.ndarray, ranks: np.ndarray, ids: np.ndarray, sentinel: int
) -> np.ndarray:
    """``ranks`` gathered at the positions of ``ids`` in ``sorted_ids``
    (``sentinel`` where absent)."""
    out = np.full(ids.shape[0], sentinel, dtype=np.int64)
    if sorted_ids.size:
        pos = np.searchsorted(sorted_ids, ids)
        clipped = np.minimum(pos, sorted_ids.size - 1)
        hit = (pos < sorted_ids.size) & (sorted_ids[clipped] == ids)
        out[hit] = ranks[clipped[hit]]
    return out


def _seg_any(level_ids: np.ndarray, flags: np.ndarray, n_levels: int) -> np.ndarray:
    """Per-level "any flag set" — the segmented reduction over the
    level-major table (``bincount`` is empty-segment-safe, unlike
    ``logical_or.reduceat``)."""
    if not flags.any():
        return np.zeros(n_levels, dtype=bool)
    return np.bincount(level_ids[flags], minlength=n_levels) > 0


#: Cap on the example states decoded per obligation family (a corrupted
#: 10⁵-level certificate should refuse with a handful of witnesses, not
#: one failure record per level).
_MAX_REPORTED = 5


def check_columnar_obligations(
    *,
    n: int,
    p_mask: np.ndarray,
    q_mask: np.ndarray,
    level_members: list[np.ndarray],
    prefix_members: np.ndarray,
    prefix_ranks: np.ndarray,
    commands: list[tuple[str, Callable[[np.ndarray], np.ndarray]]],
    fair: list[tuple[str, Callable[[np.ndarray], np.ndarray]]],
    strong: bool,
    enabled_at: Callable[[str, np.ndarray], np.ndarray] | None,
    decode: Callable[[int], object],
    tier: str,
) -> ProofCheckResult:
    """Discharge every obligation of a columnar certificate, batched.

    All ids live in the adapter's compact universe ``[0, n)``:
    ``level_members``/``prefix_members`` are the layout's arrays already
    mapped into it (entries outside the universe dropped — they are
    invisible to every mask the per-level oracle computes over it).
    ``commands`` maps **all** commands to successor gathers; ``fair``
    the fair subset; ``enabled_at`` is required exactly when ``strong``.

    Returns a :class:`~repro.core.proofs.ProofCheckResult` whose verdict,
    node count and obligation count equal the per-level oracle's on the
    same certificate.
    """
    n_levels = len(level_members)
    sizes = np.array([m.shape[0] for m in level_members], dtype=np.int64)
    mem = (
        np.concatenate(level_members)
        if n_levels
        else np.empty(0, dtype=np.int64)
    )
    lvl = np.repeat(np.arange(n_levels, dtype=np.int64), sizes)
    result = ProofCheckResult(mode="batched")
    # One metric-induction node plus seven nodes per level (ensures and
    # its six-node expansion); one coverage obligation plus ten per level
    # — the same accounting the per-level walk produces.
    result.nodes_checked = 1 + 7 * n_levels
    result.obligations_checked = 1 + 10 * n_levels
    rec = obs.get_recorder()
    if rec.enabled:
        # Per-phase breakdown of the 1 + 10n obligation total: one
        # coverage side condition, then per level one exit-ladder
        # entailment, one next, one transient, and the seven structural
        # tautologies of the synthesized shape.
        rec.add("proof.obligations.coverage", 1)
        rec.add("proof.obligations.exit_ladder", n_levels)
        rec.add("proof.obligations.next", n_levels)
        rec.add("proof.obligations.transient", n_levels)
        rec.add("proof.obligations.structural", 7 * n_levels)

    def report(path: str, message: str, bad_ids: np.ndarray) -> None:
        shown = bad_ids[:_MAX_REPORTED]
        states = ", ".join(repr(decode(int(i))) for i in shown)
        more = (
            f" (+{bad_ids.size - shown.size} more)"
            if bad_ids.size > shown.size
            else ""
        )
        result.failures.append(
            ProofFailure(path, f"{message}: e.g. {states}{more} [{tier}]")
        )

    # ------------------------------------------------------------------
    # Coverage: p ⇒ q ∨ ⋁ levels (the metric-induction side condition).
    # ------------------------------------------------------------------
    covered = np.zeros(n, dtype=bool)
    if mem.size:
        covered[mem] = True
    bad = np.flatnonzero(p_mask & ~q_mask & ~covered)
    if bad.size:
        report(
            "metric-induction",
            "p is not covered by q and the levels",
            bad,
        )

    # ------------------------------------------------------------------
    # Exit-ladder entailment: exit[m] ⇒ q ∨ (levels below m), for every
    # m, collapsed to one pass: each sorted-table entry (s, r) belongs to
    # every exit[m] with m > r, and the tightest of those demands that s
    # is in q or in some level ≤ r.  "Some level ≤ r" is a cumulative-
    # membership comparison against the minimum level actually containing
    # s (per the level-member arrays, which the gate must agree with).
    # ------------------------------------------------------------------
    if mem.size:
        # np.unique returns first-occurrence indices; mem is level-major,
        # so the first occurrence of a state carries its minimum level.
        uniq_mem, first = np.unique(mem, return_index=True)
        min_level = lvl[first]
    else:
        uniq_mem = np.empty(0, dtype=np.int64)
        min_level = np.empty(0, dtype=np.int64)
    # Entries whose rank r can gate some checked exit (m ≤ n_levels - 1
    # needs r < m, i.e. r ≤ n_levels - 2; corrupted negative ranks gate
    # every exit and are caught by the same comparison).
    active_gate = prefix_ranks <= n_levels - 2
    if active_gate.any():
        gids = prefix_members[active_gate]
        grank = prefix_ranks[active_gate]
        glev = _rank_lookup(uniq_mem, min_level, gids, n_levels)
        viol = ~q_mask[gids] & ~(glev <= grank)
        vidx = np.flatnonzero(viol)
        if vidx.size:
            first_level = int(max(grank[vidx[0]] + 1, 0))
            report(
                "metric-induction",
                f"level {first_level}: premise rhs does not entail "
                "(q ∨ lower levels) — the rank-gated exit ladder admits "
                "states outside every lower level",
                gids[vidx],
            )

    if n_levels == 0:
        return result

    # ------------------------------------------------------------------
    # Stacked-table membership machinery.  Keys (level, member) are
    # strictly increasing in level-major order, so one searchsorted per
    # command decides "successor lands in the *same* level" for every
    # member at once; the hit position doubles as the successor's table
    # position (the node id of the strong-fairness position graph).
    # ------------------------------------------------------------------
    keys = lvl * np.int64(n) + mem

    def same_level_pos(succ: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(hit mask, table position) of each member's successor within
        its own level; position is the table size where absent."""
        k = lvl * np.int64(n) + succ
        pos = np.searchsorted(keys, k)
        clipped = np.minimum(pos, keys.size - 1)
        hit = (pos < keys.size) & (keys[clipped] == k)
        pos = np.where(hit, clipped, keys.size)
        return hit, pos

    q_mem = q_mask[mem]
    pr_mem = _rank_lookup(prefix_members, prefix_ranks, mem, n_levels)
    # pnq: member of its level, outside exit[level] = q ∨ prefix(<level).
    active = ~q_mem & ~(pr_mem < lvl)

    # ------------------------------------------------------------------
    # Next + transient, one stacked pass per command.
    # ------------------------------------------------------------------
    next_fail = np.zeros(n_levels, dtype=bool)
    next_example: dict[int, tuple[str, int, int]] = {}
    trans_ok = np.zeros(n_levels, dtype=bool)
    fair_names = {name for name, _ in fair}
    in_level_cache: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name, succ_at in commands:
        succ = succ_at(mem)
        hit, pos = same_level_pos(succ)
        in_level_cache[name] = (hit, pos)
        q_succ = q_mask[succ]
        pr_succ = _rank_lookup(prefix_members, prefix_ranks, succ, n_levels)
        # next: successor must be in L ∨ exit = L ∨ q ∨ prefix(<level).
        bad = active & ~(hit | q_succ | (pr_succ < lvl))
        fails = _seg_any(lvl, bad, n_levels)
        fresh = fails & ~next_fail
        if fresh.any():
            bad_idx = np.flatnonzero(bad)
            _, firsts = np.unique(lvl[bad_idx], return_index=True)
            for j in firsts:
                i = int(bad_idx[int(j)])
                next_example.setdefault(
                    int(lvl[i]), (name, int(mem[i]), int(succ[i]))
                )
            next_fail |= fails
        if not strong and name in fair_names:
            # weak transient: succ stays in the same level's pnq set; a
            # fair command is helpful for a level iff no member is stuck.
            stuck = active & hit & ~q_succ & ~(pr_succ < lvl)
            trans_ok |= ~_seg_any(lvl, stuck, n_levels)

    for m in sorted(next_example)[:_MAX_REPORTED]:
        name, src, dst = next_example[m]
        result.failures.append(ProofFailure(
            f"metric-induction.{m}:ensures.0:disjunction.0:transitivity.0:psp",
            f"[FAILS] next: command {name} steps {decode(src)!r} to "
            f"{decode(dst)!r}, which leaves level ∨ exit [{tier}]",
        ))
    if len(next_example) > _MAX_REPORTED:
        result.failures.append(ProofFailure(
            "metric-induction",
            f"... {len(next_example) - _MAX_REPORTED} more level(s) fail "
            "their next obligation",
        ))

    # ------------------------------------------------------------------
    # Transient per level: weak — some fair command exits the level's
    # pnq set from every member; strong — the per-level SCC criterion on
    # the disjoint union of the per-level subgraphs.
    # ------------------------------------------------------------------
    act_count = np.bincount(lvl[active], minlength=n_levels)
    if strong:
        trans_fail = _strong_transient_fail(
            n_levels, lvl, active, fair, enabled_at, mem, in_level_cache, commands
        )
        kind = "transient-strong"
        why = "a strongly-fair execution can stay inside the level forever"
    else:
        if not fair:
            trans_ok = act_count == 0
        else:
            trans_ok |= act_count == 0
        trans_fail = ~trans_ok
        kind = "transient"
        why = (
            "no single fair command falsifies the level's p ∧ ¬exit from "
            "every member"
            if fair
            else "the program has no fair commands (D = ∅)"
        )
    for m in np.flatnonzero(trans_fail)[:_MAX_REPORTED]:
        m = int(m)
        members_m = mem[(lvl == m) & active]
        example = f": e.g. {decode(int(members_m[0]))!r}" if members_m.size else ""
        result.failures.append(ProofFailure(
            f"metric-induction.{m}:ensures.0:disjunction.0:transitivity"
            f".0:psp.0:{kind}",
            f"[FAILS] {kind}: {why}{example} [{tier}]",
        ))
    extra_t = int(trans_fail.sum()) - _MAX_REPORTED
    if extra_t > 0:
        result.failures.append(ProofFailure(
            "metric-induction",
            f"... {extra_t} more level(s) fail their {kind} obligation",
        ))
    return result


def _strong_transient_fail(
    n_levels: int,
    lvl: np.ndarray,
    active: np.ndarray,
    fair: list[tuple[str, Callable[[np.ndarray], np.ndarray]]],
    enabled_at: Callable[[str, np.ndarray], np.ndarray] | None,
    mem: np.ndarray,
    in_level_cache: dict[str, tuple[np.ndarray, np.ndarray]],
    commands: list[tuple[str, Callable[[np.ndarray], np.ndarray]]],
) -> np.ndarray:
    """Per-level strong-transient refusals, via one SCC pass.

    The per-level checker condenses the subgraph induced on each level's
    ``p∧¬exit`` set separately.  Batched, that is the condensation of the
    **disjoint union**: nodes are table positions (so overlapping or
    duplicated levels stay separate), edges connect a position to its
    successor's position *within the same level* only.  One
    :func:`repro.semantics.scc.condensation` call plus one batched
    :func:`repro.semantics.leadsto._fair_flags` pass then evaluates the
    strong-fairness criterion for every level's every SCC at once; a
    level fails iff one of its components is flagged.
    """
    from repro.semantics.leadsto import _fair_flags
    from repro.semantics.scc import condensation

    t = mem.shape[0]
    # Position tables over t + 1 nodes (the last is the "outside" sink,
    # excluded from the mask, so exits become cross-mask edges).
    mask = np.append(active, False)
    tables = []
    by_name = {}
    for name, _ in commands:
        hit, pos = in_level_cache[name]
        table = np.append(pos, t)  # sentinel self-entry (self-loop, dropped)
        tables.append(table)
        by_name[name] = table
    cond = condensation(mask, tables)
    if cond.count == 0:
        return np.zeros(n_levels, dtype=bool)
    fair_tables = [by_name[name] for name, _ in fair]
    enabled_rows = [
        np.append(enabled_at(name, mem), False) for name, _ in fair
    ]
    flags = _fair_flags(cond, fair_tables, enabled=enabled_rows)
    fail = np.zeros(n_levels, dtype=bool)
    for k in np.flatnonzero(flags):
        fail[int(lvl[int(cond.components[int(k)][0])])] = True
    return fail


# ===========================================================================
# Footprint obligation kernel (compositional certificates)
# ===========================================================================
#
# The compositional kernel (repro.semantics.compositional) re-checks
# assume–guarantee certificates for systems whose encoded product space is
# beyond *any* tier — even sparse int64 indexing.  It can, because every
# obligation of the rule tree is local: a per-command wp check mentions
# only vars(p) ∪ vars(q) ∪ vars(command), and the all-states (inductive)
# semantics of this logic quantifies over *every* assignment of the
# remaining variables — they are free coordinates, so an obligation holds
# over the product iff it holds over the small space of the variables it
# mentions.  FootprintKernel is the evaluator behind that observation:
# it projects each obligation onto its footprint, builds (and caches) the
# tiny StateSpace over exactly those variables, and decides the judgment
# exactly there.
#
# Two sound strengthenings keep footprints small when a *global*
# hypothesis (e.g. a token-conservation sum over every variable) shows up:
#
# - constant bindings: a hypothesis conjunct ``v == k`` removes ``v`` from
#   the space and pins it in the evaluation environment instead;
# - hypothesis projection: conjuncts whose variables would blow the
#   footprint cap are *dropped* (checking a stronger obligation).  A check
#   that fails after dropping reports the drop — the refusal may be a
#   projection artifact, never an unsound acceptance.
#
# Linear invariants dodge the global footprint altogether:
# ``stable (Σ aᵥ·v = k)`` holds iff every command's weighted write-delta
# is zero under its guard — an obligation over vars(command) only
# (check_linear_stable).


@dataclass
class FootprintResult:
    """Outcome of one footprint-projected obligation."""

    ok: bool
    message: str = ""
    dropped: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.ok


#: Largest footprint space the kernel will enumerate (per obligation).
#: Compositional certificates keep obligations a handful of variables
#: wide; anything bigger is refused, never silently explored.
FOOTPRINT_MAX = 1 << 21


class FootprintKernel:
    """Exact obligation evaluation over per-obligation variable footprints.

    One instance per certificate check; footprint spaces are cached across
    obligations (the same ``{done, c[i], c[i+1]}``-shaped space recurs per
    pipeline stage), so a linear-in-components certificate checks with a
    bounded number of small enumerations per component.
    """

    def __init__(self, *, max_states: int = FOOTPRINT_MAX) -> None:
        self.max_states = int(max_states)
        self._spaces: dict[tuple, object] = {}
        self.evaluations = 0

    # -- spaces ------------------------------------------------------------

    def _space(self, variables):
        from repro.core.state import StateSpace

        key = tuple(sorted(v.name for v in variables))
        space = self._spaces.get(key)
        if space is None:
            ordered = sorted(variables, key=lambda v: v.name)
            space = StateSpace(ordered)
            self._spaces[key] = space
        return space

    def _fits(self, variables) -> bool:
        size = 1
        for v in variables:
            size *= v.domain.size
            if size > self.max_states:
                return False
        return True

    # -- predicate evaluation ---------------------------------------------

    @staticmethod
    def _binding_consistent(var, value) -> bool:
        """False when the pinned value lies outside the variable's domain
        (the hypothesis conjunct is unsatisfiable — vacuous truth)."""
        from repro.core.domains import IntRange

        dom = var.domain
        if isinstance(dom, IntRange):
            return dom.lo <= value <= dom.hi
        return any(value == v for v in dom.values())

    def _eval(self, preds, variables, bindings) -> list[np.ndarray]:
        """Boolean arrays of ``preds`` over the space of ``variables``,
        with out-of-footprint variables pinned by ``bindings``."""
        self.evaluations += len(preds)
        if not variables:
            env = dict(bindings)
            return [
                np.array([bool(p.as_expr().eval(env))], dtype=bool)
                for p in preds
            ]
        space = self._space(variables)
        env = dict(space.var_arrays())
        for var, value in bindings.items():
            env[var] = np.int64(value) if isinstance(value, int) else value
        out = []
        for p in preds:
            arr = np.asarray(p.as_expr().eval_vec(env), dtype=bool)
            if arr.ndim == 0:
                arr = np.broadcast_to(arr, (space.size,))
            out.append(arr)
        return out

    def _example(self, variables, bindings, mask) -> str:
        if not variables:
            items = bindings.items()
        else:
            space = self._space(variables)
            state = space.state_at(int(np.flatnonzero(mask)[0]))
            items = list(state.items()) + list(bindings.items())
        body = ", ".join(f"{v.name}={k}" for v, k in items)
        return "{" + body + "}"

    # -- entailment / equality --------------------------------------------

    def entails(self, hyp, concl) -> FootprintResult:
        """Validity ``hyp ⇒ concl`` over the (never materialized) product.

        Splits a disjunctive hypothesis, detects contradictory conjunct
        pairs, extracts constant bindings, deletes conclusion conjuncts
        already present in the hypothesis, then decides the remainder
        exactly on its footprint — dropping oversized hypothesis
        conjuncts (sound strengthening) when it must.
        """
        from repro.core.compositional import pred_disjuncts

        for d in pred_disjuncts(hyp):
            res = self._entails_case(d, concl)
            if not res.ok:
                return res
        return FootprintResult(True)

    def _entails_case(self, hyp, concl) -> FootprintResult:
        from repro.core.compositional import (
            constant_binding,
            pred_conjuncts,
            pred_disjuncts,
        )
        from repro.core.expressions import Not
        from repro.core.predicates import ExprPredicate, _Negation

        conjs = pred_conjuncts(hyp)
        descs = [c.describe() for c in conjs]
        desc_set = set(descs)
        # Contradictory hypothesis (x ∧ ¬x): vacuously valid.  Negation
        # may live at the predicate level (_Negation) or inside the
        # expression (ExprPredicate(Not ...)) after ``&`` merging.
        for c in conjs:
            if isinstance(c, _Negation) and c.inner.describe() in desc_set:
                return FootprintResult(True)
            if (
                isinstance(c, ExprPredicate)
                and isinstance(c.expr, Not)
                and ExprPredicate(c.expr.operand).describe() in desc_set
            ):
                return FootprintResult(True)
        # Constant bindings v == k pin variables instead of widening the
        # footprint; an out-of-domain pin makes the hypothesis vacuous.
        bindings: dict = {}
        kept: list = []
        for c in conjs:
            bound = constant_binding(c)
            if bound is not None:
                var, value = bound
                if not self._binding_consistent(var, value):
                    return FootprintResult(True)
                prior = bindings.get(var, value)
                if prior != value:
                    return FootprintResult(True)  # v=a ∧ v=b, a≠b
                bindings[var] = value
            else:
                kept.append(c)
        # Delete conclusion conjuncts the hypothesis already contains
        # (per disjunct of the conclusion): p ∧ r ⇒ p ∧ s reduces to
        # (p ∧ r) ⇒ s.  Purely syntactic (describe-equality), and sound:
        # the deleted conjunct holds under the hypothesis by assumption.
        goal_disjuncts = []
        for gd in pred_disjuncts(concl):
            parts = [
                g for g in pred_conjuncts(gd) if g.describe() not in desc_set
            ]
            if not parts:
                return FootprintResult(True)  # some disjunct fully implied
            goal_disjuncts.append(parts)
        goal_vars = set()
        for parts in goal_disjuncts:
            for g in parts:
                goal_vars |= set(g.variables()) - set(bindings)
        if not self._fits(goal_vars):
            return FootprintResult(
                False,
                "refused: the conclusion's own footprint exceeds the "
                f"kernel cap ({len(goal_vars)} variables)",
            )
        # Greedy hypothesis projection: keep conjuncts while the joint
        # footprint stays enumerable; drop the rest (strengthening).
        foot = set(goal_vars)
        used: list = []
        dropped: list[str] = []
        for c in kept:
            cv = set(c.variables()) - set(bindings)
            if self._fits(foot | cv):
                foot |= cv
                used.append(c)
            else:
                dropped.append(c.describe())
        variables = sorted(foot, key=lambda v: v.name)
        relevant = {v for v in bindings if any(
            v in c.variables() for c in used
        ) or any(
            v in g.variables() for parts in goal_disjuncts for g in parts
        )}
        live_bindings = {v: bindings[v] for v in relevant}
        hyp_masks = self._eval(used, variables, live_bindings)
        size = hyp_masks[0].shape[0] if hyp_masks else None
        goal_parts = [
            self._eval(parts, variables, live_bindings)
            for parts in goal_disjuncts
        ]
        if size is None:
            size = goal_parts[0][0].shape[0]
        hmask = np.ones(size, dtype=bool)
        for m in hyp_masks:
            hmask &= m
        gmask = np.zeros(size, dtype=bool)
        for parts in goal_parts:
            part = np.ones(size, dtype=bool)
            for m in parts:
                part &= m
            gmask |= part
        bad = hmask & ~gmask
        if not bad.any():
            return FootprintResult(True, dropped=tuple(dropped))
        example = self._example(variables, live_bindings, bad)
        note = (
            f" (after dropping oversized hypothesis conjunct(s) "
            f"{dropped} — the refusal may be a projection artifact)"
            if dropped
            else ""
        )
        return FootprintResult(
            False,
            f"{hyp.describe()} ⇒ {concl.describe()} fails on the "
            f"footprint at {example}{note}",
            dropped=tuple(dropped),
        )

    def equal(self, a, b) -> FootprintResult:
        """Semantic equality, as entailment both ways."""
        if a is b or a.describe() == b.describe():
            return FootprintResult(True)
        res = self.entails(a, b)
        if not res.ok:
            return res
        return self.entails(b, a)

    # -- command obligations ----------------------------------------------

    def check_wp(self, pre, cmd, post) -> FootprintResult:
        """``pre ⇒ wp.cmd.post`` on the footprint of (pre, post, cmd)."""
        try:
            wpred = cmd.wp(post)
        except Exception as exc:  # non-symbolic command/predicate
            return FootprintResult(
                False,
                f"refused: wp of {cmd.name} is not expressible ({exc})",
            )
        return self.check_wp_pred(pre, cmd, wpred)

    def check_wp_pred(self, pre, cmd, wpred) -> FootprintResult:
        res = self.entails(pre, wpred)
        if res.ok:
            return res
        return FootprintResult(
            False,
            f"command {cmd.name}: {res.message}",
            dropped=res.dropped,
        )

    def check_linear_stable(self, pred, commands) -> FootprintResult:
        """``stable (Σ aᵥ·v = k)`` via per-command write deltas.

        Each command preserves a linear equality iff, under its guard,
        the weighted sum of its assignment deltas is zero — an exact
        check over vars(command) alone, so conservation-style invariants
        spanning *every* variable of the composition never force a
        global footprint.
        """
        from repro.core.commands import GuardedCommand, Skip
        from repro.core.compositional import linear_terms
        from repro.core.expressions import EqE, esum
        from repro.core.predicates import ExprPredicate

        expr = pred.as_expr()
        if not isinstance(expr, EqE):
            return FootprintResult(
                False,
                f"refused: {pred.describe()} is not a linear equality",
            )
        left = linear_terms(expr.left)
        right = linear_terms(expr.right)
        if left is None or right is None:
            return FootprintResult(
                False,
                f"refused: {pred.describe()} is not (syntactically) linear",
            )
        coeffs = dict(left[0])
        for v, c in right[0].items():
            coeffs[v] = coeffs.get(v, 0) - c
        for cmd in commands:
            if isinstance(cmd, Skip) or cmd.is_skip():
                continue
            if not isinstance(cmd, GuardedCommand):
                return FootprintResult(
                    False,
                    f"refused: command {cmd.name} is not a guarded "
                    "command (write deltas are not expressible)",
                )
            deltas = [
                (a.expr - a.var.ref()) * coeffs[a.var]
                for a in cmd.assignments
                if coeffs.get(a.var, 0) != 0
            ]
            if not deltas:
                continue
            res = self.entails(
                ExprPredicate(cmd.guard),
                ExprPredicate(esum(deltas) == 0),
            )
            if not res.ok:
                return FootprintResult(
                    False,
                    f"command {cmd.name} does not preserve "
                    f"{pred.describe()}: {res.message}",
                )
        return FootprintResult(True)
