"""Schedulers: who picks the next command.

The paper's model constrains executions only by weak fairness of ``D``.
Schedulers realize (or deliberately violate, for testing) that constraint:

- :class:`RoundRobinScheduler` — cycles through all of ``C``; fair for any
  ``D ⊆ C`` (every command recurs with period ``|C|``).
- :class:`RandomFairScheduler` — i.i.d. uniform choice over ``C``; fair
  with probability 1 (each command recurs infinitely often almost surely).
- :class:`SequenceScheduler` — replays an explicit command-name sequence;
  the adversary used by tests to *demonstrate* unfair or q-avoiding
  schedules found by the model checker.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.commands import Command
from repro.core.program import Program
from repro.util.rng import make_rng

__all__ = [
    "Scheduler",
    "RoundRobinScheduler",
    "RandomFairScheduler",
    "SequenceScheduler",
]


class Scheduler:
    """Abstract scheduler: yields the next command to execute."""

    def __init__(self, program: Program) -> None:
        self.program = program

    def next_command(self, step: int) -> Command:
        """Command to execute at step ``step`` (0-based)."""
        raise NotImplementedError

    def is_fair_for(self, fair_names: frozenset[str]) -> bool:
        """Best-effort static fairness judgement (used in diagnostics)."""
        raise NotImplementedError


class RoundRobinScheduler(Scheduler):
    """Cycle deterministically through the command list.

    Fair for every ``D``: each command executes every ``|C|`` steps, so a
    semantically valid ``p ↝ q`` must be realized within
    ``|space| · |C|`` steps from any start state — the bound the simulation
    cross-validation tests rely on.
    """

    def next_command(self, step: int) -> Command:
        cmds = self.program.commands
        return cmds[step % len(cmds)]

    def is_fair_for(self, fair_names: frozenset[str]) -> bool:
        return True


class RandomFairScheduler(Scheduler):
    """Uniform i.i.d. choice over ``C`` (fair with probability 1)."""

    def __init__(self, program: Program, seed: int | np.random.Generator = 0) -> None:
        super().__init__(program)
        self._rng = make_rng(seed)

    def next_command(self, step: int) -> Command:
        cmds = self.program.commands
        return cmds[int(self._rng.integers(len(cmds)))]

    def is_fair_for(self, fair_names: frozenset[str]) -> bool:
        return True


class SequenceScheduler(Scheduler):
    """Replay an explicit finite schedule, then repeat it forever.

    Fair for ``D`` iff every fair command occurs in the (repeated) list.
    """

    def __init__(self, program: Program, names: Sequence[str]) -> None:
        super().__init__(program)
        if not names:
            raise ValueError("SequenceScheduler needs a non-empty schedule")
        self.names = tuple(names)
        for name in self.names:
            program.command_named(name)  # validates

    def next_command(self, step: int) -> Command:
        return self.program.command_named(self.names[step % len(self.names)])

    def is_fair_for(self, fair_names: frozenset[str]) -> bool:
        return fair_names <= set(self.names)
