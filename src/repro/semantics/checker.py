"""Semantic checkers for the safety fragment of the property language.

All checkers follow the paper's **inductive** semantics (§2): properties
quantify over *all* states of the space::

    init p        ≡  initially ⇒ p
    p next q      ≡  ⟨∀c : c ∈ C : p ⇒ wp.c.q⟩
    stable p      ≡  p next p
    transient p   ≡  ⟨∃c : c ∈ D : p ⇒ wp.c.¬p⟩
    invariant p   ≡  (init p) ∧ (stable p)

Because commands are total deterministic functions, ``p ⇒ wp.c.q`` over the
encoded space is the single vectorized test ``¬p_mask ∨ q_mask[table_c]``.

Checkers return a :class:`CheckResult` carrying a decoded counterexample
when the property fails — the failing state, the command, and its successor
— which the test suite and examples surface directly.

Tier routing.  Spaces above the sparse threshold route every checker here
to its reachable-restricted twin in
:mod:`repro.semantics.sparse.checkers` (results carry
``witness["tier"] == "sparse"``), falling back to the dense tier when the
sparse tier cannot decide — the same policy ``check_leadsto`` has always
used.  This is what lets the proof kernel discharge the obligations of
synthesized certificates on 10¹²-state composition stacks: every leaf
(``transient``/``next``/validity/``init``) is decided over the reachable
subspace through the frontier kernels, never a full-space mask.  Callers
that need the paper's inductive all-states judgment on a large space can
force the dense tier via ``repro.semantics.sparse.SPARSE_THRESHOLD``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.semantics.explorer import reachable_mask
from repro.semantics.transition import TransitionSystem

__all__ = [
    "CheckResult",
    "check_validity",
    "check_init",
    "check_next",
    "check_stable",
    "check_transient",
    "check_invariant",
    "check_reachable_invariant",
    "check_obligations_batched",
]


@dataclass
class CheckResult:
    """Outcome of a semantic property check.

    ``witness`` holds structured diagnostic data (decoded states, command
    names); its keys vary by ``kind`` and are documented per checker.
    """

    holds: bool
    kind: str
    subject: str
    message: str = ""
    witness: dict[str, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.holds

    def explain(self) -> str:
        """One-line human-readable summary."""
        status = "HOLDS" if self.holds else "FAILS"
        tail = f" — {self.message}" if self.message else ""
        return f"[{status}] {self.kind}: {self.subject}{tail}"


#: Lazily-bound ``(sparse package, ExplorationError, sparse checkers)``
#: triple — resolved once, then reused on every routed check.  The
#: checkers here sit on proof-kernel hot paths (one call per obligation),
#: where per-call ``import`` statements would dominate small instances;
#: the import must still be lazy because :mod:`repro.semantics.sparse`
#: imports this module.
_SPARSE_BINDINGS = None


def _sparse_bindings():
    global _SPARSE_BINDINGS
    if _SPARSE_BINDINGS is None:
        from repro.errors import ExplorationError
        from repro.semantics import sparse
        from repro.semantics.sparse import checkers

        _SPARSE_BINDINGS = (sparse, ExplorationError, checkers)
    return _SPARSE_BINDINGS


def _try_sparse(program: Program, checker_name: str, args, dense_op: str, **kwargs):
    """Run the sparse twin of a checker when the space routes sparse.

    Returns the sparse :class:`CheckResult`, or ``None`` when the check
    should run densely — either the space is below the threshold, or the
    sparse tier failed *and* the space fits the dense tier (beyond
    ``DENSE_MAX`` the fallback refuses with a
    :class:`~repro.errors.CapacityError` whose ``__cause__`` is the
    sparse failure).  ``kwargs`` (budget/checkpoint) are forwarded to the
    sparse twin verbatim.
    """
    sparse, exploration_error, checkers = _sparse_bindings()
    space = program.space
    if not sparse.sparse_enabled(space):
        return None
    try:
        return getattr(checkers, checker_name)(program, *args, **kwargs)
    except exploration_error as exc:
        sparse.dense_fallback(space, dense_op, exc)
        return None


def check_validity(program: Program, p: Predicate, q: Predicate) -> CheckResult:
    """Predicate-calculus validity ``p ⇒ q`` over the whole space
    (reachable-restricted on sparse-routed spaces; see module docstring).

    This is the side condition of the paper's *Implication* rule for
    leads-to and of ``init``-weakening steps.
    """
    routed = _try_sparse(program, "check_validity_sparse", (p, q), "check_validity")
    if routed is not None:
        return routed
    space = program.space
    bad = p.mask(space) & ~q.mask(space)
    idx = np.flatnonzero(bad)
    if idx.size == 0:
        return CheckResult(True, "validity", f"{p.describe()} => {q.describe()}")
    state = space.state_at(int(idx[0]))
    return CheckResult(
        False,
        "validity",
        f"{p.describe()} => {q.describe()}",
        message=f"violated at {state!r} (+{idx.size - 1} more)",
        witness={"state": state, "violations": int(idx.size)},
    )


def check_init(program: Program, p: Predicate) -> CheckResult:
    """``init p``: every state satisfying ``initially`` satisfies ``p``."""
    routed = _try_sparse(program, "check_init_sparse", (p,), "check_init")
    if routed is not None:
        return routed
    space = program.space
    bad = program.initial_mask() & ~p.mask(space)
    idx = np.flatnonzero(bad)
    if idx.size == 0:
        return CheckResult(True, "init", f"init {p.describe()}")
    state = space.state_at(int(idx[0]))
    return CheckResult(
        False,
        "init",
        f"init {p.describe()}",
        message=f"initial state {state!r} violates p",
        witness={"state": state, "violations": int(idx.size)},
    )


def check_next(program: Program, p: Predicate, q: Predicate) -> CheckResult:
    """``p next q``: every command maps every ``p``-state to a ``q``-state."""
    routed = _try_sparse(program, "check_next_sparse", (p, q), "check_next")
    if routed is not None:
        return routed
    ts = TransitionSystem.for_program(program)
    space = ts.space
    pm = p.mask(space)
    qm = q.mask(space)
    subject = f"{p.describe()} next {q.describe()}"
    for cmd, table in ts.all_tables():
        bad = pm & ~qm[table]
        idx = np.flatnonzero(bad)
        if idx.size:
            i = int(idx[0])
            state = space.state_at(i)
            succ = space.state_at(int(table[i]))
            return CheckResult(
                False,
                "next",
                subject,
                message=(
                    f"command {cmd.name} steps {state!r} to {succ!r}, "
                    "which violates q"
                ),
                witness={
                    "state": state,
                    "command": cmd.name,
                    "successor": succ,
                    "violations": int(idx.size),
                },
            )
    return CheckResult(True, "next", subject)


def check_stable(program: Program, p: Predicate) -> CheckResult:
    """``stable p ≡ p next p`` (decided by its sparse twin on routed
    spaces, densely through :func:`check_next` otherwise)."""
    routed = _try_sparse(program, "check_stable_sparse", (p,), "check_stable")
    if routed is not None:
        return routed
    result = check_next(program, p, p)
    return CheckResult(
        result.holds,
        "stable",
        f"stable {p.describe()}",
        message=result.message,
        witness=result.witness,
    )


def check_transient(program: Program, p: Predicate) -> CheckResult:
    """``transient p``: some fair command falsifies ``p`` from every
    ``p``-state.  The witness reports the helpful command when the
    property holds, and per-command failure states when it fails."""
    routed = _try_sparse(program, "check_transient_sparse", (p,), "check_transient")
    if routed is not None:
        return routed
    ts = TransitionSystem.for_program(program)
    space = ts.space
    pm = p.mask(space)
    subject = f"transient {p.describe()}"
    fair = ts.fair_tables()
    if not fair:
        # With D empty nothing is forced to execute, so only the
        # unsatisfiable predicate is transient.
        if not pm.any():
            return CheckResult(
                True,
                "transient",
                subject,
                message="p is unsatisfiable (vacuously transient)",
            )
        return CheckResult(
            False,
            "transient",
            subject,
            message="the program has no fair commands (D = ∅)",
        )
    failures: dict[str, Any] = {}
    for cmd, table in fair:
        bad = pm & pm[table]
        idx = np.flatnonzero(bad)
        if idx.size == 0:
            return CheckResult(
                True,
                "transient",
                subject,
                message=f"command {cmd.name} falsifies p from every p-state",
                witness={"command": cmd.name},
            )
        failures[cmd.name] = space.state_at(int(idx[0]))
    return CheckResult(
        False,
        "transient",
        subject,
        message=(
            "no single fair command falsifies p everywhere; per-command "
            "stuck states recorded in the witness"
        ),
        witness={"stuck_states": failures},
    )


def check_obligations_batched(program: Program, layout):
    """Dense twin of the batched certificate kernel: discharge every
    obligation of a columnar certificate over the full encoded space.

    The levels' member indices are used directly as global ids, the
    cached successor tables of :class:`~repro.semantics.transition.
    TransitionSystem` supply one gather per command over all level
    members at once, and enabledness (strong certificates only) is
    evaluated by the frontier kernel ``Command.enabled_at`` at the member
    rows.  Called through
    :func:`repro.semantics.synthesis.check_certificate_batched`; the
    per-level tree walk (:meth:`~repro.core.proofs.ProofNode.check`)
    remains the differential oracle.
    """
    from repro.semantics.obligations import check_columnar_obligations

    ts = TransitionSystem.for_program(program)
    space = ts.space
    commands = [
        (cmd.name, (lambda ids, t=table: t[ids]))
        for cmd, table in ts.all_tables()
    ]
    fair = [
        (cmd.name, (lambda ids, t=table: t[ids]))
        for cmd, table in ts.fair_tables()
    ]

    def enabled_at(name: str, ids: np.ndarray) -> np.ndarray:
        return program.command_named(name).enabled_at(space, ids)

    return check_columnar_obligations(
        n=space.size,
        p_mask=layout.p.mask(space),
        q_mask=layout.q.mask(space),
        level_members=list(layout.level_members),
        prefix_members=layout.prefix_members,
        prefix_ranks=layout.prefix_ranks,
        commands=commands,
        fair=fair,
        strong=layout.fairness == "strong",
        enabled_at=enabled_at,
        decode=space.state_at,
        tier="dense tier",
    )


def check_invariant(program: Program, p: Predicate) -> CheckResult:
    """``invariant p ≡ (init p) ∧ (stable p)`` (inductive, full space)."""
    subject = f"invariant {p.describe()}"
    init_res = check_init(program, p)
    if not init_res.holds:
        return CheckResult(
            False,
            "invariant",
            subject,
            message=f"init part fails: {init_res.message}",
            witness=init_res.witness,
        )
    stab_res = check_stable(program, p)
    if not stab_res.holds:
        return CheckResult(
            False,
            "invariant",
            subject,
            message=f"stable part fails: {stab_res.message}",
            witness=stab_res.witness,
        )
    return CheckResult(True, "invariant", subject)


def check_reachable_invariant(
    program: Program,
    p: Predicate,
    *,
    budget=None,
    subspace=None,
    recorder=None,
    checkpoint=None,
) -> CheckResult:
    """The weaker, *non-inductive* notion: ``p`` holds on every reachable
    state.  Not part of the paper's logic (it corresponds to the
    substitution-axiom strengthening the paper avoids); provided for
    comparison and diagnostics.

    ``budget`` / ``subspace`` / ``recorder`` form the normalized keyword
    set shared by every public checker (see ``docs/composition.md``).

    Spaces above the sparse threshold are decided by the sparse tier
    (:mod:`repro.semantics.sparse`) — same judgment, no full-space arrays
    — falling back to the dense tier when the sparse tier cannot decide.
    With a ``budget``, exhaustion on the sparse tier degrades to a
    resumable ``status="unknown"`` :class:`~repro.semantics.budget.
    PartialResult` instead of raising (see ``docs/robustness.md``).
    """
    if recorder is not None:
        from repro import obs

        with obs.use_recorder(recorder):
            return check_reachable_invariant(
                program,
                p,
                budget=budget,
                subspace=subspace,
                checkpoint=checkpoint,
            )
    space = program.space
    from repro.errors import ExplorationError
    from repro.semantics.sparse import dense_fallback, sparse_enabled

    if subspace is not None or sparse_enabled(space):
        from repro.semantics.sparse.checkers import (
            check_reachable_invariant_sparse,
        )

        try:
            return check_reachable_invariant_sparse(
                program, p, budget=budget, subspace=subspace, checkpoint=checkpoint
            )
        except ExplorationError as exc:
            dense_fallback(space, "check_reachable_invariant", exc)
    reach = reachable_mask(program)
    bad = reach & ~p.mask(space)
    idx = np.flatnonzero(bad)
    subject = f"reachable-invariant {p.describe()}"
    if idx.size == 0:
        return CheckResult(
            True,
            "reachable-invariant",
            subject,
            message=f"holds on all {int(reach.sum())} reachable states",
        )
    state = space.state_at(int(idx[0]))
    return CheckResult(
        False,
        "reachable-invariant",
        subject,
        message=f"reachable state {state!r} violates p",
        witness={"state": state, "violations": int(idx.size)},
    )
