"""Reachable-state exploration (breadth-first over the CSR backend).

The paper's property semantics is *inductive* (quantified over all states);
reachability enters only for the weaker convenience notion
``check_reachable_invariant`` and for diagnostics.  Exploration runs on the
cached union CSR graph (:mod:`repro.semantics.graph_backend`): each BFS
level is one gather over the frontier's adjacency, deduplicated by a
boolean-mask scatter — no per-table ``np.unique`` rounds, and repeated
queries against the same program share the adjacency.
"""

from __future__ import annotations

import numpy as np

from repro.core.program import Program
from repro.core.state import State
from repro.errors import ExplorationError
from repro.semantics.transition import TransitionSystem

__all__ = ["reachable_mask", "reachable_states", "distance_map"]


def reachable_mask(
    program: Program, *, from_mask: np.ndarray | None = None
) -> np.ndarray:
    """Boolean mask of states reachable from the initial states.

    ``from_mask`` overrides the start set (default: the ``initially``
    predicate's satisfaction mask).
    """
    ts = TransitionSystem.for_program(program)
    start = (
        program.initial_mask()
        if from_mask is None
        else np.asarray(from_mask, dtype=bool)
    )
    return ts.graph().forward_closure(start)


def reachable_states(
    program: Program,
    *,
    limit: int = 10_000,
    from_mask: np.ndarray | None = None,
) -> list[State]:
    """Decoded reachable states (guarded by ``limit`` to avoid surprises).

    ``from_mask`` overrides the start set, like its siblings.  Spaces above
    the sparse threshold enumerate through the sparse explorer, so the
    decoded list never requires a full-space mask.  Raises
    :class:`repro.errors.ExplorationError` when the reachable set exceeds
    ``limit``.
    """
    from repro.semantics.sparse import sparse_enabled

    idx = None
    sparse = sparse_enabled(program.space)
    if sparse:
        from repro.semantics.sparse.explorer import explore, reachable_subspace

        try:
            if from_mask is None:
                sub = reachable_subspace(program)
            else:
                seeds = np.flatnonzero(np.asarray(from_mask, dtype=bool))
                sub = explore(program, seeds=seeds)
            idx = sub.global_ids
        except ExplorationError as exc:
            # Sparse tier cannot decide (non-expression init, reachable
            # set over its node_limit): fall back to the dense mask —
            # refusing with a CapacityError (chaining the sparse failure
            # as __cause__) when even that cannot run.
            from repro.semantics.sparse import dense_fallback

            dense_fallback(program.space, "reachable_states", exc)
            idx = None
    if idx is None:
        idx = np.flatnonzero(reachable_mask(program, from_mask=from_mask))
    if idx.size > limit:
        hint = (
            "raise limit, or explore through the sparse tier "
            "(repro.semantics.sparse.explore caps work by node_limit, "
            "never by encoded size)"
            if sparse
            else "work with the mask instead"
        )
        raise ExplorationError(
            f"{idx.size} reachable states exceed limit={limit}; {hint}"
        )
    return [program.space.state_at(int(i)) for i in idx]


def distance_map(
    program: Program, *, from_mask: np.ndarray | None = None
) -> np.ndarray:
    """BFS distance (in command applications) from the start set;
    unreachable states get ``-1``.  Used by diagnostics and benchmarks."""
    ts = TransitionSystem.for_program(program)
    start = (
        program.initial_mask() if from_mask is None else np.asarray(from_mask, bool)
    )
    return ts.graph().distances(start)
