"""Reachable-state exploration (breadth-first over successor tables).

The paper's property semantics is *inductive* (quantified over all states);
reachability enters only for the weaker convenience notion
``check_reachable_invariant`` and for diagnostics.  The explorer is fully
vectorized: each BFS level applies every successor table to the whole
frontier at once.
"""

from __future__ import annotations

import numpy as np

from repro.core.program import Program
from repro.core.state import State
from repro.semantics.transition import TransitionSystem

__all__ = ["reachable_mask", "reachable_states", "distance_map"]


def reachable_mask(
    program: Program, *, from_mask: np.ndarray | None = None
) -> np.ndarray:
    """Boolean mask of states reachable from the initial states.

    ``from_mask`` overrides the start set (default: the ``initially``
    predicate's satisfaction mask).
    """
    ts = TransitionSystem.for_program(program)
    visited = (
        program.initial_mask().copy() if from_mask is None else from_mask.copy()
    )
    frontier = np.flatnonzero(visited)
    tables = [table for _, table in ts.all_tables()]
    while frontier.size:
        nxt: list[np.ndarray] = []
        for table in tables:
            succ = table[frontier]
            fresh = succ[~visited[succ]]
            if fresh.size:
                # np.unique both dedups and sorts; marking before collecting
                # the next frontier keeps each state processed exactly once.
                fresh = np.unique(fresh)
                visited[fresh] = True
                nxt.append(fresh)
        frontier = np.unique(np.concatenate(nxt)) if nxt else np.empty(0, np.int64)
    return visited


def reachable_states(program: Program, *, limit: int = 10_000) -> list[State]:
    """Decoded reachable states (guarded by ``limit`` to avoid surprises)."""
    mask = reachable_mask(program)
    idx = np.flatnonzero(mask)
    if idx.size > limit:
        raise ValueError(
            f"{idx.size} reachable states exceed limit={limit}; "
            "work with the mask instead"
        )
    return [program.space.state_at(int(i)) for i in idx]


def distance_map(
    program: Program, *, from_mask: np.ndarray | None = None
) -> np.ndarray:
    """BFS distance (in command applications) from the start set;
    unreachable states get ``-1``.  Used by diagnostics and benchmarks."""
    ts = TransitionSystem.for_program(program)
    start = (
        program.initial_mask() if from_mask is None else np.asarray(from_mask, bool)
    )
    dist = np.full(program.space.size, -1, dtype=np.int64)
    dist[start] = 0
    frontier = np.flatnonzero(start)
    tables = [table for _, table in ts.all_tables()]
    level = 0
    while frontier.size:
        level += 1
        nxt: list[np.ndarray] = []
        for table in tables:
            succ = table[frontier]
            fresh = succ[dist[succ] < 0]
            if fresh.size:
                fresh = np.unique(fresh)
                dist[fresh] = level
                nxt.append(fresh)
        frontier = np.unique(np.concatenate(nxt)) if nxt else np.empty(0, np.int64)
    return dist
