"""Semantic engine: finite-state discharge of the paper's property language.

The engine turns a :class:`~repro.core.program.Program` into NumPy successor
tables (:mod:`repro.semantics.transition`) and checks properties over the
**whole encoded state space** (the paper's inductive semantics — no
substitution axiom, no implicit restriction to reachable states):

- ``init / next / stable / transient / invariant`` —
  :mod:`repro.semantics.checker`;
- ``leads-to`` under weak fairness — :mod:`repro.semantics.leadsto`
  (fair-SCC analysis over a vectorized trim + forward-backward SCC
  decomposition, :mod:`repro.semantics.scc`, running on the shared CSR
  graph backend, :mod:`repro.semantics.graph_backend`);
- reachability-based (non-inductive) invariants —
  :mod:`repro.semantics.explorer`;
- **sparse tier** — :mod:`repro.semantics.sparse`: frontier exploration,
  reachable subspaces, and sub-CSR checking for composition stacks whose
  encoded space exceeds :data:`repro.semantics.sparse.SPARSE_THRESHOLD`
  (the dense checkers route there automatically);
- **proof synthesis** — :mod:`repro.semantics.synthesis` reconstructs a
  kernel-checkable certificate (using only the paper's proof rules) for any
  finite-state leads-to validated by the model checker;
- execution — fair schedulers and trace simulation
  (:mod:`repro.semantics.scheduler`, :mod:`repro.semantics.simulate`);
- ``wp`` cross-validation — :mod:`repro.semantics.wp`;
- **fault tolerance** — :mod:`repro.semantics.budget` (run budgets and
  the resumable ``status="unknown"`` :class:`PartialResult`) and
  :mod:`repro.semantics.sparse.checkpoint` (atomic, digest-keyed BFS
  checkpoints); see ``docs/robustness.md``.
"""

from repro.semantics.budget import Budget, PartialResult
from repro.semantics.checker import (
    CheckResult,
    check_init,
    check_invariant,
    check_next,
    check_reachable_invariant,
    check_stable,
    check_transient,
    check_validity,
)
from repro.semantics.explorer import reachable_mask, reachable_states
from repro.semantics.graph_backend import GraphBackend
from repro.semantics.invariants import (
    auto_invariant,
    inductive_strengthening,
    strongest_invariant,
)
from repro.semantics.leadsto import check_leadsto, fair_scc_analysis
from repro.semantics.scc import condensation, tarjan_condensation
from repro.semantics.scheduler import (
    RandomFairScheduler,
    RoundRobinScheduler,
    Scheduler,
    SequenceScheduler,
)
from repro.semantics.simulate import Trace, simulate
from repro.semantics.strong_fairness import (
    check_leadsto_strong,
    check_transient_strong,
    fairness_gap,
    strong_fair_scc_analysis,
)
from repro.semantics.sparse import (
    CheckpointPolicy,
    ReachableSubspace,
    explore,
    reachable_subspace,
    resume_exploration,
    sparse_enabled,
)
from repro.semantics.synthesis import (
    check_certificate_batched,
    synthesize_leadsto_proof,
)
from repro.semantics.transition import TransitionSystem
from repro.semantics.wp import semantic_wp, wp_agreement

__all__ = [
    "CheckResult",
    "check_init",
    "check_invariant",
    "check_next",
    "check_reachable_invariant",
    "check_stable",
    "check_transient",
    "check_validity",
    "check_leadsto",
    "fair_scc_analysis",
    "condensation",
    "tarjan_condensation",
    "GraphBackend",
    "reachable_mask",
    "reachable_states",
    "ReachableSubspace",
    "explore",
    "reachable_subspace",
    "sparse_enabled",
    "Budget",
    "PartialResult",
    "CheckpointPolicy",
    "resume_exploration",
    "auto_invariant",
    "inductive_strengthening",
    "strongest_invariant",
    "TransitionSystem",
    "Scheduler",
    "RoundRobinScheduler",
    "RandomFairScheduler",
    "SequenceScheduler",
    "Trace",
    "simulate",
    "synthesize_leadsto_proof",
    "check_certificate_batched",
    "check_leadsto_strong",
    "check_transient_strong",
    "fairness_gap",
    "strong_fair_scc_analysis",
    "semantic_wp",
    "wp_agreement",
]
