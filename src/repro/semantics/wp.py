"""Weakest preconditions, semantically — and agreement with symbolic ``wp``.

The paper's property definitions are phrased through ``wp``.  Commands
compute ``wp`` *symbolically* by substitution
(:meth:`repro.core.commands.Command.wp`); this module computes it
*semantically* from successor tables::

    wp.c.P  =  { s : P(c(s)) }   —   as a mask:  P_mask[table_c]

and provides the cross-validation used by the test suite: on every command
with expression predicates, the two must produce identical masks.
"""

from __future__ import annotations

import numpy as np

from repro.core.commands import Command
from repro.core.predicates import MaskPredicate, Predicate
from repro.core.state import StateSpace
from repro.errors import PropertyError

__all__ = ["semantic_wp", "wp_agreement"]


def semantic_wp(command: Command, pred: Predicate, space: StateSpace) -> MaskPredicate:
    """``wp.command.pred`` as a precomputed mask predicate over ``space``."""
    table = command.succ_table(space)
    mask = pred.mask(space)[table]
    return MaskPredicate(
        space, mask, f"wp.{command.name}.({pred.describe()})"
    )


def wp_agreement(command: Command, pred: Predicate, space: StateSpace) -> bool:
    """True iff symbolic and semantic ``wp`` agree on every state.

    Raises :class:`PropertyError` if ``pred`` has no symbolic form (the
    symbolic path requires an expression predicate).
    """
    symbolic = command.wp(pred)
    semantic = semantic_wp(command, pred, space)
    try:
        return bool(np.array_equal(symbolic.mask(space), semantic.mask(space)))
    except PropertyError:  # pragma: no cover - defensive
        raise
