"""Trace simulation: operational execution of programs.

Simulation complements the model checker: properties verified inductively
can be *observed* on traces (every trace step preserves a verified
``stable`` predicate; round-robin traces realize verified ``leads-to``
within a computable bound).  The test suite cross-validates the two
throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.semantics.scheduler import RoundRobinScheduler, Scheduler

__all__ = ["Trace", "simulate", "run_until"]


@dataclass
class Trace:
    """A finite execution prefix.

    ``states`` has one more entry than ``commands``:
    ``states[k+1] = commands[k](states[k])``.
    """

    program: Program
    states: list[State]
    commands: list[str]

    def __len__(self) -> int:
        return len(self.commands)

    @property
    def final(self) -> State:
        return self.states[-1]

    def satisfies_throughout(self, pred: Predicate) -> bool:
        """True iff every visited state satisfies ``pred``."""
        return all(pred.holds(s) for s in self.states)

    def first_satisfying(self, pred: Predicate) -> int | None:
        """Index of the first state satisfying ``pred``, or ``None``."""
        for k, s in enumerate(self.states):
            if pred.holds(s):
                return k
        return None

    def command_counts(self) -> dict[str, int]:
        """Executions per command name (fairness diagnostics)."""
        out: dict[str, int] = {}
        for name in self.commands:
            out[name] = out.get(name, 0) + 1
        return out


def simulate(
    program: Program,
    steps: int,
    *,
    scheduler: Scheduler | None = None,
    start: State | None = None,
) -> Trace:
    """Run ``steps`` commands from ``start`` (default: first initial state).

    Uses a round-robin scheduler unless another is supplied.
    """
    if scheduler is None:
        scheduler = RoundRobinScheduler(program)
    if start is None:
        initials = program.initial_states()
        if not initials:
            raise ValueError(f"program {program.name} has no initial state")
        start = initials[0]
    states = [start]
    commands: list[str] = []
    current = start
    for k in range(steps):
        cmd = scheduler.next_command(k)
        current = cmd.apply(current)
        states.append(current)
        commands.append(cmd.name)
    return Trace(program, states, commands)


def run_until(
    program: Program,
    goal: Predicate | Callable[[State], bool],
    *,
    scheduler: Scheduler | None = None,
    start: State | None = None,
    max_steps: int = 100_000,
) -> tuple[Trace, bool]:
    """Execute until ``goal`` holds (returns ``(trace, reached)``).

    For a verified ``p ↝ q`` and a fair scheduler, ``reached`` must come
    back True within ``|space| · |C|`` steps of round-robin — the bound the
    integration tests assert.
    """
    if scheduler is None:
        scheduler = RoundRobinScheduler(program)
    if start is None:
        initials = program.initial_states()
        if not initials:
            raise ValueError(f"program {program.name} has no initial state")
        start = initials[0]
    holds: Callable[[State], bool]
    holds = goal.holds if isinstance(goal, Predicate) else goal
    states = [start]
    commands: list[str] = []
    current = start
    if holds(current):
        return Trace(program, states, commands), True
    for k in range(max_steps):
        cmd = scheduler.next_command(k)
        current = cmd.apply(current)
        states.append(current)
        commands.append(cmd.name)
        if holds(current):
            return Trace(program, states, commands), True
    return Trace(program, states, commands), False
