"""Proof synthesis: from model-checking evidence to kernel certificates.

The paper's central observation is that some compositional steps are
mechanical while others ("constructing the universal property") require
creativity.  On *finite* instances, that creative gap closes: whenever the
fair-SCC model checker validates ``p ↝ q``, this module reconstructs a
proof object that the kernel re-checks using **only the paper's proof
system** (Transient, Implication, Disjunction, Transitivity, PSP — via the
derived ``Ensures`` and ``MetricInduction`` constructions; §2 of the
paper, and §4.6 for the metric-induction closing step).

Construction.  Work in the ``¬q`` transition graph restricted to the
*safe* region (states from which ``q`` is inevitable) and to the forward
closure ``R`` of ``p ∧ ¬q``:

- every SCC ``H`` of this region is **unfair** — some ``d ∈ D`` has no edge
  staying inside ``H`` — hence ``transient H`` holds with witness ``d``;
- all other edges of ``H`` stay in ``H`` or exit to lower SCCs or ``q``
  (canonical sinks-first emission order), hence ``H next (H ∨ exit)``;
- together: ``H ensures exit(H)`` — one :class:`~repro.core.rules.Ensures`
  step per SCC;
- the SCC emission order is a well-founded variant, closing the argument
  with one :class:`~repro.core.rules.MetricInduction`.

The synthesized certificate is linear in the number of SCCs, and checking
it is independent of the model checker's verdict — the kernel re-discharges
every ``transient``/``next``/validity obligation from scratch.

Canonical-order invariant.  The variant metric *is* the SCC emission
order of :mod:`repro.semantics.scc`: components arrive sinks-first
(reverse topological, ties by smallest member state), so "every exit goes
to ``q`` or an earlier level" holds by construction.  That order is
canonical — any correct SCC partition of the same subgraph re-emits
identically — and it is preserved verbatim on the sparse tier: a
:class:`~repro.semantics.sparse.explorer.ReachableSubspace` keeps
``global_ids`` sorted, local ids preserve global order, so the local-id
sub-CSR condensation equals the dense condensation restricted to
reachable states *component for component*.  Dense and sparse synthesis
therefore produce certificates with identical level structure wherever
both tiers can run (pinned by ``tests/test_sparse_synthesis.py``).

Tier routing.  Spaces above the sparse threshold synthesize on the
reachable subspace: levels are
:class:`~repro.core.predicates.SupportPredicate` sets of reachable global
indices, obligations are discharged by the reachable-restricted checkers
of :mod:`repro.semantics.sparse.checkers` through the frontier kernels
(``Command.succ_of`` / ``Predicate.mask_at``), and nothing of length
``space.size`` is ever allocated — certificates for 2⁴⁰-state
compositions in working memory proportional to the *reachable* set.  The
resulting proof certifies the **reachable-restricted** judgment (the one
the sparse checkers decide; see the :mod:`repro.semantics.sparse` package
docstring).

Fairness.  ``fairness="strong"`` certifies the strong-fairness judgment
instead, swapping the per-level basis for
:class:`~repro.core.rules.StrongTransientBasis` (each safe-region SCC has
an *enabled-exiting* fair command rather than an unconditionally exiting
one) — this is what certifies the pipeline∘allocator delivery property,
which fails under weak fairness.
"""

from __future__ import annotations

import numpy as np

from repro.core.predicates import (
    MaskPredicate,
    Predicate,
    PrefixSupportPredicate,
    SupportPredicate,
)
from repro.core.program import Program
from repro.core.rules import Ensures, Implication, LeadsToProof, MetricInduction
from repro.errors import ProofError
from repro.semantics.leadsto import fair_scc_analysis
from repro.semantics.transition import TransitionSystem

__all__ = ["synthesize_leadsto_proof"]


def synthesize_leadsto_proof(
    program: Program,
    p: Predicate,
    q: Predicate,
    *,
    fairness: str = "weak",
    subspace=None,
) -> LeadsToProof:
    """Build a kernel-checkable certificate for ``p ↝ q``.

    Raises :class:`ProofError` if the property does not hold (no proof
    exists), quoting the model checker's counterexample.

    ``fairness`` selects the scheduler assumption: ``"weak"`` (the
    paper's model — certificates use only the paper's proof system) or
    ``"strong"`` (certificates additionally use
    :class:`~repro.core.rules.StrongTransientBasis`).

    ``subspace`` forces synthesis on an explicit
    :class:`~repro.semantics.sparse.explorer.ReachableSubspace`; by
    default spaces above the sparse threshold use the cached reachable
    subspace and smaller spaces synthesize densely, mirroring the
    checkers' tier routing.
    """
    if fairness not in ("weak", "strong"):
        raise ProofError(f"unknown fairness notion {fairness!r}")
    if subspace is not None:
        return _synthesize_sparse(subspace, p, q, fairness)
    from repro.semantics.sparse import routed_subspace

    sub = routed_subspace(program, "proof synthesis")
    if sub is not None:
        return _synthesize_sparse(sub, p, q, fairness)
    return _synthesize_dense(program, p, q, fairness)


def _synthesize_dense(
    program: Program, p: Predicate, q: Predicate, fairness: str
) -> LeadsToProof:
    """Dense-tier synthesis over full-space masks and successor tables."""
    ts = TransitionSystem.for_program(program)
    space = ts.space
    if fairness == "strong":
        from repro.semantics.strong_fairness import strong_fair_scc_analysis

        analysis = strong_fair_scc_analysis(program, q)
    else:
        analysis = fair_scc_analysis(program, q)
    pm = p.mask(space)

    bad = pm & analysis.avoid_mask
    if bad.any():
        state = space.state_at(int(np.flatnonzero(bad)[0]))
        raise ProofError(
            f"cannot synthesize a proof of {p.describe()} ~> {q.describe()}: "
            f"the property fails under {fairness} fairness (scheduler can "
            f"avoid q from {state!r})"
        )

    # Restrict to the part of the safe region the obligation actually
    # touches: the forward closure of p ∧ ¬q (successors leaving ¬q are
    # dropped — exits to q end the obligation).
    seeds = pm & analysis.notq_mask
    region = ts.graph().forward_closure(seeds, allowed=analysis.notq_mask)

    if not region.any():
        # p ⇒ q: a single Implication suffices.
        return Implication(p, q)

    # Levels: SCCs intersecting the region, in canonical emission
    # (sinks-first) order.  An SCC intersecting the region is contained in
    # it (regions are closed and SCC members are mutually reachable).
    levels: list[Predicate] = []
    subs: list[LeadsToProof] = []
    lower_mask = q.mask(space).copy()
    n_level = 0
    for k, members in enumerate(analysis.cond.components):
        if not region[members[0]]:
            continue
        member_mask = np.zeros(space.size, dtype=bool)
        member_mask[members] = True
        level_pred = MaskPredicate(
            space, member_mask, f"level[{n_level}] (scc #{k}, {members.size} states)"
        )
        exit_pred = MaskPredicate(
            space, lower_mask.copy(), f"exit[{n_level}] (q or lower levels)"
        )
        levels.append(level_pred)
        subs.append(Ensures(level_pred, exit_pred, fairness=fairness))
        lower_mask |= member_mask
        n_level += 1

    return MetricInduction(p, q, levels, subs)


def _synthesize_sparse(sub, p: Predicate, q: Predicate, fairness: str) -> LeadsToProof:
    """Sparse-tier synthesis over a reachable subspace (local ids only).

    The same construction as :func:`_synthesize_dense`, with every
    full-space artifact replaced by its local-id twin: the fair analysis
    runs on the sub-CSR (:func:`~repro.semantics.sparse.checkers.
    sparse_fair_analysis`), the levels become
    :class:`~repro.core.predicates.SupportPredicate` sets of reachable
    global indices, and each ``exit`` predicate is ``q ∨ support(lower
    levels)`` — a combinator, not a mask.  The certificate concludes the
    reachable-restricted judgment and is re-checked end to end through
    the tier-routed obligation checkers.
    """
    from repro.semantics.sparse.checkers import sparse_fair_analysis

    space = sub.space
    analysis = sparse_fair_analysis(sub, q, strong=(fairness == "strong"))
    pm = sub.pred_mask(p)

    bad = pm & analysis.avoid
    if bad.any():
        k = int(np.flatnonzero(bad)[0])
        state = sub.state_at_local(k)
        sources = np.zeros(sub.size, dtype=bool)
        sources[k] = True
        confining = sub.graph().path_between(
            sources, analysis.fair_seed_mask(), allowed=analysis.notq
        )
        steps = 0 if confining is None else confining.shape[0] - 1
        raise ProofError(
            f"cannot synthesize a proof of {p.describe()} ~> {q.describe()}: "
            f"the property fails under {fairness} fairness on the sparse "
            f"tier (scheduler can avoid q from reachable {state!r}, "
            f"reaching a fair SCC in {steps} ¬q-confined step(s))"
        )

    seeds = pm & analysis.notq
    region = sub.graph().forward_closure(seeds, allowed=analysis.notq)

    if not region.any():
        return Implication(p, q)

    comps = [
        (k, members)
        for k, members in enumerate(analysis.cond.components)
        if region[members[0]]
    ]
    # Exit ladder: one shared sorted array of all level members with their
    # level index; exit[n] is the rank-gated prefix "some level below n"
    # (O(1) per level instead of a re-sorted prefix union per level).
    all_globals = np.concatenate([sub.global_ids[members] for _, members in comps])
    all_levels = np.repeat(
        np.arange(len(comps), dtype=np.int64),
        [members.shape[0] for _, members in comps],
    )
    order = np.argsort(all_globals)
    sorted_globals = all_globals[order]
    sorted_levels = all_levels[order]

    levels: list[Predicate] = []
    subs: list[LeadsToProof] = []
    for n_level, (k, members) in enumerate(comps):
        level_pred = SupportPredicate(
            space,
            sub.global_ids[members],
            f"level[{n_level}] (scc #{k}, {members.size} reachable states)",
        )
        exit_pred = q | PrefixSupportPredicate(
            space,
            sorted_globals,
            sorted_levels,
            n_level,
            f"exit[{n_level}] (lower levels)",
        )
        levels.append(level_pred)
        subs.append(Ensures(level_pred, exit_pred, fairness=fairness))

    return MetricInduction(p, q, levels, subs)
