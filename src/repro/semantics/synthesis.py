"""Proof synthesis: from model-checking evidence to kernel certificates.

The paper's central observation is that some compositional steps are
mechanical while others ("constructing the universal property") require
creativity.  On *finite* instances, that creative gap closes: whenever the
fair-SCC model checker validates ``p ↝ q``, this module reconstructs a
proof object that the kernel re-checks using **only the paper's proof
system** (Transient, Implication, Disjunction, Transitivity, PSP — via the
derived ``Ensures`` and ``MetricInduction`` constructions).

Construction.  Work in the ``¬q`` transition graph restricted to the
*safe* region (states from which ``q`` is inevitable) and to the forward
closure ``R`` of ``p ∧ ¬q``:

- every SCC ``H`` of this region is **unfair** — some ``d ∈ D`` has no edge
  staying inside ``H`` — hence ``transient H`` holds with witness ``d``;
- all other edges of ``H`` stay in ``H`` or exit to lower SCCs or ``q``
  (Tarjan emission order), hence ``H next (H ∨ exit)``;
- together: ``H ensures exit(H)`` — one :class:`~repro.core.rules.Ensures`
  step per SCC;
- the SCC emission order is a well-founded variant, closing the argument
  with one :class:`~repro.core.rules.MetricInduction`.

The synthesized certificate is linear in the number of SCCs, and checking
it is independent of the model checker's verdict — the kernel re-discharges
every ``transient``/``next``/validity obligation from scratch.
"""

from __future__ import annotations

import numpy as np

from repro.core.predicates import MaskPredicate, Predicate
from repro.core.program import Program
from repro.core.rules import Ensures, Implication, LeadsToProof, MetricInduction
from repro.errors import ProofError
from repro.semantics.leadsto import fair_scc_analysis
from repro.semantics.transition import TransitionSystem

__all__ = ["synthesize_leadsto_proof"]


def synthesize_leadsto_proof(
    program: Program, p: Predicate, q: Predicate
) -> LeadsToProof:
    """Build a kernel-checkable certificate for ``p ↝ q``.

    Raises :class:`ProofError` if the property does not hold (no proof
    exists), quoting the model checker's counterexample.
    """
    ts = TransitionSystem.for_program(program)
    space = ts.space
    analysis = fair_scc_analysis(program, q)
    pm = p.mask(space)

    bad = pm & analysis.avoid_mask
    if bad.any():
        state = space.state_at(int(np.flatnonzero(bad)[0]))
        raise ProofError(
            f"cannot synthesize a proof of {p.describe()} ~> {q.describe()}: "
            f"the property fails (scheduler can avoid q from {state!r})"
        )

    # Restrict to the part of the safe region the obligation actually
    # touches: the forward closure of p ∧ ¬q (successors leaving ¬q are
    # dropped — exits to q end the obligation).
    seeds = pm & analysis.notq_mask
    region = ts.graph().forward_closure(seeds, allowed=analysis.notq_mask)

    if not region.any():
        # p ⇒ q: a single Implication suffices.
        return Implication(p, q)

    # Levels: SCCs intersecting the region, in Tarjan emission (sinks-first)
    # order.  An SCC intersecting the region is contained in it (regions are
    # closed and SCC members are mutually reachable).
    levels: list[Predicate] = []
    subs: list[LeadsToProof] = []
    lower_mask = q.mask(space).copy()
    n_level = 0
    for k, members in enumerate(analysis.cond.components):
        if not region[members[0]]:
            continue
        member_mask = np.zeros(space.size, dtype=bool)
        member_mask[members] = True
        level_pred = MaskPredicate(
            space, member_mask, f"level[{n_level}] (scc #{k}, {members.size} states)"
        )
        exit_pred = MaskPredicate(
            space, lower_mask.copy(), f"exit[{n_level}] (q or lower levels)"
        )
        levels.append(level_pred)
        subs.append(Ensures(level_pred, exit_pred))
        lower_mask |= member_mask
        n_level += 1

    return MetricInduction(p, q, levels, subs)
