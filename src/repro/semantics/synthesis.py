"""Proof synthesis: from model-checking evidence to kernel certificates.

The paper's central observation is that some compositional steps are
mechanical while others ("constructing the universal property") require
creativity.  On *finite* instances, that creative gap closes: whenever the
fair-SCC model checker validates ``p ↝ q``, this module reconstructs a
proof object that the kernel re-checks using **only the paper's proof
system** (Transient, Implication, Disjunction, Transitivity, PSP — via the
derived ``Ensures`` and ``MetricInduction`` constructions; §2 of the
paper, and §4.6 for the metric-induction closing step).

Construction.  Work in the ``¬q`` transition graph restricted to the
*safe* region (states from which ``q`` is inevitable) and to the forward
closure ``R`` of ``p ∧ ¬q``:

- every SCC ``H`` of this region is **unfair** — some ``d ∈ D`` has no edge
  staying inside ``H`` — hence ``transient H`` holds with witness ``d``;
- all other edges of ``H`` stay in ``H`` or exit to lower SCCs or ``q``
  (canonical sinks-first emission order), hence ``H next (H ∨ exit)``;
- together: ``H ensures exit(H)`` — one :class:`~repro.core.rules.Ensures`
  step per SCC;
- the SCC emission order is a well-founded variant, closing the argument
  with one :class:`~repro.core.rules.MetricInduction`.

The synthesized certificate is linear in the number of SCCs, and checking
it is independent of the model checker's verdict — the kernel re-discharges
every ``transient``/``next``/validity obligation from scratch.

Certificates are **columnar**: every level's members are stacked into one
:class:`~repro.core.predicates.SupportTable` (level-major + globally
sorted column pairs), levels and the rank-gated exit ladder are zero-copy
views of it, and :func:`check_certificate_batched` re-checks the whole
tree with one vectorized pass per command over all levels — the kernel
that makes 10⁴–10⁵-level certificates checkable in seconds.  The
per-level tree walk (``proof.check``) is unchanged and serves as the
differential oracle (``tests/test_batched_check.py``).

Canonical-order invariant.  The variant metric *is* the SCC emission
order of :mod:`repro.semantics.scc`: components arrive sinks-first
(reverse topological, ties by smallest member state), so "every exit goes
to ``q`` or an earlier level" holds by construction.  That order is
canonical — any correct SCC partition of the same subgraph re-emits
identically — and it is preserved verbatim on the sparse tier: a
:class:`~repro.semantics.sparse.explorer.ReachableSubspace` keeps
``global_ids`` sorted, local ids preserve global order, so the local-id
sub-CSR condensation equals the dense condensation restricted to
reachable states *component for component*.  Dense and sparse synthesis
therefore produce certificates with identical level structure wherever
both tiers can run (pinned by ``tests/test_sparse_synthesis.py``).

Tier routing.  Spaces above the sparse threshold synthesize on the
reachable subspace: levels are
:class:`~repro.core.predicates.SupportPredicate` sets of reachable global
indices, obligations are discharged by the reachable-restricted checkers
of :mod:`repro.semantics.sparse.checkers` through the frontier kernels
(``Command.succ_of`` / ``Predicate.mask_at``), and nothing of length
``space.size`` is ever allocated — certificates for 2⁴⁰-state
compositions in working memory proportional to the *reachable* set.  The
resulting proof certifies the **reachable-restricted** judgment (the one
the sparse checkers decide; see the :mod:`repro.semantics.sparse` package
docstring).

Fairness.  ``fairness="strong"`` certifies the strong-fairness judgment
instead, swapping the per-level basis for
:class:`~repro.core.rules.StrongTransientBasis` (each safe-region SCC has
an *enabled-exiting* fair command rather than an unconditionally exiting
one) — this is what certifies the pipeline∘allocator delivery property,
which fails under weak fairness.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.predicates import (
    Predicate,
    PrefixSupportPredicate,
    SupportPredicate,
    SupportTable,
)
from repro.core.program import Program
from repro.core.rules import Ensures, Implication, LeadsToProof, MetricInduction
from repro.errors import ProofError
from repro.semantics.leadsto import fair_scc_analysis
from repro.semantics.transition import TransitionSystem

__all__ = ["synthesize_leadsto_proof", "check_certificate_batched"]


def synthesize_leadsto_proof(
    program: Program,
    p: Predicate,
    q: Predicate,
    _positional_fairness: str | None = None,
    *,
    fairness: str = "weak",
    budget=None,
    subspace=None,
    recorder=None,
    checkpoint=None,
) -> LeadsToProof:
    """Build a kernel-checkable certificate for ``p ↝ q``.

    ``budget`` / ``subspace`` / ``recorder`` form the normalized keyword
    set shared by every public checker (see ``docs/composition.md``).
    Passing the fairness notion positionally is deprecated — use
    ``fairness=``.

    Raises :class:`ProofError` if the property does not hold (no proof
    exists), quoting the model checker's counterexample.

    ``fairness`` selects the scheduler assumption: ``"weak"`` (the
    paper's model — certificates use only the paper's proof system) or
    ``"strong"`` (certificates additionally use
    :class:`~repro.core.rules.StrongTransientBasis`).

    ``subspace`` forces synthesis on an explicit
    :class:`~repro.semantics.sparse.explorer.ReachableSubspace`; by
    default spaces above the sparse threshold use the cached reachable
    subspace and smaller spaces synthesize densely, mirroring the
    checkers' tier routing.

    ``budget`` / ``checkpoint`` bound the sparse exploration feeding the
    synthesis; on exhaustion this returns a resumable
    ``status="unknown"`` :class:`~repro.semantics.budget.PartialResult`
    instead of a proof (callers must check for it — it is not a
    :class:`LeadsToProof` and refuses ``bool()``).
    """
    if _positional_fairness is not None:
        import warnings

        warnings.warn(
            "passing the fairness notion positionally is deprecated; "
            "use synthesize_leadsto_proof(..., fairness=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        fairness = _positional_fairness
    if recorder is not None:
        with obs.use_recorder(recorder):
            return synthesize_leadsto_proof(
                program,
                p,
                q,
                fairness=fairness,
                budget=budget,
                subspace=subspace,
                checkpoint=checkpoint,
            )
    if fairness not in ("weak", "strong"):
        raise ProofError(f"unknown fairness notion {fairness!r}")
    rec = obs.get_recorder()
    with rec.span("synthesis.leadsto", program=program.name, fairness=fairness):
        if subspace is not None:
            return _synthesize_sparse(subspace, p, q, fairness)
        from repro.errors import BudgetExhausted
        from repro.semantics.budget import PartialResult
        from repro.semantics.sparse import routed_subspace

        try:
            sub = routed_subspace(
                program, "proof synthesis", budget=budget, checkpoint=checkpoint
            )
        except BudgetExhausted as exc:
            arrow = "~>[strong]" if fairness == "strong" else "~>"
            return PartialResult.from_exhaustion(
                exc,
                kind="proof-synthesis",
                subject=f"{p.describe()} {arrow} {q.describe()}",
            )
        if sub is not None:
            return _synthesize_sparse(sub, p, q, fairness)
        return _synthesize_dense(program, p, q, fairness)


def _synthesize_dense(
    program: Program, p: Predicate, q: Predicate, fairness: str
) -> LeadsToProof:
    """Dense-tier synthesis over full-space masks and successor tables."""
    ts = TransitionSystem.for_program(program)
    space = ts.space
    if fairness == "strong":
        from repro.semantics.strong_fairness import strong_fair_scc_analysis

        analysis = strong_fair_scc_analysis(program, q)
    else:
        analysis = fair_scc_analysis(program, q)
    pm = p.mask(space)

    bad = pm & analysis.avoid_mask
    if bad.any():
        state = space.state_at(int(np.flatnonzero(bad)[0]))
        raise ProofError(
            f"cannot synthesize a proof of {p.describe()} ~> {q.describe()}: "
            f"the property fails under {fairness} fairness (scheduler can "
            f"avoid q from {state!r})"
        )

    # Restrict to the part of the safe region the obligation actually
    # touches: the forward closure of p ∧ ¬q (successors leaving ¬q are
    # dropped — exits to q end the obligation).
    seeds = pm & analysis.notq_mask
    region = ts.graph().forward_closure(seeds, allowed=analysis.notq_mask)

    if not region.any():
        # p ⇒ q: a single Implication suffices.
        return Implication(p, q)

    # Levels: SCCs intersecting the region, in canonical emission
    # (sinks-first) order.  An SCC intersecting the region is contained in
    # it (regions are closed and SCC members are mutually reachable).
    comps = [
        (k, members)
        for k, members in enumerate(analysis.cond.components)
        if region[members[0]]
    ]
    return _columnar_induction(space, p, q, comps, fairness, member_word="states")


def _synthesize_sparse(sub, p: Predicate, q: Predicate, fairness: str) -> LeadsToProof:
    """Sparse-tier synthesis over a reachable subspace (local ids only).

    The same construction as :func:`_synthesize_dense`, with every
    full-space artifact replaced by its local-id twin: the fair analysis
    runs on the sub-CSR (:func:`~repro.semantics.sparse.checkers.
    sparse_fair_analysis`), the levels become
    :class:`~repro.core.predicates.SupportPredicate` sets of reachable
    global indices, and each ``exit`` predicate is ``q ∨ support(lower
    levels)`` — a combinator, not a mask.  The certificate concludes the
    reachable-restricted judgment and is re-checked end to end through
    the tier-routed obligation checkers.
    """
    from repro.semantics.sparse.checkers import sparse_fair_analysis

    space = sub.space
    analysis = sparse_fair_analysis(sub, q, strong=(fairness == "strong"))
    pm = sub.pred_mask(p)

    bad = pm & analysis.avoid
    if bad.any():
        k = int(np.flatnonzero(bad)[0])
        state = sub.state_at_local(k)
        sources = np.zeros(sub.size, dtype=bool)
        sources[k] = True
        confining = sub.graph().path_between(
            sources, analysis.fair_seed_mask(), allowed=analysis.notq
        )
        steps = 0 if confining is None else confining.shape[0] - 1
        raise ProofError(
            f"cannot synthesize a proof of {p.describe()} ~> {q.describe()}: "
            f"the property fails under {fairness} fairness on the sparse "
            f"tier (scheduler can avoid q from reachable {state!r}, "
            f"reaching a fair SCC in {steps} ¬q-confined step(s))"
        )

    seeds = pm & analysis.notq
    region = sub.graph().forward_closure(seeds, allowed=analysis.notq)

    if not region.any():
        return Implication(p, q)

    comps = [
        (k, sub.global_ids[members])
        for k, members in enumerate(analysis.cond.components)
        if region[members[0]]
    ]
    return _columnar_induction(
        space, p, q, comps, fairness, member_word="reachable states"
    )


def _columnar_induction(
    space, p: Predicate, q: Predicate, comps, fairness: str, *, member_word: str
) -> MetricInduction:
    """Assemble the metric induction from SCC components, columnar.

    ``comps`` is the list of ``(scc_id, sorted global member indices)``
    in canonical emission order.  All levels are stacked into **one**
    :class:`~repro.core.predicates.SupportTable`; each level predicate is
    a zero-copy view of the level-major column, and every ``exit[n]`` is
    ``q ∨ prefix(<n)`` over the shared sorted ``(member, rank)`` columns
    — synthesis stays linear in total member count, and the batched
    kernel (:func:`check_certificate_batched`) checks the whole ladder
    with searchsorted rank lookups instead of per-level mask unions.
    Shared by both tiers (dense synthesis passes full-space component
    arrays, sparse synthesis the reachable global ids).
    """
    rec = obs.get_recorder()
    if rec.enabled:
        rec.add("synthesis.levels", len(comps))
        rec.add(
            "synthesis.level_members",
            int(sum(members.shape[0] for _, members in comps)),
        )
    table = SupportTable(space, [members for _, members in comps])
    levels: list[Predicate] = []
    subs: list[LeadsToProof] = []
    for n_level, (k, members) in enumerate(comps):
        level_pred = table.level_pred(
            n_level,
            f"level[{n_level}] (scc #{k}, {members.shape[0]} {member_word})",
        )
        exit_pred = q | table.prefix_pred(n_level, f"exit[{n_level}] (lower levels)")
        levels.append(level_pred)
        subs.append(Ensures(level_pred, exit_pred, fairness=fairness))
    return MetricInduction(p, q, levels, subs, support_table=table)


# ---------------------------------------------------------------------------
# Batched certificate checking
# ---------------------------------------------------------------------------


def _certificate_layout(proof: LeadsToProof):
    """The columnar view of a synthesized certificate, or ``None``.

    Verifies the *shape* the batched kernel relies on: a
    :class:`~repro.core.rules.MetricInduction` whose premises are
    ``Ensures(levelₙ, q ∨ prefix(<n))`` with every level a
    :class:`~repro.core.predicates.SupportPredicate`, the level predicate
    *identical* (``is``) to the premise's left-hand side, one fairness
    notion throughout, and one shared ``(member, rank)`` column pair
    behind the whole exit ladder.  Given that shape, every intermediate
    equality of the ``Ensures`` expansion is a predicate-calculus
    tautology for arbitrary table *contents* — so the batched kernel only
    needs to re-discharge coverage, the rank-gate entailments, and the
    per-level ``next``/``transient`` obligations (which it does from
    scratch; corrupt contents are refused, see
    ``tests/test_batched_check.py``).  Anything else — hand-written
    certificates, mask-backed levels — returns ``None`` and is checked by
    the per-level oracle.
    """
    from repro.core.predicates import _Composite
    from repro.semantics.obligations import CertificateLayout

    if not isinstance(proof, MetricInduction) or not proof.levels:
        return None
    fairness = None
    prefix_members = prefix_ranks = None
    level_members = []
    for n, (lv, sub) in enumerate(zip(proof.levels, proof.subs)):
        if not isinstance(sub, Ensures) or sub.p is not lv:
            return None
        if type(lv) is not SupportPredicate or lv.space is not proof.levels[0].space:
            return None
        if fairness is None:
            fairness = sub.fairness
        elif sub.fairness != fairness:
            return None
        exit_pred = sub.q
        if not (
            isinstance(exit_pred, _Composite)
            and exit_pred.op == "or"
            and len(exit_pred.parts) == 2
            and exit_pred.parts[0] is proof.q
            and type(exit_pred.parts[1]) is PrefixSupportPredicate
        ):
            return None
        prefix = exit_pred.parts[1]
        if prefix.cutoff != n or prefix.space is not lv.space:
            return None
        if prefix_members is None:
            prefix_members, prefix_ranks = prefix.members, prefix.ranks
        elif prefix.members is not prefix_members or prefix.ranks is not prefix_ranks:
            return None
        level_members.append(lv.members)
    return CertificateLayout(
        p=proof.p,
        q=proof.q,
        level_members=level_members,
        prefix_members=prefix_members,
        prefix_ranks=prefix_ranks,
        fairness=fairness,
    )


def check_certificate_batched(proof: LeadsToProof, program: Program, *, subspace=None):
    """Kernel-check ``proof`` with the batched columnar kernel.

    The drop-in fast path for :meth:`~repro.core.proofs.ProofNode.check`
    on synthesized certificates: instead of one
    ``check_next``/``check_transient``/validity call per induction level
    (ten obligations per level — the entire cost of checking 10⁴–10⁵-level
    certificates), each obligation family runs as **one vectorized pass
    per command over all levels** through
    :mod:`repro.semantics.obligations`, routed by tier exactly like the
    per-level leaf checkers (reachable subspace above the sparse
    threshold, full space otherwise; ``subspace`` forces an explicit
    :class:`~repro.semantics.sparse.explorer.ReachableSubspace`, matching
    :func:`synthesize_leadsto_proof`).

    Verdict, node count and obligation count equal the per-level walk's;
    the result's ``mode`` reports ``"batched"``.  Certificates without
    the synthesized columnar shape (hand-built trees, ``Implication``
    shortcuts) fall back to ``proof.check(program)`` — the per-level path
    stays available as the differential oracle either way.
    """
    space = program.space
    rec = obs.get_recorder()
    layout = _certificate_layout(proof)
    if layout is not None and proof.levels[0].space is not space:
        layout = None
    if layout is None:
        with rec.span("proof.check", program=program.name, mode="per-level"):
            return proof.check(program)
    with rec.span(
        "proof.batched_check",
        program=program.name,
        levels=len(layout.level_members),
    ):
        if subspace is None:
            from repro.semantics.sparse import routed_subspace

            subspace = routed_subspace(program, "the batched certificate check")
        # int64 headroom for the kernel's (level, member) search keys over the
        # routed universe (never binding under the default sparse node limit).
        universe = subspace.size if subspace is not None else space.size
        if universe and len(layout.level_members) > (2**62) // universe:
            return proof.check(program)
        if subspace is not None:
            from repro.semantics.sparse.checkers import (
                check_obligations_batched_sparse,
            )

            return check_obligations_batched_sparse(subspace, layout)
        from repro.semantics.checker import check_obligations_batched

        return check_obligations_batched(program, layout)
