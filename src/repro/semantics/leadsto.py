"""Model checking ``p ↝ q`` under weak fairness (fair-SCC analysis).

Semantics.  An execution repeatedly applies commands from ``C``; weak
fairness requires every command of ``D`` to be applied infinitely often
(commands are total and always enabled, so weak and unconditional fairness
coincide).  ``p ↝ q`` holds iff every fair execution starting from any
``p``-state reaches a ``q``-state.

Finite-state characterization.  ``p ↝ q`` fails iff some ``p``-state can
reach — inside ``¬q`` — a **fair SCC**: a strongly connected component
``H`` of the ``¬q``-restricted transition graph such that *every* ``d ∈ D``
has an edge with both endpoints in ``H``.

*Soundness:* inside a fair SCC the scheduler can tour all the required
``d``-edges forever (strong connectivity supplies the connecting walks, and
``skip ∈ C`` supplies waiting moves), yielding a fair execution that never
reaches ``q``.  *Completeness:* the limit set of any fair ``¬q``-confined
execution is strongly connected and, for each ``d ∈ D``, contains a state
whose ``d``-successor is also in the limit set (``d`` fires infinitely often
from finitely many states); hence the limit set lies inside a fair SCC,
which the start state therefore reaches.

The analysis returned by :func:`fair_scc_analysis` also drives the proof
synthesizer (:mod:`repro.semantics.synthesis`): in the complement region
every SCC misses some ``d ∈ D`` entirely, which is exactly a
``transient``/``ensures`` step of the paper's proof system.

Implementation.  All graph work (SCC condensation, reverse closure) runs on
the cached CSR backend (:mod:`repro.semantics.graph_backend`); the fair-SCC
criterion itself is evaluated per command as one vectorized scatter over
``comp_id`` — an edge ``s → d(s)`` is internal to its SCC iff
``comp_id[d(s)] == comp_id[s]`` — so Python work is O(|D|), not
O(|D| · #SCCs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.semantics.checker import CheckResult
from repro.semantics.scc import Condensation
from repro.semantics.transition import TransitionSystem

__all__ = ["FairAnalysis", "fair_scc_analysis", "check_leadsto"]


@dataclass
class FairAnalysis:
    """Full fairness analysis of the ``¬q`` subgraph.

    Attributes
    ----------
    q_mask, notq_mask:
        Satisfaction masks of the target predicate and its complement.
    cond:
        SCC condensation of the ``¬q`` subgraph (emission order = sinks
        first; see :mod:`repro.semantics.scc`).
    fair_flags:
        ``fair_flags[k]`` — SCC ``k`` satisfies the fair-SCC criterion.
    avoid_mask:
        States that can reach a fair SCC inside ``¬q`` — exactly the states
        from which the scheduler can avoid ``q`` forever.
    safe_mask:
        ``¬q``-states from which ``q`` is inevitable
        (``notq_mask & ~avoid_mask``).
    """

    q_mask: np.ndarray
    notq_mask: np.ndarray
    cond: Condensation
    fair_flags: np.ndarray
    avoid_mask: np.ndarray

    @property
    def safe_mask(self) -> np.ndarray:
        return self.notq_mask & ~self.avoid_mask

    def inevitable_mask(self) -> np.ndarray:
        """States from which every fair execution reaches ``q``."""
        return ~self.avoid_mask

    def safe_components(self) -> list[tuple[int, np.ndarray]]:
        """``(comp_id, members)`` for SCCs in the safe region, in emission
        (sinks-first) order — the levels of the synthesized induction."""
        out = []
        for k, members in enumerate(self.cond.components):
            if not self.avoid_mask[members[0]]:
                out.append((k, members))
        return out


def _fair_seed_mask(cond: Condensation, fair_flags: np.ndarray) -> np.ndarray:
    """Mask of all states lying in a flagged SCC (vectorized gather)."""
    seeds = np.zeros(cond.comp_id.shape[0], dtype=bool)
    if fair_flags.any():
        active = cond.comp_id >= 0
        seeds[active] = fair_flags[cond.comp_id[active]]
    return seeds


def fair_scc_analysis(program: Program, q: Predicate) -> FairAnalysis:
    """Analyse the ``¬q`` subgraph of ``program`` for fair avoidance."""
    ts = TransitionSystem.for_program(program)
    space = ts.space
    graph = ts.graph()
    qm = q.mask(space)
    notq = ~qm
    cond = graph.condensation(notq)

    # Fair-SCC criterion, one gather+scatter per command of D: SCC k keeps
    # its flag iff some d-edge has both endpoints in k (self-loops
    # included).  Only ¬q-states participate, so gather over those.
    act_idx = np.flatnonzero(cond.comp_id >= 0)
    comp_act = cond.comp_id[act_idx]
    fair_flags = np.ones(cond.count, dtype=bool)
    for _, dtable in ts.fair_tables():
        internal = cond.comp_id[dtable[act_idx]] == comp_act
        has_edge = np.zeros(cond.count, dtype=bool)
        has_edge[comp_act[internal]] = True
        fair_flags &= has_edge
        if not fair_flags.any():
            break

    seeds = _fair_seed_mask(cond, fair_flags)
    avoid = graph.reverse_closure(seeds, allowed=notq)
    return FairAnalysis(
        q_mask=qm, notq_mask=notq, cond=cond, fair_flags=fair_flags,
        avoid_mask=avoid,
    )


def check_leadsto(program: Program, p: Predicate, q: Predicate) -> CheckResult:
    """Check ``p ↝ q`` under weak fairness of ``D``.

    The witness of a failure contains a ``p``-state from which the
    scheduler can confine the execution to ``¬q`` forever, plus a state of
    the fair SCC it settles in.
    """
    space = program.space
    subject = f"{p.describe()} ~> {q.describe()}"
    analysis = fair_scc_analysis(program, q)
    bad = p.mask(space) & analysis.avoid_mask
    idx = np.flatnonzero(bad)
    if idx.size == 0:
        return CheckResult(
            True, "leadsto", subject,
            message=(
                f"{int(analysis.safe_mask.sum())} ¬q-states are safe, "
                f"{int(analysis.avoid_mask.sum())} avoidable, none satisfy p"
            ),
        )
    state = space.state_at(int(idx[0]))
    # Locate some fair SCC for the diagnostic (any one reachable suffices
    # for the message; exact path reconstruction is not needed).
    fair_state = None
    for k, comp in enumerate(analysis.cond.components):
        if analysis.fair_flags[k]:
            fair_state = space.state_at(int(comp[0]))
            break
    return CheckResult(
        False,
        "leadsto",
        subject,
        message=(
            f"from p-state {state!r} the scheduler can avoid q forever "
            f"(e.g. settling near {fair_state!r})"
        ),
        witness={
            "state": state,
            "fair_scc_state": fair_state,
            "violations": int(idx.size),
        },
    )
