"""Model checking ``p ↝ q`` under weak fairness (fair-SCC analysis).

Semantics.  An execution repeatedly applies commands from ``C``; weak
fairness requires every command of ``D`` to be applied infinitely often
(commands are total and always enabled, so weak and unconditional fairness
coincide).  ``p ↝ q`` holds iff every fair execution starting from any
``p``-state reaches a ``q``-state.

Finite-state characterization.  ``p ↝ q`` fails iff some ``p``-state can
reach — inside ``¬q`` — a **fair SCC**: a strongly connected component
``H`` of the ``¬q``-restricted transition graph such that *every* ``d ∈ D``
has an edge with both endpoints in ``H``.

*Soundness:* inside a fair SCC the scheduler can tour all the required
``d``-edges forever (strong connectivity supplies the connecting walks, and
``skip ∈ C`` supplies waiting moves), yielding a fair execution that never
reaches ``q``.  *Completeness:* the limit set of any fair ``¬q``-confined
execution is strongly connected and, for each ``d ∈ D``, contains a state
whose ``d``-successor is also in the limit set (``d`` fires infinitely often
from finitely many states); hence the limit set lies inside a fair SCC,
which the start state therefore reaches.

The analysis returned by :func:`fair_scc_analysis` also drives the proof
synthesizer (:mod:`repro.semantics.synthesis`): in the complement region
every SCC misses some ``d ∈ D`` entirely, which is exactly a
``transient``/``ensures`` step of the paper's proof system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.semantics.checker import CheckResult
from repro.semantics.scc import Condensation, condensation
from repro.semantics.transition import TransitionSystem

__all__ = ["FairAnalysis", "fair_scc_analysis", "check_leadsto"]


def _csr_reverse(
    allowed: np.ndarray, tables: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """CSR adjacency of the *reversed* subgraph induced by ``allowed``.

    Returns ``(indptr, src)``: predecessors of node ``v`` are
    ``src[indptr[v]:indptr[v+1]]``.
    """
    n = allowed.shape[0]
    srcs, dsts = [], []
    allowed_idx = np.flatnonzero(allowed)
    for table in tables:
        d = table[allowed_idx]
        keep = allowed[d]
        srcs.append(allowed_idx[keep])
        dsts.append(d[keep])
    if srcs:
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
    else:  # pragma: no cover - programs always have at least skip
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)
    order = np.argsort(dst, kind="stable")
    src = src[order]
    dst = dst[order]
    indptr = np.searchsorted(dst, np.arange(n + 1))
    return indptr, src


def _reverse_closure(
    seeds: np.ndarray, allowed: np.ndarray, tables: list[np.ndarray]
) -> np.ndarray:
    """States in ``allowed`` that can reach a seed via ``allowed``-internal
    edges (seeds included).  Fully vectorized CSR BFS."""
    indptr, src = _csr_reverse(allowed, tables)
    visited = seeds.copy()
    frontier = np.flatnonzero(visited)
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Standard CSR gather: expand [start, start+count) ranges.
        base = np.repeat(starts, counts)
        within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        preds = src[base + within]
        fresh = np.unique(preds[~visited[preds]])
        visited[fresh] = True
        frontier = fresh
    return visited


@dataclass
class FairAnalysis:
    """Full fairness analysis of the ``¬q`` subgraph.

    Attributes
    ----------
    q_mask, notq_mask:
        Satisfaction masks of the target predicate and its complement.
    cond:
        SCC condensation of the ``¬q`` subgraph (emission order = sinks
        first; see :mod:`repro.semantics.scc`).
    fair_flags:
        ``fair_flags[k]`` — SCC ``k`` satisfies the fair-SCC criterion.
    avoid_mask:
        States that can reach a fair SCC inside ``¬q`` — exactly the states
        from which the scheduler can avoid ``q`` forever.
    safe_mask:
        ``¬q``-states from which ``q`` is inevitable
        (``notq_mask & ~avoid_mask``).
    """

    q_mask: np.ndarray
    notq_mask: np.ndarray
    cond: Condensation
    fair_flags: np.ndarray
    avoid_mask: np.ndarray

    @property
    def safe_mask(self) -> np.ndarray:
        return self.notq_mask & ~self.avoid_mask

    def inevitable_mask(self) -> np.ndarray:
        """States from which every fair execution reaches ``q``."""
        return ~self.avoid_mask

    def safe_components(self) -> list[tuple[int, np.ndarray]]:
        """``(comp_id, members)`` for SCCs in the safe region, in emission
        (sinks-first) order — the levels of the synthesized induction."""
        out = []
        for k, members in enumerate(self.cond.components):
            if not self.avoid_mask[members[0]]:
                out.append((k, members))
        return out


def fair_scc_analysis(program: Program, q: Predicate) -> FairAnalysis:
    """Analyse the ``¬q`` subgraph of ``program`` for fair avoidance."""
    ts = TransitionSystem.for_program(program)
    space = ts.space
    qm = q.mask(space)
    notq = ~qm
    tables = [table for _, table in ts.all_tables()]
    cond = condensation(notq, tables)

    fair_tables = ts.fair_tables()
    fair_flags = np.zeros(cond.count, dtype=bool)
    member = np.zeros(space.size, dtype=bool)
    for k, comp in enumerate(cond.components):
        member[comp] = True
        ok = True
        for _, dtable in fair_tables:
            if not member[dtable[comp]].any():
                ok = False
                break
        fair_flags[k] = ok
        member[comp] = False

    seeds = np.zeros(space.size, dtype=bool)
    for k, comp in enumerate(cond.components):
        if fair_flags[k]:
            seeds[comp] = True
    avoid = _reverse_closure(seeds, notq, tables)
    return FairAnalysis(
        q_mask=qm, notq_mask=notq, cond=cond, fair_flags=fair_flags,
        avoid_mask=avoid,
    )


def check_leadsto(program: Program, p: Predicate, q: Predicate) -> CheckResult:
    """Check ``p ↝ q`` under weak fairness of ``D``.

    The witness of a failure contains a ``p``-state from which the
    scheduler can confine the execution to ``¬q`` forever, plus a state of
    the fair SCC it settles in.
    """
    space = program.space
    subject = f"{p.describe()} ~> {q.describe()}"
    analysis = fair_scc_analysis(program, q)
    bad = p.mask(space) & analysis.avoid_mask
    idx = np.flatnonzero(bad)
    if idx.size == 0:
        return CheckResult(
            True, "leadsto", subject,
            message=(
                f"{int(analysis.safe_mask.sum())} ¬q-states are safe, "
                f"{int(analysis.avoid_mask.sum())} avoidable, none satisfy p"
            ),
        )
    state = space.state_at(int(idx[0]))
    # Locate some fair SCC for the diagnostic (any one reachable suffices
    # for the message; exact path reconstruction is not needed).
    fair_state = None
    for k, comp in enumerate(analysis.cond.components):
        if analysis.fair_flags[k]:
            fair_state = space.state_at(int(comp[0]))
            break
    return CheckResult(
        False,
        "leadsto",
        subject,
        message=(
            f"from p-state {state!r} the scheduler can avoid q forever "
            f"(e.g. settling near {fair_state!r})"
        ),
        witness={
            "state": state,
            "fair_scc_state": fair_state,
            "violations": int(idx.size),
        },
    )
