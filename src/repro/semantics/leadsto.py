"""Model checking ``p ↝ q`` under weak fairness (fair-SCC analysis).

Semantics.  An execution repeatedly applies commands from ``C``; weak
fairness requires every command of ``D`` to be applied infinitely often
(commands are total and always enabled, so weak and unconditional fairness
coincide).  ``p ↝ q`` holds iff every fair execution starting from any
``p``-state reaches a ``q``-state.

Finite-state characterization.  ``p ↝ q`` fails iff some ``p``-state can
reach — inside ``¬q`` — a **fair SCC**: a strongly connected component
``H`` of the ``¬q``-restricted transition graph such that *every* ``d ∈ D``
has an edge with both endpoints in ``H``.

*Soundness:* inside a fair SCC the scheduler can tour all the required
``d``-edges forever (strong connectivity supplies the connecting walks, and
``skip ∈ C`` supplies waiting moves), yielding a fair execution that never
reaches ``q``.  *Completeness:* the limit set of any fair ``¬q``-confined
execution is strongly connected and, for each ``d ∈ D``, contains a state
whose ``d``-successor is also in the limit set (``d`` fires infinitely often
from finitely many states); hence the limit set lies inside a fair SCC,
which the start state therefore reaches.

The analysis returned by :func:`fair_scc_analysis` also drives the proof
synthesizer (:mod:`repro.semantics.synthesis`): in the complement region
every SCC misses some ``d ∈ D`` entirely, which is exactly a
``transient``/``ensures`` step of the paper's proof system.

Implementation.  All graph work (SCC condensation, reverse closure) runs on
the cached CSR backend (:mod:`repro.semantics.graph_backend`); the fair-SCC
criterion is evaluated **batched** over a stacked ``(command, state)`` edge
matrix — an edge ``s → d(s)`` is internal to its SCC iff
``comp_id[d(s)] == comp_id[s]`` — with a single segmented scatter into the
``(command, SCC)`` flag plane (:func:`_fair_flags`), instead of one
scatter round per command.  The same helper evaluates the strong-fairness
criterion (:mod:`repro.semantics.strong_fairness`) when handed enabledness
rows, and the sparse tier (:mod:`repro.semantics.sparse.checkers`) reuses
it verbatim over local successor columns.

Spaces above :data:`repro.semantics.sparse.SPARSE_THRESHOLD` route through
the sparse tier, which decides the reachable-restricted judgment without
allocating full-space arrays (see the :mod:`repro.semantics.sparse`
package docstring for the exact semantics).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.semantics.checker import CheckResult
from repro.semantics.scc import Condensation
from repro.semantics.transition import TransitionSystem

__all__ = ["FairAnalysis", "fair_scc_analysis", "check_leadsto"]


@dataclass
class FairAnalysis:
    """Full fairness analysis of the ``¬q`` subgraph.

    Attributes
    ----------
    q_mask, notq_mask:
        Satisfaction masks of the target predicate and its complement.
    cond:
        SCC condensation of the ``¬q`` subgraph (emission order = sinks
        first; see :mod:`repro.semantics.scc`).
    fair_flags:
        ``fair_flags[k]`` — SCC ``k`` satisfies the fair-SCC criterion.
    avoid_mask:
        States that can reach a fair SCC inside ``¬q`` — exactly the states
        from which the scheduler can avoid ``q`` forever.
    safe_mask:
        ``¬q``-states from which ``q`` is inevitable
        (``notq_mask & ~avoid_mask``).
    """

    q_mask: np.ndarray
    notq_mask: np.ndarray
    cond: Condensation
    fair_flags: np.ndarray
    avoid_mask: np.ndarray

    @property
    def safe_mask(self) -> np.ndarray:
        return self.notq_mask & ~self.avoid_mask

    def inevitable_mask(self) -> np.ndarray:
        """States from which every fair execution reaches ``q``."""
        return ~self.avoid_mask

    def safe_components(self) -> list[tuple[int, np.ndarray]]:
        """``(comp_id, members)`` for SCCs in the safe region, in emission
        (sinks-first) order — the levels of the synthesized induction."""
        out = []
        for k, members in enumerate(self.cond.components):
            if not self.avoid_mask[members[0]]:
                out.append((k, members))
        return out


#: Byte budget of one stacked (command, state) chunk in :func:`_fair_flags`.
_FAIR_CHUNK_BYTES = 16 << 20


def _fair_seed_mask(cond: Condensation, fair_flags: np.ndarray) -> np.ndarray:
    """Mask of all states lying in a flagged SCC (vectorized gather)."""
    seeds = np.zeros(cond.comp_id.shape[0], dtype=bool)
    if fair_flags.any():
        active = cond.comp_id >= 0
        seeds[active] = fair_flags[cond.comp_id[active]]
    return seeds


def _fair_flags(
    cond: Condensation,
    tables: list[np.ndarray],
    enabled: list[np.ndarray] | None = None,
) -> np.ndarray:
    """Per-SCC fairness flags, batched over all commands of ``D`` at once.

    ``tables`` are successor arrays over the graph's node set (full-space
    tables on the dense tier, local columns on the sparse tier).  The
    ``(command, state)`` internal-edge matrix is stacked per chunk and
    condensed in one pass into the ``(command, SCC)`` flag plane, with
    one ``all(axis=0)`` reduction per chunk instead of per-command
    flag-combination rounds.

    With ``enabled`` absent this is the *weak*-fairness criterion: SCC
    ``k`` keeps its flag iff every ``d ∈ D`` has an edge with both
    endpoints in ``k`` (disabled self-moves included).  With ``enabled``
    (one boolean row — or a zero-argument callable producing it — per
    command) it is the *strong* criterion: for every ``d``, either no
    member enables ``d``, or some member enables ``d`` with its
    ``d``-successor inside ``k``.  Callables are evaluated one at a time
    and only until the flags die, so full-space enabledness masks stream
    instead of being materialized up front.
    """
    count = cond.count
    ncmd = len(tables)
    if ncmd == 0 or count == 0:
        return np.ones(count, dtype=bool)
    act_idx = np.flatnonzero(cond.comp_id >= 0)
    comp_act = cond.comp_id[act_idx]
    # Chunk the command axis so the stacked matrix stays bounded (~16 MB)
    # on large dense spaces, and dead flag planes short-circuit between
    # chunks; typical |D| fits in one chunk, i.e. one segmented pass.
    chunk = max(1, _FAIR_CHUNK_BYTES // max(act_idx.shape[0], 1))
    flags = np.ones(count, dtype=bool)
    for lo in range(0, ncmd, chunk):
        rows = tables[lo:lo + chunk]
        internal = np.empty((len(rows), act_idx.shape[0]), dtype=bool)
        for r, table in enumerate(rows):
            internal[r] = cond.comp_id[table[act_idx]] == comp_act
        # Row-wise scatters into the (command, SCC) planes: internal is
        # mostly-True on liveness subgraphs (disabled commands self-loop),
        # so a matrix-wide nonzero would materialize int64 coordinate
        # arrays far larger than the bool chunk itself.
        if enabled is None:
            has_edge = np.zeros((len(rows), count), dtype=bool)
            for r in range(len(rows)):
                has_edge[r, comp_act[internal[r]]] = True
            flags &= has_edge.all(axis=0)
        else:
            # Per-row reduction with a short circuit: each enabledness
            # mask (possibly a lazy full-space evaluation) is built only
            # while some flag is still alive.
            for r, e in enumerate(enabled[lo:lo + chunk]):
                en_r = (e() if callable(e) else e)[act_idx]
                has_enabled = np.zeros(count, dtype=bool)
                has_enabled[comp_act[en_r]] = True
                honored = np.zeros(count, dtype=bool)
                honored[comp_act[internal[r] & en_r]] = True
                flags &= ~has_enabled | honored
                if not flags.any():
                    break
        if not flags.any():
            break
    return flags


def fair_scc_analysis(program: Program, q: Predicate) -> FairAnalysis:
    """Analyse the ``¬q`` subgraph of ``program`` for fair avoidance."""
    ts = TransitionSystem.for_program(program)
    space = ts.space
    graph = ts.graph()
    qm = q.mask(space)
    notq = ~qm
    cond = graph.condensation(notq)
    fair_flags = _fair_flags(cond, [t for _, t in ts.fair_tables()])
    seeds = _fair_seed_mask(cond, fair_flags)
    avoid = graph.reverse_closure(seeds, allowed=notq)
    return FairAnalysis(
        q_mask=qm, notq_mask=notq, cond=cond, fair_flags=fair_flags,
        avoid_mask=avoid,
    )


def check_leadsto(
    program: Program,
    p: Predicate,
    q: Predicate,
    *,
    budget=None,
    subspace=None,
    recorder=None,
    checkpoint=None,
) -> CheckResult:
    """Check ``p ↝ q`` under weak fairness of ``D``.

    ``budget`` / ``subspace`` / ``recorder`` form the normalized keyword
    set shared by every public checker (see ``docs/composition.md``):
    ``subspace`` forces the judgment onto an explicit reachable
    subspace, ``recorder`` installs a telemetry recorder for the call's
    duration.

    The witness of a failure contains a ``p``-state from which the
    scheduler can confine the execution to ``¬q`` forever, a state of the
    fair SCC it settles in, and ``witness["confining_path"]`` — a
    concrete shortest ``¬q``-confined walk from that ``p``-state into the
    fair SCC (on the sparse tier the witness additionally carries
    ``witness["path"]``, the BFS-parent command path showing the
    ``p``-state is reachable).

    Spaces above the sparse threshold are decided by the sparse tier over
    the reachable subspace (see :mod:`repro.semantics.sparse`); if the
    sparse tier cannot decide (non-expression ``initially``, reachable
    set above its ``node_limit``) the check falls back to the dense tier,
    which handles anything up to ``StateSpace.DENSE_MAX`` at dense memory
    cost — exactly the pre-sparse behaviour.  Beyond ``DENSE_MAX`` the
    fallback refuses with a :class:`~repro.errors.CapacityError` whose
    ``__cause__`` is the sparse failure.

    With a ``budget``, sparse-tier exhaustion degrades to a resumable
    ``status="unknown"`` :class:`~repro.semantics.budget.PartialResult`
    instead of raising (see ``docs/robustness.md``).
    """
    if recorder is not None:
        from repro import obs

        with obs.use_recorder(recorder):
            return check_leadsto(
                program, p, q, budget=budget, subspace=subspace,
                checkpoint=checkpoint,
            )
    space = program.space
    from repro.errors import ExplorationError
    from repro.semantics.sparse import dense_fallback, sparse_enabled

    if subspace is not None or sparse_enabled(space):
        from repro.semantics.sparse.checkers import check_leadsto_sparse

        try:
            return check_leadsto_sparse(
                program, p, q, budget=budget, subspace=subspace,
                checkpoint=checkpoint,
            )
        except ExplorationError as exc:
            dense_fallback(space, "check_leadsto", exc)
    subject = f"{p.describe()} ~> {q.describe()}"
    analysis = fair_scc_analysis(program, q)
    bad = p.mask(space) & analysis.avoid_mask
    idx = np.flatnonzero(bad)
    if idx.size == 0:
        return CheckResult(
            True, "leadsto", subject,
            message=(
                f"{int(analysis.safe_mask.sum())} ¬q-states are safe, "
                f"{int(analysis.avoid_mask.sum())} avoidable, none satisfy p"
            ),
        )
    i = int(idx[0])
    state = space.state_at(i)
    # Locate some fair SCC for the diagnostic, plus a concrete confining
    # path: a ¬q-confined walk from the violating p-state into a fair SCC
    # — the scheduler's avoidance strategy, state by state.
    fair_state = None
    for k, comp in enumerate(analysis.cond.components):
        if analysis.fair_flags[k]:
            fair_state = space.state_at(int(comp[0]))
            break
    sources = np.zeros(space.size, dtype=bool)
    sources[i] = True
    confining = TransitionSystem.for_program(program).graph().path_between(
        sources,
        _fair_seed_mask(analysis.cond, analysis.fair_flags),
        allowed=analysis.notq_mask,
    )
    confining_states = (
        [space.state_at(int(s)) for s in confining]
        if confining is not None
        else [state]
    )
    return CheckResult(
        False,
        "leadsto",
        subject,
        message=(
            f"from p-state {state!r} the scheduler can avoid q forever "
            f"(e.g. settling near {fair_state!r})"
        ),
        witness={
            "state": state,
            "fair_scc_state": fair_state,
            "violations": int(idx.size),
            "confining_path": confining_states,
        },
    )
