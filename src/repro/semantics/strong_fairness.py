"""Ablation: leads-to under **strong** fairness.

The paper's §2 model uses *weak* fairness: every command of ``D`` is
**executed** infinitely often — and since commands are total, an execution
whose guard is false is a legal no-op.  This has a consequence worth
isolating: a helpful command can be "starved" by always scheduling it while
its guard is off (see ``tests/test_leadsto.py::
test_weak_fairness_counts_vacuous_executions``).

This module checks the same ``p ↝ q`` judgment under **strong** fairness:

    if ``d ∈ D`` is *enabled* (some guard true) infinitely often, then
    ``d`` is executed *while enabled* infinitely often.

Finite-state characterization (an SCC criterion again, but per-command
three-valued): an SCC ``H`` of the ``¬q`` graph hosts a strongly-fair
``¬q``-confined execution iff for every ``d ∈ D`` **either**

- no state of ``H`` enables ``d`` (the premise of the fairness obligation
  never recurs), **or**
- some ``u ∈ H`` enables ``d`` with ``succ_d(u) ∈ H`` (the obligation can
  be honoured without leaving ``H``).

Strong fairness validates strictly more leads-to properties than weak
(every weakly-fair-avoidable SCC is strongly-fair-avoidable only if it
passes the stricter test).  The ablation benchmark
(``benchmarks/bench_fairness_ablation.py``) quantifies the gap on the
paper's systems: the §4 mechanism is insensitive (its yield guards are
exactly the priority states, which persist until served — making weak
fairness as good as strong), which is an implicit design property of the
paper's solution that the ablation makes visible.
"""

from __future__ import annotations

import numpy as np

from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.semantics.checker import CheckResult
from repro.semantics.leadsto import FairAnalysis, _fair_flags, _fair_seed_mask
from repro.semantics.transition import TransitionSystem

__all__ = [
    "strong_fair_scc_analysis",
    "check_leadsto_strong",
    "check_transient_strong",
    "fairness_gap",
]


def strong_fair_scc_analysis(program: Program, q: Predicate) -> FairAnalysis:
    """Like :func:`repro.semantics.leadsto.fair_scc_analysis` but with the
    strong-fairness SCC criterion.

    Evaluated batched over the stacked ``(command, state)`` edge matrix
    (:func:`repro.semantics.leadsto._fair_flags` with enabledness rows):
    an SCC stays fair iff for every ``d`` it either never enables ``d`` or
    contains an enabled ``d``-move staying inside the SCC.
    """
    ts = TransitionSystem.for_program(program)
    space = ts.space
    graph = ts.graph()
    qm = q.mask(space)
    notq = ~qm
    cond = graph.condensation(notq)
    fair_cmds = program.fair_commands
    # Enabledness rows stream lazily: each full-space mask is built only
    # when its chunk is reached, and not at all once the flags die.
    fair_flags = _fair_flags(
        cond,
        [ts.tables[cmd.name] for cmd in fair_cmds],
        enabled=[
            (lambda c=cmd: c.enabled_mask(space)) for cmd in fair_cmds
        ],
    )
    seeds = _fair_seed_mask(cond, fair_flags)
    avoid = graph.reverse_closure(seeds, allowed=notq)
    return FairAnalysis(
        q_mask=qm, notq_mask=notq, cond=cond, fair_flags=fair_flags,
        avoid_mask=avoid,
    )


def check_transient_strong(program: Program, p: Predicate) -> CheckResult:
    """``p`` is transient under **strong** fairness of ``D``.

    Finite-state criterion, dual to the per-SCC avoidance test above: no
    SCC of the ``p``-subgraph passes the strong-fairness test — every
    component has a helpful ``d ∈ D`` that some member enables and that
    exits the component from *every* member enabling it, so a
    strongly-fair execution must keep descending the condensation DAG
    until it leaves ``p``.  This is the semantic leaf behind
    :class:`repro.core.rules.StrongTransientBasis`, the rule the proof
    synthesizer uses to certify strong-fairness leads-to verdicts (e.g.
    the pipeline∘allocator delivery property, which *fails* under weak
    fairness).

    Spaces above the sparse threshold are decided reachable-restricted by
    :func:`repro.semantics.sparse.checkers.check_transient_strong_sparse`.
    """
    from repro.semantics.checker import _try_sparse

    routed = _try_sparse(
        program, "check_transient_strong_sparse", (p,), "check_transient_strong"
    )
    if routed is not None:
        return routed
    ts = TransitionSystem.for_program(program)
    space = ts.space
    subject = f"transient[strong] {p.describe()}"
    pm = p.mask(space)
    if not pm.any():
        return CheckResult(
            True, "transient-strong", subject,
            message="p is unsatisfiable (vacuously transient)",
        )
    fair_cmds = program.fair_commands
    cond = ts.graph().condensation(pm)
    flags = _fair_flags(
        cond,
        [ts.tables[cmd.name] for cmd in fair_cmds],
        enabled=[
            (lambda c=cmd: c.enabled_mask(space)) for cmd in fair_cmds
        ],
    )
    hit = np.flatnonzero(flags)
    if hit.size == 0:
        return CheckResult(
            True, "transient-strong", subject,
            message=(
                f"every SCC of the p-subgraph ({cond.count} component(s)) "
                "has an enabled exiting fair command"
            ),
            witness={"components": cond.count},
        )
    state = space.state_at(int(cond.components[int(hit[0])][0]))
    return CheckResult(
        False, "transient-strong", subject,
        message=(
            "a strongly-fair execution can stay inside p forever "
            f"(e.g. in the component of {state!r})"
        ),
        witness={"state": state, "fair_components": int(hit.size)},
    )


def check_leadsto_strong(
    program: Program,
    p: Predicate,
    q: Predicate,
    *,
    budget=None,
    subspace=None,
    recorder=None,
    checkpoint=None,
) -> CheckResult:
    """Check ``p ↝ q`` assuming **strong** fairness of ``D``.

    ``budget`` / ``subspace`` / ``recorder`` form the normalized keyword
    set shared by every public checker (see ``docs/composition.md``).

    Spaces above the sparse threshold are decided by the sparse tier over
    the reachable subspace (see :mod:`repro.semantics.sparse`), falling
    back to the dense tier when the sparse tier cannot decide (the
    :class:`~repro.errors.CapacityError` of an impossible fallback chains
    the sparse failure as ``__cause__``).  With a ``budget``, sparse-tier
    exhaustion degrades to a resumable ``status="unknown"``
    :class:`~repro.semantics.budget.PartialResult` instead of raising.
    """
    if recorder is not None:
        from repro import obs

        with obs.use_recorder(recorder):
            return check_leadsto_strong(
                program, p, q, budget=budget, subspace=subspace,
                checkpoint=checkpoint,
            )
    space = program.space
    from repro.errors import ExplorationError
    from repro.semantics.sparse import dense_fallback, sparse_enabled

    if subspace is not None or sparse_enabled(space):
        from repro.semantics.sparse.checkers import check_leadsto_strong_sparse

        try:
            return check_leadsto_strong_sparse(
                program, p, q, budget=budget, subspace=subspace,
                checkpoint=checkpoint,
            )
        except ExplorationError as exc:
            dense_fallback(space, "check_leadsto_strong", exc)
    subject = f"{p.describe()} ~>[strong] {q.describe()}"
    analysis = strong_fair_scc_analysis(program, q)
    bad = p.mask(space) & analysis.avoid_mask
    idx = np.flatnonzero(bad)
    if idx.size == 0:
        return CheckResult(
            True, "leadsto-strong", subject,
            message=(
                f"{int(analysis.safe_mask.sum())} ¬q-states safe under "
                f"strong fairness, {int(analysis.avoid_mask.sum())} avoidable"
            ),
        )
    state = space.state_at(int(idx[0]))
    return CheckResult(
        False, "leadsto-strong", subject,
        message=f"avoidable even under strong fairness, from {state!r}",
        witness={"state": state, "violations": int(idx.size)},
    )


def fairness_gap(program: Program, p: Predicate, q: Predicate) -> dict[str, bool]:
    """Verdicts of both fairness notions side by side.

    Soundness invariant (tested): weak ⇒ strong — anything guaranteed under
    the weaker scheduler constraint is guaranteed under the stronger one.
    The interesting instances are ``{'weak': False, 'strong': True}``.
    """
    from repro.semantics.leadsto import check_leadsto

    weak = check_leadsto(program, p, q).holds
    strong = check_leadsto_strong(program, p, q).holds
    return {"weak": weak, "strong": strong, "gap": strong and not weak}
