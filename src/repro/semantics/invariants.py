"""Invariant utilities: strongest invariant and inductive strengthening.

The paper's logic deliberately works *without* the substitution axiom, so
an ``invariant`` obligation is inductive: ``init p ∧ stable p``.  Many
natural predicates (the philosophers' mutual exclusion, say) are true of
every reachable state yet **not** inductive — the standard remedy is to
conjoin an auxiliary predicate until the conjunction is stable.  This
module mechanizes that step:

- :func:`strongest_invariant` — the reachable-state set as a predicate
  (UNITY's *SI*; what the substitution axiom implicitly appeals to);
- :func:`inductive_strengthening` — the **weakest inductive predicate
  inside ``p``**: the greatest fixpoint ``νX. p ∧ ⋀_c wp.c.X``, computed
  by mask iteration.  ``p`` is an invariant of the system *iff* this
  strengthening still contains the initial states (soundness and maximality
  are immediate: the gfp is stable by construction, contains every stable
  subset of ``p``, and anything initial outside it escapes ``p``);
- :func:`auto_invariant` — the resulting end-to-end check: "is ``p`` true
  of every reachable state?", answered *and certified* by producing the
  strengthened predicate, without enumerating reachability forward.

The philosophers' test uses this to rediscover the ``eat_i ⇒ Priority.i``
strengthening automatically.
"""

from __future__ import annotations

import numpy as np

from repro.core.predicates import MaskPredicate, Predicate
from repro.core.program import Program
from repro.semantics.checker import CheckResult
from repro.semantics.explorer import reachable_mask
from repro.semantics.transition import TransitionSystem

__all__ = ["strongest_invariant", "inductive_strengthening", "auto_invariant"]


def strongest_invariant(program: Program) -> MaskPredicate:
    """The strongest invariant *SI*: exactly the reachable states.

    Every invariant (inductive or not) contains it; the paper's logic
    avoids appealing to it (no substitution axiom), so this is exposed for
    comparison and diagnostics rather than used by the checkers.
    """
    return MaskPredicate(
        program.space, reachable_mask(program), f"SI({program.name})"
    )


def inductive_strengthening(program: Program, p: Predicate) -> MaskPredicate:
    """The weakest inductive predicate contained in ``p``.

    Greatest-fixpoint iteration on masks: start from ``p`` and repeatedly
    remove states with some command-successor outside the current set.
    Terminates in at most ``|space|`` rounds (the mask shrinks); each
    round is a vectorized gather per command.
    """
    ts = TransitionSystem.for_program(program)
    mask = p.mask(ts.space).copy()
    tables = [table for _, table in ts.all_tables()]
    changed = True
    while changed:
        changed = False
        for table in tables:
            keep = mask & mask[table]
            if not np.array_equal(keep, mask):
                mask = keep
                changed = True
    return MaskPredicate(
        ts.space, mask, f"strengthen({p.describe()})"
    )


def auto_invariant(program: Program, p: Predicate) -> CheckResult:
    """Decide "``p`` holds on every reachable state" by strengthening.

    Unlike :func:`repro.semantics.checker.check_reachable_invariant`, a
    positive answer comes with a *certificate*: the witness key
    ``"strengthened"`` holds an inductive predicate ``q ⊆ p`` with
    ``init q`` — i.e. a genuine paper-style ``invariant q`` that implies
    ``p``.  (This is the auxiliary-invariant discovery step, automated on
    finite instances.)
    """
    subject = f"auto-invariant {p.describe()}"
    strengthened = inductive_strengthening(program, p)
    init_mask = program.initial_mask()
    missing = init_mask & ~strengthened.mask(program.space)
    idx = np.flatnonzero(missing)
    if idx.size == 0:
        return CheckResult(
            True, "auto-invariant", subject,
            message=(
                f"inductive strengthening retains "
                f"{strengthened.count(program.space)} of "
                f"{p.count(program.space)} p-states and all initial states"
            ),
            witness={"strengthened": strengthened},
        )
    state = program.space.state_at(int(idx[0]))
    return CheckResult(
        False, "auto-invariant", subject,
        message=(
            f"initial state {state!r} can escape p "
            "(it falls outside the weakest inductive subset)"
        ),
        witness={"state": state, "strengthened": strengthened},
    )
