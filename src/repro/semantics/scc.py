"""Iterative Tarjan strongly-connected-components over successor tables.

Used by the leads-to model checker (:mod:`repro.semantics.leadsto`): the
``¬q``-restricted transition graph is decomposed into SCCs, and weak
fairness reduces to a per-SCC edge criterion.

The implementation is an explicit-stack Tarjan (no recursion — state spaces
routinely exceed Python's recursion limit) over a *subgraph*: only states
with ``mask`` true participate, and only edges whose endpoints are both in
the mask are followed.

Tarjan emits SCCs in **reverse topological order** of the condensation
(every edge leaving an SCC points to an earlier-emitted SCC).  The proof
synthesizer relies on this: it turns the emission order directly into the
variant-metric levels of the induction certificate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Condensation", "condensation"]


@dataclass
class Condensation:
    """SCC decomposition of a masked subgraph.

    Attributes
    ----------
    comp_id:
        Array of length ``n``; SCC index per state (``-1`` outside the mask).
        Indices follow emission order: edges between distinct SCCs always go
        from higher ``comp_id`` to lower.
    components:
        ``components[k]`` is the sorted array of member states of SCC ``k``.
    """

    comp_id: np.ndarray
    components: list[np.ndarray]

    @property
    def count(self) -> int:
        """Number of SCCs."""
        return len(self.components)


def condensation(mask: np.ndarray, tables: list[np.ndarray]) -> Condensation:
    """Tarjan SCCs of the subgraph induced by ``mask``.

    ``tables`` are full-space successor tables; an edge ``s → t[s]`` exists
    iff both endpoints satisfy ``mask``.
    """
    n = mask.shape[0]
    comp_id = np.full(n, -1, dtype=np.int64)
    index = np.full(n, -1, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)

    ntables = len(tables)
    counter = 0
    components: list[np.ndarray] = []
    stack: list[int] = []  # Tarjan's SCC stack
    # DFS work stack holds (node, next-edge-cursor) pairs.
    work: list[list[int]] = []

    nodes = np.flatnonzero(mask)
    for root in nodes:
        root = int(root)
        if index[root] >= 0:
            continue
        work.append([root, 0])
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            frame = work[-1]
            v, cursor = frame
            if cursor < ntables:
                frame[1] += 1
                w = int(tables[cursor][v])
                if not mask[w]:
                    continue
                if index[w] < 0:
                    # Tree edge: descend.
                    index[w] = low[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack[w] = True
                    work.append([w, 0])
                elif on_stack[w]:
                    if index[w] < low[v]:
                        low[v] = index[w]
                continue
            # All edges of v explored: close the frame.
            work.pop()
            if work:
                parent = work[-1][0]
                if low[v] < low[parent]:
                    low[parent] = low[v]
            if low[v] == index[v]:
                # v is the root of an SCC: pop it off the stack.
                members = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    members.append(w)
                    if w == v:
                        break
                arr = np.array(sorted(members), dtype=np.int64)
                comp_id[arr] = len(components)
                components.append(arr)
    return Condensation(comp_id=comp_id, components=components)
