"""Vectorized strongly-connected-components over masked transition graphs.

Used by the leads-to model checker (:mod:`repro.semantics.leadsto`): the
``¬q``-restricted transition graph is decomposed into SCCs, and weak
fairness reduces to a per-SCC edge criterion.

Algorithm.  The subgraph induced by ``mask`` (self-loops and duplicate
edges dropped — neither affects SCC structure) is decomposed in two
array-level stages:

1. **Trim**: iteratively peel nodes whose in- or out-degree within the
   remaining subgraph is zero.  Such nodes lie on no cycle, so each is a
   singleton SCC.  One peel round is a constant number of NumPy kernels;
   DAG-like regions (the common case for liveness proofs, e.g. ladder and
   priority programs) dissolve entirely here.
2. **Forward–backward**: for each remaining partition, pick a pivot and
   intersect its forward- and backward-reachable sets (CSR frontier BFS,
   one NumPy round per level).  The intersection is the pivot's SCC; the
   three remainders (forward-only, backward-only, untouched) are
   independent partitions and recurse via an explicit worklist.

Python work is O(1) per BFS *level* / peel round / partition — never per
node or per edge.

Emission-order invariant (relied on by :mod:`repro.semantics.synthesis`,
which turns the order directly into the variant-metric levels of the
induction certificate):

    ``comp_id`` follows **reverse topological order** of the condensation
    — sinks first; every edge between distinct SCCs goes from a higher
    ``comp_id`` to a lower one.

The invariant is established explicitly by a vectorized Kahn pass over the
condensed DAG (peel sink components level by level), with ties inside a
level broken by smallest member state, making the order *canonical*: any
correct SCC partition yields the same ``Condensation``.  Canonicity is
what makes the invariant **tier-portable**: the sparse engine's local-id
sub-CSR preserves global index order (``ReachableSubspace.global_ids``
is sorted), so "smallest member" names the same state on both tiers and
the local condensation of ``reach ∧ mask`` equals the dense one
component for component — sparse-synthesized certificates therefore
carry the same variant metric as dense ones (see ``docs/proofs.md``).
The legacy explicit-stack Tarjan is kept as :func:`tarjan_condensation`,
the reference oracle for randomized differential tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.csr import build_csr, csr_neighbors, dedup_edges, minimal_int_dtype

__all__ = [
    "Condensation",
    "condensation",
    "condense_subgraph",
    "canonicalize",
    "tarjan_condensation",
]


@dataclass
class Condensation:
    """SCC decomposition of a masked subgraph.

    Attributes
    ----------
    comp_id:
        Array of length ``n``; SCC index per state (``-1`` outside the mask).
        Indices follow emission order: edges between distinct SCCs always go
        from higher ``comp_id`` to lower.
    components:
        ``components[k]`` is the sorted array of member states of SCC ``k``.
    """

    comp_id: np.ndarray
    components: list[np.ndarray]

    @property
    def count(self) -> int:
        """Number of SCCs."""
        return len(self.components)


# ---------------------------------------------------------------------------
# Subgraph extraction (standalone path; the cached path lives in
# repro.semantics.graph_backend and shares condense_subgraph below).
# ---------------------------------------------------------------------------


def _sub_csr_from_tables(
    mask: np.ndarray, tables: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Forward and reverse CSR of the masked subgraph, on compacted ids.

    Returns ``(nodes, fp, fn, rp, rn)``.  Self-loops and duplicate edges
    are dropped.
    """
    n = mask.shape[0]
    nodes = np.flatnonzero(mask)
    m = nodes.shape[0]
    dtype = minimal_int_dtype(m)
    remap = np.full(n, -1, dtype=dtype)
    remap[nodes] = np.arange(m, dtype=dtype)
    srcs, dsts = [], []
    for table in tables:
        d = table[nodes]
        keep = mask[d] & (d != nodes)
        srcs.append(remap[nodes[keep]])
        dsts.append(remap[d[keep]])
    src = np.concatenate(srcs) if srcs else np.empty(0, dtype=dtype)
    dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=dtype)
    src, dst = dedup_edges(src, dst, max(m, 1))
    fp, fn = build_csr(src, dst, m, dtype=dtype)
    rp, rn = build_csr(dst, src, m, dtype=dtype)
    return nodes, fp, fn, rp, rn


# ---------------------------------------------------------------------------
# SCC partition (trim + forward-backward)
# ---------------------------------------------------------------------------


def _bfs_partition(
    indptr: np.ndarray,
    nbr: np.ndarray,
    pivot: int,
    plabel: np.ndarray,
    pid: int,
    budget: int,
) -> tuple[np.ndarray | None, int]:
    """Nodes of partition ``pid`` reachable from ``pivot`` (boolean mask).

    Returns ``(mask, levels_used)``; ``mask`` is ``None`` if the BFS ran
    out of its level ``budget`` (the caller falls back to Tarjan).
    """
    vis = np.zeros(plabel.shape[0], dtype=bool)
    vis[pivot] = True
    frontier = np.array([pivot], dtype=np.int64)
    used = 0
    while frontier.size:
        if used >= budget:
            return None, used
        used += 1
        nxt = csr_neighbors(indptr, nbr, frontier)
        nxt = nxt[(plabel[nxt] == pid) & ~vis[nxt]]
        if nxt.size == 0:
            break
        frontier = np.unique(nxt)
        vis[frontier] = True
    return vis, used


def _decrement(deg: np.ndarray, targets: np.ndarray, m: int) -> None:
    """``deg[t] -= multiplicity of t in targets`` — ``subtract.at`` for
    sparse target sets, a bincount pass when targets rival the node count."""
    if targets.size * 16 < m:
        np.subtract.at(deg, targets, 1)
    else:
        deg -= np.bincount(targets, minlength=m)


def _tarjan_csr(
    fp: np.ndarray,
    fn: np.ndarray,
    plabel: np.ndarray,
    labels: np.ndarray,
    next_label: int,
) -> int:
    """Iterative Tarjan over the residual nodes (``plabel >= 0``).

    Escape hatch for residuals made of many small SCCs, where the
    per-partition forward-backward rounds would be slower than one
    O(V + E) sweep.  Writes into ``labels``; returns the next free label.

    Cross-partition edges are safe to follow: forward-backward partitions
    are SCC-closed, so Tarjan over their union finds the same components.
    """
    m = plabel.shape[0]
    in_res = plabel >= 0
    index = np.full(m, -1, dtype=np.int64)
    low = np.zeros(m, dtype=np.int64)
    on_stack = np.zeros(m, dtype=bool)
    counter = 0
    stack: list[int] = []
    work: list[list[int]] = []  # frames: [node, edge-cursor]
    for root in np.flatnonzero(in_res):
        root = int(root)
        if index[root] >= 0:
            continue
        work.append([root, int(fp[root])])
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            frame = work[-1]
            v, cursor = frame
            if cursor < fp[v + 1]:
                frame[1] += 1
                w = int(fn[cursor])
                if not in_res[w]:
                    continue
                if index[w] < 0:
                    index[w] = low[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack[w] = True
                    work.append([w, int(fp[w])])
                elif on_stack[w]:
                    if index[w] < low[v]:
                        low[v] = index[w]
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if low[v] < low[parent]:
                    low[parent] = low[v]
            if low[v] == index[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    labels[w] = next_label
                    if w == v:
                        break
                next_label += 1
    return next_label


def _scc_labels(
    m: int,
    fp: np.ndarray,
    fn: np.ndarray,
    rp: np.ndarray,
    rn: np.ndarray,
) -> tuple[np.ndarray, int]:
    """Partition the ``m``-node subgraph into SCCs.

    Returns ``(labels, count)`` with arbitrary label numbering (the
    canonical emission order is assigned afterwards by the Kahn pass).
    """
    labels = np.full(m, -1, dtype=np.int64)
    next_label = 0
    active = np.ones(m, dtype=bool)
    outdeg = np.diff(fp).copy()
    indeg = np.diff(rp).copy()

    # Stage 1: trim.  Every peeled node is a singleton SCC.  Degrees are
    # maintained incrementally, so each round only touches the neighbors
    # of the nodes it peels.
    pending = np.flatnonzero((outdeg == 0) | (indeg == 0))
    while pending.size:
        idx = pending
        labels[idx] = np.arange(next_label, next_label + idx.size)
        next_label += idx.size
        active[idx] = False
        succ = csr_neighbors(fp, fn, idx)
        succ = succ[active[succ]]
        if succ.size:
            _decrement(indeg, succ, m)
        pred = csr_neighbors(rp, rn, idx)
        pred = pred[active[pred]]
        if pred.size:
            _decrement(outdeg, pred, m)
        touched = np.concatenate([succ, pred]) if pred.size else succ
        touched = touched[(indeg[touched] == 0) | (outdeg[touched] == 0)]
        pending = np.unique(touched)

    # Stage 2: forward-backward splitting of what remains.
    rest = np.flatnonzero(active)
    if rest.size == 0:
        return labels, next_label
    plabel = np.full(m, -1, dtype=np.int64)
    plabel[rest] = 0
    worklist: list[tuple[int, np.ndarray]] = [(0, rest)]
    next_pid = 1
    # Forward-backward earns its keep on residuals with few, fat SCCs
    # (BFS levels ≪ nodes).  Budget the total BFS levels: once the
    # per-level Python overhead would rival one O(V+E) Tarjan sweep —
    # many small SCCs, or huge diameters — finish with Tarjan instead.
    level_budget = max(64, rest.size >> 4)
    while worklist:
        pid, members = worklist.pop()
        if members.size == 1:
            labels[members] = next_label
            next_label += 1
            plabel[members] = -2  # done — a Tarjan fallback must skip it
            continue
        # Middle pivot: on chain-shaped partitions it splits roughly in
        # half; a first-member pivot would re-walk the whole chain to
        # remove a single SCC (quadratic).
        pivot = int(members[members.size >> 1])
        fwd, used = _bfs_partition(fp, fn, pivot, plabel, pid, level_budget)
        level_budget -= used
        if fwd is not None:
            bwd, used = _bfs_partition(rp, rn, pivot, plabel, pid, level_budget)
            level_budget -= used
        if fwd is None or bwd is None:
            # The popped partition still carries plabel == pid, so the
            # Tarjan sweep over plabel >= 0 covers it and the queue.
            next_label = _tarjan_csr(fp, fn, plabel, labels, next_label)
            break
        in_scc = fwd & bwd
        scc_nodes = np.flatnonzero(in_scc)
        labels[scc_nodes] = next_label
        next_label += 1
        plabel[scc_nodes] = -2
        mem_f = fwd[members]
        mem_b = bwd[members]
        mem_scc = mem_f & mem_b
        for part in (
            members[mem_f & ~mem_scc],
            members[mem_b & ~mem_scc],
            members[~mem_f & ~mem_b],
        ):
            if part.size:
                plabel[part] = next_pid
                worklist.append((next_pid, part))
                next_pid += 1
    return labels, next_label


# ---------------------------------------------------------------------------
# Canonical emission order (vectorized Kahn over the condensed DAG)
# ---------------------------------------------------------------------------


def _emission_order(
    m: int,
    labels: np.ndarray,
    count: int,
    fp: np.ndarray,
    fn: np.ndarray,
) -> np.ndarray:
    """Map SCC label → emission index (sinks first, canonical).

    Kahn's algorithm on the condensed DAG, peeling **sink** components
    level by level; a component's level is thus its longest distance to a
    sink, so every condensed edge goes from a strictly higher level to a
    lower one.  The emission index sorts by ``(level, smallest member)``
    — reverse topological, with ties broken canonically so the order is
    independent of the label numbering produced by the partition stage.
    """
    order_of = np.empty(count, dtype=np.int64)
    if count == 0:
        return order_of
    src_all = np.repeat(np.arange(m, dtype=np.int64), np.diff(fp))
    lu = labels[src_all]
    lv = labels[fn.astype(np.int64, copy=False)]
    cross = lu != lv
    lu, lv = dedup_edges(lu[cross], lv[cross], count)
    # Condensed reverse adjacency: predecessors of each component.
    crp, crn = build_csr(lv, lu, count, dtype=np.dtype(np.int64))
    outdeg = np.bincount(lu, minlength=count)
    # Smallest member node per label — the canonical tie-break key.
    # Reversed scatter: later writes win, so each label keeps its first node.
    first = np.empty(count, dtype=np.int64)
    first[labels[::-1]] = np.arange(m - 1, -1, -1, dtype=np.int64)
    level = np.zeros(count, dtype=np.int64)
    emitted = 0
    lvl = 0
    ready = np.flatnonzero(outdeg == 0)
    while ready.size:
        level[ready] = lvl
        lvl += 1
        emitted += ready.size
        outdeg[ready] = -1
        preds = csr_neighbors(crp, crn, ready)
        if preds.size == 0:
            break
        _decrement(outdeg, preds, count)
        ready = np.unique(preds[outdeg[preds] == 0])
    if emitted != count:  # pragma: no cover - the condensation is a DAG
        raise AssertionError("condensed graph is not acyclic")
    order_of[np.lexsort((first, level))] = np.arange(count, dtype=np.int64)
    return order_of


def _package(
    n: int, nodes: np.ndarray, labels: np.ndarray, order_of: np.ndarray
) -> Condensation:
    """Assemble a :class:`Condensation` from labels + emission order."""
    count = order_of.shape[0]
    comp_id = np.full(n, -1, dtype=np.int64)
    rank = order_of[labels] if count else labels
    comp_id[nodes] = rank
    if count == 0:
        return Condensation(comp_id=comp_id, components=[])
    perm = np.argsort(rank, kind="stable")
    sorted_nodes = nodes[perm]
    counts = np.bincount(rank, minlength=count)
    components = np.split(sorted_nodes, np.cumsum(counts)[:-1])
    return Condensation(comp_id=comp_id, components=list(components))


def condense_subgraph(
    n: int,
    nodes: np.ndarray,
    fp: np.ndarray,
    fn: np.ndarray,
    rp: np.ndarray,
    rn: np.ndarray,
) -> Condensation:
    """SCC condensation from precomputed subgraph CSRs (compact ids).

    ``nodes`` maps compact id → state index; ``(fp, fn)`` / ``(rp, rn)``
    are the forward / reverse CSR with self-loops and duplicates removed.
    This is the shared core of :func:`condensation` and
    :meth:`repro.semantics.graph_backend.GraphBackend.condensation`.
    """
    m = nodes.shape[0]
    labels, count = _scc_labels(m, fp, fn, rp, rn)
    order_of = _emission_order(m, labels, count, fp, fn)
    return _package(n, nodes, labels, order_of)


def condensation(mask: np.ndarray, tables: list[np.ndarray]) -> Condensation:
    """Vectorized SCCs of the subgraph induced by ``mask``.

    ``tables`` are full-space successor tables; an edge ``s → t[s]`` exists
    iff both endpoints satisfy ``mask``.  Components are emitted in the
    canonical sinks-first order (see module docstring).
    """
    n = mask.shape[0]
    nodes, fp, fn, rp, rn = _sub_csr_from_tables(mask, tables)
    return condense_subgraph(n, nodes, fp, fn, rp, rn)


def canonicalize(
    cond: Condensation, mask: np.ndarray, tables: list[np.ndarray]
) -> Condensation:
    """Re-emit an existing SCC partition in the canonical sinks-first order.

    Useful for differential testing: any valid partition of the same
    subgraph (e.g. from :func:`tarjan_condensation`) canonicalizes to a
    ``Condensation`` equal to the one :func:`condensation` produces.
    """
    n = mask.shape[0]
    nodes, fp, fn, _rp, _rn = _sub_csr_from_tables(mask, tables)
    labels = cond.comp_id[nodes]
    order_of = _emission_order(nodes.shape[0], labels, cond.count, fp, fn)
    return _package(n, nodes, labels, order_of)


# ---------------------------------------------------------------------------
# Legacy Tarjan — the reference oracle for differential tests
# ---------------------------------------------------------------------------


def tarjan_condensation(mask: np.ndarray, tables: list[np.ndarray]) -> Condensation:
    """Explicit-stack Tarjan SCCs of the subgraph induced by ``mask``.

    The original per-node/per-edge implementation, kept as the reference
    oracle: its partition must always agree with :func:`condensation`, and
    its emission order satisfies the same reverse-topological invariant
    (though with Tarjan's DFS-dependent tie-breaking, not the canonical
    one — compare via :func:`canonicalize`).
    """
    n = mask.shape[0]
    comp_id = np.full(n, -1, dtype=np.int64)
    index = np.full(n, -1, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)

    ntables = len(tables)
    counter = 0
    components: list[np.ndarray] = []
    stack: list[int] = []  # Tarjan's SCC stack
    # DFS work stack holds (node, next-edge-cursor) pairs.
    work: list[list[int]] = []

    nodes = np.flatnonzero(mask)
    for root in nodes:
        root = int(root)
        if index[root] >= 0:
            continue
        work.append([root, 0])
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            frame = work[-1]
            v, cursor = frame
            if cursor < ntables:
                frame[1] += 1
                w = int(tables[cursor][v])
                if not mask[w]:
                    continue
                if index[w] < 0:
                    # Tree edge: descend.
                    index[w] = low[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack[w] = True
                    work.append([w, 0])
                elif on_stack[w]:
                    if index[w] < low[v]:
                        low[v] = index[w]
                continue
            # All edges of v explored: close the frame.
            work.pop()
            if work:
                parent = work[-1][0]
                if low[v] < low[parent]:
                    low[parent] = low[v]
            if low[v] == index[v]:
                # v is the root of an SCC: pop it off the stack.
                members = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    members.append(w)
                    if w == v:
                        break
                arr = np.array(sorted(members), dtype=np.int64)
                comp_id[arr] = len(components)
                components.append(arr)
    return Condensation(comp_id=comp_id, components=components)
