"""The reproduction report: every paper claim, re-verified in one call.

``run_all()`` executes the complete experiment suite of EXPERIMENTS.md on
laptop-scale instances and returns structured rows; ``render_markdown``
formats them as the table recorded in that file.  The CLI entry point is
``python -m repro reproduce``.

This module is the "regenerate the paper's results" harness: the paper has
no numeric tables, so its reportable results are the verdicts of its
numbered claims — which is exactly what each row carries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.util.tables import format_table

__all__ = ["ExperimentRow", "run_experiment", "run_all", "render_markdown", "render_text"]

#: Experiment ids in suite order.
EXPERIMENT_IDS = (
    "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E12", "E13",
    "E14", "E15",
)


@dataclass
class ExperimentRow:
    """One verified claim instance."""

    exp_id: str
    paper_claim: str
    instance: str
    expected: str
    measured: str
    seconds: float

    @property
    def ok(self) -> bool:
        return self.expected == self.measured


def _timed(fn) -> tuple[object, float]:
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _verdict(holds: bool) -> str:
    return "holds" if holds else "fails"


# ---------------------------------------------------------------------------
# E1/E2 — the §3 toy example
# ---------------------------------------------------------------------------


def run_e1() -> list[ExperimentRow]:
    from repro.systems.counter import build_counter_system

    rows = []
    for n, cap in [(2, 3), (3, 3), (4, 2)]:
        cs = build_counter_system(n, cap)
        res, dt = _timed(lambda: cs.invariant_property().check(cs.system))
        rows.append(ExperimentRow(
            "E1", "(1) invariant C = Σ c_i", f"n={n}, cap={cap}",
            "holds", _verdict(res.holds), dt,
        ))
    return rows


def run_e2() -> list[ExperimentRow]:
    from repro.systems.counter import build_counter_system
    from repro.systems.counter_proof import build_invariant_proof

    rows = []
    for n, cap in [(2, 2), (3, 2)]:
        cs = build_counter_system(n, cap)
        proof = build_invariant_proof(cs)
        res, dt = _timed(lambda: proof.check(cs.system))
        rows.append(ExperimentRow(
            "E2", "§3.3 compositional proof", f"n={n}, cap={cap}",
            "kernel-OK", "kernel-OK" if res.ok else "kernel-FAIL", dt,
        ))
    return rows


# ---------------------------------------------------------------------------
# E3/E4 — §4 safety and liveness
# ---------------------------------------------------------------------------


def _priority_instances():
    from repro.graph.generators import clique_graph, path_graph, random_graph, ring_graph

    return [
        ("ring(5)", lambda: ring_graph(5)),
        ("path(5)", lambda: path_graph(5)),
        ("clique(4)", lambda: clique_graph(4)),
        ("random(6, .3)", lambda: random_graph(6, 0.3, seed=13)),
    ]


def run_e3() -> list[ExperimentRow]:
    from repro.systems.priority import build_priority_system

    rows = []
    for name, build in _priority_instances():
        psys = build_priority_system(build())
        res, dt = _timed(lambda: psys.safety_property().check(psys.system))
        rows.append(ExperimentRow(
            "E3", "(9) safety invariant", name, "holds", _verdict(res.holds), dt,
        ))
    return rows


def run_e4() -> list[ExperimentRow]:
    from repro.systems.priority import build_priority_system

    rows = []
    for name, build in _priority_instances():
        psys = build_priority_system(build())

        def all_nodes():
            return all(
                psys.liveness_property(i).holds_in(psys.system)
                for i in psys.graph.nodes()
            )

        holds, dt = _timed(all_nodes)
        rows.append(ExperimentRow(
            "E4", "(10 | acyclic) liveness, all nodes", name,
            "holds", _verdict(holds), dt,
        ))
    # Negative control: the literal (10) fails where cyclic orientations exist.
    from repro.graph.generators import ring_graph
    from repro.systems.priority import build_priority_system as build_ps

    psys = build_ps(ring_graph(5))
    res, dt = _timed(
        lambda: psys.unconditioned_liveness_property(0).check(psys.system)
    )
    rows.append(ExperimentRow(
        "E4", "literal (10) over all orientations", "ring(5)",
        "fails", _verdict(res.holds), dt,
    ))
    return rows


# ---------------------------------------------------------------------------
# E5/E6 — graph-theoretic core at scale
# ---------------------------------------------------------------------------


def run_e5_e6() -> list[ExperimentRow]:
    from repro.graph.acyclicity import is_acyclic
    from repro.graph.derivation import derivations_from, lemma1_bound_holds
    from repro.graph.generators import grid_graph, random_graph
    from repro.graph.orientation import Orientation
    from repro.util.rng import make_rng

    rows = []
    for name, graph in [
        ("grid(5×5)", grid_graph(5, 5)),
        ("random(48, .08)", random_graph(48, 0.08, seed=21)),
    ]:
        def sequence():
            rng = make_rng(0)
            o = Orientation.from_ranking(graph)
            lemma1_ok = acyclic_ok = True
            for _ in range(30):
                moves = derivations_from(o)
                i, o2 = moves[int(rng.integers(len(moves)))]
                lemma1_ok &= lemma1_bound_holds(o, o2, i)
                o = o2
                acyclic_ok &= is_acyclic(o)
            return lemma1_ok, acyclic_ok

        (l1, acy), dt = _timed(sequence)
        rows.append(ExperimentRow(
            "E5", "Lemma 1 (30 reversals)", name, "holds", _verdict(l1), dt,
        ))
        rows.append(ExperimentRow(
            "E6", "(16) acyclicity preserved (30 reversals)", name,
            "holds", _verdict(acy), dt,
        ))
    return rows


# ---------------------------------------------------------------------------
# E7 — the full §4 chain
# ---------------------------------------------------------------------------


def run_e7() -> list[ExperimentRow]:
    from repro.graph.generators import ring_graph
    from repro.systems.priority import build_priority_system
    from repro.systems.priority_proof import paper_chain

    rows = []
    psys = build_priority_system(ring_graph(4))
    chain, dt = _timed(lambda: paper_chain(psys))
    failing = [r for r in chain if not r.holds]
    rows.append(ExperimentRow(
        "E7", f"(5)–(20) full chain: {len(chain)} claims", "ring(4)",
        "all hold", "all hold" if not failing else f"{len(failing)} fail", dt,
    ))
    return rows


# ---------------------------------------------------------------------------
# E8 — classification theorems
# ---------------------------------------------------------------------------


def run_e8() -> list[ExperimentRow]:
    from repro.core.classify import check_existential_on, check_universal_on
    from repro.core.predicates import ExprPredicate
    from repro.core.properties import Init, Stable, Transient
    from repro.systems.counter import build_counter_system

    cs = build_counter_system(2, 2)
    f, g = cs.components
    cases = [
        ("stable is universal", lambda: check_universal_on(
            Stable(ExprPredicate(cs.C.ref() >= 1)), f, g).consistent),
        ("init is existential", lambda: check_existential_on(
            Init(ExprPredicate(cs.C.ref() == 0)), f, g).consistent),
        ("transient is existential", lambda: check_existential_on(
            Transient(ExprPredicate(cs.C.ref() == 0)), f, g).consistent),
    ]
    rows = []
    for claim, fn in cases:
        ok, dt = _timed(fn)
        rows.append(ExperimentRow(
            "E8", claim, "toy pair n=2", "consistent",
            "consistent" if ok else "REFUTED", dt,
        ))
    return rows


# ---------------------------------------------------------------------------
# E9 — certificates
# ---------------------------------------------------------------------------


def run_e9() -> list[ExperimentRow]:
    from repro.graph.generators import ring_graph
    from repro.systems.priority import build_priority_system
    from repro.systems.priority_proof import (
        cardinality_induction_proof,
        synthesized_liveness_proof,
    )

    psys = build_priority_system(ring_graph(5))
    rows = []

    def synth():
        proof = synthesized_liveness_proof(psys, 0)
        return proof.check(psys.system).ok

    ok, dt = _timed(synth)
    rows.append(ExperimentRow(
        "E9", "synthesized liveness certificate", "ring(5), node 0",
        "kernel-OK", "kernel-OK" if ok else "kernel-FAIL", dt,
    ))

    def card():
        proof = cardinality_induction_proof(psys, 0)
        return proof.check(psys.system).ok

    ok2, dt2 = _timed(card)
    rows.append(ExperimentRow(
        "E9", "§4.6 induction on |A*(i)|", "ring(5), node 0",
        "kernel-OK", "kernel-OK" if ok2 else "kernel-FAIL", dt2,
    ))
    return rows


# ---------------------------------------------------------------------------
# E12 — fairness ablation (weak vs strong)
# ---------------------------------------------------------------------------


def run_e12() -> list[ExperimentRow]:
    from repro.core.commands import GuardedCommand
    from repro.core.domains import IntRange
    from repro.core.expressions import land, lnot
    from repro.core.predicates import ExprPredicate, TRUE
    from repro.core.program import Program
    from repro.core.variables import Var
    from repro.graph.generators import ring_graph
    from repro.semantics.strong_fairness import fairness_gap
    from repro.systems.priority import build_priority_system

    rows = []
    # The gap witness: weak fails, strong holds.
    x = Var.shared("x", IntRange(0, 3))
    b = Var.boolean("b")
    toggle = GuardedCommand("toggle", True, [(b, lnot(b.ref()))])
    inc = GuardedCommand("inc", land(b.ref(), x.ref() < 3), [(x, x.ref() + 1)])
    prog = Program("Gap", [x, b], TRUE, [toggle, inc], fair=["toggle", "inc"])
    gap, dt = _timed(
        lambda: fairness_gap(prog, TRUE, ExprPredicate(x.ref() == 3))
    )
    rows.append(ExperimentRow(
        "E12", "weak vs strong fairness gap", "toggle/inc",
        "weak fails, strong holds",
        f"weak {_verdict(gap['weak'])}, strong {_verdict(gap['strong'])}", dt,
    ))
    # The §4 mechanism is fairness-insensitive (design property).
    psys = build_priority_system(ring_graph(4))
    gap2, dt2 = _timed(lambda: fairness_gap(
        psys.system, psys.acyclicity_predicate(), psys.priority_predicate(0)
    ))
    rows.append(ExperimentRow(
        "E12", "§4 liveness insensitive to fairness notion", "ring(4)",
        "weak holds, strong holds",
        f"weak {_verdict(gap2['weak'])}, strong {_verdict(gap2['strong'])}", dt2,
    ))
    return rows


# ---------------------------------------------------------------------------
# E13 — sparse-tier certification (beyond-dense composition stacks)
# ---------------------------------------------------------------------------


def run_e13() -> list[ExperimentRow]:
    """Certify the sparse tier: leads-to certificates and confining-path
    witnesses on a composition stack whose encoded space exceeds the
    sparse threshold (decided and certified entirely on local ids)."""
    from repro.errors import ProofError
    from repro.semantics.leadsto import check_leadsto
    from repro.semantics.synthesis import (
        check_certificate_batched,
        synthesize_leadsto_proof,
    )
    from repro.systems.product import build_pipeline_allocator

    pa = build_pipeline_allocator(8)   # 4^13 ≈ 6.7e7 encoded: sparse tier
    prop = pa.delivery()
    rows = []

    def weak_witness():
        res = check_leadsto(pa.system, prop.p, prop.q)
        path = res.witness.get("confining_path") or []
        confined = bool(path) and all(not prop.q.holds(s) for s in path)
        try:
            synthesize_leadsto_proof(pa.system, prop.p, prop.q)
            refused = False
        except ProofError:
            refused = True
        ok = (not res.holds and res.witness.get("tier") == "sparse"
              and confined and refused)
        return "refuses + ¬q-path" if ok else "NO witness"

    measured, dt = _timed(weak_witness)
    rows.append(ExperimentRow(
        "E13", "weak delivery: refusal + confining path",
        f"pipeline∘allocator, {pa.system.space.size:.1e} states",
        "refuses + ¬q-path", measured, dt,
    ))

    def strong_cert():
        proof = synthesize_leadsto_proof(
            pa.system, prop.p, prop.q, fairness="strong"
        )
        # Batched columnar kernel; the per-level walk stays the oracle
        # (tests/test_batched_check.py pins their verdict equality).
        res = check_certificate_batched(proof, pa.system)
        ok = (
            res.ok
            and res.mode == "batched"
            and proof.verify_semantically(pa.system, fairness="strong")
        )
        return "kernel-OK" if ok else "kernel-FAIL"

    measured2, dt2 = _timed(strong_cert)
    rows.append(ExperimentRow(
        "E13", "strong delivery: sparse-tier certificate",
        f"pipeline∘allocator, {pa.system.space.size:.1e} states",
        "kernel-OK", measured2, dt2,
    ))
    return rows


# ---------------------------------------------------------------------------
# E14 — engine telemetry (observation-only instrumentation)
# ---------------------------------------------------------------------------


def run_e14() -> list[ExperimentRow]:
    """Telemetry is observation-only and the manifest is complete: the
    same sparse check returns the identical verdict with and without a
    live recorder, and a recorded certification yields a run manifest
    carrying per-phase timings, BFS counters, cache hit/miss counts and
    batched-check obligation totals (docs/observability.md)."""
    from repro import obs
    from repro.semantics.leadsto import check_leadsto
    from repro.semantics.synthesis import (
        check_certificate_batched,
        synthesize_leadsto_proof,
    )
    from repro.systems.product import build_pipeline_allocator

    rows = []

    def verdict(record: bool):
        # Fresh program each time: the subspace cache is per Program
        # object, so both runs pay (and the recorded one observes) the
        # full sparse exploration.
        pa = build_pipeline_allocator(8)   # 4^13 ≈ 6.7e7: sparse tier
        prop = pa.delivery()
        if record:
            with obs.use_recorder(obs.MetricsRecorder()):
                res = check_leadsto(pa.system, prop.p, prop.q)
        else:
            res = check_leadsto(pa.system, prop.p, prop.q)
        return (bool(res.holds), res.witness.get("reachable"))

    def neutrality():
        return (
            "identical verdicts"
            if verdict(False) == verdict(True)
            else "verdicts DIVERGE"
        )

    measured, dt = _timed(neutrality)
    rows.append(ExperimentRow(
        "E14", "telemetry neutrality: recorder changes no verdict",
        "pipeline∘allocator, recorder off vs on",
        "identical verdicts", measured, dt,
    ))

    def manifest_complete():
        pa = build_pipeline_allocator(8)
        prop = pa.delivery()
        with obs.use_recorder(obs.MetricsRecorder()) as rec:
            proof = synthesize_leadsto_proof(
                pa.system, prop.p, prop.q, fairness="strong"
            )
            res = check_certificate_batched(proof, pa.system)
        manifest = obs.build_manifest(
            rec, program=pa.system, tier="sparse", command=["report", "E14"]
        )
        phases = {row["phase"] for row in manifest["phases"]}
        counters = manifest["counters"]
        n_levels = len(proof.levels)
        # The exploration runs *inside* synthesis here, so sparse.bfs is
        # a child span, not a top-level phase; its counters still roll up.
        ok = (
            res.ok
            and {"synthesis.leadsto", "proof.batched_check"} <= phases
            and all(row["wall_s"] >= 0.0 for row in manifest["phases"])
            and counters.get("sparse.bfs.levels", 0) > 0
            and counters.get("graph.condensation.misses", 0) > 0
            and counters.get("proof.obligations.coverage") == 1
            and counters.get("proof.obligations.next") == n_levels
            and counters.get("proof.obligations.structural") == 7 * n_levels
            and bool(manifest["program"].get("digest"))
        )
        return "manifest-complete" if ok else "manifest-INCOMPLETE"

    measured2, dt2 = _timed(manifest_complete)
    rows.append(ExperimentRow(
        "E14", "run manifest: phases, counters, obligations",
        "pipeline∘allocator, strong certificate",
        "manifest-complete", measured2, dt2,
    ))
    return rows


# ---------------------------------------------------------------------------
# E15 — assume-guarantee certification (the compositional tier)
# ---------------------------------------------------------------------------


def run_e15() -> list[ExperimentRow]:
    """Certify composed delivery without the product: the compositional
    certificate's verdict must agree with the explored oracle on an
    instance small enough to explore, and must certify a stack whose
    encoded product is beyond every exploration tier.  Both checks run
    through the unified :func:`repro.api.verify` facade."""
    from repro.api import verify
    from repro.systems.compose_proof import (
        build_delivery_certificate,
        build_hetero_stack,
        encoded_size,
    )

    rows = []

    def differential():
        pa = build_hetero_stack(3, clients=2, total=2)
        cert = build_delivery_certificate(pa)
        comp = verify(None, cert)
        explored = verify(pa.system, pa.delivery(), fairness="strong")
        ok = comp.holds is True and explored.holds is True
        return "both certify" if ok else "DIVERGE"

    measured, dt = _timed(differential)
    rows.append(ExperimentRow(
        "E15", "compositional == explored oracle",
        "hetero stack, 3 stages (explorable)",
        "both certify", measured, dt,
    ))

    def beyond_reach():
        pa = build_hetero_stack(50)
        cert = build_delivery_certificate(pa)
        v = verify(None, cert)
        ok = (
            v.holds is True
            and v.tier == "compositional"
            and encoded_size(pa) > 10**30
        )
        return "certified, 0 product states" if ok else "NOT certified"

    measured2, dt2 = _timed(beyond_reach)
    rows.append(ExperimentRow(
        "E15", "50-stage stack certified without the product",
        "hetero stack, ~3.8e37 encoded states",
        "certified, 0 product states", measured2, dt2,
    ))
    return rows


_RUNNERS = {
    "E1": run_e1,
    "E2": run_e2,
    "E3": run_e3,
    "E4": run_e4,
    "E5": run_e5_e6,   # E5 and E6 share a runner
    "E6": run_e5_e6,
    "E7": run_e7,
    "E8": run_e8,
    "E9": run_e9,
    "E12": run_e12,
    "E13": run_e13,
    "E14": run_e14,
    "E15": run_e15,
}


def run_experiment(exp_id: str) -> list[ExperimentRow]:
    """Run one experiment by id (``E1`` … ``E9``, ``E12`` … ``E14``)."""
    try:
        runner = _RUNNERS[exp_id.upper()]
    except KeyError:
        raise ValueError(
            f"unknown experiment {exp_id!r}; choose from {sorted(_RUNNERS)}"
        ) from None
    rows = runner()
    return [r for r in rows if r.exp_id == exp_id.upper()] or rows


def run_all() -> list[ExperimentRow]:
    """Run the complete suite (laptop-scale instances)."""
    rows: list[ExperimentRow] = []
    seen_runners = set()
    for exp_id in EXPERIMENT_IDS:
        runner = _RUNNERS[exp_id]
        if runner in seen_runners:
            continue
        seen_runners.add(runner)
        rows.extend(runner())
    return rows


def render_text(rows: list[ExperimentRow]) -> str:
    """ASCII table of the rows (the CLI's output)."""
    table = [
        [r.exp_id, r.paper_claim, r.instance, r.expected, r.measured,
         f"{r.seconds * 1000:.0f} ms", "✓" if r.ok else "✗"]
        for r in rows
    ]
    return format_table(
        ["exp", "paper claim", "instance", "expected", "measured", "time", "ok"],
        table,
    )


def render_markdown(rows: list[ExperimentRow]) -> str:
    """Markdown table of the rows (pasteable into EXPERIMENTS.md)."""

    def cell(text: str) -> str:
        return str(text).replace("|", "\\|")

    out = ["| Exp | Paper claim | Instance | Expected | Measured | ok |",
           "|---|---|---|---|---|---|"]
    for r in rows:
        out.append(
            f"| {cell(r.exp_id)} | {cell(r.paper_claim)} | {cell(r.instance)} "
            f"| {cell(r.expected)} | {cell(r.measured)} "
            f"| {'✓' if r.ok else '✗'} |"
        )
    return "\n".join(out)
