"""Core theory objects: the §2 programming model and property language.

This package implements, as executable Python objects, every concept the
paper's §2 introduces:

- finite typed **domains** and **variables** with locality declarations
  (:mod:`repro.core.domains`, :mod:`repro.core.variables`),
- an **expression / predicate** language with symbolic substitution (for
  ``wp``) and vectorized evaluation (:mod:`repro.core.expressions`,
  :mod:`repro.core.predicates`),
- **states** and mixed-radix encoded **state spaces**
  (:mod:`repro.core.state`),
- UNITY-style **commands** — total, deterministic guarded multi-assignments,
  plus ``skip`` (:mod:`repro.core.commands`),
- **programs** ``(vars, initially, C, D)`` with ``skip ∈ C`` and weakly-fair
  ``D ⊆ C`` (:mod:`repro.core.program`),
- **composition** ``F ∘ G`` with the paper's side conditions
  (:mod:`repro.core.composition`),
- the **property language** ``init / transient / next / stable / invariant /
  leads-to / guarantees`` (:mod:`repro.core.properties`) and the
  existential/universal classification (:mod:`repro.core.classify`),
- a checkable **proof kernel** for the paper's leads-to rules and for the
  universal-property construction steps (:mod:`repro.core.rules`,
  :mod:`repro.core.proofs`).
"""

from repro.core.commands import AltCommand, Assignment, GuardedCommand, Skip, skip
from repro.core.composition import can_compose, compatibility_report, compose, compose_all
from repro.core.domains import BoolDomain, EnumDomain, FiniteDomain, IntRange
from repro.core.expressions import (
    BoolConst,
    Const,
    Expr,
    IntConst,
    VarRef,
    const,
    esum,
    iff,
    implies,
    ite,
    land,
    lnot,
    lor,
    maximum,
    minimum,
    var_ref,
)
from repro.core.predicates import (
    FALSE,
    TRUE,
    ExprPredicate,
    FnPredicate,
    MaskPredicate,
    Predicate,
    forall_range,
    exists_range,
)
from repro.core.program import Program
from repro.core.properties import (
    Guarantees,
    Init,
    Invariant,
    LeadsTo,
    Next,
    Property,
    PropertyFamily,
    Stable,
    Transient,
    forall_values,
)
from repro.core.state import State, StateSpace
from repro.core.variables import Locality, Var

__all__ = [
    # domains / variables
    "FiniteDomain", "BoolDomain", "IntRange", "EnumDomain", "Var", "Locality",
    # expressions
    "Expr", "Const", "IntConst", "BoolConst", "VarRef", "const", "var_ref",
    "esum", "land", "lor", "lnot", "implies", "iff", "ite", "minimum", "maximum",
    # predicates
    "Predicate", "ExprPredicate", "FnPredicate", "MaskPredicate",
    "TRUE", "FALSE", "forall_range", "exists_range",
    # states
    "State", "StateSpace",
    # commands / programs / composition
    "Assignment", "GuardedCommand", "AltCommand", "Skip", "skip", "Program",
    "can_compose", "compatibility_report", "compose", "compose_all",
    # properties
    "Property", "Init", "Transient", "Next", "Stable", "Invariant",
    "LeadsTo", "Guarantees", "PropertyFamily", "forall_values",
]
