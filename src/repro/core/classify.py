"""The existential/universal classification and its composition theorems.

The paper (§2, after [6]):

    ``X is existential ≡ ⟨∀ F,G : F ∥ G : (X.F ∨ X.G) ⇒ X.(F∘G)⟩``
    ``X is universal   ≡ ⟨∀ F,G : F ∥ G : (X.F ∧ X.G) ⇒ X.(F∘G)⟩``

These are ∀-statements over all program pairs, so they cannot be *verified*
by enumeration — but they can be **tested** on concrete pairs, and a single
failing pair *refutes* a classification.  This module provides the test
harness used by the suite's randomized theorem checks:
:func:`check_existential_on` and :func:`check_universal_on` verify one
instance of the defining implication, and :func:`classification_table`
records the paper's classification of every property type.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.composition import compatibility_report, compose
from repro.core.program import Program
from repro.core.properties import (
    Guarantees,
    Init,
    Invariant,
    LeadsTo,
    Next,
    Property,
    Stable,
    Transient,
)
from repro.errors import PropertyError

__all__ = [
    "ClassificationOutcome",
    "check_existential_on",
    "check_universal_on",
    "classification_table",
    "paper_classification",
]


@dataclass
class ClassificationOutcome:
    """Result of testing one instance of a classification implication.

    ``vacuous`` is True when the premise of the implication did not hold
    (nothing was tested); ``consistent`` is True unless the instance
    *refutes* the classification.
    """

    property_text: str
    left: str
    right: str
    premise_held: bool
    conclusion_held: bool

    @property
    def vacuous(self) -> bool:
        return not self.premise_held

    @property
    def consistent(self) -> bool:
        return (not self.premise_held) or self.conclusion_held

    def __bool__(self) -> bool:
        return self.consistent


def _check_on(
    prop: Property,
    f: Program,
    g: Program,
    *,
    mode: str,
) -> ClassificationOutcome:
    report = compatibility_report(f, g)
    if not report.ok:
        raise PropertyError(
            f"classification check needs composable programs: {report.explain()}"
        )
    # The property must be stateable in each component: its predicate
    # variables must be declared by both programs.
    holds_f = prop.holds_in(f)
    holds_g = prop.holds_in(g)
    premise = (holds_f or holds_g) if mode == "existential" else (holds_f and holds_g)
    if not premise:
        return ClassificationOutcome(
            prop.describe(), f.name, g.name, premise_held=False, conclusion_held=False
        )
    system = compose(f, g)
    return ClassificationOutcome(
        prop.describe(),
        f.name,
        g.name,
        premise_held=True,
        conclusion_held=prop.holds_in(system),
    )


def check_existential_on(prop: Property, f: Program, g: Program) -> ClassificationOutcome:
    """Test ``(X.F ∨ X.G) ⇒ X.(F∘G)`` on one compatible pair."""
    return _check_on(prop, f, g, mode="existential")


def check_universal_on(prop: Property, f: Program, g: Program) -> ClassificationOutcome:
    """Test ``(X.F ∧ X.G) ⇒ X.(F∘G)`` on one compatible pair."""
    return _check_on(prop, f, g, mode="universal")


#: The paper's classification of each property type (§2): ``init``,
#: ``transient`` and ``guarantees`` are existential; ``next``, ``stable``
#: and ``invariant`` are universal; ``leads-to`` is neither in general.
_PAPER_TABLE: dict[type, str] = {
    Init: "existential",
    Transient: "existential",
    Guarantees: "existential",
    Next: "universal",
    Stable: "universal",
    Invariant: "universal",
    LeadsTo: "neither",
}


def paper_classification(prop_type: type) -> str:
    """The paper's classification of a property type."""
    try:
        return _PAPER_TABLE[prop_type]
    except KeyError:
        raise PropertyError(
            f"{prop_type.__name__} has no classification in the paper"
        ) from None


def classification_table() -> list[tuple[str, str, bool, bool]]:
    """Rows ``(type, paper classification, is_existential, is_universal)``
    for reporting; the flags come from the implemented property classes."""
    rows = []
    for cls, paper in _PAPER_TABLE.items():
        rows.append((cls.__name__, paper, bool(cls.is_existential), bool(cls.is_universal)))
    return rows
