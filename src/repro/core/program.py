"""Programs: the paper's §2 model.

A program is ``(variables, initially, C, D)`` where

- *variables* are typed and carry locality declarations,
- *initially* is a predicate on states,
- ``C`` is a finite set of commands, always containing ``skip``,
- ``D ⊆ C`` is the subset executed under **weak fairness** (every command
  of ``D`` is executed infinitely often).

Commands form a *set*: structurally identical commands are merged (their
provenance sets are unioned), matching the union semantics of composition.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from functools import cached_property
from typing import Any

import numpy as np

from repro.core.commands import Command, Skip
from repro.core.expressions import Expr
from repro.core.predicates import ExprPredicate, Predicate
from repro.core.state import State, StateSpace
from repro.core.variables import Var
from repro.errors import ProgramError

__all__ = ["Program"]


class Program:
    """An executable, checkable instance of the paper's program model.

    Parameters
    ----------
    name:
        Program identifier (used for provenance and composition).
    variables:
        Ordered variable declarations; order fixes the state encoding.
    init:
        The ``initially`` predicate (a :class:`Predicate` or boolean
        :class:`Expr`).
    commands:
        The command set ``C``.  A ``skip`` command is added automatically if
        absent (§2: *"The set C contains at least the command skip"*).
    fair:
        Names (or :class:`Command` objects) forming the weakly-fair subset
        ``D ⊆ C``.
    """

    def __init__(
        self,
        name: str,
        variables: Sequence[Var],
        init: Predicate | Expr | bool,
        commands: Sequence[Command],
        fair: Iterable[str | Command] = (),
    ) -> None:
        if not name:
            raise ProgramError("programs must be named")
        self.name = name

        vars_t = tuple(variables)
        names = [v.name for v in vars_t]
        if len(set(names)) != len(names):
            dup = sorted({n for n in names if names.count(n) > 1})
            raise ProgramError(f"program {name}: duplicate variable names {dup}")
        self.variables = vars_t
        declared = set(vars_t)

        # -- init predicate -------------------------------------------------
        if isinstance(init, (bool, np.bool_)):
            from repro.core.expressions import BoolConst

            init = ExprPredicate(BoolConst(bool(init)))
        elif isinstance(init, Expr):
            init = ExprPredicate(init)
        if not isinstance(init, Predicate):
            raise ProgramError(f"program {name}: init must be a predicate")
        undeclared = init.variables() - declared
        if undeclared:
            raise ProgramError(
                f"program {name}: init names undeclared variables "
                f"{sorted(v.name for v in undeclared)}"
            )
        self.init = init

        # -- command set (union semantics) ----------------------------------
        merged: dict[tuple, Command] = {}
        for cmd in commands:
            if not isinstance(cmd, Command):
                raise ProgramError(f"program {name}: {cmd!r} is not a Command")
            bad = (cmd.reads() | cmd.writes()) - declared
            if bad:
                raise ProgramError(
                    f"program {name}: command {cmd.name} references "
                    f"undeclared variables {sorted(v.name for v in bad)}"
                )
            key = cmd.body_key()
            origins = cmd.origins or frozenset({name})
            if key in merged:
                prev = merged[key]
                merged[key] = prev.with_origins(prev.origins | origins)
            else:
                merged[key] = cmd.with_origins(origins)
        if ("skip",) not in merged:
            merged[("skip",)] = Skip(origins=frozenset({name}))
        cmds = tuple(merged.values())
        cmd_names = [c.name for c in cmds]
        if len(set(cmd_names)) != len(cmd_names):
            dup = sorted({n for n in cmd_names if cmd_names.count(n) > 1})
            raise ProgramError(
                f"program {name}: duplicate command names {dup} "
                "(distinct bodies must have distinct names)"
            )
        self.commands = cmds
        self._by_name = {c.name: c for c in cmds}

        # -- fair subset D ---------------------------------------------------
        fair_names: set[str] = set()
        for f in fair:
            fname = f.name if isinstance(f, Command) else str(f)
            if fname not in self._by_name:
                raise ProgramError(
                    f"program {name}: fair command {fname!r} is not in C"
                )
            fair_names.add(fname)
        self.fair_names = frozenset(fair_names)

    # -- derived views -------------------------------------------------------

    @cached_property
    def space(self) -> StateSpace:
        """The program's state space (cached; shares decode arrays)."""
        return StateSpace(self.variables)

    @property
    def fair_commands(self) -> tuple[Command, ...]:
        """The weakly-fair subset ``D`` in declaration order."""
        return tuple(c for c in self.commands if c.name in self.fair_names)

    @property
    def local_vars(self) -> tuple[Var, ...]:
        """Variables declared ``local``."""
        return tuple(v for v in self.variables if v.is_local())

    @property
    def shared_vars(self) -> tuple[Var, ...]:
        """Variables declared ``shared``."""
        return tuple(v for v in self.variables if not v.is_local())

    def command_named(self, name: str) -> Command:
        """Look up a command by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ProgramError(
                f"program {self.name}: no command named {name!r}"
            ) from None

    def var_named(self, name: str) -> Var:
        """Look up a declared variable by name."""
        for v in self.variables:
            if v.name == name:
                return v
        raise ProgramError(f"program {self.name}: no variable named {name!r}")

    # -- initial states ---------------------------------------------------------

    def is_initial(self, state: State) -> bool:
        """True iff ``state`` satisfies the ``initially`` predicate."""
        return self.init.holds(state)

    def initial_mask(self) -> np.ndarray:
        """Boolean mask of initial states over the encoded space."""
        return self.init.mask(self.space)

    def initial_states(self) -> list[State]:
        """All initial states, decoded (small spaces only)."""
        return [
            self.space.state_at(int(i)) for i in np.flatnonzero(self.initial_mask())
        ]

    def has_initial_state(self) -> bool:
        """True iff the ``initially`` predicate is satisfiable."""
        return bool(self.initial_mask().any())

    # -- convenience -----------------------------------------------------------

    def writes_of(self, var: Var) -> tuple[Command, ...]:
        """Commands that may write ``var``."""
        return tuple(c for c in self.commands if var in c.writes())

    def state(self, **by_name: Any) -> State:
        """Build a state from keyword arguments keyed by variable name.

        >>> prog.state(c=0, C=0)  # doctest: +SKIP
        """
        values = {}
        for key, value in by_name.items():
            values[self.var_named(key)] = value
        missing = set(self.variables) - set(values)
        if missing:
            raise ProgramError(
                f"state missing values for {sorted(v.name for v in missing)}"
            )
        return State(values)

    def describe(self) -> str:
        """Multi-line UNITY-style listing of the program."""
        lines = [f"program {self.name}"]
        lines.append("  declare")
        for v in self.variables:
            lines.append(f"    {v!r}")
        lines.append(f"  initially {self.init.describe()}")
        lines.append("  assign")
        for c in self.commands:
            marker = "fair " if c.name in self.fair_names else ""
            lines.append(f"    {marker}{c.name}: {c.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<Program {self.name}: |vars|={len(self.variables)}, "
            f"|C|={len(self.commands)}, |D|={len(self.fair_names)}>"
        )
