"""Predicates: boolean-valued properties of single states.

The paper treats a *property* as a predicate on systems and builds the
property language (``init``, ``next``, …) from predicates on **states**.
This module provides those state predicates, in three flavours:

- :class:`ExprPredicate` — backed by a boolean
  :class:`~repro.core.expressions.Expr`; supports symbolic substitution
  (hence symbolic ``wp``) and vectorized mask evaluation.  The common case.
- :class:`FnPredicate` — backed by an arbitrary ``State → bool`` callable;
  the escape hatch for predicates that are awkward to express as
  expressions (e.g. graph reachability ``A*(i) = ∅`` in §4).  Masks are
  computed by a per-state loop, so prefer :class:`MaskPredicate` when the
  same predicate is consulted repeatedly.
- :class:`MaskPredicate` — backed by a precomputed boolean mask over one
  specific state space (used by the priority system, which precomputes
  reachability sets for all orientations once).
- :class:`SupportPredicate` — backed by a sorted array of **member state
  indices** of one specific space: true exactly on those states.  The
  sparse-tier twin of :class:`MaskPredicate`: membership is decided by
  binary search, so the predicate never allocates anything of length
  ``space.size``.  The sparse proof synthesizer
  (:mod:`repro.semantics.synthesis`) builds its induction levels from
  these.

All flavours compose with ``& | ~`` and :meth:`Predicate.implies`, and can
be compared semantically over a space (:meth:`Predicate.equivalent`,
:meth:`Predicate.entails`).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Any

import numpy as np

from repro.core.expressions import (
    BoolConst,
    Expr,
    land,
    lnot,
    lor,
)
from repro.core.state import State, StateSpace
from repro.core.variables import Var
from repro.errors import PropertyError
from repro.util.csr import in_sorted

__all__ = [
    "Predicate",
    "ExprPredicate",
    "FnPredicate",
    "MaskPredicate",
    "SupportPredicate",
    "PrefixSupportPredicate",
    "SupportTable",
    "TRUE",
    "FALSE",
    "forall_range",
    "exists_range",
]


class Predicate:
    """Abstract base class of state predicates."""

    # -- core interface ---------------------------------------------------

    def holds(self, state: State) -> bool:
        """Truth value at a single state."""
        raise NotImplementedError

    def mask(self, space: StateSpace) -> np.ndarray:
        """Boolean satisfaction mask over all encoded states of ``space``."""
        raise NotImplementedError

    def mask_at(self, space: StateSpace, idx: np.ndarray) -> np.ndarray:
        """Frontier satisfaction mask: truth values at the state indices
        ``idx`` only (``== mask(space)[idx]``, without the full mask).

        The base implementation decodes one state at a time; expression
        predicates override it with vectorized frontier evaluation.  This
        is the predicate entry point of the sparse engine
        (:mod:`repro.semantics.sparse`).
        """
        idx = np.asarray(idx, dtype=np.int64)
        out = np.empty(idx.shape[0], dtype=bool)
        for k in range(idx.shape[0]):
            out[k] = bool(self.holds(space.state_at(int(idx[k]))))
        return out

    def variables(self) -> frozenset[Var]:
        """Variables the predicate (syntactically) depends on; callables
        conservatively report the empty set and must be checked against a
        space explicitly."""
        return frozenset()

    def as_expr(self) -> Expr:
        """The backing boolean expression, if one exists.

        Raises :class:`PropertyError` for callable/mask-backed predicates —
        callers needing symbolic ``wp`` must use expression predicates.
        """
        raise PropertyError(f"predicate {self} has no symbolic expression form")

    def describe(self) -> str:
        """Human-readable rendering (used by proofs and reports)."""
        raise NotImplementedError

    # -- combinators ----------------------------------------------------------

    def __and__(self, other: "Predicate") -> "Predicate":
        return _combine("and", self, _as_pred(other))

    def __rand__(self, other: "Predicate") -> "Predicate":
        return _combine("and", _as_pred(other), self)

    def __or__(self, other: "Predicate") -> "Predicate":
        return _combine("or", self, _as_pred(other))

    def __ror__(self, other: "Predicate") -> "Predicate":
        return _combine("or", _as_pred(other), self)

    def __invert__(self) -> "Predicate":
        return _negate(self)

    def implies(self, other: "Predicate") -> "Predicate":
        """Pointwise implication ``self ⇒ other``."""
        return _negate(self) | _as_pred(other)

    # -- semantic relations over a space ------------------------------------

    def entails(self, other: "Predicate", space: StateSpace) -> bool:
        """True iff ``self ⇒ other`` is valid over ``space``."""
        return bool(np.all(~self.mask(space) | _as_pred(other).mask(space)))

    def equivalent(self, other: "Predicate", space: StateSpace) -> bool:
        """True iff the two predicates have equal masks over ``space``."""
        return bool(np.array_equal(self.mask(space), _as_pred(other).mask(space)))

    def is_satisfiable(self, space: StateSpace) -> bool:
        """True iff some state of ``space`` satisfies the predicate."""
        return bool(self.mask(space).any())

    def witness(self, space: StateSpace) -> State | None:
        """Some satisfying state of ``space``, or ``None``."""
        mask = self.mask(space)
        hits = np.flatnonzero(mask)
        if hits.size == 0:
            return None
        return space.state_at(int(hits[0]))

    def count(self, space: StateSpace) -> int:
        """Number of satisfying states."""
        return int(self.mask(space).sum())

    # -- dunder -------------------------------------------------------------

    def __repr__(self) -> str:
        return f"<Predicate {self.describe()}>"

    def __str__(self) -> str:
        return self.describe()


def _as_pred(p: Any) -> Predicate:
    if isinstance(p, Predicate):
        return p
    if isinstance(p, Expr):
        return ExprPredicate(p)
    if isinstance(p, (bool, np.bool_)):
        return TRUE if p else FALSE
    raise PropertyError(f"cannot treat {p!r} as a predicate")


class ExprPredicate(Predicate):
    """Predicate backed by a boolean expression."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr) -> None:
        if expr.typ != "bool":
            raise PropertyError(
                f"predicate expression must be boolean, got {expr} : {expr.typ}"
            )
        self.expr = expr

    def holds(self, state: State) -> bool:
        return bool(self.expr.eval(state))

    def mask(self, space: StateSpace) -> np.ndarray:
        out = self.expr.eval_vec(space.var_arrays())
        arr = np.asarray(out, dtype=bool)
        if arr.ndim == 0:
            return np.full(space.size, bool(arr), dtype=bool)
        return arr

    def mask_at(self, space: StateSpace, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        out = self.expr.eval_vec(space.frontier_env(idx))
        arr = np.asarray(out, dtype=bool)
        if arr.ndim == 0:
            return np.full(idx.shape[0], bool(arr), dtype=bool)
        return arr

    def variables(self) -> frozenset[Var]:
        return self.expr.variables()

    def as_expr(self) -> Expr:
        return self.expr

    def describe(self) -> str:
        return str(self.expr)


class FnPredicate(Predicate):
    """Predicate backed by an arbitrary ``State → bool`` callable.

    The mask loop decodes every state; use for small spaces or one-off
    checks, and prefer :class:`MaskPredicate` (precomputed) otherwise.
    """

    __slots__ = ("fn", "_description")

    def __init__(self, fn: Callable[[State], bool], description: str) -> None:
        self.fn = fn
        self._description = description

    def holds(self, state: State) -> bool:
        return bool(self.fn(state))

    def mask(self, space: StateSpace) -> np.ndarray:
        out = np.empty(space.size, dtype=bool)
        for i in range(space.size):
            out[i] = bool(self.fn(space.state_at(i)))
        return out

    def describe(self) -> str:
        return self._description


class MaskPredicate(Predicate):
    """Predicate backed by a precomputed mask over one fixed space."""

    __slots__ = ("space", "_mask", "_description")

    def __init__(self, space: StateSpace, mask: np.ndarray, description: str) -> None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (space.size,):
            raise PropertyError(
                f"mask shape {mask.shape} does not match space size {space.size}"
            )
        self.space = space
        self._mask = mask
        self._description = description

    def holds(self, state: State) -> bool:
        return bool(self._mask[self.space.index_of(state)])

    def mask(self, space: StateSpace) -> np.ndarray:
        if space != self.space:
            raise PropertyError(
                "MaskPredicate consulted against a different state space"
            )
        return self._mask

    def mask_at(self, space: StateSpace, idx: np.ndarray) -> np.ndarray:
        if space != self.space:
            raise PropertyError(
                "MaskPredicate consulted against a different state space"
            )
        return self._mask[np.asarray(idx, dtype=np.int64)]

    def describe(self) -> str:
        return self._description


class SupportPredicate(Predicate):
    """Predicate true exactly on a sorted set of member state indices.

    The sparse-tier counterpart of :class:`MaskPredicate`: instead of a
    length-``space.size`` boolean mask it stores the (typically tiny)
    sorted ``int64`` array of satisfying **global indices**, so it can
    describe subsets of spaces far beyond the dense capacity.  Membership
    queries (:meth:`holds`, :meth:`mask_at`) are binary searches; the
    full-mask path (:meth:`mask`) exists only for dense-capable spaces —
    it scatters the members and is guarded by
    :meth:`~repro.core.state.StateSpace.require_dense`, which is what the
    small-instance differential tests rely on.
    """

    __slots__ = ("space", "members", "_description")

    def __init__(
        self, space: StateSpace, members: np.ndarray, description: str
    ) -> None:
        members = np.asarray(members, dtype=np.int64)
        if members.ndim != 1:
            raise PropertyError("support members must be a 1-d index array")
        if members.size and (
            members[0] < 0
            or members[-1] >= space.size
            or np.any(members[1:] <= members[:-1])
        ):
            raise PropertyError(
                "support members must be strictly increasing indices "
                f"inside [0, {space.size})"
            )
        self.space = space
        self.members = members
        self._description = description

    def _check_space(self, space: StateSpace) -> None:
        if space != self.space:
            raise PropertyError(
                "SupportPredicate consulted against a different state space"
            )

    def holds(self, state: State) -> bool:
        i = self.space.index_of(state)
        pos = int(np.searchsorted(self.members, i))
        return pos < self.members.size and int(self.members[pos]) == i

    def mask(self, space: StateSpace) -> np.ndarray:
        self._check_space(space)
        space.require_dense("materializing a SupportPredicate mask")
        out = np.zeros(space.size, dtype=bool)
        out[self.members] = True
        return out

    def mask_at(self, space: StateSpace, idx: np.ndarray) -> np.ndarray:
        self._check_space(space)
        idx = np.asarray(idx, dtype=np.int64)
        return in_sorted(self.members, idx)

    def count(self, space: StateSpace) -> int:
        self._check_space(space)
        return int(self.members.size)

    def is_satisfiable(self, space: StateSpace) -> bool:
        self._check_space(space)
        return self.members.size > 0

    def witness(self, space: StateSpace) -> State | None:
        self._check_space(space)
        if self.members.size == 0:
            return None
        return space.state_at(int(self.members[0]))

    def describe(self) -> str:
        return self._description


class PrefixSupportPredicate(SupportPredicate):
    """Support restricted to members ranked below a cutoff.

    A family of these shares one sorted ``members`` array and one
    parallel ``ranks`` array; predicate ``n`` is true exactly on the
    members with ``rank < n``.  This is the shape of the proof
    synthesizer's *exit ladder* — ``exit[n]`` is "some level below ``n``"
    — where building each rung as its own :class:`SupportPredicate` would
    cost a re-sorted prefix union per level (quadratic in certificate
    size).  Membership stays one binary search plus a rank gate.
    """

    __slots__ = ("ranks", "cutoff")

    def __init__(
        self,
        space: StateSpace,
        members: np.ndarray,
        ranks: np.ndarray,
        cutoff: int,
        description: str,
    ) -> None:
        super().__init__(space, members, description)
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.shape != self.members.shape:
            raise PropertyError(
                f"rank array shape {ranks.shape} does not match the "
                f"{self.members.shape[0]} support members"
            )
        self.ranks = ranks
        self.cutoff = int(cutoff)

    def holds(self, state: State) -> bool:
        i = self.space.index_of(state)
        pos = int(np.searchsorted(self.members, i))
        return (
            pos < self.members.size
            and int(self.members[pos]) == i
            and int(self.ranks[pos]) < self.cutoff
        )

    def mask(self, space: StateSpace) -> np.ndarray:
        self._check_space(space)
        space.require_dense("materializing a PrefixSupportPredicate mask")
        out = np.zeros(space.size, dtype=bool)
        out[self.members[self.ranks < self.cutoff]] = True
        return out

    def mask_at(self, space: StateSpace, idx: np.ndarray) -> np.ndarray:
        self._check_space(space)
        idx = np.asarray(idx, dtype=np.int64)
        if self.members.size == 0:
            return np.zeros(idx.shape[0], dtype=bool)
        pos = np.searchsorted(self.members, idx)
        clipped = np.minimum(pos, self.members.size - 1)
        hit = (pos < self.members.size) & (self.members[clipped] == idx)
        return hit & (self.ranks[clipped] < self.cutoff)

    def count(self, space: StateSpace) -> int:
        self._check_space(space)
        return int((self.ranks < self.cutoff).sum())

    def is_satisfiable(self, space: StateSpace) -> bool:
        return self.count(space) > 0

    def witness(self, space: StateSpace) -> State | None:
        self._check_space(space)
        hits = np.flatnonzero(self.ranks < self.cutoff)
        if hits.size == 0:
            return None
        return space.state_at(int(self.members[int(hits[0])]))


class SupportTable:
    """Columnar layout for a family of disjoint support sets ("levels").

    The proof synthesizer's induction certificates used to carry one
    member array per level plus one shared sorted array for the exit
    ladder; this class makes that sharing explicit and *columnar*: every
    level's members live in **one** pair of parallel ``int64`` columns,

    - level-major (``stacked`` + CSR ``offsets``): level ``n``'s members
      are the slice ``stacked[offsets[n]:offsets[n+1]]``, sorted
      ascending — the layout segmented reductions want
      (:mod:`repro.semantics.obligations` reduces one flag per level per
      command over it);
    - globally sorted (``members`` + ``ranks``): the same entries ordered
      by state index with their level id alongside — the layout binary
      searches want (:class:`PrefixSupportPredicate` shares these arrays
      verbatim, so the whole exit ladder costs one table).

    Levels must be pairwise disjoint (their union strictly increasing),
    which is what makes the two orderings permutations of each other.
    :meth:`level_pred` / :meth:`prefix_pred` hand out zero-copy predicate
    views, so a certificate with 10⁵ levels stores two arrays, not 10⁵.
    """

    __slots__ = ("space", "stacked", "offsets", "members", "ranks")

    def __init__(self, space: StateSpace, level_members: list[np.ndarray]) -> None:
        counts = np.array(
            [np.asarray(m).shape[0] for m in level_members], dtype=np.int64
        )
        self.space = space
        self.offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)])
        self.stacked = (
            np.concatenate([np.asarray(m, dtype=np.int64) for m in level_members])
            if level_members
            else np.empty(0, dtype=np.int64)
        )
        order = np.argsort(self.stacked, kind="stable")
        self.members = self.stacked[order]
        if self.members.size and (
            self.members[0] < 0
            or self.members[-1] >= space.size
            or np.any(self.members[1:] <= self.members[:-1])
        ):
            raise PropertyError(
                "support-table levels must be disjoint sets of indices "
                f"inside [0, {space.size})"
            )
        self.ranks = np.repeat(np.arange(counts.shape[0], dtype=np.int64), counts)[
            order
        ]

    @property
    def n_levels(self) -> int:
        return int(self.offsets.shape[0] - 1)

    @property
    def total(self) -> int:
        """Total member count across all levels."""
        return int(self.stacked.shape[0])

    def level_members(self, n: int) -> np.ndarray:
        """Members of level ``n`` (sorted; a zero-copy view)."""
        return self.stacked[self.offsets[n] : self.offsets[n + 1]]

    def level_pred(self, n: int, description: str) -> SupportPredicate:
        """Level ``n`` as a :class:`SupportPredicate` view."""
        return SupportPredicate(self.space, self.level_members(n), description)

    def prefix_pred(self, n: int, description: str) -> PrefixSupportPredicate:
        """"Some level below ``n``" as a rank-gated view of the shared
        sorted columns."""
        return PrefixSupportPredicate(
            self.space, self.members, self.ranks, n, description
        )


class _Composite(Predicate):
    """Conjunction/disjunction of mixed-flavour predicates."""

    __slots__ = ("op", "parts")

    def __init__(self, op: str, parts: tuple[Predicate, ...]) -> None:
        self.op = op
        self.parts = parts

    def holds(self, state: State) -> bool:
        if self.op == "and":
            return all(p.holds(state) for p in self.parts)
        return any(p.holds(state) for p in self.parts)

    def mask(self, space: StateSpace) -> np.ndarray:
        out = self.parts[0].mask(space).copy()
        for p in self.parts[1:]:
            if self.op == "and":
                out &= p.mask(space)
            else:
                out |= p.mask(space)
        return out

    def mask_at(self, space: StateSpace, idx: np.ndarray) -> np.ndarray:
        out = self.parts[0].mask_at(space, idx).copy()
        for p in self.parts[1:]:
            if self.op == "and":
                out &= p.mask_at(space, idx)
            else:
                out |= p.mask_at(space, idx)
        return out

    def variables(self) -> frozenset[Var]:
        out: frozenset[Var] = frozenset()
        for p in self.parts:
            out |= p.variables()
        return out

    def as_expr(self) -> Expr:
        exprs = [p.as_expr() for p in self.parts]
        return land(*exprs) if self.op == "and" else lor(*exprs)

    def describe(self) -> str:
        sym = " /\\ " if self.op == "and" else " \\/ "
        return sym.join(f"({p.describe()})" for p in self.parts)


class _Negation(Predicate):
    """Pointwise negation of any predicate flavour."""

    __slots__ = ("inner",)

    def __init__(self, inner: Predicate) -> None:
        self.inner = inner

    def holds(self, state: State) -> bool:
        return not self.inner.holds(state)

    def mask(self, space: StateSpace) -> np.ndarray:
        return ~self.inner.mask(space)

    def mask_at(self, space: StateSpace, idx: np.ndarray) -> np.ndarray:
        return ~self.inner.mask_at(space, idx)

    def variables(self) -> frozenset[Var]:
        return self.inner.variables()

    def as_expr(self) -> Expr:
        return lnot(self.inner.as_expr())

    def describe(self) -> str:
        return f"~({self.inner.describe()})"


def _combine(op: str, a: Predicate, b: Predicate) -> Predicate:
    # Flatten nested composites of the same operator; merge expression
    # predicates into a single expression so symbolic wp stays available.
    if isinstance(a, ExprPredicate) and isinstance(b, ExprPredicate):
        if op == "and":
            return ExprPredicate(land(a.expr, b.expr))
        return ExprPredicate(lor(a.expr, b.expr))
    parts: list[Predicate] = []
    for p in (a, b):
        if isinstance(p, _Composite) and p.op == op:
            parts.extend(p.parts)
        else:
            parts.append(p)
    return _Composite(op, tuple(parts))


def _negate(p: Predicate) -> Predicate:
    if isinstance(p, ExprPredicate):
        return ExprPredicate(lnot(p.expr))
    if isinstance(p, _Negation):
        return p.inner
    return _Negation(p)


#: The always-true predicate.
TRUE = ExprPredicate(BoolConst(True))
#: The always-false predicate.
FALSE = ExprPredicate(BoolConst(False))


def forall_range(values: Iterable[Any], fn: Callable[[Any], Predicate]) -> Predicate:
    """Finite universal quantification: ``⋀_{v ∈ values} fn(v)``.

    The paper's specifications quantify over counter values ``k``; on finite
    domains that is a finite conjunction.
    """
    parts = [_as_pred(fn(v)) for v in values]
    if not parts:
        return TRUE
    out = parts[0]
    for p in parts[1:]:
        out = out & p
    return out


def exists_range(values: Iterable[Any], fn: Callable[[Any], Predicate]) -> Predicate:
    """Finite existential quantification: ``⋁_{v ∈ values} fn(v)``."""
    parts = [_as_pred(fn(v)) for v in values]
    if not parts:
        return FALSE
    out = parts[0]
    for p in parts[1:]:
        out = out | p
    return out
