"""Program composition ``F ∘ G`` with the paper's side conditions.

From §2: *"The program composition is defined to be the union of the sets
of variables and the sets C and D of the components and the conjunction of
the initially predicates.  Such a composition is not always possible.
Especially, composition must respect variable locality (a variable declared
local in a component should not be written by another component) and must
provide at least one initial state (the conjunction of initial predicates
must be logically consistent)."*

Our locality check is the strict, syntactically decidable reading: a
variable declared ``local`` by one component may not be **named** by any
other component at all (the paper's specifications follow the same
discipline — component specifications name only their own locals).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.program import Program
from repro.core.variables import Var
from repro.errors import CompositionError

__all__ = [
    "CompatibilityReport",
    "compatibility_report",
    "can_compose",
    "compose",
    "compose_all",
    "inert_program",
    "lifted",
]


@dataclass
class CompatibilityReport:
    """Outcome of the ``F ∥ G`` composability check."""

    left: str
    right: str
    ok: bool
    reasons: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok

    def explain(self) -> str:
        """One-line summary suitable for error messages."""
        if self.ok:
            return f"{self.left} || {self.right}: composable"
        joined = "; ".join(self.reasons)
        return f"{self.left} || {self.right}: NOT composable ({joined})"


def _merge_variables(f: Program, g: Program) -> tuple[list[Var], list[str]]:
    """Merged declaration list (F's order, then G's new names) + problems."""
    problems: list[str] = []
    by_name: dict[str, Var] = {}
    merged: list[Var] = []
    for v in f.variables:
        by_name[v.name] = v
        merged.append(v)
    for v in g.variables:
        prev = by_name.get(v.name)
        if prev is None:
            by_name[v.name] = v
            merged.append(v)
            continue
        if prev.is_local() or v.is_local():
            problems.append(
                f"variable {v.name} is declared local by "
                f"{f.name if prev.is_local() else g.name} but is also "
                f"declared by the other component (locality violation)"
            )
        elif prev.domain != v.domain:
            problems.append(
                f"shared variable {v.name} has mismatched domains: "
                f"{prev.domain!r} in {f.name} vs {v.domain!r} in {g.name}"
            )
        # identical shared re-declaration merges silently
    return merged, problems


def compatibility_report(
    f: Program, g: Program, *, check_init: bool = True
) -> CompatibilityReport:
    """Check the paper's composability side conditions for ``F ∥ G``.

    ``check_init=True`` additionally verifies that the conjunction of the
    ``initially`` predicates is satisfiable over the merged state space
    (semantic check; skip for very large spaces and check later).
    """
    reasons: list[str] = []
    if f.name == g.name:
        reasons.append(f"components share the name {f.name!r}")
    merged, var_problems = _merge_variables(f, g)
    reasons.extend(var_problems)

    if not reasons and check_init:
        composed = _compose_unchecked(f, g, name="__compat_probe__")
        if not composed.has_initial_state():
            reasons.append(
                "conjunction of initially predicates is unsatisfiable "
                "(no initial state)"
            )
    return CompatibilityReport(f.name, g.name, ok=not reasons, reasons=reasons)


def can_compose(f: Program, g: Program, *, check_init: bool = True) -> bool:
    """Boolean form of :func:`compatibility_report` (the paper's ``F ∥ G``)."""
    return compatibility_report(f, g, check_init=check_init).ok


def _compose_unchecked(f: Program, g: Program, name: str) -> Program:
    merged_vars, _ = _merge_variables(f, g)
    # Command union: resolve *name* collisions between distinct bodies by
    # prefixing with the component name; structural duplicates merge inside
    # the Program constructor.
    f_keys = {c.body_key(): c for c in f.commands}
    commands = list(f.commands)
    fair: set[str] = set(f.fair_names)
    for cmd in g.commands:
        key = cmd.body_key()
        if key in f_keys:
            # Same body: the union has one element; fairness is inherited if
            # either side lists it as fair.
            if cmd.name in g.fair_names:
                fair.add(f_keys[key].name)
            # Merge provenance through a replacement entry.
            idx = commands.index(f_keys[key])
            commands[idx] = commands[idx].with_origins(
                commands[idx].origins | cmd.origins | frozenset({g.name})
            )
            continue
        new_name = cmd.name
        if any(c.name == new_name for c in commands):
            new_name = f"{g.name}.{cmd.name}"
            if any(c.name == new_name for c in commands):
                raise CompositionError(
                    f"cannot disambiguate command name {cmd.name!r} from "
                    f"{g.name}"
                )
            cmd = cmd.renamed(new_name)
        commands.append(cmd)
        if key in {c.body_key() for c in g.fair_commands}:
            fair.add(cmd.name)
    return Program(
        name,
        merged_vars,
        f.init & g.init,
        commands,
        fair=sorted(fair),
    )


def compose(
    f: Program, g: Program, *, name: str | None = None, check_init: bool = True
) -> Program:
    """The composed system ``F ∘ G``.

    Raises :class:`CompositionError` when ``F ∥ G`` fails (the paper's
    composability condition).
    """
    report = compatibility_report(f, g, check_init=check_init)
    if not report.ok:
        raise CompositionError(report.explain())
    return _compose_unchecked(f, g, name or f"({f.name}||{g.name})")


def compose_all(
    programs: list[Program] | tuple[Program, ...],
    *,
    name: str | None = None,
    check_init: bool = True,
) -> Program:
    """Left fold of :func:`compose` over two or more components.

    Composition is associative and commutative up to command/variable
    ordering, so the fold order does not affect semantics (the test suite
    checks this).
    """
    if not programs:
        raise CompositionError("compose_all of an empty component list")
    if len(programs) == 1:
        return programs[0]
    out = programs[0]
    for nxt in programs[1:-1]:
        out = compose(out, nxt, check_init=False)
    out = compose(out, programs[-1], check_init=check_init)
    if name is not None:
        out = Program(
            name, out.variables, out.init, out.commands, fair=sorted(out.fair_names)
        )
    return out


def inert_program(name: str, variables: list[Var] | tuple[Var, ...]) -> Program:
    """A program that declares ``variables`` but never changes anything.

    Its command set is ``{skip}`` and its ``initially`` is ``true``, so
    composing with it adds declarations without adding behaviour — the
    canonical "empty environment".
    """
    from repro.core.predicates import TRUE

    return Program(name, variables, TRUE, [], fair=())


def lifted(program: Program, ambient: "Program | Sequence[Var]") -> Program:
    """``program`` viewed as a component of a larger system.

    Returns the composition of ``program`` with an inert program declaring
    the ambient variables — i.e. the same commands and ``initially`` over
    the system's variable tuple, in the system's declaration order.  The
    paper's §3.3 conjunction step reasons about exactly this view: component
    ``i``'s ``stable`` properties are stated over variables (``c_j``) that
    only exist in the ambient system.

    ``ambient`` is either the system :class:`Program` or an explicit
    variable sequence; it must declare every variable of ``program``.
    """
    from collections.abc import Sequence as _Seq

    if isinstance(ambient, Program):
        ambient_vars = ambient.variables
    elif isinstance(ambient, _Seq):
        ambient_vars = tuple(ambient)
    else:  # pragma: no cover - defensive
        raise CompositionError(f"cannot lift over {ambient!r}")
    own = {v.name: v for v in program.variables}
    ordered = []
    for v in ambient_vars:
        if v.name in own and own[v.name] != v:
            raise CompositionError(
                f"lift of {program.name}: ambient redeclares {v.name} "
                "differently"
            )
        ordered.append(v)
    missing = set(own) - {v.name for v in ordered}
    if missing:
        raise CompositionError(
            f"lift of {program.name}: ambient lacks variables {sorted(missing)}"
        )
    return Program(
        f"{program.name}^",
        ordered,
        program.init,
        [c for c in program.commands],
        fair=sorted(program.fair_names),
    )
