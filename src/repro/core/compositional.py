"""Assume–guarantee certificate objects: prove the product, skip the product.

The paper's composition theorem says a property proved of each component
*in the right form* is a property of the union program — that is what
makes ``X guarantees Y`` useful.  This module supplies the **certificate
side** of that story: proof-tree nodes whose obligations are all *local*
(per-command, over the variables the obligation actually mentions), so a
liveness judgment about a composed system whose encoded state space
exceeds even the sparse tier's ``int64`` indexing can still be stated,
recorded, and re-checked — without ever materializing the product.

Three things live here:

- :class:`StrongEnsures` — the one genuinely new inference rule.  The
  classical strong-fairness completion: ``p ↝ q`` follows from

  1. *(progress never undone)*  ``p∧¬q  next  p∨q``;
  2. *(helpful exit)*  ``p∧¬q∧en(c) ⇒ wp.c.q`` for a strongly-fair ``c``;
  3. *(recurrence)* a sub-proof of ``p∧¬q ↝ q ∨ (p∧¬q∧en(c))``.

  Soundness: a strongly-fair run from ``p`` that never reaches ``q``
  stays in ``p∧¬q`` forever by (1); by (3) it then enables ``c``
  infinitely often; strong fairness fires ``c`` *while enabled*, and (2)
  exits to ``q`` — contradiction.  (Weak-fairness sub-proofs remain
  sound premises: every rule of the weak kernel is sound under the
  strong scheduler too, since a weak ``transient`` witness is
  everywhere-enabled on its region.)

- :class:`SupportSplit` — a :class:`~repro.core.rules.Disjunction` whose
  completeness side condition is *propositional*: over variables with
  non-negative domains, ``p ≡ ⋁_v (p ∧ v>0) ∨ (p ∧ ⋀_v v=0)``.  The
  compositional kernel discharges it by inspecting domains instead of
  comparing product-space masks; the dense kernel (differential oracle)
  still checks it as an ordinary mask equality.

- :class:`CompositionalCertificate` — the recorded rule tree: component
  certificates at the leaves (each checked on its *own* small space by
  the existing dense/sparse pipeline), calculus applications
  (``g_transitivity`` / ``g_conjunction`` / ``g_weaken`` steps and the
  leads-to rules) at internal nodes, plus the locality report of the
  composition itself.  Re-checking walks the tree once, touching each
  command a bounded number of times — linear in the component count.

Helpers :func:`pred_conjuncts` / :func:`pred_disjuncts` /
:func:`constant_binding` / :func:`linear_terms` expose the predicate
structure the footprint kernel (:mod:`repro.semantics.obligations`)
projects obligations with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.expressions import (
    Add,
    And,
    Const,
    EqE,
    Expr,
    Mul,
    Neg,
    Or,
    Sub,
    VarRef,
)
from repro.core.predicates import (
    ExprPredicate,
    Predicate,
    _Composite,
    _Negation,
)
from repro.core.proofs import ProofCheckResult, ProofFailure
from repro.core.rules import Disjunction, LeadsToProof
from repro.core.variables import Var
from repro.errors import ProofError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.program import Program
    from repro.core.properties import Guarantees

__all__ = [
    "pred_conjuncts",
    "pred_disjuncts",
    "constant_binding",
    "linear_terms",
    "StrongEnsures",
    "SupportSplit",
    "ComponentCertificate",
    "CompositionalCertificate",
]


# ---------------------------------------------------------------------------
# Predicate structure helpers
# ---------------------------------------------------------------------------


def pred_conjuncts(pred: Predicate) -> tuple[Predicate, ...]:
    """Top-level conjuncts of ``pred`` (``pred`` itself if not an ∧).

    ``p & q`` over two :class:`ExprPredicate`\\ s merges into a single
    ``ExprPredicate(And(...))`` (see ``_combine``), so expression-level
    conjunctions must be split here as well as ``_Composite`` ones.
    """
    if isinstance(pred, _Composite) and pred.op == "and":
        out: list[Predicate] = []
        for part in pred.parts:
            out.extend(pred_conjuncts(part))
        return tuple(out)
    if isinstance(pred, ExprPredicate) and isinstance(pred.expr, And):
        out = []
        for operand in pred.expr.operands:
            out.extend(pred_conjuncts(ExprPredicate(operand)))
        return tuple(out)
    return (pred,)


def pred_disjuncts(pred: Predicate) -> tuple[Predicate, ...]:
    """Top-level disjuncts of ``pred`` (``pred`` itself if not an ∨)."""
    if isinstance(pred, _Composite) and pred.op == "or":
        out: list[Predicate] = []
        for part in pred.parts:
            out.extend(pred_disjuncts(part))
        return tuple(out)
    if isinstance(pred, ExprPredicate) and isinstance(pred.expr, Or):
        out = []
        for operand in pred.expr.operands:
            out.extend(pred_disjuncts(ExprPredicate(operand)))
        return tuple(out)
    return (pred,)


def constant_binding(pred: Predicate) -> tuple[Var, Any] | None:
    """``(v, value)`` when ``pred`` is literally ``v == const`` (either
    orientation), else ``None``.  The footprint kernel uses bindings to
    evaluate wide predicates on narrow spaces: a conjunct that *pins* a
    variable removes it from the space instead of enlarging it."""
    if not isinstance(pred, ExprPredicate):
        return None
    expr = pred.expr
    if not isinstance(expr, EqE):
        return None
    lhs, rhs = expr.left, expr.right
    if isinstance(lhs, VarRef) and isinstance(rhs, Const):
        return (lhs.var, rhs.value)
    if isinstance(rhs, VarRef) and isinstance(lhs, Const):
        return (rhs.var, lhs.value)
    return None


def linear_terms(expr: Expr) -> tuple[dict[Var, int], int] | None:
    """Decompose an integer expression as ``Σ coeff_v·v + const``.

    Returns ``None`` when the expression is not (syntactically) linear.
    This is how ``stable (Σ tokens = total)`` becomes checkable without
    the product: each command preserves a linear invariant iff the
    weighted delta of its own assignments is zero under its guard — an
    obligation over the command's variables only (see
    :meth:`repro.semantics.obligations.FootprintKernel.check_linear_stable`).
    """
    if isinstance(expr, Const):
        if isinstance(expr.value, bool) or not isinstance(expr.value, int):
            return None
        return ({}, int(expr.value))
    if isinstance(expr, VarRef):
        return ({expr.var: 1}, 0)
    if isinstance(expr, Neg):
        sub = linear_terms(expr.operand)
        if sub is None:
            return None
        terms, const = sub
        return ({v: -c for v, c in terms.items()}, -const)
    if isinstance(expr, (Add, Sub)):
        left = linear_terms(expr.left)
        right = linear_terms(expr.right)
        if left is None or right is None:
            return None
        sign = -1 if isinstance(expr, Sub) else 1
        terms = dict(left[0])
        for v, c in right[0].items():
            terms[v] = terms.get(v, 0) + sign * c
        return (
            {v: c for v, c in terms.items() if c != 0},
            left[1] + sign * right[1],
        )
    if isinstance(expr, Mul):
        left = linear_terms(expr.left)
        right = linear_terms(expr.right)
        if left is None or right is None:
            return None
        for scale, lin in ((left, right), (right, left)):
            if not scale[0]:  # constant factor
                k = scale[1]
                return ({v: k * c for v, c in lin[0].items() if k * c != 0}, k * lin[1])
        return None
    return None


# ---------------------------------------------------------------------------
# New rule nodes
# ---------------------------------------------------------------------------


class StrongEnsures(LeadsToProof):
    """``p ↝ q`` by strong-fairness completion around command ``helpful``.

    Premises (see the module docstring for the soundness argument):

    1. ``p∧¬q next p∨q`` — a semantic leaf of this node;
    2. ``p∧¬q ∧ en(helpful) ⇒ wp.helpful.q`` — a semantic leaf;
    3. ``recurrence`` — a sub-proof concluding
       ``p∧¬q ↝ q ∨ (p∧¬q ∧ en(helpful))``.

    ``helpful`` must be a *strongly-fair* guarded command of the program
    (here: a member of the fair subset ``D``, which the strong-fairness
    semantics schedules strongly).  Certificates containing this node are
    judgments of the strong-fairness semantics, like
    :class:`~repro.core.rules.StrongTransientBasis`.
    """

    rule_name = "strong-ensures"

    def __init__(
        self,
        p: Predicate,
        q: Predicate,
        *,
        helpful: str,
        recurrence: LeadsToProof,
    ) -> None:
        self.p = p
        self.q = q
        self.helpful = helpful
        self.recurrence = recurrence

    def lhs(self) -> Predicate:
        return self.p

    def rhs(self) -> Predicate:
        return self.q

    def premises(self) -> tuple[LeadsToProof, ...]:
        return (self.recurrence,)

    def region(self) -> Predicate:
        """The exit region ``p ∧ ¬q`` the three premises quantify over."""
        return self.p & ~self.q

    def enabled_predicate(self, program: "Program") -> Predicate:
        """``en(helpful)`` as a predicate (requires a guarded command)."""
        from repro.core.commands import GuardedCommand

        cmd = program.command_named(self.helpful)
        if not isinstance(cmd, GuardedCommand):
            raise ProofError(
                f"strong-ensures: helpful command {self.helpful!r} must be "
                "a guarded command (its enabledness must be expressible)"
            )
        return ExprPredicate(cmd.guard)

    def recurrence_target(self, program: "Program") -> Predicate:
        """``q ∨ (p∧¬q ∧ en(helpful))`` — what the recurrence must reach."""
        return self.q | (self.region() & self.enabled_predicate(program))

    def _local_check(
        self, program: "Program", result: ProofCheckResult, path: str
    ) -> None:
        from repro.core.proofs import masks_equal, pred_entails
        from repro.semantics.checker import check_next, check_validity

        if self.helpful not in program.fair_names:
            result.failures.append(
                ProofFailure(
                    path,
                    f"helpful command {self.helpful!r} is not in the fair "
                    f"subset of {program.name}",
                )
            )
            return
        rho = self.region()
        result.obligations_checked += 1
        res = check_next(program, rho, self.p | self.q)
        if not res.holds:
            result.failures.append(ProofFailure(path, res.explain()))
        cmd = program.command_named(self.helpful)
        en = self.enabled_predicate(program)
        result.obligations_checked += 1
        res = check_validity(program, rho & en, cmd.wp(self.q))
        if not res.holds:
            result.failures.append(ProofFailure(path, res.explain()))
        result.obligations_checked += 1
        if not masks_equal(self.recurrence.lhs(), rho, program):
            result.failures.append(
                ProofFailure(
                    path,
                    "recurrence premise starts from "
                    f"{self.recurrence.lhs().describe()}, not from the "
                    f"exit region {rho.describe()}",
                )
            )
        result.obligations_checked += 1
        if not pred_entails(
            self.recurrence.rhs(), self.recurrence_target(program), program
        ):
            result.failures.append(
                ProofFailure(
                    path,
                    "recurrence premise does not reach "
                    "q ∨ (region ∧ en(helpful)): concludes "
                    f"{self.recurrence.rhs().describe()}",
                )
            )


class SupportSplit(Disjunction):
    """Case split on *which token variable is positive*.

    A :class:`~repro.core.rules.Disjunction` over the branches
    ``base ∧ v > 0`` (one per ``v`` in ``split_vars``) plus the branch
    ``base ∧ ⋀_v v = 0``, concluding ``base ↝ q``.  When every split
    variable has a non-negative integer domain the completeness side
    condition is a propositional tautology — the compositional kernel
    verifies the branch *shapes* and the domain lower bounds instead of
    comparing product-space masks.  Under the dense kernel this node
    checks exactly as the underlying Disjunction (the differential
    oracle needs no special case).
    """

    rule_name = "support-split"

    def __init__(
        self,
        base: Predicate,
        split_vars: tuple[Var, ...],
        positive_subs: tuple[LeadsToProof, ...],
        zero_sub: LeadsToProof,
    ) -> None:
        if len(split_vars) != len(positive_subs):
            raise ProofError(
                f"support-split: {len(split_vars)} variables but "
                f"{len(positive_subs)} positive branches"
            )
        self.base = base
        self.split_vars = tuple(split_vars)
        self.positive_subs = tuple(positive_subs)
        self.zero_sub = zero_sub
        super().__init__(
            (*positive_subs, zero_sub), conclude_lhs=base
        )

    def branch_predicates(self) -> tuple[tuple[Predicate, ...], Predicate]:
        """The *expected* branch left-hand sides, rebuilt from the spec."""
        positives = tuple(
            self.base & ExprPredicate(v.ref() > 0) for v in self.split_vars
        )
        zero = self.base
        for v in self.split_vars:
            zero = zero & ExprPredicate(v.ref() == 0)
        return positives, zero


# ---------------------------------------------------------------------------
# The certificate object
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ComponentCertificate:
    """One component's local obligation, checked on its *own* space.

    ``proof`` certifies ``p ↝ q`` (under ``fairness``) for ``component``
    *in isolation* — synthesized and re-checked by the existing
    dense/sparse pipeline on the component's small state space.  In the
    assume–guarantee reading this is the evidence for the component's
    ``Guarantees``: the helpful command the system-level rule tree leans
    on really is helpful in the component that contributes it.
    """

    component: "Program"
    p: Predicate
    q: Predicate
    fairness: str
    proof: LeadsToProof
    role: str = ""

    def describe(self) -> str:
        tag = f" [{self.role}]" if self.role else ""
        return (
            f"{self.component.name}{tag}: {self.p.describe()} ~> "
            f"{self.q.describe()} ({self.fairness} fairness)"
        )


@dataclass(frozen=True)
class CompositionalCertificate:
    """A checkable assume–guarantee certificate for a composed system.

    Records everything the compositional kernel
    (:func:`repro.semantics.compositional.check_compositional`) needs to
    re-establish ``p ↝ q`` of ``system`` without materializing its state
    space: the component programs (for the locality side conditions and
    the initially-conjunction consistency check), per-component
    certificates (checked on their own spaces via the dense/sparse
    pipeline), the system-level rule tree (every obligation footprint-
    local), and the ``guarantees``-calculus derivation that assembled the
    components' universal properties into the conclusion.
    """

    system: "Program"
    components: tuple["Program", ...]
    p: Predicate
    q: Predicate
    fairness: str
    proof: LeadsToProof
    component_certs: tuple[ComponentCertificate, ...] = ()
    guarantee: "Guarantees | None" = None
    guarantee_trail: tuple[str, ...] = ()
    notes: dict[str, Any] = field(default_factory=dict)

    def conclusion_text(self) -> str:
        return (
            f"{self.p.describe()} ~> {self.q.describe()}  "
            f"[{self.fairness} fairness, {len(self.components)} components]"
        )

    def count_nodes(self) -> int:
        return self.proof.count_nodes()

    def rule_histogram(self) -> dict[str, int]:
        return self.proof.rule_histogram()

    def render(self) -> str:
        lines = [f"compositional certificate: {self.conclusion_text()}"]
        if self.guarantee is not None:
            lines.append(f"  guarantee: {self.guarantee.describe()}")
        for step in self.guarantee_trail:
            lines.append(f"    · {step}")
        for cert in self.component_certs:
            lines.append(f"  component lemma: {cert.describe()}")
        lines.append(self.proof.render(indent=1))
        return "\n".join(lines)
