"""The leads-to proof system: the paper's five rules, mechanized.

From §2, ``↝`` is defined inductively by:

- **Transient**:     ``transient q  ⊢  true ↝ ¬q``
- **Implication**:   ``[p ⇒ q]  ⊢  p ↝ q``
- **Disjunction**:   ``⟨∀p ∈ S : p ↝ q⟩  ⊢  ⟨∃p ∈ S : p⟩ ↝ q``
- **Transitivity**:  ``p ↝ q,  q ↝ r  ⊢  p ↝ r``
- **PSP**:           ``p ↝ q,  s next t  ⊢  p ∧ s ↝ (q ∧ s) ∨ (¬s ∧ t)``

plus two *derived* constructions used by the paper's priority proof:

- :class:`Ensures` — ``(p∧¬q next p∨q), transient (p∧¬q) ⊢ p ↝ q``.
  This is a **macro**: :meth:`Ensures.expand` produces its derivation from
  the five primitive rules (Transient + PSP + Implication + Transitivity +
  Disjunction), and checking an ``Ensures`` node checks that expansion —
  so certificates built from ``Ensures`` still live inside the paper's
  proof system.
- :class:`MetricInduction` — well-founded induction over a finite variant
  ("induction on the cardinality of A*(i)", the paper's final liveness
  step): given disjoint-by-construction level predicates ``L₁ … L_M`` with
  ``L_m ↝ (q ∨ L₁ ∨ … ∨ L_{m-1})`` for every ``m``, and ``p ⇒ q ∨ ⋁L``,
  conclude ``p ↝ q``.  (Derivable from Disjunction + Transitivity by meta-
  induction on ``M``; provided as a rule so certificates stay linear-size.)

One extension leaves the paper's weak-fairness model:
:class:`StrongTransientBasis` concludes ``true ↝ ¬q`` under **strong**
fairness (its semantic leaf is the per-SCC enabled-exit criterion of
:mod:`repro.semantics.strong_fairness`).  ``Ensures(p, q,
fairness="strong")`` swaps it in for the weak basis, so the synthesizer
can certify verdicts like the pipeline∘allocator delivery property,
which holds only under strong fairness.  Certificates containing it are
judgments of the strong-fairness semantics, not the paper's §2 logic.

Side conditions ("the intermediate predicates agree") are discharged by
**semantic mask equality** over the program's state space, mirroring the
paper's free use of predicate calculus between steps.  On sparse-routed
spaces the equality/entailment helpers and every leaf checker decide the
reachable-restricted judgment through the frontier kernels (see
:mod:`repro.semantics.sparse`), so certificates stay checkable on
composition stacks whose encoded space dwarfs the dense capacity.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.predicates import Predicate, TRUE
from repro.core.proofs import (
    ProofCheckResult,
    ProofFailure,
    ProofNode,
    masks_equal,
    pred_entails,
)
from repro.errors import ProofError

__all__ = [
    "LeadsToProof",
    "TransientBasis",
    "StrongTransientBasis",
    "Implication",
    "Disjunction",
    "Transitivity",
    "PSP",
    "Ensures",
    "MetricInduction",
]


class LeadsToProof(ProofNode):
    """Base of leads-to proof nodes; each concludes ``lhs() ↝ rhs()``."""

    def lhs(self) -> Predicate:
        """Left-hand side of the concluded leads-to."""
        raise NotImplementedError

    def rhs(self) -> Predicate:
        """Right-hand side of the concluded leads-to."""
        raise NotImplementedError

    def conclusion_text(self) -> str:
        return f"{self.lhs().describe()} ~> {self.rhs().describe()}"

    def verify_semantically(self, program, *, fairness: str = "weak") -> bool:
        """Cross-check the conclusion with the model checker (not part of
        kernel checking; used by tests for end-to-end agreement).  Pass
        ``fairness="strong"`` for certificates built on
        :class:`StrongTransientBasis`."""
        if fairness == "strong":
            from repro.semantics.strong_fairness import check_leadsto_strong

            return check_leadsto_strong(program, self.lhs(), self.rhs()).holds
        from repro.semantics.leadsto import check_leadsto

        return check_leadsto(program, self.lhs(), self.rhs()).holds


class TransientBasis(LeadsToProof):
    """``transient q ⊢ true ↝ ¬q`` — the only rule that consumes fairness."""

    rule_name = "transient"

    def __init__(self, q: Predicate) -> None:
        self.q = q

    def lhs(self) -> Predicate:
        return TRUE

    def rhs(self) -> Predicate:
        return ~self.q

    def _local_check(self, program, result: ProofCheckResult, path: str) -> None:
        from repro.semantics.checker import check_transient

        result.obligations_checked += 1
        res = check_transient(program, self.q)
        if not res.holds:
            result.failures.append(ProofFailure(path, res.explain()))


class StrongTransientBasis(LeadsToProof):
    """``transient[strong] q ⊢ true ↝ ¬q`` — the strong-fairness basis.

    Not one of the paper's rules: it consumes **strong** fairness ("if
    ``d`` is enabled infinitely often, ``d`` executes while enabled
    infinitely often").  The semantic leaf is
    :func:`repro.semantics.strong_fairness.check_transient_strong`: every
    SCC of the ``q``-subgraph has a fair command that some member enables
    and that exits the component from every member enabling it, so a
    strongly-fair run must descend the condensation DAG out of ``q``.
    Certificates containing this node conclude the strong-fairness
    judgment (check them end-to-end with
    ``verify_semantically(program, fairness="strong")``).
    """

    rule_name = "transient-strong"

    def __init__(self, q: Predicate) -> None:
        self.q = q

    def lhs(self) -> Predicate:
        return TRUE

    def rhs(self) -> Predicate:
        return ~self.q

    def _local_check(self, program, result: ProofCheckResult, path: str) -> None:
        from repro.semantics.strong_fairness import check_transient_strong

        result.obligations_checked += 1
        res = check_transient_strong(program, self.q)
        if not res.holds:
            result.failures.append(ProofFailure(path, res.explain()))


class Implication(LeadsToProof):
    """``[p ⇒ q] ⊢ p ↝ q`` — validity discharged over the whole space."""

    rule_name = "implication"

    def __init__(self, p: Predicate, q: Predicate) -> None:
        self.p = p
        self.q = q

    def lhs(self) -> Predicate:
        return self.p

    def rhs(self) -> Predicate:
        return self.q

    def _local_check(self, program, result: ProofCheckResult, path: str) -> None:
        from repro.semantics.checker import check_validity

        result.obligations_checked += 1
        res = check_validity(program, self.p, self.q)
        if not res.holds:
            result.failures.append(ProofFailure(path, res.explain()))


class Disjunction(LeadsToProof):
    """``⟨∀i : pᵢ ↝ q⟩ ⊢ (⋁ᵢ pᵢ) ↝ q``.

    ``conclude_lhs`` optionally names the conclusion's left-hand side; the
    kernel verifies it is equivalent to the disjunction of the premises'
    left-hand sides (the paper routinely replaces ``(p∧¬q) ∨ (p∧q)`` by
    ``p`` this way).
    """

    rule_name = "disjunction"

    def __init__(
        self,
        subs: Sequence[LeadsToProof],
        *,
        conclude_lhs: Predicate | None = None,
    ) -> None:
        if not subs:
            raise ProofError("disjunction needs at least one premise")
        self.subs = tuple(subs)
        self._conclude_lhs = conclude_lhs

    def premises(self) -> tuple[ProofNode, ...]:
        return self.subs

    def lhs(self) -> Predicate:
        if self._conclude_lhs is not None:
            return self._conclude_lhs
        out = self.subs[0].lhs()
        for sub in self.subs[1:]:
            out = out | sub.lhs()
        return out

    def rhs(self) -> Predicate:
        return self.subs[0].rhs()

    def _local_check(self, program, result: ProofCheckResult, path: str) -> None:
        q = self.subs[0].rhs()
        for i, sub in enumerate(self.subs[1:], start=1):
            result.obligations_checked += 1
            if not masks_equal(sub.rhs(), q, program):
                result.failures.append(
                    ProofFailure(
                        path,
                        f"premise {i} concludes a different right-hand side: "
                        f"{sub.rhs().describe()} vs {q.describe()}",
                    )
                )
        if self._conclude_lhs is not None:
            fold = self.subs[0].lhs()
            for sub in self.subs[1:]:
                fold = fold | sub.lhs()
            result.obligations_checked += 1
            if not masks_equal(self._conclude_lhs, fold, program):
                result.failures.append(
                    ProofFailure(
                        path,
                        "declared left-hand side is not equivalent to the "
                        "disjunction of the premises' left-hand sides",
                    )
                )


class Transitivity(LeadsToProof):
    """``p ↝ q, q ↝ r ⊢ p ↝ r``; the two ``q``s must be equivalent."""

    rule_name = "transitivity"

    def __init__(self, left: LeadsToProof, right: LeadsToProof) -> None:
        self.left = left
        self.right = right

    def premises(self) -> tuple[ProofNode, ...]:
        return (self.left, self.right)

    def lhs(self) -> Predicate:
        return self.left.lhs()

    def rhs(self) -> Predicate:
        return self.right.rhs()

    def _local_check(self, program, result: ProofCheckResult, path: str) -> None:
        result.obligations_checked += 1
        if not masks_equal(self.left.rhs(), self.right.lhs(), program):
            result.failures.append(
                ProofFailure(
                    path,
                    "intermediate predicates disagree: "
                    f"{self.left.rhs().describe()} vs "
                    f"{self.right.lhs().describe()}",
                )
            )


class PSP(LeadsToProof):
    """``p ↝ q, s next t ⊢ (p ∧ s) ↝ (q ∧ s) ∨ (¬s ∧ t)``.

    The ``s next t`` obligation is a semantic leaf of this node.
    """

    rule_name = "psp"

    def __init__(self, sub: LeadsToProof, s: Predicate, t: Predicate) -> None:
        self.sub = sub
        self.s = s
        self.t = t

    def premises(self) -> tuple[ProofNode, ...]:
        return (self.sub,)

    def lhs(self) -> Predicate:
        return self.sub.lhs() & self.s

    def rhs(self) -> Predicate:
        return (self.sub.rhs() & self.s) | (~self.s & self.t)

    def _local_check(self, program, result: ProofCheckResult, path: str) -> None:
        from repro.semantics.checker import check_next

        result.obligations_checked += 1
        res = check_next(program, self.s, self.t)
        if not res.holds:
            result.failures.append(ProofFailure(path, res.explain()))


class Ensures(LeadsToProof):
    """Derived rule: ``p ensures q ⊢ p ↝ q``.

    ``p ensures q`` is the conjunction of ``p ∧ ¬q next p ∨ q`` (progress is
    never undone) and ``transient (p ∧ ¬q)`` (some fair command forces the
    exit).  Its derivation from the paper's primitives is::

        transient (p∧¬q)                        ⊢ true ↝ ¬(p∧¬q)       (Transient)
        …, (p∧¬q) next (p∨q)                    ⊢ (p∧¬q) ↝ X           (PSP)
              where X = (¬(p∧¬q) ∧ (p∧¬q)) ∨ (¬(p∧¬q) ∧ (p∨q)) ≡ q
        [X ⇒ q]                                 ⊢ X ↝ q                (Implication)
        …                                       ⊢ (p∧¬q) ↝ q           (Transitivity)
        [p∧q ⇒ q]                               ⊢ (p∧q) ↝ q            (Implication)
        …                                       ⊢ (p∧¬q)∨(p∧q) ↝ q     (Disjunction)
              with declared lhs p  (≡ (p∧¬q)∨(p∧q))

    Checking an ``Ensures`` node checks exactly this expansion, so the
    kernel's trusted base stays the paper's five rules.

    With ``fairness="strong"`` the expansion's basis is
    :class:`StrongTransientBasis` instead — the helpful command needs
    only be *enabled-exiting* on each component of ``p ∧ ¬q``, and the
    conclusion is the strong-fairness judgment.
    """

    rule_name = "ensures"

    def __init__(self, p: Predicate, q: Predicate, *, fairness: str = "weak") -> None:
        if fairness not in ("weak", "strong"):
            raise ProofError(f"unknown fairness notion {fairness!r}")
        self.p = p
        self.q = q
        self.fairness = fairness
        self._expansion: LeadsToProof | None = None

    def lhs(self) -> Predicate:
        return self.p

    def rhs(self) -> Predicate:
        return self.q

    def expand(self) -> LeadsToProof:
        """The derivation from primitive rules (cached)."""
        if self._expansion is None:
            p, q = self.p, self.q
            pnq = p & ~q
            if self.fairness == "strong":
                basis: LeadsToProof = StrongTransientBasis(pnq)
            else:
                basis = TransientBasis(pnq)  # true ↝ ¬(p∧¬q)
            psp = PSP(basis, s=pnq, t=p | q)  # (p∧¬q) ↝ X
            to_q = Implication(psp.rhs(), q)  # X ↝ q   (X ≡ q)
            left = Transitivity(psp, to_q)  # (p∧¬q) ↝ q
            right = Implication(p & q, q)  # (p∧q) ↝ q
            self._expansion = Disjunction([left, right], conclude_lhs=p)
        return self._expansion

    def premises(self) -> tuple[ProofNode, ...]:
        return (self.expand(),)

    def _local_check(self, program, result: ProofCheckResult, path: str) -> None:
        # All obligations live in the expansion; the macro node itself only
        # asserts that the expansion concludes p ↝ q, which is true by
        # construction (Disjunction declares lhs = p, rhs folds to q).
        result.obligations_checked += 1
        exp = self.expand()
        if not masks_equal(exp.rhs(), self.q, program):
            result.failures.append(
                ProofFailure(path, "expansion right-hand side is not equivalent to q")
            )


class MetricInduction(LeadsToProof):
    """Well-founded induction over a finite variant metric.

    Premises: for each level ``m`` (``1 ≤ m ≤ M``, in ``levels`` order), a
    proof of ``L_m ↝ (q ∨ L_1 ∨ … ∨ L_{m-1})``.  Side condition:
    ``p ⇒ q ∨ ⋁_m L_m``.  Conclusion: ``p ↝ q``.

    This is the paper's "induction on the cardinality of A*(i)" (§4.6) —
    the levels there are ``|A*(i)| = m``; the synthesizer instead uses SCC
    condensation ranks, which is the same construction with a finer metric.
    """

    rule_name = "metric-induction"

    def __init__(
        self,
        p: Predicate,
        q: Predicate,
        levels: Sequence[Predicate],
        subs: Sequence[LeadsToProof],
        *,
        support_table=None,
    ) -> None:
        if len(levels) != len(subs):
            raise ProofError(
                f"metric induction: {len(levels)} levels but {len(subs)} proofs"
            )
        self.p = p
        self.q = q
        self.levels = tuple(levels)
        self.subs = tuple(subs)
        #: Optional :class:`~repro.core.predicates.SupportTable` the levels
        #: are views of (attached by the synthesizer).  Purely an
        #: annotation: checking never consults it, but the batched kernel
        #: driver (:func:`repro.semantics.synthesis.
        #: check_certificate_batched`) and introspection tools do.
        self.support_table = support_table

    def premises(self) -> tuple[ProofNode, ...]:
        return self.subs

    def lhs(self) -> Predicate:
        return self.p

    def rhs(self) -> Predicate:
        return self.q

    def _local_check(self, program, result: ProofCheckResult, path: str) -> None:
        from repro.semantics.checker import check_validity

        # Coverage: p ⇒ q ∨ ⋁ levels.
        result.obligations_checked += 1
        cover = self.q
        for lv in self.levels:
            cover = cover | lv
        res = check_validity(program, self.p, cover)
        if not res.holds:
            result.failures.append(
                ProofFailure(
                    path, f"p is not covered by q and the levels: {res.message}"
                )
            )
        # Each level's premise must conclude L_m ↝ R with R ⇒ (q ∨ lower
        # levels); the weakening is derivable (Implication + Transitivity),
        # accepting it directly keeps hand-written proofs natural.
        lower = self.q
        for m, (lv, sub) in enumerate(zip(self.levels, self.subs)):
            result.obligations_checked += 2
            if not masks_equal(sub.lhs(), lv, program):
                result.failures.append(
                    ProofFailure(
                        path,
                        f"level {m}: premise lhs {sub.lhs().describe()} is not "
                        f"the level predicate",
                    )
                )
            if not pred_entails(sub.rhs(), lower, program):
                result.failures.append(
                    ProofFailure(
                        path,
                        f"level {m}: premise rhs {sub.rhs().describe()} does not "
                        f"entail (q ∨ lower levels)",
                    )
                )
            lower = lower | lv
