"""The ``guarantees`` calculus: composition rules for conditional properties.

The paper's §2 defines ``X guarantees Y`` and notes it is **existential**;
the underlying theory (Chandy & Sanders, *Reasoning about program
composition*) equips it with a small calculus.  This module implements the
rules as *constructors* of new :class:`~repro.core.properties.Guarantees`
objects:

- **transitivity** — ``X g Y,  Y g Z  ⊢  X g Z`` (:func:`g_transitivity`);
- **conjunction** — ``X₁ g Y₁,  X₂ g Y₂  ⊢  (X₁∧X₂) g (Y₁∧Y₂)``
  (:func:`g_conjunction`);
- **lhs strengthening / rhs weakening** — if ``X' ⊨ X`` and ``Y ⊨ Y'``
  then ``X g Y ⊢ X' g Y'`` (:func:`g_weaken`); the entailments are
  *meta-level* (they must hold of every system), so the caller supplies
  them as :class:`PropertyEntailment` objects that are spot-checked
  against concrete systems;
- **elimination** — in a given system, ``X g Y`` plus ``X`` yields ``Y``
  (:func:`g_eliminate`; this one is fully semantic).

Soundness of each rule is immediate from the definition
``(X g Y).F ≡ ⟨∀G : F ∥ G : X.(F∘G) ⇒ Y.(F∘G)⟩``; the test suite verifies
every rule *instance-wise*: whenever the premises pass
``check_against`` over an environment universe, so does the conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.properties import Guarantees, Property, PropertyFamily
from repro.errors import PropertyError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.program import Program

__all__ = [
    "PropertyEntailment",
    "g_transitivity",
    "g_conjunction",
    "g_weaken",
    "g_eliminate",
    "conj_property",
]


def conj_property(*props: Property) -> Property:
    """Conjunction of program properties (a two-member family)."""
    if not props:
        raise PropertyError("conjunction of no properties")
    if len(props) == 1:
        return props[0]
    text = " /\\ ".join(f"({p.describe()})" for p in props)
    return PropertyFamily(text, props)


@dataclass
class PropertyEntailment:
    """A meta-level claim ``stronger ⊨ weaker``: every system satisfying
    ``stronger`` satisfies ``weaker``.

    Not finitely decidable in general; :meth:`spot_check` falsifies it
    against concrete systems (used by the weakening rule's tests).
    """

    stronger: Property
    weaker: Property

    def spot_check(self, systems: list["Program"]) -> bool:
        """True iff no provided system refutes the entailment."""
        for system in systems:
            if self.stronger.holds_in(system) and not self.weaker.holds_in(system):
                return False
        return True

    def describe(self) -> str:
        return f"({self.stronger.describe()}) |= ({self.weaker.describe()})"


def g_transitivity(first: Guarantees, second: Guarantees) -> Guarantees:
    """``X g Y, Y g Z ⊢ X g Z``.

    Side condition: the middle properties must be the same object or
    render identically (program properties have no general semantic
    equality; the calculus keeps this syntactic, as the theory does).
    """
    if first.rhs is not second.lhs and (
        first.rhs.describe() != second.lhs.describe()
    ):
        raise PropertyError(
            "transitivity: middle properties differ: "
            f"{first.rhs.describe()} vs {second.lhs.describe()}"
        )
    return Guarantees(first.lhs, second.rhs)


def g_conjunction(first: Guarantees, second: Guarantees) -> Guarantees:
    """``X₁ g Y₁, X₂ g Y₂ ⊢ (X₁ ∧ X₂) g (Y₁ ∧ Y₂)``."""
    return Guarantees(
        conj_property(first.lhs, second.lhs),
        conj_property(first.rhs, second.rhs),
    )


def g_weaken(
    g: Guarantees,
    *,
    new_lhs: Property | None = None,
    new_rhs: Property | None = None,
    lhs_entailment: PropertyEntailment | None = None,
    rhs_entailment: PropertyEntailment | None = None,
) -> Guarantees:
    """``X g Y ⊢ X' g Y'`` given ``X' ⊨ X`` and ``Y ⊨ Y'``.

    Callers must supply the entailment objects matching the replaced
    sides; the rule validates their orientation (it cannot validate their
    truth — spot-check them against your systems).
    """
    lhs = g.lhs
    rhs = g.rhs
    if new_lhs is not None:
        if lhs_entailment is None:
            raise PropertyError("weaken: lhs replacement needs its entailment")
        if lhs_entailment.stronger is not new_lhs or lhs_entailment.weaker is not g.lhs:
            raise PropertyError(
                "weaken: lhs entailment must be  new_lhs |= old_lhs"
            )
        lhs = new_lhs
    if new_rhs is not None:
        if rhs_entailment is None:
            raise PropertyError("weaken: rhs replacement needs its entailment")
        if rhs_entailment.stronger is not g.rhs or rhs_entailment.weaker is not new_rhs:
            raise PropertyError(
                "weaken: rhs entailment must be  old_rhs |= new_rhs"
            )
        rhs = new_rhs
    return Guarantees(lhs, rhs)


def g_eliminate(g: Guarantees, system: "Program") -> bool:
    """Elimination in a concrete system: if the system has ``X``, conclude
    (and semantically verify) ``Y``.

    Returns ``True`` when the premise holds and the conclusion verifies;
    raises :class:`PropertyError` when the premise holds but the
    conclusion fails — which refutes ``X g Y`` for this very system (the
    inert environment instance of the definition).
    """
    if not g.lhs.holds_in(system):
        return False  # premise absent: nothing to conclude
    if g.rhs.holds_in(system):
        return True
    raise PropertyError(
        f"elimination refutes {g.describe()} on {system.name}: "
        "X holds but Y fails"
    )
