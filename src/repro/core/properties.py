"""The property language of the paper (§2).

Properties are predicates on *programs*::

    init p          initially ⇒ p                                (existential)
    transient p     ⟨∃c : c ∈ D : p ⇒ wp.c.¬p⟩                   (existential)
    p next q        ⟨∀c : c ∈ C : p ⇒ wp.c.q⟩                    (universal)
    stable p        p next p                                     (universal)
    invariant p     (init p) ∧ (stable p)                        (universal)
    p ↝ q           least relation closed under the five rules   (neither)
    X guarantees Y  ∀G : F ∥ G : X(F∘G) ⇒ Y(F∘G)                 (existential)

Every property object can discharge itself **semantically** against a
concrete finite program via :meth:`Property.check` (delegating to
:mod:`repro.semantics.checker`), following the paper's inductive semantics:
``next``-family properties quantify over *all* states of the space, not just
reachable ones (the paper deliberately avoids the substitution axiom).

``leads-to`` is checked under weak fairness of ``D`` by the fair-SCC model
checker (:mod:`repro.semantics.leadsto`); the checker is proven equivalent
to the proof system on finite instances by the synthesis engine
(:mod:`repro.semantics.synthesis`).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from typing import TYPE_CHECKING, Any

from repro.core.expressions import Expr
from repro.core.predicates import ExprPredicate, Predicate
from repro.errors import PropertyError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.program import Program
    from repro.semantics.checker import CheckResult

__all__ = [
    "Property",
    "Init",
    "Transient",
    "Next",
    "Stable",
    "Invariant",
    "LeadsTo",
    "Guarantees",
    "PropertyFamily",
    "forall_values",
]


def _as_pred(p: Predicate | Expr | bool) -> Predicate:
    if isinstance(p, Predicate):
        return p
    if isinstance(p, Expr):
        return ExprPredicate(p)
    if isinstance(p, bool):
        from repro.core.predicates import FALSE, TRUE

        return TRUE if p else FALSE
    raise PropertyError(f"cannot treat {p!r} as a predicate")


class Property:
    """Abstract base class of program properties."""

    #: True iff the property *type* is existential: it holds of any system
    #: in which at least one component has it.
    is_existential: bool = False
    #: True iff the property *type* is universal: it holds of any system in
    #: which all components have it.
    is_universal: bool = False

    def check(self, program: "Program") -> "CheckResult":
        """Semantically discharge the property against ``program``."""
        raise NotImplementedError

    def holds_in(self, program: "Program") -> bool:
        """Boolean form of :meth:`check`."""
        return self.check(program).holds

    def describe(self) -> str:
        """UNITY-style rendering."""
        raise NotImplementedError

    @property
    def classification(self) -> str:
        """``"existential"``, ``"universal"``, ``"both"`` or ``"neither"``."""
        if self.is_existential and self.is_universal:
            return "both"
        if self.is_existential:
            return "existential"
        if self.is_universal:
            return "universal"
        return "neither"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"

    def __str__(self) -> str:
        return self.describe()


class Init(Property):
    """``init p`` — every initial state satisfies ``p``.

    Existential (and in fact also universal: the composed ``initially`` is
    the conjunction of the components', so it entails each of them).
    """

    is_existential = True
    is_universal = True

    def __init__(self, p: Predicate | Expr | bool) -> None:
        self.p = _as_pred(p)

    def check(self, program: "Program") -> "CheckResult":
        from repro.semantics.checker import check_init

        return check_init(program, self.p)

    def describe(self) -> str:
        return f"init {self.p.describe()}"


class Transient(Property):
    """``transient p`` — some single fair command falsifies ``p`` from every
    ``p``-state: ``⟨∃c : c ∈ D : p ⇒ wp.c.¬p⟩``.  Existential."""

    is_existential = True
    is_universal = False

    def __init__(self, p: Predicate | Expr | bool) -> None:
        self.p = _as_pred(p)

    def check(self, program: "Program") -> "CheckResult":
        from repro.semantics.checker import check_transient

        return check_transient(program, self.p)

    def describe(self) -> str:
        return f"transient {self.p.describe()}"


class Next(Property):
    """``p next q`` — every command steps ``p``-states to ``q``-states:
    ``⟨∀c : c ∈ C : p ⇒ wp.c.q⟩``.  Universal."""

    is_existential = False
    is_universal = True

    def __init__(self, p: Predicate | Expr | bool, q: Predicate | Expr | bool) -> None:
        self.p = _as_pred(p)
        self.q = _as_pred(q)

    def check(self, program: "Program") -> "CheckResult":
        from repro.semantics.checker import check_next

        return check_next(program, self.p, self.q)

    def describe(self) -> str:
        return f"{self.p.describe()} next {self.q.describe()}"


class Stable(Property):
    """``stable p ≡ p next p``.  Universal."""

    is_existential = False
    is_universal = True

    def __init__(self, p: Predicate | Expr | bool) -> None:
        self.p = _as_pred(p)

    def check(self, program: "Program") -> "CheckResult":
        from repro.semantics.checker import check_stable

        return check_stable(program, self.p)

    def describe(self) -> str:
        return f"stable {self.p.describe()}"


class Invariant(Property):
    """``invariant p ≡ (init p) ∧ (stable p)`` — the paper's *inductive*
    invariant, over the full state space.  Universal.

    For the weaker "holds on all reachable states" notion use
    :func:`repro.semantics.checker.check_reachable_invariant` explicitly.
    """

    is_existential = False
    is_universal = True

    def __init__(self, p: Predicate | Expr | bool) -> None:
        self.p = _as_pred(p)

    def check(self, program: "Program") -> "CheckResult":
        from repro.semantics.checker import check_invariant

        return check_invariant(program, self.p)

    def describe(self) -> str:
        return f"invariant {self.p.describe()}"


class LeadsTo(Property):
    """``p ↝ q`` — under weak fairness of ``D``, every execution from a
    ``p``-state eventually reaches a ``q``-state.

    Neither existential nor universal in general (the paper notes this);
    existential liveness is recovered through ``guarantees``.
    """

    is_existential = False
    is_universal = False

    def __init__(self, p: Predicate | Expr | bool, q: Predicate | Expr | bool) -> None:
        self.p = _as_pred(p)
        self.q = _as_pred(q)

    def check(self, program: "Program") -> "CheckResult":
        from repro.semantics.leadsto import check_leadsto

        return check_leadsto(program, self.p, self.q)

    def describe(self) -> str:
        return f"{self.p.describe()} ~> {self.q.describe()}"


class Guarantees(Property):
    """``X guarantees Y`` — in every valid composition containing this
    component, if the system has ``X`` then it has ``Y``.  Existential.

    The defining quantification ranges over *all* compatible environment
    programs, which is not finitely checkable; :meth:`check_against`
    discharges it over an explicit universe of environments (used by the
    classification tests), and :meth:`check` requires such a universe.
    """

    is_existential = True
    is_universal = False

    def __init__(self, lhs: Property, rhs: Property) -> None:
        if not isinstance(lhs, Property) or not isinstance(rhs, Property):
            raise PropertyError("guarantees expects two program properties")
        self.lhs = lhs
        self.rhs = rhs

    def check_against(
        self, program: "Program", environments: Sequence["Program"]
    ) -> "CheckResult":
        """Check the guarantee over an explicit finite environment universe
        (always including the inert environment, i.e. ``program`` itself
        composed with nothing)."""
        from repro.core.composition import can_compose, compose
        from repro.semantics.checker import CheckResult

        tried = 0
        for env in (None, *environments):
            if env is None:
                system = program
                label = "(alone)"
            else:
                if not can_compose(program, env):
                    continue
                system = compose(program, env)
                label = env.name
            tried += 1
            if self.lhs.holds_in(system) and not self.rhs.holds_in(system):
                return CheckResult(
                    holds=False,
                    kind="guarantees",
                    subject=self.describe(),
                    message=(
                        f"environment {label}: X holds but Y fails in the "
                        "composed system"
                    ),
                )
        return CheckResult(
            holds=True,
            kind="guarantees",
            subject=self.describe(),
            message=f"checked against {tried} environment(s)",
        )

    def check(self, program: "Program") -> "CheckResult":
        raise PropertyError(
            "guarantees cannot be checked without an environment universe; "
            "use check_against(program, environments)"
        )

    def describe(self) -> str:
        return f"({self.lhs.describe()}) guarantees ({self.rhs.describe()})"


class PropertyFamily(Property):
    """A finite indexed family of properties, e.g. ``∀k : stable (C - c = k)``.

    The family holds iff every member holds; classification is the meet of
    the members' classifications.
    """

    def __init__(self, description: str, members: Iterable[Property]) -> None:
        self.members = tuple(members)
        if not self.members:
            raise PropertyError("a property family needs at least one member")
        self._description = description
        self.is_existential = all(m.is_existential for m in self.members)
        self.is_universal = all(m.is_universal for m in self.members)

    def check(self, program: "Program") -> "CheckResult":
        from repro.semantics.checker import CheckResult

        for member in self.members:
            result = member.check(program)
            if not result.holds:
                return CheckResult(
                    holds=False,
                    kind="family",
                    subject=self._description,
                    message=f"member fails: {member.describe()} — {result.message}",
                    witness=result.witness,
                )
        return CheckResult(
            holds=True,
            kind="family",
            subject=self._description,
            message=f"all {len(self.members)} members hold",
        )

    def describe(self) -> str:
        return self._description

    def __iter__(self):
        return iter(self.members)

    def __len__(self) -> int:
        return len(self.members)


def forall_values(
    values: Iterable[Any],
    fn: Callable[[Any], Property],
    *,
    description: str | None = None,
) -> PropertyFamily:
    """Build the family ``{ fn(v) : v ∈ values }``.

    Mirrors the paper's universally quantified free variables (``k``, ``N``
    in (3); ``b`` in (5)); on finite domains the family is finite.
    """
    members = [fn(v) for v in values]
    if description is None:
        description = f"forall k in {{…}} : {members[0].describe() if members else '⊤'}"
    return PropertyFamily(description, members)
