"""Checkable proof objects — infrastructure and the safety kernel.

The paper's proofs are chains of inferences in a small logic.  This module
makes those proofs *artifacts*: trees of rule applications that a kernel
re-checks mechanically against a concrete finite program.  Leaf obligations
(``init``/``stable``/``transient``/``next``/validity) are discharged by the
semantic checkers; internal rules re-verify their side conditions by
predicate-mask comparison over the program's state space.

Two kernels share this infrastructure:

- the **safety kernel** (this module) mechanizes the paper's §3.3 proof
  pattern — the construction of a *shared universal property* from local
  component specifications:

  * :class:`StableLeaf`, :class:`InitLeaf` — semantic leaves;
  * :class:`StableConjunction` — ``stable p ∧ stable q ⊢ stable (p∧q)``
    (the "conjunction of stable properties" step);
  * :class:`ConstantExpressions` — from "each expression ``e_t`` is
    constant under every command" conclude ``stable P`` for any ``P`` that
    is a function of the ``e_t``-values (the "removing unused dummies"
    step: the paper's ∀k-quantified families, discharged wholesale);
  * :class:`UniversalLift` / :class:`InitLift` — the composition theorems:
    a universal property held by every component is a system property; an
    existential property held by some component is a system property;
  * :class:`InitWeaken`, :class:`InitConjunction`,
    :class:`InvariantIntro` — predicate-calculus glue (§3.3's final steps);

- the **leads-to kernel** (:mod:`repro.core.rules`) implements the paper's
  five inference rules plus the derived ``ensures`` and a well-founded
  metric induction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.core.expressions import Expr
from repro.core.predicates import Predicate
from repro.errors import ProofError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.program import Program

__all__ = [
    "ProofFailure",
    "ProofCheckResult",
    "ProofNode",
    "pred_entails",
    "SafetyProof",
    "StableLeaf",
    "InitLeaf",
    "StableConjunction",
    "ConstantExpressions",
    "UniversalLift",
    "InitLift",
    "InitWeaken",
    "InitConjunction",
    "InvariantIntro",
    "masks_equal",
]


#: Lazily-bound :func:`repro.semantics.sparse.routed_subspace` — resolved
#: once; :func:`masks_equal`/:func:`pred_entails` run once per rule side
#: condition, where per-call imports would dominate small instances.
#: Lazy because the semantics package imports this one.
_ROUTED_SUBSPACE = None


def _sparse_subspace(program: "Program"):
    """The reachable subspace when the program's space routes sparse.

    Side conditions on routed spaces are discharged over the subspace
    (reachable-restricted); ``None`` means discharge densely.  The
    fallback policy lives in
    :func:`repro.semantics.sparse.routed_subspace`.
    """
    global _ROUTED_SUBSPACE
    if _ROUTED_SUBSPACE is None:
        from repro.semantics.sparse import routed_subspace

        _ROUTED_SUBSPACE = routed_subspace
    return _ROUTED_SUBSPACE(program, "a proof side condition")


def masks_equal(p: Predicate, q: Predicate, program: "Program") -> bool:
    """Semantic predicate equality over the program's space.

    Rule side conditions ("the intermediate predicates agree") are checked
    semantically rather than syntactically, which keeps proofs robust to
    logically equivalent reformulations — the paper freely rewrites
    predicates with predicate calculus between steps.

    On sparse-routed spaces the comparison is **reachable-restricted**
    (frontier masks over the reachable subspace), matching the judgment
    the tier-routed obligation checkers decide — certificates for
    10¹²-state compositions never materialize a full-space mask.
    """
    sub = _sparse_subspace(program)
    if sub is not None:
        return bool(np.array_equal(sub.pred_mask(p), sub.pred_mask(q)))
    return p.equivalent(q, program.space)


def pred_entails(p: Predicate, q: Predicate, program: "Program") -> bool:
    """Semantic entailment ``p ⇒ q`` over the program's space.

    The entailment twin of :func:`masks_equal`, with the same tier
    routing (reachable-restricted on sparse-routed spaces); rule side
    conditions should use this instead of
    :meth:`Predicate.entails`, which always materializes full masks.
    """
    sub = _sparse_subspace(program)
    if sub is not None:
        return bool(np.all(~sub.pred_mask(p) | sub.pred_mask(q)))
    return p.entails(q, program.space)


@dataclass
class ProofFailure:
    """One failed obligation, with the path of the offending node."""

    path: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}: {self.message}"


@dataclass
class ProofCheckResult:
    """Outcome of checking a proof tree.

    ``mode`` records which kernel produced the verdict: ``"per-level"``
    for the obligation-at-a-time tree walk (:meth:`ProofNode.check`, the
    differential oracle), ``"batched"`` for the vectorized columnar
    kernel (:func:`repro.semantics.synthesis.check_certificate_batched`).
    Both kernels discharge the same obligations and count them the same
    way; the batched one discharges each obligation family in one
    segmented pass over all levels instead of one call per level.
    """

    failures: list[ProofFailure] = field(default_factory=list)
    nodes_checked: int = 0
    obligations_checked: int = 0
    mode: str = "per-level"

    @property
    def ok(self) -> bool:
        return not self.failures

    def __bool__(self) -> bool:
        return self.ok

    def explain(self) -> str:
        if self.ok:
            return (
                f"proof OK: {self.nodes_checked} rule applications, "
                f"{self.obligations_checked} semantic obligations"
            )
        lines = [f"proof FAILS ({len(self.failures)} problem(s)):"]
        lines += [f"  - {f}" for f in self.failures]
        return "\n".join(lines)


class ProofNode:
    """Abstract base class of proof-tree nodes."""

    #: Short rule identifier for rendering and statistics.
    rule_name: str = "?"

    def premises(self) -> tuple["ProofNode", ...]:
        """Sub-proofs (empty for leaves)."""
        return ()

    def conclusion_text(self) -> str:
        """Rendering of the judgment this node concludes."""
        raise NotImplementedError

    def _local_check(
        self, program: "Program", result: ProofCheckResult, path: str
    ) -> None:
        """Discharge this node's own side conditions and leaf obligations.

        Implementations append to ``result.failures`` and increment
        ``result.obligations_checked`` per semantic obligation discharged.
        """
        raise NotImplementedError

    # -- kernel walk --------------------------------------------------------

    def check(self, program: "Program") -> ProofCheckResult:
        """Re-check the entire tree against ``program``."""
        result = ProofCheckResult()
        self._check_into(program, result, self.rule_name)
        return result

    def _check_into(
        self, program: "Program", result: ProofCheckResult, path: str
    ) -> None:
        result.nodes_checked += 1
        self._local_check(program, result, path)
        for i, sub in enumerate(self.premises()):
            sub._check_into(program, result, f"{path}.{i}:{sub.rule_name}")

    # -- metrics / rendering ----------------------------------------------------

    def count_nodes(self) -> int:
        """Total rule applications in the tree."""
        return 1 + sum(p.count_nodes() for p in self.premises())

    def rule_histogram(self) -> dict[str, int]:
        """Rule-name → occurrence count (macro rules count as themselves;
        use :meth:`repro.core.rules.Ensures.expand` to inspect primitives)."""
        hist: dict[str, int] = {}
        stack: list[ProofNode] = [self]
        while stack:
            node = stack.pop()
            hist[node.rule_name] = hist.get(node.rule_name, 0) + 1
            stack.extend(node.premises())
        return hist

    def render(self, indent: int = 0) -> str:
        """Indented multi-line rendering of the proof tree."""
        pad = "  " * indent
        lines = [f"{pad}{self.rule_name}: {self.conclusion_text()}"]
        for sub in self.premises():
            lines.append(sub.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} ⊢ {self.conclusion_text()}>"


# ===========================================================================
# Safety kernel
# ===========================================================================


class SafetyProof(ProofNode):
    """Base of safety-kernel nodes.  Each concludes a property of one of the
    forms ``init p``, ``stable p`` or ``invariant p``; :meth:`concludes`
    exposes the form tag and predicate for side-condition matching."""

    def concludes(self) -> tuple[str, Predicate]:
        """``(form, predicate)`` with form in {"init", "stable", "invariant"}."""
        raise NotImplementedError

    def conclusion_text(self) -> str:
        form, pred = self.concludes()
        return f"{form} {pred.describe()}"


def _expect_form(
    sub: SafetyProof, form: str, result: ProofCheckResult, path: str, role: str
) -> Predicate | None:
    got_form, pred = sub.concludes()
    if got_form != form:
        result.failures.append(
            ProofFailure(
                path, f"{role} must conclude a {form} property, got {got_form}"
            )
        )
        return None
    return pred


class StableLeaf(SafetyProof):
    """Leaf: ``stable p``, discharged by the semantic checker."""

    rule_name = "stable-leaf"

    def __init__(self, p: Predicate) -> None:
        self.p = p

    def concludes(self) -> tuple[str, Predicate]:
        return ("stable", self.p)

    def _local_check(
        self, program: "Program", result: ProofCheckResult, path: str
    ) -> None:
        from repro.semantics.checker import check_stable

        result.obligations_checked += 1
        res = check_stable(program, self.p)
        if not res.holds:
            result.failures.append(ProofFailure(path, res.explain()))


class InitLeaf(SafetyProof):
    """Leaf: ``init p``, discharged by the semantic checker."""

    rule_name = "init-leaf"

    def __init__(self, p: Predicate) -> None:
        self.p = p

    def concludes(self) -> tuple[str, Predicate]:
        return ("init", self.p)

    def _local_check(
        self, program: "Program", result: ProofCheckResult, path: str
    ) -> None:
        from repro.semantics.checker import check_init

        result.obligations_checked += 1
        res = check_init(program, self.p)
        if not res.holds:
            result.failures.append(ProofFailure(path, res.explain()))


class StableConjunction(SafetyProof):
    """``stable p₁, …, stable pₙ ⊢ stable (p₁ ∧ … ∧ pₙ)``.

    Sound because all the ``stable`` facts constrain the *same* command set
    (UNITY: stable is conjunction-closed).
    """

    rule_name = "stable-conj"

    def __init__(self, subs: Sequence[SafetyProof]) -> None:
        if not subs:
            raise ProofError("stable-conj needs at least one premise")
        self.subs = tuple(subs)

    def premises(self) -> tuple[ProofNode, ...]:
        return self.subs

    def concludes(self) -> tuple[str, Predicate]:
        out = self.subs[0].concludes()[1]
        for sub in self.subs[1:]:
            out = out & sub.concludes()[1]
        return ("stable", out)

    def _local_check(
        self, program: "Program", result: ProofCheckResult, path: str
    ) -> None:
        for i, sub in enumerate(self.subs):
            _expect_form(sub, "stable", result, f"{path}[{i}]", "premise")


class ConstantExpressions(SafetyProof):
    """From "every command preserves the value of each ``e_t``" conclude
    ``stable P`` for any ``P`` that is a *function* of the ``e_t``-values.

    This packages the paper's §3.3 pattern: the ∀k-quantified families
    ``stable (C = c_i + k)`` (one per value of the dummy ``k``) say exactly
    that ``C - c_i`` is constant; "conjunction … removing unused dummies"
    then derives ``stable (C = Σ_j c_j)`` because that predicate depends
    only on constant quantities.  Both obligations are checked
    semantically:

    1. *constancy*: ``e_t(c(s)) = e_t(s)`` for every command ``c`` and
       state ``s`` (equivalently, the family ``∀k : stable (e_t = k)``);
    2. *functional dependence*: states agreeing on all ``e_t`` agree on
       ``P``.
    """

    rule_name = "constant-exprs"

    def __init__(self, exprs: Sequence[Expr], target: Predicate) -> None:
        if not exprs:
            raise ProofError("constant-exprs needs at least one expression")
        self.exprs = tuple(exprs)
        self.target = target

    def concludes(self) -> tuple[str, Predicate]:
        return ("stable", self.target)

    def conclusion_text(self) -> str:
        kept = ", ".join(str(e) for e in self.exprs)
        return f"stable {self.target.describe()}   [constants: {kept}]"

    def _local_check(
        self, program: "Program", result: ProofCheckResult, path: str
    ) -> None:
        from repro.semantics.transition import TransitionSystem

        ts = TransitionSystem.for_program(program)
        space = ts.space
        env = space.var_arrays()

        # 1. constancy of each expression under every command
        values = []
        for t, expr in enumerate(self.exprs):
            result.obligations_checked += 1
            vals = np.asarray(expr.eval_vec(env))
            if vals.ndim == 0:
                vals = np.full(space.size, vals[()])
            values.append(vals)
            for cmd, table in ts.all_tables():
                if not np.array_equal(vals[table], vals):
                    bad = int(np.flatnonzero(vals[table] != vals)[0])
                    result.failures.append(
                        ProofFailure(
                            path,
                            f"expression {expr} is not constant under command "
                            f"{cmd.name} (e.g. at {space.state_at(bad)!r})",
                        )
                    )
                    break

        # 2. functional dependence of the target on the expression values
        result.obligations_checked += 1
        # Factorize the value tuple into dense group ids.
        gid = np.zeros(space.size, dtype=np.int64)
        stride = 1
        for vals in values:
            _, inv = np.unique(vals, return_inverse=True)
            gid += inv * stride
            stride *= int(inv.max()) + 1
        _, gid = np.unique(gid, return_inverse=True)
        tmask = self.target.mask(space)
        trues = np.bincount(gid, weights=tmask).astype(np.int64)
        totals = np.bincount(gid)
        mixed = np.flatnonzero((trues != 0) & (trues != totals))
        if mixed.size:
            g = int(mixed[0])
            members = np.flatnonzero(gid == g)
            result.failures.append(
                ProofFailure(
                    path,
                    "target is not a function of the constant expressions: "
                    f"states {space.state_at(int(members[0]))!r} and "
                    f"{space.state_at(int(members[-1]))!r} agree on them but "
                    "disagree on the target",
                )
            )


class UniversalLift(SafetyProof):
    """Universal composition theorem as a rule: if every component of the
    system proves ``stable p``, the system has ``stable p``.

    Side conditions checked by the kernel:

    - every component is declared over the *system's* variable tuple
      (use :func:`repro.core.composition.lifted` to lift components);
    - every system command body appears among the components' commands
      (the system really is the union of these components);
    - all sub-proof conclusions agree with the lifted predicate (mask
      equality).

    Sub-proofs are checked against their own component programs.
    """

    rule_name = "universal-lift"

    def __init__(self, parts: Sequence[tuple["Program", SafetyProof]]) -> None:
        if not parts:
            raise ProofError("universal-lift needs at least one component")
        self.parts = tuple(parts)

    def premises(self) -> tuple[ProofNode, ...]:
        # Premises are checked against *component* programs inside
        # _local_check; the default walk must not re-check them against the
        # system, so they are not exposed as plain premises.
        return ()

    def concludes(self) -> tuple[str, Predicate]:
        return ("stable", self.parts[0][1].concludes()[1])

    def conclusion_text(self) -> str:
        names = ", ".join(comp.name for comp, _ in self.parts)
        return f"stable {self.concludes()[1].describe()}   [by all of: {names}]"

    def _local_check(
        self, program: "Program", result: ProofCheckResult, path: str
    ) -> None:
        target = self.concludes()[1]
        covered: set[tuple] = set()
        for comp, sub in self.parts:
            sub_path = f"{path}<{comp.name}>"
            if comp.variables != program.variables:
                result.failures.append(
                    ProofFailure(
                        sub_path,
                        "component is not declared over the system's variables "
                        "(lift it with repro.core.composition.lifted)",
                    )
                )
                continue
            pred = _expect_form(sub, "stable", result, sub_path, "component proof")
            if pred is None:
                continue
            if not masks_equal(pred, target, program):
                result.failures.append(
                    ProofFailure(
                        sub_path,
                        f"component concludes stable {pred.describe()}, which is "
                        f"not equivalent to the lifted predicate",
                    )
                )
                continue
            sub_result = sub.check(comp)
            result.nodes_checked += sub_result.nodes_checked
            result.obligations_checked += sub_result.obligations_checked
            result.failures.extend(
                ProofFailure(f"{sub_path}.{f.path}", f.message)
                for f in sub_result.failures
            )
            covered |= {c.body_key() for c in comp.commands}
        missing = [c.name for c in program.commands if c.body_key() not in covered]
        if missing:
            result.failures.append(
                ProofFailure(
                    path,
                    f"system commands {missing} are not covered by any component",
                )
            )

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}{self.rule_name}: {self.conclusion_text()}"]
        for comp, sub in self.parts:
            lines.append(f"{pad}  in component {comp.name}:")
            lines.append(sub.render(indent + 2))
        return "\n".join(lines)

    def count_nodes(self) -> int:
        return 1 + sum(sub.count_nodes() for _, sub in self.parts)


class InitLift(SafetyProof):
    """Existential composition theorem for ``init``: a component's
    ``init p`` is a system property, because the system's ``initially`` is
    the conjunction of the components' and so entails the component's.

    Side condition (checked semantically): the system's ``initially``
    entails the component's ``initially``.
    """

    rule_name = "init-lift"

    def __init__(self, component: "Program", sub: SafetyProof) -> None:
        self.component = component
        self.sub = sub

    def premises(self) -> tuple[ProofNode, ...]:
        return ()

    def concludes(self) -> tuple[str, Predicate]:
        return ("init", self.sub.concludes()[1])

    def conclusion_text(self) -> str:
        return f"init {self.concludes()[1].describe()}   [from {self.component.name}]"

    def _local_check(
        self, program: "Program", result: ProofCheckResult, path: str
    ) -> None:
        pred = _expect_form(self.sub, "init", result, path, "component proof")
        if pred is None:
            return
        result.obligations_checked += 1
        if not program.init.entails(self.component.init, program.space):
            result.failures.append(
                ProofFailure(
                    path,
                    f"system initially does not entail {self.component.name}'s "
                    "initially (is the component part of this system?)",
                )
            )
            return
        sub_result = self.sub.check(self.component)
        result.nodes_checked += sub_result.nodes_checked
        result.obligations_checked += sub_result.obligations_checked
        result.failures.extend(
            ProofFailure(f"{path}.{f.path}", f.message) for f in sub_result.failures
        )

    def count_nodes(self) -> int:
        return 1 + self.sub.count_nodes()


class InitWeaken(SafetyProof):
    """``init p, [p ⇒ q] ⊢ init q`` (predicate-calculus step of §3.3)."""

    rule_name = "init-weaken"

    def __init__(self, sub: SafetyProof, q: Predicate) -> None:
        self.sub = sub
        self.q = q

    def premises(self) -> tuple[ProofNode, ...]:
        return (self.sub,)

    def concludes(self) -> tuple[str, Predicate]:
        return ("init", self.q)

    def _local_check(
        self, program: "Program", result: ProofCheckResult, path: str
    ) -> None:
        from repro.semantics.checker import check_validity

        pred = _expect_form(self.sub, "init", result, path, "premise")
        if pred is None:
            return
        result.obligations_checked += 1
        res = check_validity(program, pred, self.q)
        if not res.holds:
            result.failures.append(ProofFailure(path, res.explain()))


class InitConjunction(SafetyProof):
    """``init p₁, …, init pₙ ⊢ init (p₁ ∧ … ∧ pₙ)``."""

    rule_name = "init-conj"

    def __init__(self, subs: Sequence[SafetyProof]) -> None:
        if not subs:
            raise ProofError("init-conj needs at least one premise")
        self.subs = tuple(subs)

    def premises(self) -> tuple[ProofNode, ...]:
        return self.subs

    def concludes(self) -> tuple[str, Predicate]:
        out = self.subs[0].concludes()[1]
        for sub in self.subs[1:]:
            out = out & sub.concludes()[1]
        return ("init", out)

    def _local_check(
        self, program: "Program", result: ProofCheckResult, path: str
    ) -> None:
        for i, sub in enumerate(self.subs):
            _expect_form(sub, "init", result, f"{path}[{i}]", "premise")


class InvariantIntro(SafetyProof):
    """``init p, stable p ⊢ invariant p`` (the paper's definition of
    ``invariant``); the two premise predicates must be equivalent."""

    rule_name = "invariant-intro"

    def __init__(self, init_proof: SafetyProof, stable_proof: SafetyProof) -> None:
        self.init_proof = init_proof
        self.stable_proof = stable_proof

    def premises(self) -> tuple[ProofNode, ...]:
        return (self.init_proof, self.stable_proof)

    def concludes(self) -> tuple[str, Predicate]:
        return ("invariant", self.init_proof.concludes()[1])

    def _local_check(
        self, program: "Program", result: ProofCheckResult, path: str
    ) -> None:
        p_init = _expect_form(self.init_proof, "init", result, path, "first premise")
        p_stab = _expect_form(
            self.stable_proof, "stable", result, path, "second premise"
        )
        if p_init is None or p_stab is None:
            return
        result.obligations_checked += 1
        if not masks_equal(p_init, p_stab, program):
            result.failures.append(
                ProofFailure(
                    path,
                    "init and stable premises conclude inequivalent predicates: "
                    f"{p_init.describe()} vs {p_stab.describe()}",
                )
            )
