"""UNITY-style commands: ``skip`` and guarded multi-assignments.

The paper's §2 model: *"A program consists of … a finite set C of commands
and a subset D of C of commands subjected to a weak fairness constraint …
The set C contains at least the command skip."*

Commands here are **total deterministic state functions**:

- :class:`Skip` — identity;
- :class:`GuardedCommand` — ``g → x₁,…,xₖ := e₁,…,eₖ``; when the guard is
  false the command behaves as ``skip`` (totality);
- :class:`AltCommand` — a first-match ``if g₁ → A₁ ▯ g₂ → A₂ …`` chain
  (deterministic alternative; semantically a single command).

Each command supports three complementary semantics, cross-validated by the
test suite:

- ``apply(state)`` — operational, one state at a time;
- ``succ_table(space)`` — an ``int64`` array mapping every encoded state to
  its successor (the vectorized form used by the dense model checker);
- ``wp(pred)`` — *symbolic* weakest precondition by substitution, following
  the paper's ``p next q ≡ ⟨∀c : c ∈ C : p ⇒ wp.c.q⟩``.

A fourth, *frontier* form backs the sparse engine
(:mod:`repro.semantics.sparse`): ``succ_of(space, idx)`` evaluates the
command only on a given ``int64`` index set — same semantics as
``succ_table(space)[idx]`` but with work and memory proportional to
``len(idx)``, never to ``space.size``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np

from repro.core.domains import EnumDomain
from repro.core.expressions import (
    BoolConst,
    Const,
    Expr,
    land,
    lnot,
    lor,
)
from repro.core.predicates import ExprPredicate, Predicate
from repro.core.state import State, StateSpace
from repro.core.variables import Var
from repro.errors import CommandError, DomainError

__all__ = ["Assignment", "Command", "Skip", "skip", "GuardedCommand", "AltCommand"]

#: States per chunk when a dense successor table is built through the
#: frontier kernel.  Spaces at most this large keep the whole-space
#: vectorized path (which shares the cached ``var_arrays`` decode across
#: commands); larger spaces stream ``succ_of`` over index ranges so peak
#: scratch per command stays bounded instead of several ``size``-length
#: temporaries per assignment.
SUCC_TABLE_CHUNK = 1 << 22


class Assignment:
    """A single target of a multi-assignment: ``var := expr``."""

    __slots__ = ("var", "expr")

    def __init__(self, var: Var, expr: Expr | int | bool) -> None:
        if not isinstance(var, Var):
            raise CommandError(f"assignment target must be a Var, got {var!r}")
        if not isinstance(expr, Expr):
            from repro.core.expressions import const

            expr = const(expr)
        target_typ = var.ref().typ
        if expr.typ is None:
            # A bare enum label: validate against the target's domain.
            if not isinstance(target_typ, EnumDomain):
                raise CommandError(
                    f"cannot assign bare label {expr} to non-enum {var.name}"
                )
            assert isinstance(expr, Const)
            if not target_typ.contains(expr.value):
                raise CommandError(
                    f"label {expr.value!r} is not in {target_typ!r}"
                )
        elif expr.typ != target_typ:
            raise CommandError(
                f"type mismatch in {var.name} := {expr}: target is "
                f"{target_typ}, expression is {expr.typ}"
            )
        self.var = var
        self.expr = expr

    def _key(self) -> tuple:
        return (self.var.name, self.expr._key())

    def __repr__(self) -> str:
        return f"{self.var.name} := {self.expr}"


class Command:
    """Abstract base class of commands."""

    __slots__ = ("name", "origins")

    def __init__(self, name: str, origins: frozenset[str] = frozenset()) -> None:
        if not name:
            raise CommandError("commands must be named")
        self.name = name
        self.origins = origins

    # -- semantics ----------------------------------------------------------

    def apply(self, state: State) -> State:
        """The unique successor of ``state`` under this command."""
        raise NotImplementedError

    def succ_table(self, space: StateSpace) -> np.ndarray:
        """Vectorized ``apply``: ``out[i]`` is the successor index of state
        ``i`` for every encoded state of ``space``.

        A dense-tier operation: refuses spaces above
        ``StateSpace.DENSE_MAX`` with a :class:`~repro.errors.
        CapacityError`.  The base implementation streams
        :meth:`succ_of` over :data:`SUCC_TABLE_CHUNK`-sized index ranges,
        so a table build never materializes more than one chunk of
        frontier scratch at a time.
        """
        space.require_dense(f"successor table of command {self.name}")
        out = np.empty(space.size, dtype=np.int64)
        for lo in range(0, space.size, SUCC_TABLE_CHUNK):
            hi = min(lo + SUCC_TABLE_CHUNK, space.size)
            out[lo:hi] = self.succ_of(space, np.arange(lo, hi, dtype=np.int64))
        return out

    def succ_of(self, space: StateSpace, idx: np.ndarray) -> np.ndarray:
        """Frontier successor kernel: successor indices of the states in
        ``idx`` only (``== succ_table(space)[idx]``, without the table).

        The base implementation decodes and applies one state at a time —
        correct for any command, but subclasses override it with the
        vectorized frontier evaluation the sparse engine relies on.
        """
        idx = np.asarray(idx, dtype=np.int64)
        out = np.empty(idx.shape[0], dtype=np.int64)
        for k in range(idx.shape[0]):
            out[k] = space.index_of(self.apply(space.state_at(int(idx[k]))))
        return out

    def enabled_at(self, space: StateSpace, idx: np.ndarray) -> np.ndarray:
        """Frontier form of :meth:`enabled_mask`: enabledness of the states
        in ``idx`` only (``== enabled_mask(space)[idx]``).

        The base implementation gathers from :meth:`enabled_mask` — total
        for any command, but it materializes the full-space mask;
        subclasses override it with frontier-sized evaluation so the
        sparse engine keeps its no-full-space-array guarantee.
        """
        return self.enabled_mask(space)[np.asarray(idx, dtype=np.int64)]

    def wp(self, pred: Predicate) -> Predicate:
        """Symbolic weakest precondition (requires an expression predicate)."""
        raise NotImplementedError

    def enabled_mask(self, space: StateSpace) -> np.ndarray:
        """States where the command is *enabled* (some guard holds).

        Commands are total (disabled = skip), so enabledness never affects
        the §2 weak-fairness semantics; it exists for the strong-fairness
        ablation (:mod:`repro.semantics.strong_fairness`), where "enabled
        infinitely often" is the fairness trigger.
        """
        raise NotImplementedError

    # -- static analysis -----------------------------------------------------

    def reads(self) -> frozenset[Var]:
        """Variables whose value can influence the effect."""
        raise NotImplementedError

    def writes(self) -> frozenset[Var]:
        """Variables this command may modify."""
        raise NotImplementedError

    def is_skip(self) -> bool:
        """True iff this is the identity command."""
        return False

    # -- identity -------------------------------------------------------------

    def body_key(self) -> tuple:
        """Structural identity of the command *body* (name excluded).

        Program composition is a **set union** of commands (paper §2); two
        structurally identical commands contributed by different components
        are one element of the union.  ``body_key`` is that set's equality.
        """
        raise NotImplementedError

    def renamed(self, name: str) -> "Command":
        """Copy with a different name."""
        raise NotImplementedError

    def with_origins(self, origins: frozenset[str]) -> "Command":
        """Copy with the given provenance set."""
        out = self.renamed(self.name)
        out.origins = origins
        return out

    def __repr__(self) -> str:
        return f"<Command {self.name}: {self.describe()}>"

    def describe(self) -> str:
        """One-line rendering of the body."""
        raise NotImplementedError


class Skip(Command):
    """The identity command; every program's ``C`` contains it."""

    __slots__ = ()

    def __init__(self, name: str = "skip", origins: frozenset[str] = frozenset()) -> None:
        super().__init__(name, origins)

    def apply(self, state: State) -> State:
        return state

    def succ_table(self, space: StateSpace) -> np.ndarray:
        space.require_dense("successor table of skip")
        return np.arange(space.size, dtype=np.int64)

    def succ_of(self, space: StateSpace, idx: np.ndarray) -> np.ndarray:
        return np.asarray(idx, dtype=np.int64).copy()

    def wp(self, pred: Predicate) -> Predicate:
        return pred

    def enabled_mask(self, space: StateSpace) -> np.ndarray:
        # skip is always "enabled" (and always a no-op).
        space.require_dense("enabledness mask of skip")
        return np.ones(space.size, dtype=bool)

    def enabled_at(self, space: StateSpace, idx: np.ndarray) -> np.ndarray:
        return np.ones(np.asarray(idx).shape[0], dtype=bool)

    def reads(self) -> frozenset[Var]:
        return frozenset()

    def writes(self) -> frozenset[Var]:
        return frozenset()

    def is_skip(self) -> bool:
        return True

    def body_key(self) -> tuple:
        return ("skip",)

    def renamed(self, name: str) -> "Skip":
        return Skip(name, self.origins)

    def describe(self) -> str:
        return "skip"


#: A shared default skip instance.
skip = Skip()


def _normalize_assignments(
    assignments: Sequence[Assignment | tuple[Var, Any]],
) -> tuple[Assignment, ...]:
    out: list[Assignment] = []
    for a in assignments:
        if isinstance(a, Assignment):
            out.append(a)
        else:
            var, expr = a
            out.append(Assignment(var, expr))
    seen: set[str] = set()
    for a in out:
        if a.var.name in seen:
            raise CommandError(f"duplicate assignment target {a.var.name}")
        seen.add(a.var.name)
    return tuple(out)


def _as_guard(guard: Expr | bool) -> Expr:
    if isinstance(guard, (bool, np.bool_)):
        return BoolConst(bool(guard))
    if not isinstance(guard, Expr) or guard.typ != "bool":
        raise CommandError(f"guard must be a boolean expression, got {guard!r}")
    return guard


def _subst_map(assignments: Sequence[Assignment]) -> dict[Var, Expr]:
    return {a.var: a.expr for a in assignments}


def _eval_updates(
    assignments: Sequence[Assignment], state: State, name: str
) -> dict[Var, Any]:
    updates: dict[Var, Any] = {}
    for a in assignments:
        value = a.expr.eval(state)
        if not a.var.domain.contains(value):
            raise DomainError(
                f"command {name}: {a.var.name} := {a.expr} evaluates to "
                f"{value!r}, outside {a.var.domain!r} — guard the command "
                "so it stays in range"
            )
        updates[a.var] = value
    return updates


def _vector_deltas(
    assignments: Sequence[Assignment],
    space: StateSpace,
    fire_mask: np.ndarray,
    name: str,
) -> np.ndarray:
    """Summed index deltas for the states where ``fire_mask`` is true."""
    env = space.var_arrays()
    delta = np.zeros(space.size, dtype=np.int64)
    for a in assignments:
        rhs = np.asarray(a.expr.eval_vec(env))
        if rhs.ndim == 0:
            rhs = np.full(space.size, rhs[()])
        current = env[a.var]
        effective = np.where(fire_mask, rhs, current)
        try:
            new_idx = a.var.domain.encode_array(effective)
        except DomainError as exc:
            raise DomainError(
                f"command {name}: assignment {a.var.name} := {a.expr} "
                f"leaves the domain on some guarded state: {exc}"
            ) from None
        delta += space.delta_for(a.var, new_idx)
    return delta


def _frontier_deltas(
    assignments: Sequence[Assignment],
    space: StateSpace,
    idx: np.ndarray,
    env: Mapping[Var, np.ndarray],
    fire_mask: np.ndarray,
    name: str,
) -> np.ndarray:
    """Frontier counterpart of :func:`_vector_deltas`: summed index deltas
    for the states ``idx`` where ``fire_mask`` is true.  ``env`` must be the
    frontier environment of ``idx`` (``space.frontier_env(idx)``)."""
    delta = np.zeros(idx.shape[0], dtype=np.int64)
    for a in assignments:
        rhs = np.asarray(a.expr.eval_vec(env))
        if rhs.ndim == 0:
            rhs = np.full(idx.shape[0], rhs[()])
        effective = np.where(fire_mask, rhs, env[a.var])
        try:
            new_idx = a.var.domain.encode_array(effective)
        except DomainError as exc:
            raise DomainError(
                f"command {name}: assignment {a.var.name} := {a.expr} "
                f"leaves the domain on some guarded state: {exc}"
            ) from None
        old_idx = space.indices_at(a.var, idx)
        delta += (new_idx - old_idx) * space.stride_of(a.var)
    return delta


def _frontier_guard(guard: Expr, env: Mapping[Var, np.ndarray], k: int) -> np.ndarray:
    """Evaluate a guard over a frontier environment as a length-``k`` mask."""
    g = np.asarray(guard.eval_vec(env), dtype=bool)
    if g.ndim == 0:
        return np.full(k, bool(g), dtype=bool)
    return g


class GuardedCommand(Command):
    """``g → x₁,…,xₖ := e₁,…,eₖ``; behaves as ``skip`` when ``g`` is false.

    Right-hand sides are evaluated simultaneously against the pre-state
    (UNITY multi-assignment semantics).
    """

    __slots__ = ("guard", "assignments")

    def __init__(
        self,
        name: str,
        guard: Expr | bool,
        assignments: Sequence[Assignment | tuple[Var, Any]],
        origins: frozenset[str] = frozenset(),
    ) -> None:
        super().__init__(name, origins)
        self.guard = _as_guard(guard)
        self.assignments = _normalize_assignments(assignments)
        if not self.assignments:
            raise CommandError(
                f"command {name}: use Skip for commands with no assignments"
            )

    def apply(self, state: State) -> State:
        if not self.guard.eval(state):
            return state
        return state.updated(_eval_updates(self.assignments, state, self.name))

    def succ_table(self, space: StateSpace) -> np.ndarray:
        if space.size > SUCC_TABLE_CHUNK:
            return super().succ_table(space)  # chunked via succ_of
        base = np.arange(space.size, dtype=np.int64)
        g = np.asarray(self.guard.eval_vec(space.var_arrays()), dtype=bool)
        if g.ndim == 0:
            g = np.full(space.size, bool(g), dtype=bool)
        delta = _vector_deltas(self.assignments, space, g, self.name)
        return base + delta

    def succ_of(self, space: StateSpace, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        env = space.frontier_env(idx)
        g = _frontier_guard(self.guard, env, idx.shape[0])
        if not g.any():
            return idx.copy()
        return idx + _frontier_deltas(self.assignments, space, idx, env, g, self.name)

    def wp(self, pred: Predicate) -> Predicate:
        p = pred.as_expr()
        sub = p.substitute(_subst_map(self.assignments))
        # wp(if g then A, P) = (g ∧ P[A]) ∨ (¬g ∧ P)
        return ExprPredicate(lor(land(self.guard, sub), land(lnot(self.guard), p)))

    def enabled_mask(self, space: StateSpace) -> np.ndarray:
        g = np.asarray(self.guard.eval_vec(space.var_arrays()), dtype=bool)
        if g.ndim == 0:
            return np.full(space.size, bool(g), dtype=bool)
        return g

    def enabled_at(self, space: StateSpace, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        return _frontier_guard(self.guard, space.frontier_env(idx), idx.shape[0])

    def reads(self) -> frozenset[Var]:
        out = set(self.guard.variables())
        for a in self.assignments:
            out |= a.expr.variables()
        return frozenset(out)

    def writes(self) -> frozenset[Var]:
        return frozenset(a.var for a in self.assignments)

    def body_key(self) -> tuple:
        return (
            "guarded",
            self.guard._key(),
            tuple(sorted(a._key() for a in self.assignments)),
        )

    def renamed(self, name: str) -> "GuardedCommand":
        return GuardedCommand(name, self.guard, self.assignments, self.origins)

    def describe(self) -> str:
        body = " || ".join(repr(a) for a in self.assignments)
        guard_txt = str(self.guard)
        if guard_txt == "true":
            return body
        return f"{guard_txt} -> {body}"


class AltCommand(Command):
    """First-match deterministic alternative
    ``if g₁ → A₁ elif g₂ → A₂ … else skip`` as a single command."""

    __slots__ = ("branches",)

    def __init__(
        self,
        name: str,
        branches: Sequence[tuple[Expr | bool, Sequence[Assignment | tuple[Var, Any]]]],
        origins: frozenset[str] = frozenset(),
    ) -> None:
        super().__init__(name, origins)
        if not branches:
            raise CommandError(f"command {name}: AltCommand needs branches")
        self.branches = tuple(
            (_as_guard(g), _normalize_assignments(assigns))
            for g, assigns in branches
        )

    def apply(self, state: State) -> State:
        for guard, assigns in self.branches:
            if guard.eval(state):
                return state.updated(_eval_updates(assigns, state, self.name))
        return state

    def succ_table(self, space: StateSpace) -> np.ndarray:
        if space.size > SUCC_TABLE_CHUNK:
            return super().succ_table(space)  # chunked via succ_of
        base = np.arange(space.size, dtype=np.int64)
        env = space.var_arrays()
        taken = np.zeros(space.size, dtype=bool)
        total_delta = np.zeros(space.size, dtype=np.int64)
        for guard, assigns in self.branches:
            g = np.asarray(guard.eval_vec(env), dtype=bool)
            if g.ndim == 0:
                g = np.full(space.size, bool(g), dtype=bool)
            fire = g & ~taken
            if fire.any():
                total_delta += _vector_deltas(assigns, space, fire, self.name)
            taken |= g
        return base + total_delta

    def succ_of(self, space: StateSpace, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        env = space.frontier_env(idx)
        k = idx.shape[0]
        taken = np.zeros(k, dtype=bool)
        total_delta = np.zeros(k, dtype=np.int64)
        for guard, assigns in self.branches:
            g = _frontier_guard(guard, env, k)
            fire = g & ~taken
            if fire.any():
                total_delta += _frontier_deltas(
                    assigns, space, idx, env, fire, self.name
                )
            taken |= g
        return idx + total_delta

    def wp(self, pred: Predicate) -> Predicate:
        p = pred.as_expr()
        disjuncts = []
        none_before: list[Expr] = []
        for guard, assigns in self.branches:
            sub = p.substitute(_subst_map(assigns))
            disjuncts.append(land(*none_before, guard, sub))
            none_before.append(lnot(guard))
        disjuncts.append(land(*none_before, p))  # no branch fires: skip
        return ExprPredicate(lor(*disjuncts))

    def enabled_mask(self, space: StateSpace) -> np.ndarray:
        env = space.var_arrays()
        out = np.zeros(space.size, dtype=bool)
        for guard, _ in self.branches:
            g = np.asarray(guard.eval_vec(env), dtype=bool)
            if g.ndim == 0:
                g = np.full(space.size, bool(g), dtype=bool)
            out |= g
        return out

    def enabled_at(self, space: StateSpace, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        env = space.frontier_env(idx)
        out = np.zeros(idx.shape[0], dtype=bool)
        for guard, _ in self.branches:
            out |= _frontier_guard(guard, env, idx.shape[0])
        return out

    def reads(self) -> frozenset[Var]:
        out: set[Var] = set()
        for guard, assigns in self.branches:
            out |= guard.variables()
            for a in assigns:
                out |= a.expr.variables()
        return frozenset(out)

    def writes(self) -> frozenset[Var]:
        out: set[Var] = set()
        for _, assigns in self.branches:
            out |= {a.var for a in assigns}
        return frozenset(out)

    def body_key(self) -> tuple:
        return (
            "alt",
            tuple(
                (g._key(), tuple(sorted(a._key() for a in assigns)))
                for g, assigns in self.branches
            ),
        )

    def renamed(self, name: str) -> "AltCommand":
        return AltCommand(name, self.branches, self.origins)

    def describe(self) -> str:
        parts = []
        for guard, assigns in self.branches:
            body = " || ".join(repr(a) for a in assigns)
            parts.append(f"{guard} -> {body}")
        return "  [] ".join(parts)
