"""Typed program variables with locality declarations.

The paper's composition side condition (§2) is *locality*: a variable
declared ``local`` in one component must not be written — in our stricter,
checkable reading, not even *named* — by any other component.  Shared
variables may be named by several components provided their domain
declarations agree.

A :class:`Var` is identified by its name; two declarations of the same name
are *compatible* only under the rules implemented in
:func:`repro.core.composition.compatibility_report`.
"""

from __future__ import annotations

import enum
import re
from typing import Any

from repro.core.domains import BoolDomain, FiniteDomain, IntRange
from repro.errors import StateError

__all__ = ["Locality", "Var"]

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*(\[[0-9]+(,[0-9]+)*\])?$")


class Locality(enum.Enum):
    """Locality of a variable declaration (paper §2, ``local`` declarations)."""

    LOCAL = "local"
    SHARED = "shared"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Var:
    """A typed variable declaration.

    Parameters
    ----------
    name:
        Identifier; indexed families use bracket suffixes (``"c[3]"``),
        produced conveniently by :meth:`indexed`.
    domain:
        The finite :class:`~repro.core.domains.FiniteDomain` of values.
    locality:
        ``Locality.LOCAL`` or ``Locality.SHARED`` (default ``SHARED``).

    ``Var`` equality is structural (name, domain, locality), so identical
    re-declarations of a shared variable in two components compare equal and
    merge silently under composition.
    """

    __slots__ = ("name", "domain", "locality")

    def __init__(
        self,
        name: str,
        domain: FiniteDomain,
        locality: Locality = Locality.SHARED,
    ) -> None:
        if not _NAME_RE.match(name):
            raise StateError(f"invalid variable name {name!r}")
        if not isinstance(domain, FiniteDomain):
            raise StateError(f"domain of {name!r} must be a FiniteDomain, got {domain!r}")
        if not isinstance(locality, Locality):
            raise StateError(f"locality of {name!r} must be a Locality, got {locality!r}")
        self.name = name
        self.domain = domain
        self.locality = locality

    # -- constructors -------------------------------------------------------

    @staticmethod
    def local(name: str, domain: FiniteDomain) -> "Var":
        """Declare a local variable."""
        return Var(name, domain, Locality.LOCAL)

    @staticmethod
    def shared(name: str, domain: FiniteDomain) -> "Var":
        """Declare a shared variable."""
        return Var(name, domain, Locality.SHARED)

    @staticmethod
    def boolean(name: str, locality: Locality = Locality.SHARED) -> "Var":
        """Declare a boolean variable."""
        return Var(name, BoolDomain(), locality)

    @staticmethod
    def int_range(
        name: str, lo: int, hi: int, locality: Locality = Locality.SHARED
    ) -> "Var":
        """Declare an integer variable over ``[lo, hi]``."""
        return Var(name, IntRange(lo, hi), locality)

    @staticmethod
    def indexed(
        base: str, index: int | tuple[int, ...], domain: FiniteDomain,
        locality: Locality = Locality.SHARED,
    ) -> "Var":
        """Declare a member of an indexed family, e.g. ``c[3]`` or ``e[1,2]``."""
        if isinstance(index, int):
            index = (index,)
        name = f"{base}[{','.join(str(i) for i in index)}]"
        return Var(name, domain, locality)

    # -- helpers ------------------------------------------------------------

    def is_local(self) -> bool:
        """True iff this declaration is ``local``."""
        return self.locality is Locality.LOCAL

    def check_value(self, value: Any) -> Any:
        """Validate ``value`` against the domain; return it unchanged."""
        return self.domain.check(value, context=f"variable {self.name}")

    def ref(self):
        """Return a :class:`~repro.core.expressions.VarRef` expression node."""
        from repro.core.expressions import VarRef

        return VarRef(self)

    # -- dunder ---------------------------------------------------------------

    def __repr__(self) -> str:
        return f"{self.locality.value} {self.name} : {self.domain!r}"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Var)
            and other.name == self.name
            and other.domain == self.domain
            and other.locality == self.locality
        )

    def __hash__(self) -> int:
        return hash((Var, self.name, self.domain, self.locality))
