"""Finite typed domains for program variables.

The programming model of the paper (§2) uses typed variables.  Because the
semantic engine enumerates state spaces, every domain here is finite and
comes with a dense value ↔ index codec:

- :class:`BoolDomain` — ``False``/``True`` encoded as ``0``/``1``;
- :class:`IntRange` — inclusive integer interval ``[lo, hi]``;
- :class:`EnumDomain` — a fixed tuple of distinct hashable labels.

Index codecs are the basis of the mixed-radix state encoding in
:mod:`repro.core.state`; the vectorized ``decode_array`` methods turn arrays
of indices into arrays of values and back without Python-level loops.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import Any

import numpy as np

from repro.errors import DomainError

__all__ = ["FiniteDomain", "BoolDomain", "IntRange", "EnumDomain"]


class FiniteDomain:
    """Abstract base class of finite domains.

    Subclasses must provide :attr:`size`, :meth:`value_at`,
    :meth:`index_of` and :meth:`decode_array`.  The default implementations
    of the remaining methods are expressed in terms of those four.
    """

    #: Number of values in the domain (set by subclasses).
    size: int

    # -- codec ------------------------------------------------------------

    def value_at(self, index: int) -> Any:
        """Return the value with dense index ``index`` (``0 ≤ index < size``)."""
        raise NotImplementedError

    def index_of(self, value: Any) -> int:
        """Return the dense index of ``value``; raise :class:`DomainError` if absent."""
        raise NotImplementedError

    def decode_array(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`value_at`: map an index array to a value array."""
        raise NotImplementedError

    def encode_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`index_of`; default loops, subclasses vectorize."""
        return np.array([self.index_of(v) for v in values], dtype=np.int64)

    # -- membership / iteration -------------------------------------------

    def contains(self, value: Any) -> bool:
        """True iff ``value`` is a member of the domain."""
        try:
            self.index_of(value)
        except DomainError:
            return False
        return True

    def values(self) -> Iterator[Any]:
        """Iterate over all values in index order."""
        return (self.value_at(i) for i in range(self.size))

    def check(self, value: Any, context: str = "") -> Any:
        """Return ``value`` if it is in the domain, else raise with context."""
        if not self.contains(value):
            where = f" in {context}" if context else ""
            raise DomainError(f"value {value!r} is not in domain {self}{where}")
        return value

    # -- dunder -----------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        return self.values()

    def __len__(self) -> int:
        return self.size

    def __contains__(self, value: Any) -> bool:
        return self.contains(value)


class BoolDomain(FiniteDomain):
    """The two-valued boolean domain; ``False ↦ 0``, ``True ↦ 1``.

    All instances are interchangeable; equality is by type.
    """

    size = 2

    def value_at(self, index: int) -> bool:
        if index == 0:
            return False
        if index == 1:
            return True
        raise DomainError(f"index {index} out of range for {self}")

    def index_of(self, value: Any) -> int:
        # Accept numpy bools transparently; reject ints (0/1 are *not*
        # booleans in this model — typing is deliberately strict so that
        # DSL elaboration catches category errors early).
        if isinstance(value, (bool, np.bool_)):
            return int(bool(value))
        raise DomainError(f"value {value!r} is not a boolean")

    def decode_array(self, indices: np.ndarray) -> np.ndarray:
        return indices.astype(bool)

    def encode_array(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=bool).astype(np.int64)

    def __repr__(self) -> str:
        return "bool"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BoolDomain)

    def __hash__(self) -> int:
        return hash(BoolDomain)


class IntRange(FiniteDomain):
    """Inclusive integer interval ``[lo, hi]``.

    >>> d = IntRange(2, 5)
    >>> list(d)
    [2, 3, 4, 5]
    >>> d.index_of(4)
    2
    """

    __slots__ = ("lo", "hi", "size")

    def __init__(self, lo: int, hi: int) -> None:
        if not isinstance(lo, int) or not isinstance(hi, int):
            raise DomainError(f"IntRange bounds must be ints, got {lo!r}, {hi!r}")
        if hi < lo:
            raise DomainError(f"empty IntRange [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi
        self.size = hi - lo + 1

    def value_at(self, index: int) -> int:
        if 0 <= index < self.size:
            return self.lo + index
        raise DomainError(f"index {index} out of range for {self}")

    def index_of(self, value: Any) -> int:
        if isinstance(value, (bool, np.bool_)):
            raise DomainError(f"value {value!r} is not an integer")
        if isinstance(value, (int, np.integer)):
            v = int(value)
            if self.lo <= v <= self.hi:
                return v - self.lo
        raise DomainError(f"value {value!r} is not in {self}")

    def decode_array(self, indices: np.ndarray) -> np.ndarray:
        return indices.astype(np.int64) + self.lo

    def encode_array(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=np.int64)
        if ((arr < self.lo) | (arr > self.hi)).any():
            bad = arr[(arr < self.lo) | (arr > self.hi)][0]
            raise DomainError(f"value {bad} is not in {self}")
        return arr - self.lo

    def __repr__(self) -> str:
        return f"int[{self.lo}..{self.hi}]"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IntRange)
            and other.lo == self.lo
            and other.hi == self.hi
        )

    def __hash__(self) -> int:
        return hash((IntRange, self.lo, self.hi))


class EnumDomain(FiniteDomain):
    """A finite set of distinct hashable labels, in a fixed order.

    >>> d = EnumDomain("phase", ("idle", "want", "hold"))
    >>> d.index_of("want")
    1
    """

    __slots__ = ("name", "labels", "size", "_index")

    def __init__(self, name: str, labels: Sequence[Any]) -> None:
        labels = tuple(labels)
        if not labels:
            raise DomainError(f"enum {name!r} must have at least one label")
        self.name = name
        self.labels = labels
        self.size = len(labels)
        self._index = {lab: i for i, lab in enumerate(labels)}
        if len(self._index) != len(labels):
            raise DomainError(f"enum {name!r} has duplicate labels: {labels!r}")

    def value_at(self, index: int) -> Any:
        if 0 <= index < self.size:
            return self.labels[index]
        raise DomainError(f"index {index} out of range for {self}")

    def index_of(self, value: Any) -> int:
        try:
            return self._index[value]
        except (KeyError, TypeError):
            raise DomainError(f"value {value!r} is not a label of {self}") from None

    def decode_array(self, indices: np.ndarray) -> np.ndarray:
        table = np.array(self.labels, dtype=object)
        return table[indices]

    def __repr__(self) -> str:
        return f"enum:{self.name}{{{','.join(map(str, self.labels))}}}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, EnumDomain)
            and other.name == self.name
            and other.labels == self.labels
        )

    def __hash__(self) -> int:
        return hash((EnumDomain, self.name, self.labels))
