"""Expression language over finite-domain program variables.

Expressions serve four masters:

1. **Commands** — right-hand sides of assignments and guards;
2. **wp** — weakest preconditions are computed *symbolically* by
   substitution (:meth:`Expr.substitute`), exactly as in UNITY;
3. **Model checking** — :meth:`Expr.eval_vec` evaluates an expression over
   the *entire* state space at once as NumPy arrays (one array element per
   encoded state), which keeps the semantic engine free of per-state Python
   loops;
4. **Pretty-printing** — proofs and the DSL print expressions back in a
   UNITY-like ASCII syntax (``/\\``, ``\\/``, ``~``, ``=>``).

Typing is eager and strict: every node carries a type (``'int'``, ``'bool'``
or an :class:`~repro.core.domains.EnumDomain`) computed at construction, so
malformed trees fail fast rather than at evaluation time.

Operator sugar: ``+ - * // %`` build arithmetic nodes; ``< <= > >= == !=``
build comparisons; ``& | ~`` build boolean connectives.  Because ``==`` is
overloaded, :class:`Expr` objects are deliberately **unhashable** and raise
on ``bool()`` — use :meth:`Expr.same_as` for structural comparison.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any, Callable, Union

import numpy as np

from repro.core.domains import BoolDomain, EnumDomain, IntRange
from repro.core.variables import Var
from repro.errors import EvaluationError, ExpressionError

__all__ = [
    "Expr", "Const", "IntConst", "BoolConst", "VarRef",
    "Add", "Sub", "Mul", "FloorDiv", "Mod", "Neg", "MinE", "MaxE",
    "Lt", "Le", "Gt", "Ge", "EqE", "NeE",
    "And", "Or", "Not", "Implies", "Iff", "Ite",
    "const", "var_ref", "esum", "land", "lor", "lnot", "implies", "iff",
    "ite", "minimum", "maximum",
]

#: Type tags: 'int', 'bool', an EnumDomain, or None (a bare enum label
#: constant whose domain is fixed by the context it is compared against).
TypeTag = Union[str, EnumDomain, None]

ExprLike = Union["Expr", int, bool]


def _type_name(t: TypeTag) -> str:
    if t is None:
        return "literal"
    if isinstance(t, EnumDomain):
        return repr(t)
    return t


def _as_expr(x: ExprLike) -> "Expr":
    """Coerce Python ints/bools to constants (bools first: bool ⊂ int)."""
    if isinstance(x, Expr):
        return x
    if isinstance(x, (bool, np.bool_)):
        return BoolConst(bool(x))
    if isinstance(x, (int, np.integer)):
        return IntConst(int(x))
    raise ExpressionError(f"cannot treat {x!r} as an expression")


class Expr:
    """Abstract base class of expression nodes.

    Subclasses set :attr:`typ` at construction and implement
    :meth:`eval`, :meth:`eval_vec`, :meth:`substitute`, :meth:`children`
    and :meth:`_fmt`.
    """

    __slots__ = ("typ",)

    typ: TypeTag

    # -- evaluation ------------------------------------------------------

    def eval(self, env: Mapping[Var, Any]) -> Any:
        """Evaluate against a scalar environment mapping ``Var → value``."""
        raise NotImplementedError

    def eval_vec(self, env: Mapping[Var, np.ndarray]) -> Any:
        """Evaluate against a vector environment mapping ``Var → ndarray``.

        Returns an ndarray (or a scalar for constant subtrees; NumPy
        broadcasting makes the two interchangeable downstream).
        """
        raise NotImplementedError

    # -- structure -------------------------------------------------------

    def children(self) -> tuple["Expr", ...]:
        """Immediate sub-expressions."""
        raise NotImplementedError

    def substitute(self, mapping: Mapping[Var, "Expr"]) -> "Expr":
        """Return a copy with each ``VarRef(v)`` for ``v`` in ``mapping``
        replaced by ``mapping[v]`` (simultaneous substitution; the basis
        of symbolic ``wp``)."""
        raise NotImplementedError

    def variables(self) -> frozenset[Var]:
        """All variables named anywhere in the tree."""
        out: set[Var] = set()
        stack: list[Expr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, VarRef):
                out.add(node.var)
            else:
                stack.extend(node.children())
        return frozenset(out)

    def count_nodes(self) -> int:
        """Total number of nodes in the tree (bench/diagnostic metric)."""
        n = 0
        stack: list[Expr] = [self]
        while stack:
            node = stack.pop()
            n += 1
            stack.extend(node.children())
        return n

    def same_as(self, other: "Expr") -> bool:
        """Structural equality (``==`` is overloaded to build `EqE`)."""
        return isinstance(other, Expr) and self._key() == other._key()

    def _key(self) -> tuple:
        raise NotImplementedError

    # -- printing ----------------------------------------------------------

    #: Precedence for parenthesization; higher binds tighter.
    _prec = 100

    def _fmt(self) -> str:
        raise NotImplementedError

    def _fmt_child(self, child: "Expr", *, strict: bool = False) -> str:
        text = child._fmt()
        if child._prec < self._prec or (strict and child._prec == self._prec):
            return f"({text})"
        return text

    def __str__(self) -> str:
        return self._fmt()

    def __repr__(self) -> str:
        return f"<Expr {self._fmt()}>"

    # -- operator sugar ----------------------------------------------------

    def __add__(self, other: ExprLike) -> "Expr":
        return Add(self, _as_expr(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return Add(_as_expr(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return Sub(self, _as_expr(other))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return Sub(_as_expr(other), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return Mul(self, _as_expr(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return Mul(_as_expr(other), self)

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return FloorDiv(self, _as_expr(other))

    def __mod__(self, other: ExprLike) -> "Expr":
        return Mod(self, _as_expr(other))

    def __neg__(self) -> "Expr":
        return Neg(self)

    def __lt__(self, other: ExprLike) -> "Expr":
        return Lt(self, _as_expr(other))

    def __le__(self, other: ExprLike) -> "Expr":
        return Le(self, _as_expr(other))

    def __gt__(self, other: ExprLike) -> "Expr":
        return Gt(self, _as_expr(other))

    def __ge__(self, other: ExprLike) -> "Expr":
        return Ge(self, _as_expr(other))

    def __eq__(self, other: object) -> "Expr":  # type: ignore[override]
        if not isinstance(other, (Expr, int, bool, np.integer, np.bool_, str)):
            return NotImplemented  # type: ignore[return-value]
        return EqE(self, _as_label_or_expr(other, self.typ))

    def __ne__(self, other: object) -> "Expr":  # type: ignore[override]
        if not isinstance(other, (Expr, int, bool, np.integer, np.bool_, str)):
            return NotImplemented  # type: ignore[return-value]
        return NeE(self, _as_label_or_expr(other, self.typ))

    def __and__(self, other: ExprLike) -> "Expr":
        return land(self, _as_expr(other))

    def __rand__(self, other: ExprLike) -> "Expr":
        return land(_as_expr(other), self)

    def __or__(self, other: ExprLike) -> "Expr":
        return lor(self, _as_expr(other))

    def __ror__(self, other: ExprLike) -> "Expr":
        return lor(_as_expr(other), self)

    def __invert__(self) -> "Expr":
        return Not(self)

    __hash__ = None  # type: ignore[assignment]

    def __bool__(self) -> bool:
        raise ExpressionError(
            "truth value of an Expr is ambiguous; use .same_as() for "
            "structural comparison or evaluate against a state"
        )


def _as_label_or_expr(x: object, context_typ: TypeTag) -> "Expr":
    """Coerce ``x`` for (dis)equality against an expression of type
    ``context_typ``; bare strings become enum-label constants."""
    if isinstance(x, Expr):
        return x
    if isinstance(x, str) or (
        context_typ is not None
        and isinstance(context_typ, EnumDomain)
        and not isinstance(x, (bool, np.bool_, int, np.integer))
    ):
        return Const(x, None)
    return _as_expr(x)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Atoms
# ---------------------------------------------------------------------------


class Const(Expr):
    """A literal constant.  ``typ`` is ``'int'``, ``'bool'`` or ``None``
    (a bare enum label, resolved by the comparison it appears in)."""

    __slots__ = ("value",)

    def __init__(self, value: Any, typ: TypeTag) -> None:
        self.value = value
        self.typ = typ

    def eval(self, env: Mapping[Var, Any]) -> Any:
        return self.value

    def eval_vec(self, env: Mapping[Var, np.ndarray]) -> Any:
        return self.value

    def children(self) -> tuple[Expr, ...]:
        return ()

    def substitute(self, mapping: Mapping[Var, Expr]) -> Expr:
        return self

    def _key(self) -> tuple:
        return (Const, self.typ if not isinstance(self.typ, EnumDomain) else self.typ.name, self.value)

    def _fmt(self) -> str:
        if self.typ == "bool":
            return "true" if self.value else "false"
        return str(self.value)


def IntConst(value: int) -> Const:
    """Construct an integer constant node."""
    return Const(int(value), "int")


def BoolConst(value: bool) -> Const:
    """Construct a boolean constant node."""
    return Const(bool(value), "bool")


#: The boolean constants, shared for convenience.
TRUE_EXPR = BoolConst(True)
FALSE_EXPR = BoolConst(False)


class VarRef(Expr):
    """Reference to a program variable."""

    __slots__ = ("var",)

    def __init__(self, var: Var) -> None:
        if not isinstance(var, Var):
            raise ExpressionError(f"VarRef expects a Var, got {var!r}")
        self.var = var
        dom = var.domain
        if isinstance(dom, EnumDomain):
            self.typ = dom
        elif isinstance(dom, BoolDomain):
            self.typ = "bool"
        elif isinstance(dom, IntRange):
            self.typ = "int"
        else:
            raise ExpressionError(
                f"variable {var.name} has unsupported domain {dom!r}"
            )

    def eval(self, env: Mapping[Var, Any]) -> Any:
        try:
            return env[self.var]
        except KeyError:
            raise EvaluationError(
                f"variable {self.var.name} is not bound in the environment"
            ) from None

    def eval_vec(self, env: Mapping[Var, np.ndarray]) -> Any:
        try:
            return env[self.var]
        except KeyError:
            raise EvaluationError(
                f"variable {self.var.name} is not bound in the environment"
            ) from None

    def children(self) -> tuple[Expr, ...]:
        return ()

    def substitute(self, mapping: Mapping[Var, Expr]) -> Expr:
        repl = mapping.get(self.var)
        if repl is None:
            return self
        if repl.typ is not None and repl.typ != self.typ:
            raise ExpressionError(
                f"substituting {self.var.name}:{_type_name(self.typ)} with "
                f"expression of type {_type_name(repl.typ)}"
            )
        return repl

    def _key(self) -> tuple:
        return (VarRef, self.var.name)

    def _fmt(self) -> str:
        return self.var.name


def var_ref(var: Var) -> VarRef:
    """Construct a variable reference node."""
    return VarRef(var)


def const(value: Any) -> Const:
    """Construct a constant node, inferring ``int``/``bool``/label type."""
    if isinstance(value, (bool, np.bool_)):
        return BoolConst(bool(value))
    if isinstance(value, (int, np.integer)):
        return IntConst(int(value))
    return Const(value, None)


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------


class _BinArith(Expr):
    """Base of binary integer arithmetic nodes."""

    __slots__ = ("left", "right")

    _symbol = "?"
    _scalar: Callable[[int, int], int]
    _vector: Callable[..., np.ndarray]

    def __init__(self, left: ExprLike, right: ExprLike) -> None:
        self.left = _as_expr(left)
        self.right = _as_expr(right)
        for side, name in ((self.left, "left"), (self.right, "right")):
            if side.typ != "int":
                raise ExpressionError(
                    f"{self._symbol}: {name} operand must be int, got "
                    f"{_type_name(side.typ)} in {side}"
                )
        self.typ = "int"

    def eval(self, env: Mapping[Var, Any]) -> int:
        return type(self)._scalar(self.left.eval(env), self.right.eval(env))

    def eval_vec(self, env: Mapping[Var, np.ndarray]) -> Any:
        return type(self)._vector(self.left.eval_vec(env), self.right.eval_vec(env))

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def substitute(self, mapping: Mapping[Var, Expr]) -> Expr:
        return type(self)(self.left.substitute(mapping), self.right.substitute(mapping))

    def _key(self) -> tuple:
        return (type(self), self.left._key(), self.right._key())

    def _fmt(self) -> str:
        return (
            f"{self._fmt_child(self.left)} {self._symbol} "
            f"{self._fmt_child(self.right, strict=True)}"
        )


class Add(_BinArith):
    """Integer addition."""
    __slots__ = ()
    _symbol, _prec = "+", 70
    _scalar = staticmethod(lambda a, b: a + b)
    _vector = staticmethod(np.add)


class Sub(_BinArith):
    """Integer subtraction."""
    __slots__ = ()
    _symbol, _prec = "-", 70
    _scalar = staticmethod(lambda a, b: a - b)
    _vector = staticmethod(np.subtract)


class Mul(_BinArith):
    """Integer multiplication."""
    __slots__ = ()
    _symbol, _prec = "*", 80
    _scalar = staticmethod(lambda a, b: a * b)
    _vector = staticmethod(np.multiply)


def _checked_floordiv(a: int, b: int) -> int:
    if b == 0:
        raise EvaluationError("division by zero")
    return a // b


def _checked_floordiv_vec(a: Any, b: Any) -> np.ndarray:
    if np.any(np.asarray(b) == 0):
        raise EvaluationError("division by zero")
    return np.floor_divide(a, b)


def _checked_mod(a: int, b: int) -> int:
    if b == 0:
        raise EvaluationError("modulo by zero")
    return a % b


def _checked_mod_vec(a: Any, b: Any) -> np.ndarray:
    if np.any(np.asarray(b) == 0):
        raise EvaluationError("modulo by zero")
    return np.mod(a, b)


class FloorDiv(_BinArith):
    """Integer floor division; raises :class:`EvaluationError` on zero divisor."""
    __slots__ = ()
    _symbol, _prec = "//", 80
    _scalar = staticmethod(_checked_floordiv)
    _vector = staticmethod(_checked_floordiv_vec)


class Mod(_BinArith):
    """Integer modulo (Python semantics); raises on zero divisor."""
    __slots__ = ()
    _symbol, _prec = "%", 80
    _scalar = staticmethod(_checked_mod)
    _vector = staticmethod(_checked_mod_vec)


class MinE(_BinArith):
    """Binary minimum."""
    __slots__ = ()
    _symbol, _prec = "min", 85
    _scalar = staticmethod(min)
    _vector = staticmethod(np.minimum)

    def _fmt(self) -> str:
        return f"min({self.left}, {self.right})"


class MaxE(_BinArith):
    """Binary maximum."""
    __slots__ = ()
    _symbol, _prec = "max", 85
    _scalar = staticmethod(max)
    _vector = staticmethod(np.maximum)

    def _fmt(self) -> str:
        return f"max({self.left}, {self.right})"


class Neg(Expr):
    """Unary integer negation."""

    __slots__ = ("operand",)
    _prec = 90

    def __init__(self, operand: ExprLike) -> None:
        self.operand = _as_expr(operand)
        if self.operand.typ != "int":
            raise ExpressionError(
                f"-: operand must be int, got {_type_name(self.operand.typ)}"
            )
        self.typ = "int"

    def eval(self, env: Mapping[Var, Any]) -> int:
        return -self.operand.eval(env)

    def eval_vec(self, env: Mapping[Var, np.ndarray]) -> Any:
        return np.negative(self.operand.eval_vec(env))

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def substitute(self, mapping: Mapping[Var, Expr]) -> Expr:
        return Neg(self.operand.substitute(mapping))

    def _key(self) -> tuple:
        return (Neg, self.operand._key())

    def _fmt(self) -> str:
        return f"-{self._fmt_child(self.operand)}"


# ---------------------------------------------------------------------------
# Comparisons
# ---------------------------------------------------------------------------


class _Cmp(Expr):
    """Base of integer ordering comparisons."""

    __slots__ = ("left", "right")
    _prec = 60
    _symbol = "?"
    _scalar: Callable[[int, int], bool]
    _vector: Callable[..., np.ndarray]

    def __init__(self, left: ExprLike, right: ExprLike) -> None:
        self.left = _as_expr(left)
        self.right = _as_expr(right)
        for side, name in ((self.left, "left"), (self.right, "right")):
            if side.typ != "int":
                raise ExpressionError(
                    f"{self._symbol}: {name} operand must be int, got "
                    f"{_type_name(side.typ)} in {side}"
                )
        self.typ = "bool"

    def eval(self, env: Mapping[Var, Any]) -> bool:
        return type(self)._scalar(self.left.eval(env), self.right.eval(env))

    def eval_vec(self, env: Mapping[Var, np.ndarray]) -> Any:
        return type(self)._vector(self.left.eval_vec(env), self.right.eval_vec(env))

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def substitute(self, mapping: Mapping[Var, Expr]) -> Expr:
        return type(self)(self.left.substitute(mapping), self.right.substitute(mapping))

    def _key(self) -> tuple:
        return (type(self), self.left._key(), self.right._key())

    def _fmt(self) -> str:
        return f"{self._fmt_child(self.left)} {self._symbol} {self._fmt_child(self.right)}"


class Lt(_Cmp):
    """Strictly less-than."""
    __slots__ = ()
    _symbol = "<"
    _scalar = staticmethod(lambda a, b: a < b)
    _vector = staticmethod(np.less)


class Le(_Cmp):
    """Less-than-or-equal."""
    __slots__ = ()
    _symbol = "<="
    _scalar = staticmethod(lambda a, b: a <= b)
    _vector = staticmethod(np.less_equal)


class Gt(_Cmp):
    """Strictly greater-than."""
    __slots__ = ()
    _symbol = ">"
    _scalar = staticmethod(lambda a, b: a > b)
    _vector = staticmethod(np.greater)


class Ge(_Cmp):
    """Greater-than-or-equal."""
    __slots__ = ()
    _symbol = ">="
    _scalar = staticmethod(lambda a, b: a >= b)
    _vector = staticmethod(np.greater_equal)


def _check_eq_types(left: Expr, right: Expr, symbol: str) -> tuple[Expr, Expr]:
    """Validate and normalize operand types of (dis)equality.

    Bare labels (``typ is None``) are resolved against the other side's
    enum domain; mixed int/bool comparisons are rejected.
    """
    lt, rt = left.typ, right.typ
    if lt is None and rt is None:
        raise ExpressionError(f"{symbol}: cannot compare two bare labels")
    if lt is None or rt is None:
        dom = rt if lt is None else lt
        if not isinstance(dom, EnumDomain):
            raise ExpressionError(
                f"{symbol}: bare label {left if lt is None else right} "
                f"compared against non-enum type {_type_name(dom)}"
            )
        label_node = left if lt is None else right
        assert isinstance(label_node, Const)
        if not dom.contains(label_node.value):
            raise ExpressionError(
                f"{symbol}: label {label_node.value!r} is not in {dom!r}"
            )
        return left, right
    if lt != rt:
        raise ExpressionError(
            f"{symbol}: type mismatch {_type_name(lt)} vs {_type_name(rt)}"
        )
    return left, right


class _EqBase(Expr):
    """Base of equality / disequality nodes."""

    __slots__ = ("left", "right")
    _prec = 60
    _symbol = "?"
    _negate = False

    def __init__(self, left: ExprLike, right: ExprLike) -> None:
        left = _as_label_or_expr(left, None) if not isinstance(left, Expr) else left
        right = _as_label_or_expr(right, left.typ) if not isinstance(right, Expr) else right
        self.left, self.right = _check_eq_types(left, right, self._symbol)
        self.typ = "bool"

    def eval(self, env: Mapping[Var, Any]) -> bool:
        result = self.left.eval(env) == self.right.eval(env)
        return (not result) if self._negate else bool(result)

    def eval_vec(self, env: Mapping[Var, np.ndarray]) -> Any:
        a = self.left.eval_vec(env)
        b = self.right.eval_vec(env)
        out = np.equal(a, b)
        return np.logical_not(out) if self._negate else out

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def substitute(self, mapping: Mapping[Var, Expr]) -> Expr:
        return type(self)(self.left.substitute(mapping), self.right.substitute(mapping))

    def _key(self) -> tuple:
        return (type(self), self.left._key(), self.right._key())

    def _fmt(self) -> str:
        return f"{self._fmt_child(self.left)} {self._symbol} {self._fmt_child(self.right)}"


class EqE(_EqBase):
    """Equality (any matching types)."""
    __slots__ = ()
    _symbol = "="
    _negate = False


class NeE(_EqBase):
    """Disequality (any matching types)."""
    __slots__ = ()
    _symbol = "!="
    _negate = True


# ---------------------------------------------------------------------------
# Boolean connectives
# ---------------------------------------------------------------------------


def _require_bool(args: Iterable[Expr], symbol: str) -> tuple[Expr, ...]:
    out = tuple(args)
    for a in out:
        if a.typ != "bool":
            raise ExpressionError(
                f"{symbol}: operand must be bool, got {_type_name(a.typ)} in {a}"
            )
    return out


class _NaryBool(Expr):
    """Base of flattened n-ary conjunction/disjunction."""

    __slots__ = ("operands",)
    _symbol = "?"
    _unit = True  # identity element

    def __init__(self, *operands: ExprLike) -> None:
        flat: list[Expr] = []
        for op in operands:
            e = _as_expr(op)
            if isinstance(e, type(self)):
                flat.extend(e.operands)
            else:
                flat.append(e)
        self.operands = _require_bool(flat, self._symbol)
        if not self.operands:
            raise ExpressionError(f"{self._symbol}: needs at least one operand")
        self.typ = "bool"

    def children(self) -> tuple[Expr, ...]:
        return self.operands

    def substitute(self, mapping: Mapping[Var, Expr]) -> Expr:
        return type(self)(*(op.substitute(mapping) for op in self.operands))

    def _key(self) -> tuple:
        return (type(self),) + tuple(op._key() for op in self.operands)

    def _fmt(self) -> str:
        return f" {self._symbol} ".join(
            self._fmt_child(op, strict=True) for op in self.operands
        )


class And(_NaryBool):
    """n-ary conjunction (short-circuit scalar evaluation)."""

    __slots__ = ()
    _symbol, _prec = "/\\", 40

    def eval(self, env: Mapping[Var, Any]) -> bool:
        return all(op.eval(env) for op in self.operands)

    def eval_vec(self, env: Mapping[Var, np.ndarray]) -> Any:
        out = self.operands[0].eval_vec(env)
        for op in self.operands[1:]:
            out = np.logical_and(out, op.eval_vec(env))
        return out


class Or(_NaryBool):
    """n-ary disjunction (short-circuit scalar evaluation)."""

    __slots__ = ()
    _symbol, _prec = "\\/", 30

    def eval(self, env: Mapping[Var, Any]) -> bool:
        return any(op.eval(env) for op in self.operands)

    def eval_vec(self, env: Mapping[Var, np.ndarray]) -> Any:
        out = self.operands[0].eval_vec(env)
        for op in self.operands[1:]:
            out = np.logical_or(out, op.eval_vec(env))
        return out


class Not(Expr):
    """Boolean negation."""

    __slots__ = ("operand",)
    _prec = 90

    def __init__(self, operand: ExprLike) -> None:
        self.operand = _require_bool([_as_expr(operand)], "~")[0]
        self.typ = "bool"

    def eval(self, env: Mapping[Var, Any]) -> bool:
        return not self.operand.eval(env)

    def eval_vec(self, env: Mapping[Var, np.ndarray]) -> Any:
        return np.logical_not(self.operand.eval_vec(env))

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def substitute(self, mapping: Mapping[Var, Expr]) -> Expr:
        return Not(self.operand.substitute(mapping))

    def _key(self) -> tuple:
        return (Not, self.operand._key())

    def _fmt(self) -> str:
        return f"~{self._fmt_child(self.operand)}"


class Implies(Expr):
    """Boolean implication ``a => b``."""

    __slots__ = ("left", "right")
    _prec = 20

    def __init__(self, left: ExprLike, right: ExprLike) -> None:
        self.left, self.right = _require_bool(
            [_as_expr(left), _as_expr(right)], "=>"
        )
        self.typ = "bool"

    def eval(self, env: Mapping[Var, Any]) -> bool:
        return (not self.left.eval(env)) or bool(self.right.eval(env))

    def eval_vec(self, env: Mapping[Var, np.ndarray]) -> Any:
        return np.logical_or(
            np.logical_not(self.left.eval_vec(env)), self.right.eval_vec(env)
        )

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def substitute(self, mapping: Mapping[Var, Expr]) -> Expr:
        return Implies(self.left.substitute(mapping), self.right.substitute(mapping))

    def _key(self) -> tuple:
        return (Implies, self.left._key(), self.right._key())

    def _fmt(self) -> str:
        # => is right-associative: parenthesize a left child of equal prec.
        return f"{self._fmt_child(self.left, strict=True)} => {self._fmt_child(self.right)}"


class Iff(Expr):
    """Boolean equivalence ``a <=> b``."""

    __slots__ = ("left", "right")
    _prec = 10

    def __init__(self, left: ExprLike, right: ExprLike) -> None:
        self.left, self.right = _require_bool(
            [_as_expr(left), _as_expr(right)], "<=>"
        )
        self.typ = "bool"

    def eval(self, env: Mapping[Var, Any]) -> bool:
        return bool(self.left.eval(env)) == bool(self.right.eval(env))

    def eval_vec(self, env: Mapping[Var, np.ndarray]) -> Any:
        return np.equal(self.left.eval_vec(env), self.right.eval_vec(env))

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def substitute(self, mapping: Mapping[Var, Expr]) -> Expr:
        return Iff(self.left.substitute(mapping), self.right.substitute(mapping))

    def _key(self) -> tuple:
        return (Iff, self.left._key(), self.right._key())

    def _fmt(self) -> str:
        return f"{self._fmt_child(self.left, strict=True)} <=> {self._fmt_child(self.right)}"


class Ite(Expr):
    """Conditional expression ``if cond then a else b`` (same-typed arms)."""

    __slots__ = ("cond", "then", "orelse")
    _prec = 5

    def __init__(self, cond: ExprLike, then: ExprLike, orelse: ExprLike) -> None:
        self.cond = _require_bool([_as_expr(cond)], "ite")[0]
        then_e = _as_label_or_expr(then, None) if not isinstance(then, Expr) else then
        else_e = (
            _as_label_or_expr(orelse, then_e.typ)
            if not isinstance(orelse, Expr)
            else orelse
        )
        arm_typ = then_e.typ if then_e.typ is not None else else_e.typ
        if arm_typ is None:
            raise ExpressionError("ite: cannot type bare-label arms")
        for arm in (then_e, else_e):
            if arm.typ is None:
                # A bare label arm: validate it against the enum domain of
                # the other arm (mirrors equality-label resolution).
                if not isinstance(arm_typ, EnumDomain):
                    raise ExpressionError(
                        f"ite: bare label {arm} in non-enum conditional"
                    )
                assert isinstance(arm, Const)
                if not arm_typ.contains(arm.value):
                    raise ExpressionError(
                        f"ite: label {arm.value!r} is not in {arm_typ!r}"
                    )
            elif arm.typ != arm_typ:
                raise ExpressionError(
                    f"ite: arm types differ: {_type_name(then_e.typ)} vs "
                    f"{_type_name(else_e.typ)}"
                )
        self.then = then_e
        self.orelse = else_e
        self.typ = arm_typ

    def eval(self, env: Mapping[Var, Any]) -> Any:
        return self.then.eval(env) if self.cond.eval(env) else self.orelse.eval(env)

    def eval_vec(self, env: Mapping[Var, np.ndarray]) -> Any:
        return np.where(
            self.cond.eval_vec(env),
            self.then.eval_vec(env),
            self.orelse.eval_vec(env),
        )

    def children(self) -> tuple[Expr, ...]:
        return (self.cond, self.then, self.orelse)

    def substitute(self, mapping: Mapping[Var, Expr]) -> Expr:
        return Ite(
            self.cond.substitute(mapping),
            self.then.substitute(mapping),
            self.orelse.substitute(mapping),
        )

    def _key(self) -> tuple:
        return (Ite, self.cond._key(), self.then._key(), self.orelse._key())

    def _fmt(self) -> str:
        return f"(if {self.cond} then {self.then} else {self.orelse})"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def esum(exprs: Sequence[ExprLike], *, zero_if_empty: bool = True) -> Expr:
    """Sum of a sequence of integer expressions (``0`` if empty).

    Used pervasively for the paper's ``C = Σ_i c_i`` style predicates.
    """
    items = [_as_expr(e) for e in exprs]
    if not items:
        if zero_if_empty:
            return IntConst(0)
        raise ExpressionError("esum of empty sequence")
    out = items[0]
    for e in items[1:]:
        out = Add(out, e)
    return out


def land(*exprs: ExprLike) -> Expr:
    """Conjunction; returns ``true`` for no arguments, unwraps singletons."""
    if not exprs:
        return BoolConst(True)
    if len(exprs) == 1:
        return _as_expr(exprs[0])
    return And(*exprs)


def lor(*exprs: ExprLike) -> Expr:
    """Disjunction; returns ``false`` for no arguments, unwraps singletons."""
    if not exprs:
        return BoolConst(False)
    if len(exprs) == 1:
        return _as_expr(exprs[0])
    return Or(*exprs)


def lnot(expr: ExprLike) -> Expr:
    """Negation."""
    return Not(expr)


def implies(left: ExprLike, right: ExprLike) -> Expr:
    """Implication."""
    return Implies(left, right)


def iff(left: ExprLike, right: ExprLike) -> Expr:
    """Equivalence."""
    return Iff(left, right)


def ite(cond: ExprLike, then: ExprLike, orelse: ExprLike) -> Expr:
    """Conditional expression."""
    return Ite(cond, then, orelse)


def minimum(*exprs: ExprLike) -> Expr:
    """n-ary minimum (left fold of binary min)."""
    if not exprs:
        raise ExpressionError("minimum of empty sequence")
    out = _as_expr(exprs[0])
    for e in exprs[1:]:
        out = MinE(out, e)
    return out


def maximum(*exprs: ExprLike) -> Expr:
    """n-ary maximum (left fold of binary max)."""
    if not exprs:
        raise ExpressionError("maximum of empty sequence")
    out = _as_expr(exprs[0])
    for e in exprs[1:]:
        out = MaxE(out, e)
    return out
