"""States and integer-encoded state spaces.

A :class:`State` is an immutable total assignment of values to a program's
variables.  A :class:`StateSpace` fixes an ordered tuple of variables and
provides the **mixed-radix codec** between states and dense integers
``0 … size-1``: with radices ``r_0 … r_{n-1}`` (domain sizes, in declaration
order) and row-major strides, state index
``= Σ_k  index_of(value_k) · stride_k``.

The codec is the foundation of the vectorized semantic engine
(:mod:`repro.semantics`): predicates become boolean NumPy masks indexed by
state index, and commands become ``int64`` successor tables.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from typing import Any

import numpy as np

from repro.core.variables import Var
from repro.errors import StateError

__all__ = ["State", "StateSpace", "FrontierEnv"]


class State(Mapping[Var, Any]):
    """An immutable total assignment ``Var → value``.

    ``State`` implements the ``Mapping`` protocol keyed by :class:`Var`, so
    it can be passed directly as the environment of
    :meth:`repro.core.expressions.Expr.eval`.
    """

    __slots__ = ("_values", "_hash")

    def __init__(self, values: Mapping[Var, Any]) -> None:
        checked = {}
        for var, val in values.items():
            if not isinstance(var, Var):
                raise StateError(f"state keys must be Vars, got {var!r}")
            checked[var] = var.check_value(val)
        self._values = checked
        self._hash: int | None = None

    # -- Mapping protocol -------------------------------------------------

    def __getitem__(self, var: Var) -> Any:
        return self._values[var]

    def __iter__(self) -> Iterator[Var]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    # -- functional update --------------------------------------------------

    def updated(self, changes: Mapping[Var, Any]) -> "State":
        """Return a new state with ``changes`` applied (others unchanged)."""
        for var in changes:
            if var not in self._values:
                raise StateError(
                    f"cannot update undeclared variable {var.name}"
                )
        merged = dict(self._values)
        merged.update(changes)
        return State(merged)

    def project(self, variables: Sequence[Var]) -> "State":
        """Restrict to the given variables (must all be present)."""
        try:
            return State({v: self._values[v] for v in variables})
        except KeyError as exc:
            raise StateError(f"variable {exc.args[0]} not in state") from None

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, State) and self._values == other._values

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                frozenset((v.name, val) for v, val in self._values.items())
            )
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{v.name}={val!r}"
            for v, val in sorted(self._values.items(), key=lambda kv: kv[0].name)
        )
        return f"State({inner})"


class StateSpace:
    """The finite cartesian product of the domains of an ordered variable tuple.

    Provides the dense codec ``State ↔ int`` plus cached, vectorized decoded
    value arrays per variable (``var_arrays``), which are the evaluation
    environment for :meth:`Expr.eval_vec`.
    """

    __slots__ = ("vars", "_by_name", "_var_set", "size", "_strides",
                 "_radices", "_stride_by_var", "_value_cache", "_index_cache")

    #: Refuse to enumerate spaces above this size (protects against typos;
    #: large-but-feasible spaces can still be built by raising the cap).
    MAX_SIZE = 64_000_000

    def __init__(self, variables: Sequence[Var]) -> None:
        vars_t = tuple(variables)
        if not vars_t:
            raise StateError("a state space needs at least one variable")
        names = [v.name for v in vars_t]
        if len(set(names)) != len(names):
            dup = sorted({n for n in names if names.count(n) > 1})
            raise StateError(f"duplicate variable names in space: {dup}")
        self.vars = vars_t
        self._by_name = {v.name: v for v in vars_t}
        radices = [v.domain.size for v in vars_t]
        size = 1
        for r in radices:
            size *= r
            if size > self.MAX_SIZE:
                raise StateError(
                    f"state space too large (> {self.MAX_SIZE}); "
                    "shrink variable domains"
                )
        self.size = size
        # Row-major strides: last declared variable varies fastest.
        strides = [0] * len(vars_t)
        acc = 1
        for k in range(len(vars_t) - 1, -1, -1):
            strides[k] = acc
            acc *= radices[k]
        self._strides = tuple(strides)
        self._radices = tuple(radices)
        self._var_set = frozenset(vars_t)
        self._stride_by_var = dict(zip(vars_t, strides))
        self._value_cache: dict[Var, np.ndarray] = {}
        self._index_cache: dict[Var, np.ndarray] = {}

    # -- lookup -------------------------------------------------------------

    def var_named(self, name: str) -> Var:
        """Return the declared variable with this name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise StateError(f"no variable named {name!r} in space") from None

    def stride_of(self, var: Var) -> int:
        """Mixed-radix stride of ``var``."""
        try:
            return self._stride_by_var[var]
        except KeyError:
            raise StateError(f"variable {var.name} not in space") from None

    # -- scalar codec -------------------------------------------------------

    def index_of(self, state: Mapping[Var, Any]) -> int:
        """Encode a (total) state into its dense index."""
        idx = 0
        for var, stride in zip(self.vars, self._strides):
            try:
                value = state[var]
            except KeyError:
                raise StateError(
                    f"state does not assign variable {var.name}"
                ) from None
            idx += var.domain.index_of(value) * stride
        return idx

    def state_at(self, index: int) -> State:
        """Decode a dense index into a :class:`State`."""
        if not 0 <= index < self.size:
            raise StateError(f"state index {index} out of range [0, {self.size})")
        values = {}
        for var, stride, radix in zip(self.vars, self._strides, self._radices):
            values[var] = var.domain.value_at((index // stride) % radix)
        return State(values)

    def iter_states(self) -> Iterator[State]:
        """Iterate all states in index order (slow path; prefer masks)."""
        for i in range(self.size):
            yield self.state_at(i)

    # -- vectorized codec ---------------------------------------------------

    def index_arrays(self) -> dict[Var, np.ndarray]:
        """Per-variable arrays of *domain indices* at every state index."""
        if len(self._index_cache) != len(self.vars):
            base = np.arange(self.size, dtype=np.int64)
            for var, stride, radix in zip(self.vars, self._strides, self._radices):
                if var not in self._index_cache:
                    self._index_cache[var] = (base // stride) % radix
        return self._index_cache

    def var_arrays(self) -> dict[Var, np.ndarray]:
        """Per-variable arrays of *values* at every state index.

        This is the vector environment handed to ``Expr.eval_vec``; arrays
        are cached, so repeated property checks share the decode cost.
        """
        if len(self._value_cache) != len(self.vars):
            idx = self.index_arrays()
            for var in self.vars:
                if var not in self._value_cache:
                    self._value_cache[var] = var.domain.decode_array(idx[var])
        return self._value_cache

    # -- frontier codec (sparse engine) -------------------------------------

    def indices_at(self, var: Var, idx: np.ndarray) -> np.ndarray:
        """Domain indices of ``var`` at the given state indices only.

        The frontier counterpart of :meth:`index_arrays`: output length is
        ``len(idx)``, never ``size``, so the sparse engine
        (:mod:`repro.semantics.sparse`) can evaluate commands and
        predicates on a discovered index set without materializing
        full-space decode arrays.
        """
        return (idx // self.stride_of(var)) % var.domain.size

    def frontier_env(self, idx: np.ndarray) -> "FrontierEnv":
        """Lazy ``Var → value-array`` environment over the index set ``idx``.

        Columns are decoded on first access and cached for the lifetime of
        the environment, so an expression touching 3 of 30 variables pays
        for 3 decodes.  Suitable as the environment of ``Expr.eval_vec``.
        """
        return FrontierEnv(self, np.asarray(idx, dtype=np.int64))

    def delta_for(self, var: Var, new_index_array: np.ndarray) -> np.ndarray:
        """Index delta produced by writing ``var`` with domain-index array
        ``new_index_array`` (vectorized functional update).

        ``new_state_index = old_index + Σ_assigned delta_for(var, new_idx)``.
        """
        old = self.index_arrays()[var]
        return (new_index_array - old) * self.stride_of(var)

    # -- misc -----------------------------------------------------------------

    def contains_vars(self, variables: frozenset[Var]) -> bool:
        """True iff every variable in ``variables`` is declared here."""
        return self._var_set.issuperset(variables)

    def __repr__(self) -> str:
        inner = ", ".join(v.name for v in self.vars)
        return f"StateSpace({inner}; size={self.size})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StateSpace) and other.vars == self.vars

    def __hash__(self) -> int:
        return hash((StateSpace, self.vars))


class FrontierEnv(Mapping):
    """Lazy per-variable value columns decoded at a fixed index set.

    Implements the ``Mapping[Var, ndarray]`` protocol expected by
    :meth:`repro.core.expressions.Expr.eval_vec`; each column has the
    length of the index set, not of the space.  Obtain via
    :meth:`StateSpace.frontier_env`.
    """

    __slots__ = ("space", "idx", "_cache")

    def __init__(self, space: StateSpace, idx: np.ndarray) -> None:
        self.space = space
        self.idx = idx
        self._cache: dict[Var, np.ndarray] = {}

    def __getitem__(self, var: Var) -> np.ndarray:
        col = self._cache.get(var)
        if col is None:
            col = var.domain.decode_array(self.space.indices_at(var, self.idx))
            self._cache[var] = col
        return col

    def __iter__(self) -> Iterator[Var]:
        return iter(self.space.vars)

    def __len__(self) -> int:
        return len(self.space.vars)
