"""States and integer-encoded state spaces.

A :class:`State` is an immutable total assignment of values to a program's
variables.  A :class:`StateSpace` fixes an ordered tuple of variables and
provides the **mixed-radix codec** between states and dense integers
``0 … size-1``: with radices ``r_0 … r_{n-1}`` (domain sizes, in declaration
order) and row-major strides, state index
``= Σ_k  index_of(value_k) · stride_k``.

The codec is the foundation of the vectorized semantic engine
(:mod:`repro.semantics`): predicates become boolean NumPy masks indexed by
state index, and commands become ``int64`` successor tables.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from typing import Any

import numpy as np

from repro.core.variables import Var
from repro.errors import CapacityError, StateError

__all__ = ["State", "StateSpace", "FrontierEnv"]


class State(Mapping[Var, Any]):
    """An immutable total assignment ``Var → value``.

    ``State`` implements the ``Mapping`` protocol keyed by :class:`Var`, so
    it can be passed directly as the environment of
    :meth:`repro.core.expressions.Expr.eval`.
    """

    __slots__ = ("_values", "_hash")

    def __init__(self, values: Mapping[Var, Any]) -> None:
        checked = {}
        for var, val in values.items():
            if not isinstance(var, Var):
                raise StateError(f"state keys must be Vars, got {var!r}")
            checked[var] = var.check_value(val)
        self._values = checked
        self._hash: int | None = None

    # -- Mapping protocol -------------------------------------------------

    def __getitem__(self, var: Var) -> Any:
        return self._values[var]

    def __iter__(self) -> Iterator[Var]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    # -- functional update --------------------------------------------------

    def updated(self, changes: Mapping[Var, Any]) -> "State":
        """Return a new state with ``changes`` applied (others unchanged)."""
        for var in changes:
            if var not in self._values:
                raise StateError(
                    f"cannot update undeclared variable {var.name}"
                )
        merged = dict(self._values)
        merged.update(changes)
        return State(merged)

    def project(self, variables: Sequence[Var]) -> "State":
        """Restrict to the given variables (must all be present)."""
        try:
            return State({v: self._values[v] for v in variables})
        except KeyError as exc:
            raise StateError(f"variable {exc.args[0]} not in state") from None

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, State) and self._values == other._values

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                frozenset((v.name, val) for v, val in self._values.items())
            )
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{v.name}={val!r}"
            for v, val in sorted(self._values.items(), key=lambda kv: kv[0].name)
        )
        return f"State({inner})"


class StateSpace:
    """The finite cartesian product of the domains of an ordered variable tuple.

    Provides the dense codec ``State ↔ int`` plus cached, vectorized decoded
    value arrays per variable (``var_arrays``), which are the evaluation
    environment for :meth:`Expr.eval_vec`.

    Capacity is **per tier**, not per space: construction always succeeds
    (``size`` is an exact Python int, however astronomically composition
    multiplies it), while operations that materialize full-space arrays
    guard themselves with :meth:`require_dense` (cap :data:`DENSE_MAX`) and
    vectorized index kernels with :meth:`require_vector_indexable` (cap
    :data:`INDEX_MAX`).  The sparse tier (:mod:`repro.semantics.sparse`)
    works between those two caps without ever allocating ``size``-length
    arrays.
    """

    __slots__ = ("vars", "_by_name", "_var_set", "size", "_strides",
                 "_radices", "_stride_by_var", "_value_cache", "_index_cache")

    #: Capacity of the **dense** engine tiers: any operation that
    #: materializes a full-space array (decoded value columns, successor
    #: tables, boolean masks, union CSR) refuses spaces above this size via
    #: :meth:`require_dense`.  Construction itself is unbounded — encoded
    #: sizes are exact Python ints, and the sparse tier
    #: (:mod:`repro.semantics.sparse`) explores arbitrarily large products
    #: up to its ``node_limit`` on *discovered* states.
    DENSE_MAX = 64_000_000

    #: Legacy alias of :data:`DENSE_MAX` (the pre-capacity-tier constructor
    #: cap).  :meth:`require_dense` honours whichever of the two is larger,
    #: so external code that raised ``MAX_SIZE`` to run big dense checks
    #: keeps working; new code should tune :data:`DENSE_MAX`.
    MAX_SIZE = DENSE_MAX

    #: Largest encoded size whose state indices fit the vectorized ``int64``
    #: frontier kernels (``succ_of`` / ``mask_at`` / ``frontier_env``).
    #: Spaces beyond it can still be built and used through the scalar
    #: codec, but vectorized exploration refuses them.
    INDEX_MAX = 2**63 - 1

    def __init__(self, variables: Sequence[Var]) -> None:
        vars_t = tuple(variables)
        if not vars_t:
            raise StateError("a state space needs at least one variable")
        names = [v.name for v in vars_t]
        if len(set(names)) != len(names):
            dup = sorted({n for n in names if names.count(n) > 1})
            raise StateError(f"duplicate variable names in space: {dup}")
        self.vars = vars_t
        self._by_name = {v.name: v for v in vars_t}
        radices = [v.domain.size for v in vars_t]
        # Exact (arbitrary-precision) product: capacity is a per-tier
        # policy enforced at materialization points, not a constructor wall.
        size = 1
        for r in radices:
            size *= r
        self.size = size
        # Row-major strides: last declared variable varies fastest.
        strides = [0] * len(vars_t)
        acc = 1
        for k in range(len(vars_t) - 1, -1, -1):
            strides[k] = acc
            acc *= radices[k]
        self._strides = tuple(strides)
        self._radices = tuple(radices)
        self._var_set = frozenset(vars_t)
        self._stride_by_var = dict(zip(vars_t, strides))
        self._value_cache: dict[Var, np.ndarray] = {}
        self._index_cache: dict[Var, np.ndarray] = {}

    # -- capacity policy ----------------------------------------------------

    @classmethod
    def dense_cap(cls) -> int:
        """The effective dense-tier capacity.

        The larger of :data:`DENSE_MAX` and the legacy :data:`MAX_SIZE`
        knob (pre-capacity-tier code raised the latter to permit
        large-but-feasible dense spaces); the single source of truth for
        every dense guard, including the node-count check of
        :class:`~repro.semantics.graph_backend.GraphBackend`.
        """
        return max(cls.DENSE_MAX, cls.MAX_SIZE)

    def require_dense(self, operation: str = "this operation") -> None:
        """Refuse dense full-space materialization above :meth:`dense_cap`.

        Every dense-tier entry point (decoded value arrays, successor
        tables, union CSR, full-space masks) calls this before allocating
        anything of length ``size``.  Raises :class:`CapacityError` (a
        :class:`StateError`) whose message points at the sparse tier.
        """
        cap = self.dense_cap()
        if self.size > cap:
            raise CapacityError(
                f"{operation} materializes full-space arrays over "
                f"{self.size} encoded states (> the dense capacity "
                f"{cap}; see StateSpace.DENSE_MAX); route the query "
                "through the sparse tier (repro.semantics.sparse explores "
                "only discovered states, capped by node_limit), or shrink "
                "variable domains if the dense judgment is required"
            )

    def require_vector_indexable(self, operation: str = "this operation") -> None:
        """Refuse vectorized index kernels beyond the ``int64`` range.

        The frontier codec carries global state indices as ``int64``;
        spaces above :data:`INDEX_MAX` (2⁶³−1) can only use the scalar
        codec.  Raises :class:`CapacityError`.
        """
        if self.size > self.INDEX_MAX:
            raise CapacityError(
                f"{operation} carries encoded state indices as int64, but "
                f"the space has {self.size} states (> 2**63 - 1); only the "
                "scalar codec (index_of / state_at) works at this size"
            )

    # -- lookup -------------------------------------------------------------

    def var_named(self, name: str) -> Var:
        """Return the declared variable with this name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise StateError(f"no variable named {name!r} in space") from None

    def stride_of(self, var: Var) -> int:
        """Mixed-radix stride of ``var``."""
        try:
            return self._stride_by_var[var]
        except KeyError:
            raise StateError(f"variable {var.name} not in space") from None

    # -- scalar codec -------------------------------------------------------

    def index_of(self, state: Mapping[Var, Any]) -> int:
        """Encode a (total) state into its dense index."""
        idx = 0
        for var, stride in zip(self.vars, self._strides):
            try:
                value = state[var]
            except KeyError:
                raise StateError(
                    f"state does not assign variable {var.name}"
                ) from None
            idx += var.domain.index_of(value) * stride
        return idx

    def state_at(self, index: int) -> State:
        """Decode a dense index into a :class:`State`."""
        if not 0 <= index < self.size:
            raise StateError(f"state index {index} out of range [0, {self.size})")
        values = {}
        for var, stride, radix in zip(self.vars, self._strides, self._radices):
            values[var] = var.domain.value_at((index // stride) % radix)
        return State(values)

    def iter_states(self) -> Iterator[State]:
        """Iterate all states in index order (slow path; prefer masks)."""
        self.require_dense("iter_states")
        for i in range(self.size):
            yield self.state_at(i)

    # -- vectorized codec ---------------------------------------------------

    def index_arrays(self) -> dict[Var, np.ndarray]:
        """Per-variable arrays of *domain indices* at every state index."""
        if len(self._index_cache) != len(self.vars):
            self.require_dense("index_arrays")
            base = np.arange(self.size, dtype=np.int64)
            for var, stride, radix in zip(self.vars, self._strides, self._radices):
                if var not in self._index_cache:
                    self._index_cache[var] = (base // stride) % radix
        return self._index_cache

    def var_arrays(self) -> dict[Var, np.ndarray]:
        """Per-variable arrays of *values* at every state index.

        This is the vector environment handed to ``Expr.eval_vec``; arrays
        are cached, so repeated property checks share the decode cost.
        """
        if len(self._value_cache) != len(self.vars):
            self.require_dense("var_arrays")
            idx = self.index_arrays()
            for var in self.vars:
                if var not in self._value_cache:
                    self._value_cache[var] = var.domain.decode_array(idx[var])
        return self._value_cache

    # -- frontier codec (sparse engine) -------------------------------------

    def indices_at(self, var: Var, idx: np.ndarray) -> np.ndarray:
        """Domain indices of ``var`` at the given state indices only.

        The frontier counterpart of :meth:`index_arrays`: output length is
        ``len(idx)``, never ``size``, so the sparse engine
        (:mod:`repro.semantics.sparse`) can evaluate commands and
        predicates on a discovered index set without materializing
        full-space decode arrays.
        """
        return (idx // self.stride_of(var)) % var.domain.size

    def frontier_env(self, idx: np.ndarray) -> "FrontierEnv":
        """Lazy ``Var → value-array`` environment over the index set ``idx``.

        Columns are decoded on first access and cached for the lifetime of
        the environment, so an expression touching 3 of 30 variables pays
        for 3 decodes.  Suitable as the environment of ``Expr.eval_vec``.
        """
        return FrontierEnv(self, np.asarray(idx, dtype=np.int64))

    def delta_for(self, var: Var, new_index_array: np.ndarray) -> np.ndarray:
        """Index delta produced by writing ``var`` with domain-index array
        ``new_index_array`` (vectorized functional update).

        ``new_state_index = old_index + Σ_assigned delta_for(var, new_idx)``.
        """
        old = self.index_arrays()[var]
        return (new_index_array - old) * self.stride_of(var)

    # -- misc -----------------------------------------------------------------

    def contains_vars(self, variables: frozenset[Var]) -> bool:
        """True iff every variable in ``variables`` is declared here."""
        return self._var_set.issuperset(variables)

    def __repr__(self) -> str:
        inner = ", ".join(v.name for v in self.vars)
        return f"StateSpace({inner}; size={self.size})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StateSpace) and other.vars == self.vars

    def __hash__(self) -> int:
        return hash((StateSpace, self.vars))


class FrontierEnv(Mapping):
    """Lazy per-variable value columns decoded at a fixed index set.

    Implements the ``Mapping[Var, ndarray]`` protocol expected by
    :meth:`repro.core.expressions.Expr.eval_vec`; each column has the
    length of the index set, not of the space.  Obtain via
    :meth:`StateSpace.frontier_env`.
    """

    __slots__ = ("space", "idx", "_cache")

    def __init__(self, space: StateSpace, idx: np.ndarray) -> None:
        self.space = space
        self.idx = idx
        self._cache: dict[Var, np.ndarray] = {}

    def __getitem__(self, var: Var) -> np.ndarray:
        col = self._cache.get(var)
        if col is None:
            col = var.domain.decode_array(self.space.indices_at(var, self.idx))
            self._cache[var] = col
        return col

    def __iter__(self) -> Iterator[Var]:
        return iter(self.space.vars)

    def __len__(self) -> int:
        return len(self.space.vars)
