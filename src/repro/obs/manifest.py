"""The run manifest: one JSON document summarizing a recorded run.

A manifest is the durable, machine-readable record of *where a run
spent itself*: which program (by name and digest), which tier decided
it, what the verdicts were, how the budget stood at exit, where the
checkpoint lives, and — from the :class:`~repro.obs.recorder.RunMetrics`
tree — wall/CPU seconds per phase, whole-run counter totals, and gauge
watermarks.  The schema is documented in docs/observability.md; the
``schema`` field versions it so downstream consumers (``benchmarks/
record.py`` manifest attachments, CI artifacts) can evolve safely.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from typing import Any

__all__ = ["MANIFEST_SCHEMA", "build_manifest", "write_manifest"]

#: Manifest format identifier; bump on incompatible layout changes.
MANIFEST_SCHEMA = "repro.run-manifest/1"


def _program_section(program) -> dict:
    doc: dict = {"name": getattr(program, "name", str(program))}
    try:
        space = program.space
        doc["space_size"] = int(space.size)
    except Exception:
        pass
    try:
        # Local import: obs must stay importable below the semantics layer.
        from repro.semantics.sparse.checkpoint import program_digest

        doc["digest"] = program_digest(program)
    except Exception:
        pass
    return doc


def build_manifest(
    metrics,
    *,
    program=None,
    tier: str | None = None,
    verdicts: list[dict] | None = None,
    budget: dict | None = None,
    checkpoint_path: str | None = None,
    command: list[str] | None = None,
    extra: dict[str, Any] | None = None,
) -> dict:
    """Assemble the run-manifest document from a finished run.

    ``metrics`` is a :class:`~repro.obs.recorder.RunMetrics` (or a
    :class:`~repro.obs.recorder.MetricsRecorder`, whose current state is
    taken).  Everything else is optional context the caller knows and
    the recorder does not: the program, the tier that produced the
    verdicts, the verdict rows themselves, the budget spec/state, and
    the checkpoint path.
    """
    if hasattr(metrics, "metrics"):
        metrics = metrics.metrics()
    doc: dict = {
        "schema": MANIFEST_SCHEMA,
        "command": list(command) if command is not None else list(sys.argv),
        "python": platform.python_version(),
        "wall_s": round(metrics.wall_s, 6),
        "cpu_s": round(metrics.cpu_s, 6),
    }
    if program is not None:
        doc["program"] = _program_section(program)
    if tier is not None:
        doc["tier"] = tier
    if verdicts is not None:
        doc["verdicts"] = verdicts
    if budget is not None:
        doc["budget"] = budget
    if checkpoint_path is not None:
        doc["checkpoint_path"] = os.fspath(checkpoint_path)
    doc["phases"] = [
        {
            "phase": row["phase"],
            "calls": row["calls"],
            "wall_s": round(row["wall_s"], 6),
            "cpu_s": round(row["cpu_s"], 6),
            "counters": row["counters"],
        }
        for row in metrics.phase_summary()
    ]
    doc["counters"] = dict(sorted(metrics.counters.items()))
    doc["gauges"] = dict(sorted(metrics.gauges.items()))
    beats = [ev for ev in metrics.events if ev.get("ev") == "heartbeat"]
    doc["heartbeats"] = len(beats)
    if extra:
        doc.update(extra)
    return doc


def write_manifest(path: str | os.PathLike, manifest: dict) -> str:
    """Write the manifest as pretty JSON; returns the (string) path."""
    path = os.fspath(path)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(manifest, f, indent=2, sort_keys=False, default=str)
        f.write("\n")
    return path
