"""Engine telemetry: tracing spans, counters, and run manifests.

The observability layer for the three-tier semantic engine (see
docs/observability.md for the span taxonomy, counter glossary, and
manifest schema).  The package is zero-dependency and import-cheap; the
engine's hot paths interact with it only through the module-global
*current recorder*:

    from repro import obs

    rec = obs.get_recorder()          # NullRecorder unless one is installed
    with rec.span("sparse.bfs", program=name):
        ...
        if rec.enabled:               # hot-loop gate: one attribute check
            rec.add("sparse.bfs.nodes", fresh.size)

Installing a real recorder is the caller's (usually the CLI's) job:

    with obs.use_recorder(obs.MetricsRecorder(progress=True)) as rec:
        run_engine()
    manifest = obs.build_manifest(rec.metrics(), program=prog, ...)

The default is the shared :data:`~repro.obs.recorder.NULL_RECORDER`,
whose every method is a no-op — instrumentation must be observation-only
and behavior-neutral (pinned by tests/test_obs.py).
"""

from __future__ import annotations

from contextlib import contextmanager

from .manifest import build_manifest, write_manifest
from .recorder import (
    NULL_RECORDER,
    MetricsRecorder,
    NullRecorder,
    RunMetrics,
    Span,
)

__all__ = [
    "Span",
    "RunMetrics",
    "NullRecorder",
    "MetricsRecorder",
    "NULL_RECORDER",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "build_manifest",
    "write_manifest",
]

_CURRENT = NULL_RECORDER


def get_recorder():
    """The process-wide current recorder (the null recorder by default)."""
    return _CURRENT


def set_recorder(recorder) -> None:
    """Install ``recorder`` as the current recorder (``None`` → null)."""
    global _CURRENT
    _CURRENT = NULL_RECORDER if recorder is None else recorder


@contextmanager
def use_recorder(recorder):
    """Install ``recorder`` for the duration of a ``with`` block."""
    previous = _CURRENT
    set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)
