"""The tracer: nested spans, typed counters, gauges, and trace events.

Two recorder classes share one five-method protocol:

- :class:`NullRecorder` — the process default.  Every method is a no-op
  and :attr:`~NullRecorder.enabled` is ``False``, so an instrumentation
  site on a hot path costs one attribute check (``if rec.enabled:``) and
  the cold sites one no-op call.  It records **nothing**: no spans, no
  counters, no events — pinned by ``tests/test_obs.py``.
- :class:`MetricsRecorder` — the real tracer.  ``span(...)`` opens a
  nested region timed in wall *and* CPU seconds; ``add(...)`` bumps a
  typed counter on the innermost open span (aggregated up the tree at
  export); ``gauge_max(...)`` keeps a high-watermark gauge (peak array
  bytes); ``event(...)`` appends a timestamped trace event;
  ``heartbeat(...)`` is an event that additionally renders a progress
  line when the recorder was built with ``progress=True``.

The result of a recorded run is a :class:`RunMetrics` tree (one
:class:`Span` per region, counters attached where they were incremented)
plus a flat event list, exportable as JSONL trace events
(:meth:`MetricsRecorder.trace_events` / :meth:`~MetricsRecorder.
write_trace`) and summarized into the run manifest by
:mod:`repro.obs.manifest`.

Neutrality contract.  A recorder only *observes*: no instrumentation
site may change control flow, array contents, or verdicts depending on
which recorder is installed.  ``tests/test_obs.py`` pins recorder-on vs
recorder-off bit-identical subspaces, verdicts, and certificates.

This module is deliberately zero-dependency (stdlib only) so every layer
of the engine — :mod:`repro.core` included — can import it without
cycles.
"""

from __future__ import annotations

import json
import os
import sys
import time

__all__ = [
    "Span",
    "RunMetrics",
    "NullRecorder",
    "MetricsRecorder",
    "NULL_RECORDER",
]


class Span:
    """One node of the metrics tree: a named, attributed, timed region.

    ``wall``/``cpu`` are filled when the region closes (``None`` while
    open); ``counters`` holds the increments recorded while this span was
    the innermost open one.
    """

    __slots__ = (
        "name",
        "attrs",
        "t_start",
        "wall",
        "cpu",
        "counters",
        "children",
        "_cpu0",
    )

    def __init__(self, name: str, attrs: dict, t_start: float, cpu0: float) -> None:
        self.name = name
        self.attrs = attrs
        self.t_start = t_start
        self.wall: float | None = None
        self.cpu: float | None = None
        self.counters: dict[str, float] = {}
        self.children: list[Span] = []
        self._cpu0 = cpu0

    def total_counters(self) -> dict[str, float]:
        """Counters of this span plus all descendants, summed by name."""
        out = dict(self.counters)
        for child in self.children:
            for key, val in child.total_counters().items():
                out[key] = out.get(key, 0) + val
        return out

    def to_dict(self) -> dict:
        """JSON-safe tree form (the manifest's ``phases`` payload)."""
        doc: dict = {"name": self.name}
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        doc["wall_s"] = self.wall
        doc["cpu_s"] = self.cpu
        if self.counters:
            doc["counters"] = dict(self.counters)
        if self.children:
            doc["children"] = [c.to_dict() for c in self.children]
        return doc

    def __repr__(self) -> str:
        dur = f"{self.wall:.4f}s" if self.wall is not None else "open"
        return f"<Span {self.name} {dur} {len(self.children)} child(ren)>"


class RunMetrics:
    """The finished view of one recorded run.

    ``phases`` are the top-level spans (in order), ``counters`` the
    whole-tree totals, ``gauges`` the high watermarks, ``events`` the
    flat trace.  Produced by :meth:`MetricsRecorder.metrics`.
    """

    __slots__ = ("phases", "counters", "gauges", "events", "wall_s", "cpu_s")

    def __init__(
        self,
        phases: list[Span],
        counters: dict[str, float],
        gauges: dict[str, float],
        events: list[dict],
        wall_s: float,
        cpu_s: float,
    ) -> None:
        self.phases = phases
        self.counters = counters
        self.gauges = gauges
        self.events = events
        self.wall_s = wall_s
        self.cpu_s = cpu_s

    def counter(self, name: str, default: float = 0) -> float:
        return self.counters.get(name, default)

    def phase_summary(self) -> list[dict]:
        """Top-level spans merged by name (first-seen order): one row per
        phase with call count, summed wall/CPU, and aggregated counters."""
        rows: dict[str, dict] = {}
        order: list[str] = []
        for span in self.phases:
            row = rows.get(span.name)
            if row is None:
                row = rows[span.name] = {
                    "phase": span.name,
                    "calls": 0,
                    "wall_s": 0.0,
                    "cpu_s": 0.0,
                    "counters": {},
                }
                order.append(span.name)
            row["calls"] += 1
            row["wall_s"] += span.wall or 0.0
            row["cpu_s"] += span.cpu or 0.0
            for key, val in span.total_counters().items():
                row["counters"][key] = row["counters"].get(key, 0) + val
        return [rows[name] for name in order]


class _NullSpan:
    """The shared no-op context manager handed out by the null recorder."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The default, do-nothing recorder (the engine's off path).

    Shared and stateless: every method returns immediately, ``span``
    hands back one reusable no-op context manager, and nothing is ever
    recorded.  Instrumented hot loops gate their bookkeeping on
    :attr:`enabled` so the off path costs a single attribute check.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def add(self, name: str, value: float = 1) -> None:
        pass

    def gauge_max(self, name: str, value: float) -> None:
        pass

    def event(self, name: str, **attrs) -> None:
        pass

    def heartbeat(self, **fields) -> None:
        pass

    def __repr__(self) -> str:
        return "<NullRecorder>"


#: The single shared null recorder (the process-default current recorder).
NULL_RECORDER = NullRecorder()


class _SpanContext:
    """Context manager closing one :class:`MetricsRecorder` span."""

    __slots__ = ("_rec", "_span")

    def __init__(self, rec: "MetricsRecorder", span: Span) -> None:
        self._rec = rec
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> bool:
        self._rec._close(self._span)
        return False


class MetricsRecorder:
    """An in-memory tracer building the :class:`RunMetrics` tree.

    Parameters
    ----------
    progress:
        When true, :meth:`heartbeat` renders a one-line progress report
        to ``progress_stream`` (default ``sys.stderr``) — the first
        heartbeat, any marked ``final=True``, and otherwise at most one
        per ``progress_interval`` seconds.
    progress_interval:
        Minimum seconds between rendered heartbeats (``0`` renders every
        one — used by tests for determinism).
    """

    enabled = True

    def __init__(
        self,
        *,
        progress: bool = False,
        progress_stream=None,
        progress_interval: float = 1.0,
    ) -> None:
        self.t0 = time.perf_counter()
        self.cpu0 = time.process_time()
        self.progress = progress
        self.progress_stream = progress_stream
        self.progress_interval = progress_interval
        self._phases: list[Span] = []
        self._stack: list[Span] = []
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._events: list[dict] = []
        self._last_beat: float | None = None
        self._beats = 0

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a nested region; use as ``with rec.span("phase"): ...``."""
        span = Span(name, attrs, time.perf_counter() - self.t0, time.process_time())
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self._phases.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        span.wall = time.perf_counter() - self.t0 - span.t_start
        span.cpu = time.process_time() - span._cpu0
        # Exception unwinds may close an outer span with inner ones still
        # open; close those too so the tree never holds dangling regions.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            if top.wall is None:
                top.wall = time.perf_counter() - self.t0 - top.t_start
                top.cpu = time.process_time() - top._cpu0

    # -- counters and gauges -------------------------------------------------

    def add(self, name: str, value: float = 1) -> None:
        """Increment a counter on the innermost open span (or the run)."""
        if self._stack:
            counters = self._stack[-1].counters
            counters[name] = counters.get(name, 0) + value
        else:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge_max(self, name: str, value: float) -> None:
        """Keep the maximum ever reported for ``name`` (a watermark)."""
        if value > self._gauges.get(name, float("-inf")):
            self._gauges[name] = value

    # -- events and heartbeats -----------------------------------------------

    def event(self, name: str, **attrs) -> None:
        """Append one timestamped trace event."""
        self._events.append(
            {"ev": name, "t_s": round(time.perf_counter() - self.t0, 6), **attrs}
        )

    def heartbeat(self, **fields) -> None:
        """A progress event; rendered as a line when ``progress`` is on.

        The first heartbeat and any with ``final=True`` always render;
        others are throttled to one per ``progress_interval`` seconds.
        """
        final = bool(fields.get("final"))
        self.event("heartbeat", **fields)
        self._beats += 1
        if not self.progress:
            return
        now = time.perf_counter()
        if (
            self._last_beat is not None
            and not final
            and now - self._last_beat < self.progress_interval
        ):
            return
        self._last_beat = now
        stream = self.progress_stream or sys.stderr
        parts = [f"{k}={v}" for k, v in fields.items() if k != "final"]
        tail = " done" if final else ""
        print(f"[progress] {' '.join(parts)}{tail}", file=stream, flush=True)

    # -- export ---------------------------------------------------------------

    def totals(self) -> dict[str, float]:
        """Whole-run counter totals (every span plus run-level adds)."""
        out = dict(self._counters)
        for span in self._phases:
            for key, val in span.total_counters().items():
                out[key] = out.get(key, 0) + val
        return out

    def metrics(self) -> RunMetrics:
        """The finished :class:`RunMetrics` view of this run so far."""
        return RunMetrics(
            phases=list(self._phases),
            counters=self.totals(),
            gauges=dict(self._gauges),
            events=list(self._events),
            wall_s=time.perf_counter() - self.t0,
            cpu_s=time.process_time() - self.cpu0,
        )

    def trace_events(self) -> list[dict]:
        """The run as flat JSONL-able trace events.

        One ``span`` event per *closed* region (with start offset, wall
        and CPU seconds, depth, attrs, and own counters), interleaved by
        start time with the explicit ``event``/``heartbeat`` records.
        """
        rows: list[dict] = []

        def walk(span: Span, depth: int) -> None:
            row: dict = {
                "ev": "span",
                "name": span.name,
                "t_s": round(span.t_start, 6),
                "depth": depth,
            }
            if span.wall is not None:
                row["wall_s"] = round(span.wall, 6)
                row["cpu_s"] = round(span.cpu or 0.0, 6)
            if span.attrs:
                row["attrs"] = dict(span.attrs)
            if span.counters:
                row["counters"] = dict(span.counters)
            rows.append(row)
            for child in span.children:
                walk(child, depth + 1)

        for span in self._phases:
            walk(span, 0)
        rows.extend(self._events)
        rows.sort(key=lambda r: r.get("t_s", 0.0))
        return rows

    def write_trace(self, path: str | os.PathLike) -> str:
        """Write the JSONL trace; returns the (string) path."""
        path = os.fspath(path)
        with open(path, "w", encoding="utf-8") as f:
            for row in self.trace_events():
                f.write(json.dumps(row, default=str) + "\n")
        return path

    def __repr__(self) -> str:
        return (
            f"<MetricsRecorder {len(self._phases)} phase(s), "
            f"{len(self._events)} event(s)>"
        )
