"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info FILE``
    Parse a DSL program and print its listing plus state-space statistics.
``check FILE -p "PROPERTY" [-p …]``
    Check one or more properties (UNITY property syntax) against the
    program; exits non-zero if any fails.
``prove FILE --from P --to Q``
    Model-check ``P ↝ Q``, synthesize a kernel certificate, re-check it,
    and print the proof tree.
``simulate FILE [--steps N] [--seed S] [--until Q]``
    Run a fair trace and print it (optionally until a predicate holds).
``reproduce [--exp EID] [--markdown]``
    Re-run the paper's experiment suite (EXPERIMENTS.md) and print the
    verdict table.
``scenario NAME [--stages N] [--n N] [--total T] [--rows R] [--cols C]
[--clients K] [--prove]``
    Build one of the scaled composition scenarios (``pipeline``,
    ``philosophers``, ``grid``, ``product``) or one of the generated
    scenario *families* (``torus``, ``hypercube``, ``regular``,
    ``fanout``, ``mesh`` — :mod:`repro.gen.families`), explore its
    reachable subspace through the engine tier the size selects (sparse
    above the threshold), and check its headline properties.  Family
    scenarios carry an expected-property manifest (including negative
    exhibits), so the run fails if any verdict differs from the
    manifest.  ``grid`` and
    ``product`` routinely exceed the old 64M dense cap by orders of
    magnitude (``product`` defaults to ≈ 4.4 · 10¹² encoded states).
    ``--prove`` certifies each leads-to verdict: holding properties get a
    synthesized, kernel-checked induction certificate (built on the
    reachable subspace when the space routes sparse — nothing of length
    ``space.size`` is allocated), failing ones get the confining-path
    witness printed state by state.  Certificates are re-checked by the
    **batched** columnar kernel — one vectorized pass per command over
    all induction levels — so the 4×4 grid's ~43k-level certificate
    checks end to end in about a second (``--check-levels N`` optionally
    skips the check above N levels).  ``scenario list`` enumerates the
    scenarios.

``fuzz [--count N] [--seed S] [--fault NAME] [--corpus-dir DIR]``
    Run the randomized DSL differential fuzzer (:mod:`repro.gen.fuzz`):
    each seeded case generates a well-typed program through the surface
    grammar, round-trips it through the pretty-printer and parser, and
    cross-checks every engine tier pair on random predicates.  Without
    ``--fault``, any disagreement is an engine bug: it is shrunk to a
    minimal repro (written to ``--corpus-dir`` when given) and the run
    exits non-zero.  With ``--fault`` (one of the named harness
    corruptions), the fuzzer must *detect* the injected bug — it shrinks
    the first disagreeing case, writes the corpus entry, and exits
    non-zero only if no disagreement was found (an insensitive harness).

Fault tolerance (``scenario`` and ``prove``; see ``docs/robustness.md``)
    ``--deadline S`` / ``--node-budget N`` / ``--max-levels N`` bound the
    sparse exploration; on exhaustion the run prints a structured
    ``status=unknown`` line plus a checkpoint path and exits 0 (UNKNOWN
    is a clean, resumable outcome — not a failure).  ``--checkpoint
    PATH`` chooses the checkpoint file; ``--resume PATH`` continues from
    one, refusing (fail-closed) if the program or space changed since it
    was written.  A resumed run completes to the same verdict and
    witness as an uninterrupted one.  Budgets only bind on the sparse
    tier; dense-tier runs ignore them.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Compositional program verification with existential and "
            "universal properties (Charpentier & Chandy, IPPS 1999)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_file_args(p) -> None:
        p.add_argument("file", type=Path)
        p.add_argument(
            "--program",
            default=None,
            metavar="NAME",
            help="which program/system of a multi-program module to use "
            "(default: the single program, or the last `system`)",
        )

    p_info = sub.add_parser("info", help="print a parsed program's listing")
    add_file_args(p_info)

    p_check = sub.add_parser("check", help="check properties against a program")
    add_file_args(p_check)
    p_check.add_argument(
        "-p",
        "--property",
        dest="properties",
        action="append",
        required=True,
        metavar="PROP",
        help='e.g. "invariant x = 0", "true ~> x = 3"',
    )

    def add_budget_args(p) -> None:
        p.add_argument(
            "--deadline",
            type=float,
            default=None,
            metavar="SECONDS",
            help="wall-clock budget for the sparse exploration; on "
            "exhaustion a checkpoint is written and the run reports "
            "status=unknown instead of a verdict",
        )
        p.add_argument(
            "--node-budget",
            type=int,
            default=None,
            metavar="N",
            help="soft cap on explored states (resumable UNKNOWN, unlike "
            "the fail-closed node_limit)",
        )
        p.add_argument(
            "--max-levels",
            type=int,
            default=None,
            metavar="N",
            help="cap on completed BFS levels (resumable UNKNOWN)",
        )
        p.add_argument(
            "--checkpoint",
            type=Path,
            default=None,
            metavar="PATH",
            help="checkpoint file for the exploration (default when a "
            "budget is set: <scenario-or-module>.ckpt in the current "
            "directory)",
        )
        p.add_argument(
            "--resume",
            type=Path,
            default=None,
            metavar="PATH",
            help="resume the exploration from a checkpoint (refused, "
            "fail-closed, if the program or space changed since it "
            "was written)",
        )

    def add_obs_args(p) -> None:
        p.add_argument(
            "--trace",
            type=Path,
            default=None,
            metavar="FILE",
            help="write the run's span/counter/heartbeat events as JSONL "
            "trace records to FILE (see docs/observability.md)",
        )
        p.add_argument(
            "--metrics-out",
            type=Path,
            default=None,
            metavar="FILE",
            help="write the run manifest (program digest, tier, verdicts, "
            "per-phase wall/CPU seconds, counters) as JSON to FILE",
        )
        p.add_argument(
            "--progress",
            action="store_true",
            help="print heartbeat lines (BFS level, nodes, rate, budget "
            "left) to stderr while the engine runs",
        )

    add_obs_args(p_check)

    p_prove = sub.add_parser("prove", help="synthesize a leads-to certificate")
    add_file_args(p_prove)
    p_prove.add_argument("--from", dest="lhs", required=True, metavar="P")
    p_prove.add_argument("--to", dest="rhs", required=True, metavar="Q")
    p_prove.add_argument(
        "--quiet", action="store_true", help="suppress the proof tree"
    )
    add_budget_args(p_prove)
    add_obs_args(p_prove)

    p_sim = sub.add_parser("simulate", help="run a fair trace")
    add_file_args(p_sim)
    p_sim.add_argument("--steps", type=int, default=20)
    p_sim.add_argument(
        "--seed",
        type=int,
        default=None,
        help="random fair scheduler (default: round-robin)",
    )
    p_sim.add_argument(
        "--until", metavar="Q", default=None, help="stop when this predicate holds"
    )

    p_rep = sub.add_parser("reproduce", help="re-run the experiment suite")
    p_rep.add_argument(
        "--exp", default=None, metavar="EID", help="one experiment id (default: all)"
    )
    p_rep.add_argument(
        "--markdown",
        action="store_true",
        help="emit a Markdown table for EXPERIMENTS.md",
    )
    add_obs_args(p_rep)

    p_scen = sub.add_parser("scenario", help="run a scaled composition scenario")
    p_scen.add_argument(
        "name",
        choices=[
            "list",
            "pipeline",
            "philosophers",
            "grid",
            "product",
            "compose50",
            "torus",
            "hypercube",
            "regular",
            "fanout",
            "mesh",
        ],
        help="scenario name (hand-built or generated family), or 'list' "
        "to enumerate",
    )
    p_scen.add_argument(
        "--stages",
        type=int,
        default=None,
        help="pipeline depth (pipeline: default 10; product: default 16)",
    )
    p_scen.add_argument(
        "--total",
        type=int,
        default=None,
        help="token count (pipeline/product/fanout: default 3; mesh: default 2)",
    )
    p_scen.add_argument(
        "--n",
        type=int,
        default=10,
        help="ring size (philosophers) / node count (regular family)",
    )
    p_scen.add_argument(
        "--rows", type=int, default=None, help="grid/torus rows (default 4 / 3)"
    )
    p_scen.add_argument(
        "--cols", type=int, default=None, help="grid/torus columns (default 4 / 3)"
    )
    p_scen.add_argument(
        "--clients",
        type=int,
        default=None,
        help="allocator clients (product: default 3; mesh: default 6)",
    )
    p_scen.add_argument(
        "--dim",
        type=int,
        default=None,
        help="hypercube dimension (default 3) / regular degree (default 3)",
    )
    p_scen.add_argument(
        "--graph-seed",
        type=int,
        default=0,
        help="seed for the regular family's random graph",
    )
    p_scen.add_argument(
        "--widths",
        default=None,
        metavar="W0,W1,…",
        help="fanout layer profile (default 2,3,3,2)",
    )
    p_scen.add_argument(
        "--pools", type=int, default=None, help="mesh pool count (default 4)"
    )
    p_scen.add_argument(
        "--prove",
        action="store_true",
        help="certify each leads-to verdict: synthesize and kernel-check a "
        "proof certificate for holding properties, and print the "
        "confining-path witness for failing ones (sparse scenarios "
        "never allocate full-space arrays)",
    )
    p_scen.add_argument(
        "--check-levels",
        type=int,
        default=None,
        metavar="N",
        help="with --prove: skip the kernel check for certificates with "
        "more than N variant levels (default: no cap — the batched "
        "kernel checks 10^5-level certificates in seconds)",
    )
    add_budget_args(p_scen)
    add_obs_args(p_scen)

    p_fuzz = sub.add_parser("fuzz", help="run the randomized DSL differential fuzzer")
    p_fuzz.add_argument(
        "--count", type=int, default=100, help="number of seeded cases (default 100)"
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=0, help="first seed of the sweep (default 0)"
    )
    p_fuzz.add_argument(
        "--fault",
        default=None,
        metavar="NAME",
        help="inject a named harness fault (sensitivity mode): the run "
        "must find a disagreement, and exits non-zero otherwise; "
        "see `fuzz --list-faults`",
    )
    p_fuzz.add_argument(
        "--list-faults",
        action="store_true",
        help="enumerate the injectable faults and exit",
    )
    p_fuzz.add_argument(
        "--corpus-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="write shrunk minimal repros as corpus JSON entries here",
    )
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="report disagreements without minimizing them")

    p_serve = sub.add_parser(
        "serve",
        help="run the certification service (supervised worker pool + "
        "fail-closed persistent cache; see docs/service.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8421)
    p_serve.add_argument(
        "--workers", type=int, default=2,
        help="supervised worker subprocesses (default 2)",
    )
    p_serve.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="content-addressed persistent cache for verdicts and "
        "subspace snapshots (omit to serve without a cache)",
    )
    p_serve.add_argument(
        "--max-pending", type=int, default=8,
        help="admission-control bound; beyond it requests are shed "
        "with Retry-After (default 8)",
    )
    p_serve.add_argument(
        "--max-retries", type=int, default=2,
        help="crash retries per request before a structured "
        "worker-crash error (default 2)",
    )
    p_serve.add_argument(
        "--default-timeout", type=float, default=60.0, metavar="SECONDS",
        help="watchdog for requests that set no deadline (default 60)",
    )
    p_serve.add_argument(
        "--stall-grace", type=float, default=5.0, metavar="SECONDS",
        help="slack past a request's deadline before the stall "
        "watchdog reaps the worker (default 5)",
    )
    p_serve.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive worker crashes before a program digest is "
        "quarantined (default 3)",
    )
    p_serve.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="SECONDS",
        help="quarantine duration before the half-open trial (default 30)",
    )
    return parser


# ---------------------------------------------------------------------------
# Telemetry (--trace / --metrics-out / --progress)
# ---------------------------------------------------------------------------

#: Manifest context of the current telemetry-enabled invocation, or None.
#: Commands note the program/tier/budget/verdicts they decide through
#: :func:`_note_run` / :func:`_note_verdict`; both are no-ops unless
#: :func:`main` activated telemetry for this run.
_RUN_CONTEXT: dict | None = None


def _note_run(**info) -> None:
    """Record manifest context (program, tier, budget, checkpoint path)."""
    if _RUN_CONTEXT is not None:
        _RUN_CONTEXT.update(
            {k: v for k, v in info.items() if v is not None}
        )


def _note_verdict(result) -> None:
    """Append one verdict row to the run manifest."""
    if _RUN_CONTEXT is None:
        return
    from repro.api import Verdict

    if isinstance(result, Verdict):
        row = {
            "kind": result.metrics.get("kind", "verify"),
            "subject": result.metrics.get("subject", ""),
            "holds": result.holds,
            "tier": result.tier,
        }
        if result.partial is not None:
            row["status"] = result.partial.status
    elif hasattr(result, "holds"):  # CheckResult
        row = {
            "kind": result.kind,
            "subject": result.subject,
            "holds": bool(result.holds),
        }
        tier = (result.witness or {}).get("tier")
        if tier:
            row["tier"] = tier
    elif hasattr(result, "ok"):  # ProofCheckResult (certificate check)
        row = {
            "kind": "certificate-check",
            "ok": bool(result.ok),
            "mode": result.mode,
            "obligations": int(result.obligations_checked),
        }
    else:  # PartialResult (budget exhaustion)
        row = {
            "kind": result.kind,
            "subject": result.subject,
            "status": result.status,
            "reason": result.reason,
            "explored": int(result.explored),
            "levels": int(result.levels),
            "rate": round(float(result.rate), 3),
            "frontier": int(result.frontier),
        }
    _RUN_CONTEXT.setdefault("verdicts", []).append(row)


def _obs_requested(args) -> bool:
    return bool(
        getattr(args, "trace", None)
        or getattr(args, "metrics_out", None)
        or getattr(args, "progress", False)
    )


def _run_with_obs(args) -> int:
    """Run the command under a live :class:`~repro.obs.MetricsRecorder`.

    The recorder is installed for the duration of the command; the JSONL
    trace (``--trace``) and run manifest (``--metrics-out``) are written
    in a ``finally`` — a refused or UNKNOWN run is exactly when the
    numbers matter, so telemetry survives failures and exhaustion.
    """
    from repro import obs

    global _RUN_CONTEXT
    recorder = obs.MetricsRecorder(
        progress=bool(getattr(args, "progress", False)),
        progress_stream=sys.stderr,
    )
    _RUN_CONTEXT = {}
    try:
        with obs.use_recorder(recorder):
            return _COMMANDS[args.command](args)
    finally:
        context, _RUN_CONTEXT = _RUN_CONTEXT, None
        _write_telemetry(args, recorder, context)


def _write_telemetry(args, recorder, context: dict) -> None:
    from repro import obs

    trace = getattr(args, "trace", None)
    if trace is not None:
        recorder.write_trace(trace)
        print(f"trace written    : {trace}")
    out = getattr(args, "metrics_out", None)
    if out is not None:
        manifest = obs.build_manifest(
            recorder,
            program=context.get("program"),
            tier=context.get("tier"),
            verdicts=context.get("verdicts"),
            budget=context.get("budget"),
            checkpoint_path=context.get("checkpoint_path"),
        )
        obs.write_manifest(out, manifest)
        print(f"manifest written : {out}")


def _budget_of(args):
    """A :class:`~repro.semantics.budget.Budget` from CLI flags, or None."""
    if (
        args.deadline is None
        and args.node_budget is None
        and args.max_levels is None
    ):
        return None
    from repro.semantics.budget import Budget

    return Budget(
        deadline=args.deadline,
        node_budget=args.node_budget,
        max_levels=args.max_levels,
    )


def _budget_doc(budget) -> dict | None:
    """Manifest row describing the budget spec, or None without one."""
    if budget is None:
        return None
    return {
        "deadline": budget.deadline,
        "node_budget": budget.node_budget,
        "max_levels": budget.max_levels,
    }


def _checkpoint_of(args, default_stem: str, budget):
    """The checkpoint policy implied by the CLI flags, or None.

    An explicit ``--checkpoint`` always wins; ``--resume`` keeps writing
    to the file it resumes from; a budget with neither defaults to
    ``<default_stem>.ckpt`` so exhaustion always leaves a resume path.
    """
    from repro.semantics.sparse import CheckpointPolicy

    if args.checkpoint is not None:
        return CheckpointPolicy(path=str(args.checkpoint), every_levels=8)
    if args.resume is not None:
        return CheckpointPolicy(path=str(args.resume), every_levels=8)
    if budget is not None:
        return CheckpointPolicy(path=f"{default_stem}.ckpt", every_levels=8)
    return None


def _report_unknown(partial) -> int:
    """Print a :class:`~repro.semantics.budget.PartialResult` and exit 0.

    UNKNOWN is a *clean* outcome (the acceptance contract of graceful
    degradation): the budget ran out, the state is checkpointed, and the
    caller is told exactly where to resume — that is not a failure.
    """
    _note_verdict(partial)
    _note_run(checkpoint_path=partial.checkpoint_path)
    print(partial.explain())
    print(f"status=unknown checkpoint={partial.checkpoint_path or '-'}")
    return 0


def _load_program(path: Path, name: str | None = None):
    """Load a program from a (possibly multi-program) module file.

    Selection: an explicit ``name``, else the only program, else the last
    declared ``system`` (the natural "main" of a module).
    """
    from repro.dsl import parse_module, parse_module_text

    try:
        source = path.read_text()
    except OSError as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    module = parse_module(source)
    if name is not None:
        if name not in module:
            raise SystemExit(
                f"error: no program named {name!r}; module defines "
                f"{sorted(module)}"
            )
        return module[name]
    if len(module) == 1:
        return next(iter(module.values()))
    tree = parse_module_text(source)
    if tree.systems:
        return module[tree.systems[-1].name]
    raise SystemExit(
        f"error: module defines several programs {sorted(module)}; "
        "pick one with --program NAME"
    )


def _parse_pred(text: str, program):
    """Parse a bare predicate via the property grammar (as `invariant …`)."""
    from repro.dsl import parse_property

    prop = parse_property(f"invariant {text}", program)
    return prop.p  # type: ignore[attr-defined]


def _cmd_info(args) -> int:
    program = _load_program(args.file, args.program)
    print(program.describe())
    print()
    print(f"state space : {program.space.size} states")
    print(f"commands    : {len(program.commands)} (fair: {len(program.fair_names)})")
    print(f"initial     : {int(program.initial_mask().sum())} states")
    from repro.semantics.explorer import reachable_mask

    print(f"reachable   : {int(reachable_mask(program).sum())} states")
    return 0


def _cmd_check(args) -> int:
    from repro.api import verify
    from repro.dsl import parse_property

    program = _load_program(args.file, args.program)
    _note_run(program=program)
    failures = 0
    for text in args.properties:
        prop = parse_property(text, program)
        verdict = verify(program, prop)
        _note_verdict(verdict)
        print(verdict.explain())
        if not verdict.holds:
            failures += 1
            state = verdict.witness.state
            if state is not None:
                print(f"    counterexample: {state!r}")
    return 1 if failures else 0


def _cmd_prove(args) -> int:
    from repro.semantics.synthesis import (
        check_certificate_batched,
        synthesize_leadsto_proof,
    )
    from repro.errors import ProofError

    from repro.semantics.sparse import sparse_enabled

    program = _load_program(args.file, args.program)
    p = _parse_pred(args.lhs, program)
    q = _parse_pred(args.rhs, program)
    budget = _budget_of(args)
    policy = _checkpoint_of(args, args.file.stem, budget)
    _note_run(
        program=program,
        tier="sparse" if sparse_enabled(program.space) else "dense",
        budget=_budget_doc(budget),
        checkpoint_path=policy.path if policy is not None else None,
    )
    if args.resume is not None:
        from repro.semantics.budget import PartialResult
        from repro.semantics.sparse import resume_exploration
        from repro.errors import BudgetExhausted

        try:
            resume_exploration(
                args.resume, program, budget=budget, checkpoint=policy
            )
        except BudgetExhausted as exc:
            return _report_unknown(
                PartialResult.from_exhaustion(
                    exc, kind="exploration", subject=program.name
                )
            )
        print(f"resumed: {args.resume}")
    try:
        proof = synthesize_leadsto_proof(
            program, p, q, budget=budget, checkpoint=policy
        )
    except ProofError as exc:
        print(f"NOT PROVABLE: {exc}")
        return 1
    if getattr(proof, "status", None) == "unknown":
        return _report_unknown(proof)
    result = check_certificate_batched(proof, program)
    _note_verdict(result)
    if not args.quiet:
        print(proof.render())
        print()
    print(result.explain())
    return 0 if result.ok else 1


def _cmd_simulate(args) -> int:
    from repro.semantics.scheduler import RandomFairScheduler
    from repro.semantics.simulate import run_until, simulate

    program = _load_program(args.file, args.program)
    scheduler = (
        RandomFairScheduler(program, seed=args.seed)
        if args.seed is not None
        else None
    )
    if args.until is not None:
        goal = _parse_pred(args.until, program)
        trace, reached = run_until(
            program, goal, scheduler=scheduler, max_steps=args.steps
        )
        tail = "reached" if reached else f"NOT reached in {args.steps} steps"
        print(f"goal {args.until!r}: {tail}")
    else:
        trace = simulate(program, args.steps, scheduler=scheduler)
    for k, state in enumerate(trace.states):
        cmd = f"  ←{trace.commands[k - 1]}" if k else "  (initial)"
        print(f"  {k:4d}: {state!r}{cmd}")
    return 0


def _cmd_reproduce(args) -> int:
    from repro.report import render_markdown, render_text, run_all, run_experiment

    rows = run_experiment(args.exp) if args.exp else run_all()
    print(render_markdown(rows) if args.markdown else render_text(rows))
    bad = [r for r in rows if not r.ok]
    if bad:
        print(f"\n{len(bad)} claim(s) did NOT reproduce", file=sys.stderr)
        return 1
    print(f"\nall {len(rows)} claims reproduce")
    return 0


def _cmd_scenario(args) -> int:
    from repro.semantics.sparse import sparse_enabled

    if args.name == "list":
        print(
            "pipeline      source -> K stages -> sink over a token pool "
            "(--stages, --total)"
        )
        print("philosophers  dining philosophers around a ring (--n)")
        print(
            "grid          dining philosophers on a rows x cols grid, "
            "forks pinned to the canonical acyclic orientation "
            "(--rows, --cols; 4x4 is ~1.1e12 encoded states)"
        )
        print(
            "product       pipeline composed with allocator clients "
            "competing for the same token pool (--stages, --clients, "
            "--total; defaults are ~4.4e12 encoded states; delivery "
            "fails under weak fairness, holds under strong)"
        )
        print(
            "compose50     heterogeneous 50-stage pipeline + allocator "
            "clients, certified assume-guarantee style: per-component "
            "lemmas + composition rules, the ~1e37-state product is "
            "never explored (--stages, --clients, --total, --prove)"
        )
        from repro.gen.families import FAMILIES

        print()
        print(
            "generated families (expected-property manifests; the run "
            "fails on any verdict the manifest does not predict):"
        )
        for family in FAMILIES.values():
            print(f"{family.name:<14}{family.summary}")
        return 0

    from repro.gen.families import FAMILIES

    if args.name in FAMILIES:
        return _cmd_scenario_family(args)

    # Legacy hand-built scenarios: restore the historical flag defaults.
    args.total = 3 if args.total is None else args.total
    args.clients = 3 if args.clients is None else args.clients
    args.rows = 4 if args.rows is None else args.rows
    args.cols = 4 if args.cols is None else args.cols

    if args.name == "compose50":
        return _cmd_compose50(args)

    # checks: (label, LeadsTo property, expected verdict, strong fairness?)
    if args.name == "pipeline":
        from repro.systems.pipeline import build_pipeline_system

        stages = 10 if args.stages is None else args.stages
        pl = build_pipeline_system(stages, total=args.total)
        program = pl.system
        checks = [
            ("delivery", pl.delivery(), True, False),
            ("no_recycling (negative exhibit)", pl.no_recycling(), False, False),
        ]
        invariant_pred = pl.conservation_predicate()
    elif args.name == "philosophers":
        from repro.systems.philosophers import build_philosopher_ring

        ps = build_philosopher_ring(args.n)
        program = ps.system
        checks = [("liveness(0)", ps.liveness(0), True, False)]
        invariant_pred = ps.mutual_exclusion().p
    elif args.name == "grid":
        from repro.systems.philosophers import build_philosopher_grid

        ps = build_philosopher_grid(args.rows, args.cols)
        program = ps.system
        checks = [("liveness(0)", ps.liveness(0), True, False)]
        invariant_pred = ps.mutual_exclusion().p
    else:
        from repro.systems.product import build_pipeline_allocator

        stages = 16 if args.stages is None else args.stages
        pa = build_pipeline_allocator(
            stages, clients=args.clients, total=args.total
        )
        program = pa.system
        checks = [
            (
                "delivery, weak fairness (starvation exhibit)",
                pa.delivery(),
                False,
                False,
            ),
            ("delivery, strong fairness", pa.delivery(), True, True),
        ]
        invariant_pred = pa.conservation_predicate()

    sparse = sparse_enabled(program.space)
    tier = "sparse" if sparse else "dense"
    print(program.name)
    print(f"encoded space : {program.space.size} states ({tier} tier)")
    budget = _budget_of(args)
    policy = _checkpoint_of(args, args.name, budget)
    _note_run(
        program=program,
        tier=tier,
        budget=_budget_doc(budget),
        checkpoint_path=policy.path if policy is not None else None,
    )
    if sparse:
        from repro.errors import BudgetExhausted
        from repro.semantics.budget import PartialResult
        from repro.semantics.sparse import resume_exploration
        from repro.semantics.sparse.explorer import reachable_subspace

        try:
            if args.resume is not None:
                sub = resume_exploration(
                    args.resume, program, budget=budget, checkpoint=policy
                )
                print(f"resumed       : {args.resume}")
            else:
                sub = reachable_subspace(
                    program, budget=budget, checkpoint=policy
                )
        except BudgetExhausted as exc:
            return _report_unknown(
                PartialResult.from_exhaustion(
                    exc, kind="exploration", subject=program.name
                )
            )
        print(f"reachable     : {sub.size} states in {sub.levels} BFS levels")
    else:
        # Dense tier: count via the cached union CSR (the checkers below
        # reuse it), instead of spinning up the sparse explorer as well.
        from repro.semantics.explorer import reachable_mask

        print(f"reachable     : {int(reachable_mask(program).sum())} states")
    failures = 0
    from repro.semantics import check_leadsto, check_reachable_invariant
    from repro.semantics.strong_fairness import check_leadsto_strong

    result = check_reachable_invariant(program, invariant_pred)
    _note_verdict(result)
    print(result.explain())
    failures += not result.holds
    for label, prop, expected, strong in checks:
        checker = check_leadsto_strong if strong else check_leadsto
        result = checker(program, prop.p, prop.q)
        _note_verdict(result)
        verdict = "as expected" if result.holds == expected else "UNEXPECTED"
        print(f"{result.explain()}  [{label}: {verdict}]")
        failures += result.holds != expected
        if args.prove:
            failures += _prove_leadsto(
                program, prop, result, strong=strong,
                check_levels=args.check_levels,
            )
    return 1 if failures else 0


def _cmd_scenario_family(args) -> int:
    """Run one generated scenario family against its expected-property
    manifest (the ``scenario torus|hypercube|regular|fanout|mesh`` path).

    Unlike the hand-built scenarios, the expected verdicts ship with the
    scenario: the run fails if *any* manifest row — positive or negative
    exhibit — comes out different from what the family predicts.
    """
    from repro.gen.families import build_scenario
    from repro.semantics.sparse import sparse_enabled

    if args.name == "torus":
        params = {"rows": args.rows, "cols": args.cols}
    elif args.name == "hypercube":
        params = {"d": args.dim}
    elif args.name == "regular":
        params = {"n": args.n, "d": args.dim, "seed": args.graph_seed}
    elif args.name == "fanout":
        widths = (
            tuple(int(w) for w in args.widths.split(","))
            if args.widths
            else None
        )
        params = {"widths": widths, "total": args.total}
    else:  # mesh
        params = {
            "pools": args.pools,
            "clients": args.clients,
            "total": args.total,
        }
    scenario = build_scenario(args.name, **params)
    program = scenario.program
    sparse = sparse_enabled(program.space)
    tier = "sparse" if sparse else "dense"
    print(scenario.describe())
    print(f"encoded space : {program.space.size} states ({tier} tier)")
    budget = _budget_of(args)
    policy = _checkpoint_of(args, args.name, budget)
    _note_run(
        program=program,
        tier=tier,
        budget=_budget_doc(budget),
        checkpoint_path=policy.path if policy is not None else None,
    )
    if sparse:
        from repro.errors import BudgetExhausted
        from repro.semantics.budget import PartialResult
        from repro.semantics.sparse import resume_exploration
        from repro.semantics.sparse.explorer import reachable_subspace

        try:
            if args.resume is not None:
                sub = resume_exploration(
                    args.resume, program, budget=budget, checkpoint=policy
                )
                print(f"resumed       : {args.resume}")
            else:
                sub = reachable_subspace(
                    program, budget=budget, checkpoint=policy
                )
        except BudgetExhausted as exc:
            return _report_unknown(
                PartialResult.from_exhaustion(
                    exc, kind="exploration", subject=program.name
                )
            )
        print(f"reachable     : {sub.size} states in {sub.levels} BFS levels")
    else:
        from repro.semantics.explorer import reachable_mask

        print(f"reachable     : {int(reachable_mask(program).sum())} states")
    from repro.semantics import check_leadsto, check_reachable_invariant
    from repro.semantics.strong_fairness import check_leadsto_strong

    failures = 0
    for check in scenario.checks:
        if check.kind == "invariant":
            result = check_reachable_invariant(program, check.pred)
        else:
            checker = (
                check_leadsto_strong
                if check.fairness == "strong"
                else check_leadsto
            )
            result = checker(program, check.prop.p, check.prop.q)
        _note_verdict(result)
        verdict = "as expected" if result.holds == check.expected else "UNEXPECTED"
        print(f"{result.explain()}  [{check.label}: {verdict}]")
        failures += result.holds != check.expected
        if args.prove and check.kind == "leadsto":
            failures += _prove_leadsto(
                program, check.prop, result,
                strong=check.fairness == "strong",
                check_levels=args.check_levels,
            )
    return 1 if failures else 0


def _cmd_fuzz(args) -> int:
    """The ``fuzz`` command: seeded differential sweep, optional fault
    injection, shrinking, and corpus emission (see the module docstring)."""
    from repro.gen.fuzz import FAULTS, fuzz_run
    from repro.gen.shrink import corpus_entry, shrink, write_corpus_entry

    if args.list_faults:
        for name, desc in sorted(FAULTS.items()):
            print(f"{name:<20}{desc}")
        return 0
    if args.fault is not None and args.fault not in FAULTS:
        print(
            f"error: unknown fault {args.fault!r}; known: {sorted(FAULTS)}",
            file=sys.stderr,
        )
        return 2
    # Sensitivity mode stops at the first hit: one minimal repro is the
    # deliverable, not a census of everything the fault breaks.
    stop = 1 if args.fault is not None else None
    result = fuzz_run(
        args.count, seed=args.seed, fault=args.fault, stop_at=stop
    )
    mode = f"fault={args.fault}" if args.fault else "clean"
    print(f"fuzz: {result.cases} case(s), {result.checks} tier checks ({mode})")
    if not result.disagreeing:
        if args.fault is not None:
            print(
                f"HARNESS INSENSITIVE: injected fault {args.fault!r} "
                f"produced no disagreement in {result.cases} case(s)"
            )
            return 1
        print("all tiers agree on every case")
        return 0
    print(f"{len(result.disagreeing)} disagreeing case(s)")
    for case, report in result.disagreeing:
        bad = ", ".join(c.name for c in report.disagreements)
        print(f"  seed {case.seed}: {bad}")
        if args.no_shrink:
            continue
        sr = shrink(case, report, fault=args.fault)
        print(
            f"  shrunk to {sr.command_count} command(s), "
            f"{len(sr.ast.decls)} variable(s) "
            f"({sr.evaluations} candidate evaluations):"
        )
        for line in sr.source.splitlines():
            print(f"    {line}")
        p_text = " /\\ ".join(sr.p_conjuncts)
        q_text = " /\\ ".join(sr.q_conjuncts)
        print(f"    p := {p_text}")
        print(f"    q := {q_text}")
        if args.corpus_dir is not None:
            note = f"repro fuzz --seed {args.seed} --count {args.count}"
            if args.fault:
                note += f" --fault {args.fault}"
            path = write_corpus_entry(
                args.corpus_dir, corpus_entry(sr, note=note)
            )
            print(f"    corpus entry : {path}")
    # With a fault armed, finding the disagreement is the passing outcome;
    # without one, every disagreement is an engine bug.
    return 0 if args.fault is not None else 1


def _cmd_compose50(args) -> int:
    """The assume–guarantee flagship: certify delivery for a product
    whose encoded space is far beyond every exploration tier, without
    materializing a single product state.

    Builds the heterogeneous pipeline ∘ allocator stack, synthesizes
    per-component lemmas on the components' own small spaces, assembles
    the compositional certificate, and re-checks it with
    :func:`repro.api.verify` (``tier="compositional"``) — footprint-local
    obligations only, work linear in the number of components.
    ``--prove`` additionally prints the component lemma table and the
    guarantees-calculus derivation trail.
    """
    import time

    from repro.api import verify
    from repro.systems.compose_proof import (
        build_delivery_certificate,
        build_hetero_stack,
        encoded_size,
    )

    stages = 50 if args.stages is None else args.stages
    t0 = time.perf_counter()
    pa = build_hetero_stack(stages, clients=args.clients, total=args.total)
    cert = build_delivery_certificate(pa)
    t_build = time.perf_counter() - t0
    size = encoded_size(pa)
    print(pa.system.name)
    print(
        f"encoded space : {size:.3e} states ({size.bit_length()} bits — "
        "beyond every exploration tier)"
    )
    print(
        f"components    : {len(pa.components)} "
        f"({stages} stages, {args.clients} clients, cap {args.total}..."
        f"{args.total + 2})"
    )
    print(
        f"certificate   : {cert.proof.count_nodes()} rule applications, "
        f"{len(cert.component_certs)} component lemmas "
        f"(built in {t_build:.2f} s)"
    )
    _note_run(program=pa.system, tier="compositional")
    t0 = time.perf_counter()
    verdict = verify(None, cert)
    t_check = time.perf_counter() - t0
    _note_verdict(verdict)
    print(verdict.explain())
    m = verdict.metrics
    print(
        f"check         : {m.get('obligations', 0)} obligations, "
        f"{m.get('frame_skips', 0)} frame-rule skips, "
        f"{m.get('footprint_evaluations', 0)} footprint evaluations "
        f"in {t_check:.2f} s"
    )
    print("product states explored: 0 (every obligation is footprint-local)")
    if args.prove:
        print()
        print("component lemmas (each checked on its own space):")
        for cc in cert.component_certs:
            print(f"  {cc.describe()}")
        print()
        print("guarantees-calculus derivation:")
        for line in cert.guarantee_trail:
            if len(line) > 200:
                line = line[:197] + "..."
            print(f"  {line}")
        hist = cert.proof.rule_histogram()
        shape = ", ".join(f"{k}×{v}" for k, v in sorted(hist.items()))
        print()
        print(f"composition rule tree (sharing expanded): {shape}")
    if verdict.holds is not True:
        for f in verdict.witness["failures"][:8]:
            print(f"  - {f}")
        return 1
    return 0


def _prove_leadsto(program, prop, result, *, strong: bool, check_levels=None) -> int:
    """Certify one scenario leads-to verdict (the ``--prove`` path).

    Holding properties get a synthesized kernel certificate (sparse-tier
    induction over the reachable subspace when the space routes sparse),
    re-checked by the batched columnar kernel
    (:func:`repro.semantics.synthesis.check_certificate_batched`) — one
    vectorized pass per command over all levels, so even 10⁵-level
    certificates check in seconds; ``check_levels`` optionally caps the
    certificate size the check runs at.  Failing properties get the
    confining-path witness printed state by state.  Returns 1 on
    certification failure, 0 otherwise.
    """
    import time

    from repro.errors import ProofError
    from repro.semantics.synthesis import (
        check_certificate_batched,
        synthesize_leadsto_proof,
    )

    fairness = "strong" if strong else "weak"
    if not result.holds:
        path = result.witness.get("confining_path")
        reach = result.witness.get("path")
        if reach:
            print(
                f"    reached in {len(reach) - 1} step(s) via "
                f"{' -> '.join(result.witness.get('path_commands', []))}"
            )
        if path:
            print(f"    confining path ({len(path)} ¬q-state(s) into a fair SCC):")
            for state in path[:8]:
                print(f"      {state!r}")
            if len(path) > 8:
                print(f"      … {len(path) - 8} more")
        # A failing property must also make the synthesizer refuse.
        try:
            synthesize_leadsto_proof(program, prop.p, prop.q, fairness=fairness)
        except ProofError as exc:
            print(f"    synthesis refuses (as it must): {exc}")
            return 0
        print("    UNEXPECTED: synthesis produced a proof of a failing property")
        return 1
    proof = synthesize_leadsto_proof(program, prop.p, prop.q, fairness=fairness)
    hist = proof.rule_histogram()
    shape = ", ".join(f"{k}×{v}" for k, v in sorted(hist.items()))
    n_levels = len(getattr(proof, "levels", ()))
    print(
        f"    certificate: {proof.count_nodes()} rule applications "
        f"({shape}), {n_levels} variant levels, {fairness} fairness"
    )
    if check_levels is not None and n_levels > check_levels:
        print(
            f"    kernel check skipped ({n_levels} levels > "
            f"--check-levels {check_levels})"
        )
        return 0
    t0 = time.perf_counter()
    check = check_certificate_batched(proof, program)
    dt = time.perf_counter() - t0
    _note_verdict(check)
    rate = f", {n_levels / dt:,.0f} levels/s" if n_levels and dt > 0 else ""
    print(f"    {check.explain()}")
    print(f"    kernel: {check.mode} pass in {dt:.2f} s{rate}")
    return 0 if check.ok else 1


def _cmd_serve(args) -> int:
    """Run the certification service until interrupted."""
    from repro.service import ServiceConfig, serve

    try:
        config = ServiceConfig(
            workers=args.workers,
            cache_dir=str(args.cache_dir) if args.cache_dir else None,
            max_pending=args.max_pending,
            max_retries=args.max_retries,
            default_timeout=args.default_timeout,
            stall_grace=args.stall_grace,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"certification service on http://{args.host}:{args.port} "
        f"({config.workers} worker(s), "
        f"cache={'off' if not config.cache_dir else config.cache_dir})",
        file=sys.stderr,
    )
    serve(config, host=args.host, port=args.port)
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "check": _cmd_check,
    "prove": _cmd_prove,
    "simulate": _cmd_simulate,
    "reproduce": _cmd_reproduce,
    "scenario": _cmd_scenario,
    "fuzz": _cmd_fuzz,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if _obs_requested(args):
            return _run_with_obs(args)
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
