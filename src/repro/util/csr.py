"""Compressed-sparse-row (CSR) graph kernels.

The semantic engine stores the union transition graph of a program as a
pair of CSR adjacency structures (forward and reverse); every reachability,
closure, and SCC computation is a sequence of the array kernels below, with
Python work proportional to the number of BFS *levels*, never to the number
of nodes or edges.

A CSR adjacency is the pair ``(indptr, nbr)``: the neighbors of node ``v``
are ``nbr[indptr[v]:indptr[v + 1]]``.  ``indptr`` is always ``int64``
(cumulative edge counts can exceed the node dtype); ``nbr`` holds node ids
in the minimal signed dtype for the space (``int32`` whenever the node
count fits, halving memory traffic on large spaces — see
:func:`minimal_int_dtype`).

Subgraphs induced by a boolean node mask are first-class:
:func:`masked_subgraph` compacts a cached full-graph CSR onto the masked
nodes in a handful of vectorized passes, so per-query subgraph views are
cheap relative to rebuilding adjacency from successor tables.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "minimal_int_dtype",
    "in_sorted",
    "build_csr",
    "dedup_edges",
    "union_edges",
    "csr_neighbors",
    "masked_subgraph",
]


def minimal_int_dtype(n: int) -> np.dtype:
    """Smallest signed integer dtype able to index ``n`` nodes."""
    return np.dtype(np.int32) if n < 2**31 else np.dtype(np.int64)


def in_sorted(sorted_arr: np.ndarray, vals: np.ndarray) -> np.ndarray:
    """Membership mask of ``vals`` in the sorted array ``sorted_arr``.

    The binary-search membership kernel shared by the sparse explorer's
    interning BFS and the support-backed predicates
    (:class:`repro.core.predicates.SupportPredicate`).
    """
    if sorted_arr.size == 0:
        return np.zeros(vals.shape[0], dtype=bool)
    pos = np.searchsorted(sorted_arr, vals)
    clipped = np.minimum(pos, sorted_arr.size - 1)
    return (pos < sorted_arr.size) & (sorted_arr[clipped] == vals)


#: Largest node count for which the scalar pair key ``src * n + dst`` stays
#: inside ``int64`` (``isqrt(2**63 - 1)``).  Above it :func:`dedup_edges`
#: switches to the sort-based fallback instead of a 128-bit key.
PAIR_KEY_MAX = 3_037_000_499


def dedup_edges(src: np.ndarray, dst: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Remove duplicate ``(src, dst)`` pairs (edge multiplicity is
    irrelevant to reachability and SCC structure).

    For ``n ≤`` :data:`PAIR_KEY_MAX` pairs are encoded as ``src * n + dst``
    scalars and uniqued in one pass.  Beyond that the product would need an
    int128, so the overflow-safe fallback lexicographically sorts the pair
    columns and drops adjacent duplicates — same result, no wide key.
    """
    if n <= PAIR_KEY_MAX:
        key = src.astype(np.int64) * np.int64(n) + dst.astype(np.int64)
        key = np.unique(key)
        return key // n, key % n
    order = np.lexsort((dst, src))
    s = src[order].astype(np.int64, copy=False)
    d = dst[order].astype(np.int64, copy=False)
    if s.size:
        keep = np.empty(s.size, dtype=bool)
        keep[0] = True
        keep[1:] = (s[1:] != s[:-1]) | (d[1:] != d[:-1])
        s, d = s[keep], d[keep]
    return s, d


#: Node count above which :func:`union_edges` switches from the
#: single-pass gather to the two-pass preallocated accumulation (the
#: single pass recomputes nothing but briefly holds every per-table
#: scratch array at once, which only matters near the dense capacity).
UNION_TWO_PASS_MIN = 1 << 20


def union_edges(
    n: int, tables: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicated union edge set of successor ``tables``, self-loops
    dropped, accumulated **chunked per command**.

    Above :data:`UNION_TWO_PASS_MIN` nodes this runs two passes over the
    tables: the first only counts moved states per table, the second
    writes each table's ``(src, dst)`` pairs into its slice of one
    preallocated edge-list pair.  Peak scratch is the edge list plus a
    single boolean mask — roughly half the old
    concatenate-a-list-of-per-command-arrays peak, which is what keeps
    union-CSR assembly feasible for spaces near ``StateSpace.DENSE_MAX``.
    Small graphs keep the cheaper single pass.
    """
    base = np.arange(n, dtype=np.int64)
    if n < UNION_TWO_PASS_MIN:
        srcs, dsts = [], []
        for table in tables:
            moved = table != base
            srcs.append(base[moved])
            dsts.append(table[moved])
        src = np.concatenate(srcs) if srcs else base[:0]
        dst = np.concatenate(dsts) if dsts else base[:0]
        return dedup_edges(src, dst, n)
    counts = [int(np.count_nonzero(table != base)) for table in tables]
    total = sum(counts)
    src = np.empty(total, dtype=np.int64)
    dst = np.empty(total, dtype=np.int64)
    pos = 0
    for table, count in zip(tables, counts):
        if count == 0:
            continue
        moved = table != base
        src[pos:pos + count] = base[moved]
        dst[pos:pos + count] = table[moved]
        pos += count
    return dedup_edges(src, dst, n)


def build_csr(
    src: np.ndarray, dst: np.ndarray, n: int, dtype: np.dtype | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Build ``(indptr, nbr)`` from an edge list (no implicit dedup).

    Neighbor lists are ordered by source (stable within a source), and
    ``nbr`` is cast to ``dtype`` (default: :func:`minimal_int_dtype`).
    """
    if dtype is None:
        dtype = minimal_int_dtype(n)
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.argsort(src, kind="stable")
    nbr = dst[order].astype(dtype, copy=False)
    return indptr, nbr


def csr_neighbors(
    indptr: np.ndarray, nbr: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """Concatenated neighbor lists of the ``frontier`` nodes.

    The output is grouped by frontier position (all neighbors of
    ``frontier[0]`` first, then ``frontier[1]``, …) — segment ids for the
    groups are ``np.repeat(np.arange(len(frontier)), counts)``.
    """
    k = frontier.shape[0]
    if k == 0:
        return nbr[:0]
    # Narrow frontiers (deep BFS levels, Kahn peels) skip the gather
    # machinery: direct slices are an order of magnitude cheaper.
    if k == 1:
        v = frontier[0]
        return nbr[indptr[v]:indptr[v + 1]]
    if k <= 4:
        return np.concatenate([nbr[indptr[v]:indptr[v + 1]] for v in frontier])
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return nbr[:0]
    base = np.repeat(starts, counts)
    within = np.arange(total, dtype=np.int64)
    within -= np.repeat(np.cumsum(counts) - counts, counts)
    return nbr[base + within]


def masked_subgraph(
    indptr: np.ndarray, nbr: np.ndarray, mask: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR of the subgraph induced by ``mask``, on compacted node ids.

    Returns ``(sub_indptr, sub_nbr, nodes)`` where ``nodes`` (ascending)
    maps compact id → original id, and ``sub_nbr`` holds compact ids.  An
    edge survives iff both endpoints satisfy ``mask``.
    """
    nodes = np.flatnonzero(mask)
    m = nodes.shape[0]
    dtype = nbr.dtype
    remap = np.full(mask.shape[0], -1, dtype=dtype)
    remap[nodes] = np.arange(m, dtype=dtype)
    counts = indptr[nodes + 1] - indptr[nodes]
    nbrs = csr_neighbors(indptr, nbr, nodes)
    keep = mask[nbrs]
    seg = np.repeat(np.arange(m, dtype=np.int64), counts)[keep]
    sub_counts = np.bincount(seg, minlength=m)
    sub_indptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(sub_counts, out=sub_indptr[1:])
    sub_nbr = remap[nbrs[keep]]
    return sub_indptr, sub_nbr, nodes
