"""Minimal ASCII table formatting for example scripts and bench harnesses.

The benchmark harnesses print the per-experiment result rows recorded in
``EXPERIMENTS.md``; this module keeps that output aligned and dependency-free.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    min_width: int = 3,
    sep: str = "  ",
) -> str:
    """Render ``rows`` under ``headers`` as a left-aligned ASCII table.

    >>> print(format_table(["n", "ok"], [[3, True], [10, False]]))
    n   ok
    --  -----
    3   True
    10  False
    """
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    ncols = len(cells[0])
    for row in cells:
        if len(row) != ncols:
            raise ValueError(
                f"row has {len(row)} cells, expected {ncols}: {row!r}"
            )
    widths = [
        max(min_width, *(len(row[j]) for row in cells)) for j in range(ncols)
    ]
    out = [sep.join(cells[0][j].ljust(widths[j]) for j in range(ncols)).rstrip()]
    out.append(sep.join("-" * widths[j] for j in range(ncols)).rstrip())
    for row in cells[1:]:
        out.append(sep.join(row[j].ljust(widths[j]) for j in range(ncols)).rstrip())
    return "\n".join(out)
