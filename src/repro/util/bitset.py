"""Bitset helpers over arbitrary-precision Python integers.

Node sets in :mod:`repro.graph` are represented as plain ``int`` bitmasks:
bit ``i`` set means node ``i`` is a member.  Python integers give branch-free
unions/intersections of arbitrary width and are significantly faster than
``set[int]`` for the closure fixpoints used by ``R*``/``A*`` computations.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = ["bit", "bitset_from_iterable", "bitset_to_list", "iter_bits", "popcount"]


def bit(i: int) -> int:
    """Return the singleton bitset ``{i}``.

    >>> bit(3)
    8
    """
    if i < 0:
        raise ValueError(f"bit index must be non-negative, got {i}")
    return 1 << i


def bitset_from_iterable(items: Iterable[int]) -> int:
    """Build a bitset from an iterable of non-negative node indices.

    >>> bitset_from_iterable([0, 2]) == 0b101
    True
    """
    mask = 0
    for i in items:
        mask |= bit(i)
    return mask


def bitset_to_list(mask: int) -> list[int]:
    """Return the sorted list of members of ``mask``.

    >>> bitset_to_list(0b1010)
    [1, 3]
    """
    return list(iter_bits(mask))


def iter_bits(mask: int) -> Iterator[int]:
    """Yield members of ``mask`` in increasing order.

    Uses ``mask & -mask`` to peel the lowest set bit, so the cost is
    proportional to the population count, not the width.
    """
    if mask < 0:
        raise ValueError("bitsets must be non-negative integers")
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def popcount(mask: int) -> int:
    """Number of members of ``mask``.

    >>> popcount(0b1011)
    3
    """
    if mask < 0:
        raise ValueError("bitsets must be non-negative integers")
    return mask.bit_count()
