"""Fault-injection harness: prove the engine fails closed, by breaking it.

The fault-tolerance layer (checkpoints, budgets, graceful degradation)
makes claims that only hold if every kernel behaves correctly *under
failure*: an interrupt at a BFS-level boundary must never publish a
half-written checkpoint, a corrupted checkpoint must be refused before a
single array is trusted, and no failure path may ever turn a partially
explored subspace into a HOLDS/FAILS verdict.  This module provides the
controlled failures those tests need.

Design
------
Production code calls :func:`fault_point` at its instrumented sites —
a name plus optional diagnostic detail.  With nothing armed this is one
module-global boolean check (no dict lookup, no allocation), so the
instrumentation is free on hot paths.  Tests arm a site with
:func:`inject`::

    with inject("sparse.explore.level", KeyboardInterrupt, after=3):
        explore(program, checkpoint=policy)   # interrupted at level 4

Instrumented sites
------------------
``sparse.explore.level``
    Start of each BFS level in :func:`repro.semantics.sparse.explorer.
    explore` (detail: ``level``, ``explored``).  The canonical place to
    simulate interrupts/crashes between levels.
``sparse.explore.alloc``
    Before the per-level successor concatenation — the explorer's
    dominant allocation (detail: ``level``, ``entries``).  Arm with
    ``MemoryError`` to simulate a memory spike mid-exploration.
``checkpoint.write.begin``
    After the temp file is opened, before any byte is written.
``checkpoint.write.payload``
    After each payload array is written to the temp file — firing here
    leaves a structurally truncated temp file behind.
``checkpoint.write.rename``
    After the temp file is fsynced, before the atomic publish
    (``os.replace``) — the "crash at the worst moment" point: a valid
    temp file exists but the destination must be untouched.
``service.worker.check``
    Inside a certification-service worker, between parsing a request and
    running the engine (detail: ``digest``, ``kind``).  The canonical
    place to simulate a worker crash (action ``kill``) or a hung worker
    (action ``stall:SECONDS``) mid-check.
``service.cache.write.payload`` / ``service.cache.write.rename``
    The service cache's verdict-entry write stages, mirroring the
    checkpoint write sites: firing at ``payload`` leaves a torn temp
    file, firing at ``rename`` crashes after fsync but before the atomic
    ``os.replace`` publish.
``service.queue.admit``
    Before a certification-service request is admitted to the bounded
    queue — arm to force load shedding regardless of actual queue depth.

Cross-process arming
--------------------
:func:`inject` arms a site in *this* process; the certification
service's workers are **subprocesses**, so their faults are armed from
the environment instead: :func:`arm_from_spec` parses a spec string like
``"service.worker.check=kill:after=2;service.cache.write.rename=fault"``
and arms each site for the life of the process, and worker mains call
``arm_from_env()`` at startup (the supervisor forwards the variable).
Besides exception names, two *actions* are recognized: ``kill`` —
``os._exit(137)``, an un-catchable crash — and ``stall:SECONDS`` — a
plain sleep simulating a hung worker (no exception; the site returns
afterwards).

File-corruption helpers (:func:`flip_byte`, :func:`truncate_file`) are
provided for tests that damage a *published* checkpoint rather than
interrupting a write.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "InjectedFault",
    "fault_point",
    "inject",
    "arm_from_spec",
    "arm_from_env",
    "disarm_all",
    "active_sites",
    "FAULTS_ENV",
    "flip_byte",
    "truncate_file",
]

#: Environment variable :func:`arm_from_env` reads by default.  The
#: certification service's supervisor forwards it verbatim to worker
#: subprocesses, so one spec string arms the same faults fleet-wide.
FAULTS_ENV = "REPRO_FAULTS"


class InjectedFault(Exception):
    """Default exception raised at an armed fault point.

    Intentionally **not** a :class:`~repro.errors.ReproError`: injected
    faults simulate *environmental* failures (crashes, memory spikes,
    interrupts), which the library's own ``except ReproError`` clauses
    must never swallow.
    """


@dataclass
class _Plan:
    """One armed site: which hit fires, what it raises, how often."""

    site: str
    make: Callable[[], BaseException]
    after: int
    times: int | None
    hits: int = 0
    fired: int = 0
    log: list[dict] = field(default_factory=list)


_PLANS: dict[str, _Plan] = {}
_ARMED: bool = False  # fast-path guard: False ⇒ fault_point is a no-op


def fault_point(site: str, **detail) -> None:
    """Fire the armed fault for ``site``, if any.

    Called by production code at instrumented sites.  With no fault
    armed anywhere this returns after a single boolean check.  A plan
    whose factory performs a side effect and returns ``None`` (the
    ``stall:SECONDS`` action) fires without raising.
    """
    if not _ARMED:
        return
    plan = _PLANS.get(site)
    if plan is None:
        return
    plan.hits += 1
    plan.log.append(detail)
    if plan.hits <= plan.after:
        return
    if plan.times is not None and plan.fired >= plan.times:
        return
    plan.fired += 1
    outcome = plan.make()
    if outcome is not None:
        raise outcome


def _factory(exc) -> Callable[[], BaseException]:
    if isinstance(exc, BaseException):
        return lambda: exc
    if isinstance(exc, type) and issubclass(exc, BaseException):
        return exc
    if callable(exc):
        return exc
    raise TypeError(f"exc must be an exception, class or factory, got {exc!r}")


@contextmanager
def inject(
    site: str,
    exc: object = InjectedFault,
    *,
    after: int = 0,
    times: int | None = 1,
) -> Iterator[_Plan]:
    """Arm ``site`` to raise ``exc`` for the duration of the block.

    ``exc`` may be an exception instance, class, or zero-argument
    factory.  The first ``after`` hits pass through; the fault then
    fires ``times`` times (``None`` = every subsequent hit).  Yields the
    plan, whose ``hits``/``fired``/``log`` fields let tests assert the
    site was actually reached.  Re-arming an already-armed site is a
    test bug and raises ``RuntimeError``.
    """
    global _ARMED
    if site in _PLANS:
        raise RuntimeError(f"fault site {site!r} is already armed")
    plan = _Plan(site=site, make=_factory(exc), after=after, times=times)
    _PLANS[site] = plan
    _ARMED = True
    try:
        yield plan
    finally:
        _PLANS.pop(site, None)
        _ARMED = bool(_PLANS)


#: Named exceptions recognized by :func:`arm_from_spec` action tokens.
_NAMED_EXCEPTIONS: dict[str, type[BaseException]] = {
    "fault": InjectedFault,
    "memory": MemoryError,
    "interrupt": KeyboardInterrupt,
    "oserror": OSError,
}


def _action_factory(tokens: list[str]) -> Callable[[], BaseException | None]:
    """Build a plan factory from a spec's action tokens.

    ``kill`` exits the process with status 137 (the SIGKILL convention) —
    un-catchable, like a real OOM kill; ``stall SECONDS`` sleeps and
    returns ``None`` (the site does not raise); any other token names an
    exception from the registry above.
    """
    action = tokens[0]
    if action == "kill":

        def _kill() -> None:
            os._exit(137)

        return _kill
    if action == "stall":
        if len(tokens) < 2:
            raise ValueError("stall action needs a duration: 'stall:SECONDS'")
        seconds = float(tokens[1])

        def _stall() -> None:
            time.sleep(seconds)

        return _stall
    exc = _NAMED_EXCEPTIONS.get(action)
    if exc is None:
        raise ValueError(
            f"unknown fault action {action!r}; expected 'kill', "
            f"'stall:SECONDS', or one of {sorted(_NAMED_EXCEPTIONS)}"
        )
    return exc


def arm_from_spec(spec: str) -> tuple[str, ...]:
    """Arm fault sites from a spec string, for the life of the process.

    Grammar: ``site=action[:after=N][:times=N|all]`` joined by ``;``.
    Actions: ``kill`` (``os._exit(137)``), ``stall:SECONDS`` (sleep, no
    exception), or a named exception (``fault`` / ``memory`` /
    ``interrupt`` / ``oserror``).  ``times`` defaults to 1, matching
    :func:`inject`; ``times=all`` fires on every hit past ``after``.
    Unlike :func:`inject` there is no scope to exit — this is the
    cross-process arming path (worker subprocesses read it from the
    environment at startup), so the plans persist until
    :func:`disarm_all`.  Returns the armed site names.
    """
    global _ARMED
    armed: list[str] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        site, sep, rest = clause.partition("=")
        site = site.strip()
        if not sep or not site or not rest:
            raise ValueError(f"malformed fault clause {clause!r}")
        if site in _PLANS:
            raise RuntimeError(f"fault site {site!r} is already armed")
        after, times = 0, 1
        action_tokens: list[str] = []
        for token in rest.split(":"):
            token = token.strip()
            if token.startswith("after="):
                after = int(token[len("after="):])
            elif token.startswith("times="):
                val = token[len("times="):]
                times = None if val == "all" else int(val)
            else:
                action_tokens.append(token)
        if not action_tokens:
            raise ValueError(f"fault clause {clause!r} names no action")
        plan = _Plan(
            site=site,
            make=_action_factory(action_tokens),
            after=after,
            times=times,
        )
        _PLANS[site] = plan
        armed.append(site)
    _ARMED = bool(_PLANS)
    return tuple(armed)


def arm_from_env(var: str = FAULTS_ENV) -> tuple[str, ...]:
    """Arm fault sites from environment variable ``var`` (if set).

    Called by subprocess entry points (the certification-service worker
    main) so a parent process can inject faults across the process
    boundary; returns the armed sites (empty when the variable is unset).
    """
    spec = os.environ.get(var, "")
    if not spec:
        return ()
    return arm_from_spec(spec)


def disarm_all() -> None:
    """Drop every armed plan (spec-armed or leaked); test hygiene."""
    global _ARMED
    _PLANS.clear()
    _ARMED = False


def active_sites() -> tuple[str, ...]:
    """Names of currently armed sites (diagnostic)."""
    return tuple(sorted(_PLANS))


# ---------------------------------------------------------------------------
# File-corruption helpers
# ---------------------------------------------------------------------------


def flip_byte(path, offset: int) -> None:
    """XOR one byte of ``path`` in place (negative offsets from the end)."""
    with open(path, "r+b") as f:
        size = os.fstat(f.fileno()).st_size
        if offset < 0:
            offset += size
        if not 0 <= offset < size:
            raise ValueError(f"offset {offset} outside file of {size} bytes")
        f.seek(offset)
        byte = f.read(1)
        f.seek(offset)
        f.write(bytes([byte[0] ^ 0xFF]))


def truncate_file(path, nbytes: int) -> None:
    """Truncate ``path`` to its first ``nbytes`` bytes."""
    with open(path, "r+b") as f:
        f.truncate(nbytes)
