"""Fault-injection harness: prove the engine fails closed, by breaking it.

The fault-tolerance layer (checkpoints, budgets, graceful degradation)
makes claims that only hold if every kernel behaves correctly *under
failure*: an interrupt at a BFS-level boundary must never publish a
half-written checkpoint, a corrupted checkpoint must be refused before a
single array is trusted, and no failure path may ever turn a partially
explored subspace into a HOLDS/FAILS verdict.  This module provides the
controlled failures those tests need.

Design
------
Production code calls :func:`fault_point` at its instrumented sites —
a name plus optional diagnostic detail.  With nothing armed this is one
module-global boolean check (no dict lookup, no allocation), so the
instrumentation is free on hot paths.  Tests arm a site with
:func:`inject`::

    with inject("sparse.explore.level", KeyboardInterrupt, after=3):
        explore(program, checkpoint=policy)   # interrupted at level 4

Instrumented sites
------------------
``sparse.explore.level``
    Start of each BFS level in :func:`repro.semantics.sparse.explorer.
    explore` (detail: ``level``, ``explored``).  The canonical place to
    simulate interrupts/crashes between levels.
``sparse.explore.alloc``
    Before the per-level successor concatenation — the explorer's
    dominant allocation (detail: ``level``, ``entries``).  Arm with
    ``MemoryError`` to simulate a memory spike mid-exploration.
``checkpoint.write.begin``
    After the temp file is opened, before any byte is written.
``checkpoint.write.payload``
    After each payload array is written to the temp file — firing here
    leaves a structurally truncated temp file behind.
``checkpoint.write.rename``
    After the temp file is fsynced, before the atomic publish
    (``os.replace``) — the "crash at the worst moment" point: a valid
    temp file exists but the destination must be untouched.

File-corruption helpers (:func:`flip_byte`, :func:`truncate_file`) are
provided for tests that damage a *published* checkpoint rather than
interrupting a write.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "InjectedFault",
    "fault_point",
    "inject",
    "active_sites",
    "flip_byte",
    "truncate_file",
]


class InjectedFault(Exception):
    """Default exception raised at an armed fault point.

    Intentionally **not** a :class:`~repro.errors.ReproError`: injected
    faults simulate *environmental* failures (crashes, memory spikes,
    interrupts), which the library's own ``except ReproError`` clauses
    must never swallow.
    """


@dataclass
class _Plan:
    """One armed site: which hit fires, what it raises, how often."""

    site: str
    make: Callable[[], BaseException]
    after: int
    times: int | None
    hits: int = 0
    fired: int = 0
    log: list[dict] = field(default_factory=list)


_PLANS: dict[str, _Plan] = {}
_ARMED: bool = False  # fast-path guard: False ⇒ fault_point is a no-op


def fault_point(site: str, **detail) -> None:
    """Fire the armed fault for ``site``, if any.

    Called by production code at instrumented sites.  With no fault
    armed anywhere this returns after a single boolean check.
    """
    if not _ARMED:
        return
    plan = _PLANS.get(site)
    if plan is None:
        return
    plan.hits += 1
    plan.log.append(detail)
    if plan.hits <= plan.after:
        return
    if plan.times is not None and plan.fired >= plan.times:
        return
    plan.fired += 1
    raise plan.make()


def _factory(exc) -> Callable[[], BaseException]:
    if isinstance(exc, BaseException):
        return lambda: exc
    if isinstance(exc, type) and issubclass(exc, BaseException):
        return exc
    if callable(exc):
        return exc
    raise TypeError(f"exc must be an exception, class or factory, got {exc!r}")


@contextmanager
def inject(
    site: str,
    exc: object = InjectedFault,
    *,
    after: int = 0,
    times: int | None = 1,
) -> Iterator[_Plan]:
    """Arm ``site`` to raise ``exc`` for the duration of the block.

    ``exc`` may be an exception instance, class, or zero-argument
    factory.  The first ``after`` hits pass through; the fault then
    fires ``times`` times (``None`` = every subsequent hit).  Yields the
    plan, whose ``hits``/``fired``/``log`` fields let tests assert the
    site was actually reached.  Re-arming an already-armed site is a
    test bug and raises ``RuntimeError``.
    """
    global _ARMED
    if site in _PLANS:
        raise RuntimeError(f"fault site {site!r} is already armed")
    plan = _Plan(site=site, make=_factory(exc), after=after, times=times)
    _PLANS[site] = plan
    _ARMED = True
    try:
        yield plan
    finally:
        _PLANS.pop(site, None)
        _ARMED = bool(_PLANS)


def active_sites() -> tuple[str, ...]:
    """Names of currently armed sites (diagnostic)."""
    return tuple(sorted(_PLANS))


# ---------------------------------------------------------------------------
# File-corruption helpers
# ---------------------------------------------------------------------------


def flip_byte(path, offset: int) -> None:
    """XOR one byte of ``path`` in place (negative offsets from the end)."""
    with open(path, "r+b") as f:
        size = os.fstat(f.fileno()).st_size
        if offset < 0:
            offset += size
        if not 0 <= offset < size:
            raise ValueError(f"offset {offset} outside file of {size} bytes")
        f.seek(offset)
        byte = f.read(1)
        f.seek(offset)
        f.write(bytes([byte[0] ^ 0xFF]))


def truncate_file(path, nbytes: int) -> None:
    """Truncate ``path`` to its first ``nbytes`` bytes."""
    with open(path, "r+b") as f:
        f.truncate(nbytes)
