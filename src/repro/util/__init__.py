"""Small shared utilities: bitsets, ASCII tables, seeded RNG helpers."""

from repro.util.bitset import (
    bit,
    bitset_from_iterable,
    bitset_to_list,
    iter_bits,
    popcount,
)
from repro.util.rng import make_rng, spawn_rngs
from repro.util.tables import format_table

__all__ = [
    "bit",
    "bitset_from_iterable",
    "bitset_to_list",
    "iter_bits",
    "popcount",
    "make_rng",
    "spawn_rngs",
    "format_table",
]
