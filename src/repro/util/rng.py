"""Seeded random-number-generator helpers.

All stochastic code in the library (graph generators, random schedulers,
randomized tests and benchmarks) goes through :func:`make_rng` so that every
run is reproducible from an integer seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs"]


def make_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Accepts an integer seed, ``None`` (OS entropy; discouraged outside
    interactive use) or an existing generator (returned unchanged so that
    callers can thread one RNG through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Return ``n`` independent generators derived from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so streams are
    statistically independent — useful when benchmarks fan out work.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
