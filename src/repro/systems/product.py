"""Pipeline × allocator product: composition coupling two case studies.

The paper's program model composes by **union**, so two systems that name
the same shared variable genuinely interact when composed.  This module
exercises that at a scale only the capacity-tiered engine can hold: the
counter pipeline of :mod:`repro.systems.pipeline` and the client side of
the resource allocator (:mod:`repro.systems.allocator`) share the token
pool ``avail`` — clients compete with the pipeline's source for the very
tokens the pipeline is supposed to deliver.

The encoded space is the full product
``(total+1)^2 · (cap+1)^stages · (total+1)^clients`` — the default
``stages=16, clients=3, total=3`` build is ``4^21 ≈ 4.4 · 10^12``, five
orders of magnitude beyond the dense capacity — while conservation
(``avail + Σ c_i + done + Σ hold_j = total``) confines the reachable set
to the weak compositions of ``total`` tokens into ``stages + clients + 2``
bins: **1771** states, which the sparse tier interns in milliseconds.

The composition changes the *verdicts*, not just the size — that is the
point of the exhibit:

- ``invariant conservation`` still holds (reachable-invariant at scale);
- **delivery under weak fairness is now false**: the scheduler can
  ping-pong one token between a client's fair ``take``/``give`` pair and
  fire ``feed`` only while the pool is empty — a fair execution in which
  the pipeline starves forever.  The standalone pipeline's delivery proof
  does **not** survive composition with a competing environment.
- **delivery under strong fairness holds**: whenever the pool cycle makes
  ``avail > 0`` recur, strong fairness forces an *enabled* ``feed``
  eventually, and every enabled fair move strictly advances tokens toward
  ``done``.

Both verdicts are decided **and certified** by the sparse tier end to
end: ``check_leadsto`` refuses delivery under weak fairness with a
confining-path witness into the starving clients' fair SCC, and
``synthesize_leadsto_proof(..., fairness="strong")`` produces a
kernel-checked induction certificate (~1 100 variant levels over the
1 771 reachable states) without ever allocating a full-space array —
``python -m repro scenario product --prove`` prints both artifacts.
The differential suite pins the same verdicts densely on a small
instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.composition import compose_all
from repro.core.expressions import esum
from repro.core.predicates import ExprPredicate, Predicate
from repro.core.program import Program
from repro.core.properties import Invariant, LeadsTo
from repro.core.variables import Var
from repro.systems.allocator import build_client
from repro.systems.pipeline import _build_sink, _build_source, _build_stage

__all__ = ["PipelineAllocatorSystem", "build_pipeline_allocator"]


@dataclass
class PipelineAllocatorSystem:
    """The coupled pipeline ∘ clients composition plus its properties."""

    stages: int
    clients: int
    cap: int
    total: int
    components: list[Program]
    system: Program

    @property
    def avail(self) -> Var:
        return self.system.var_named("avail")

    @property
    def done(self) -> Var:
        return self.system.var_named("done")

    def c(self, i: int) -> Var:
        """Buffer counter of pipeline stage ``i``."""
        return self.system.var_named(f"c[{i}]")

    def hold(self, j: int) -> Var:
        """Held-token count of client ``j``."""
        return self.system.var_named(f"hold[{j}]")

    # -- properties -----------------------------------------------------------

    def conservation_predicate(self) -> Predicate:
        """``avail + Σ c_i + done + Σ hold_j = total``."""
        tokens = (
            self.avail.ref()
            + esum([self.c(i).ref() for i in range(self.stages)])
            + self.done.ref()
            + esum([self.hold(j).ref() for j in range(self.clients)])
        )
        return ExprPredicate(tokens == self.total)

    def conservation(self) -> Invariant:
        """``invariant conservation`` — composition preserves the token
        count even though two subsystems now move tokens."""
        return Invariant(self.conservation_predicate())

    def delivery(self) -> LeadsTo:
        """``conservation ↝ done = total``.

        **False under weak fairness** (the starvation exhibit: clients can
        soak up every token whenever the scheduler lets them), **true
        under strong fairness** — check it with both
        :func:`~repro.semantics.leadsto.check_leadsto` and
        :func:`~repro.semantics.strong_fairness.check_leadsto_strong` to
        see the composition-induced fairness gap, and certify the strong
        verdict with :func:`~repro.semantics.synthesis.
        synthesize_leadsto_proof` (``fairness="strong"``), which builds
        the induction certificate on the reachable subspace.
        """
        return LeadsTo(
            self.conservation_predicate(),
            ExprPredicate(self.done.ref() == self.total),
        )


def build_pipeline_allocator(
    stages: int,
    *,
    clients: int = 3,
    total: int = 3,
    cap: int | None = None,
) -> PipelineAllocatorSystem:
    """Compose a ``stages``-deep pipeline with ``clients`` allocator
    clients competing for the same ``total``-token pool.

    ``cap`` (default ``total``) bounds each stage buffer, as in
    :func:`repro.systems.pipeline.build_pipeline_system`.  The initial
    state is unique (full pool, empty pipeline, empty hands), so the
    sparse tier's conjunct join enumerates it directly; the semantic
    initial-state probe is skipped for the same reason it is in the
    pipeline builder — it would materialize a full-space mask.
    """
    if stages < 1:
        raise ValueError(f"need at least one stage, got {stages}")
    if clients < 1:
        raise ValueError(f"need at least one client, got {clients}")
    if total < 1:
        raise ValueError(f"need at least one token, got {total}")
    if cap is None:
        cap = total
    if cap < total:
        raise ValueError(
            f"cap={cap} < total={total} can clog the pipeline; "
            "delivery needs cap >= total"
        )
    components = [_build_source(total, cap)]
    components += [_build_stage(i, cap) for i in range(1, stages)]
    components.append(_build_sink(stages, total, cap))
    components += [build_client(j, total) for j in range(clients)]
    system = compose_all(
        components,
        name=f"PipelineAllocator[{stages}x{clients}]",
        check_init=False,
    )
    return PipelineAllocatorSystem(
        stages=stages, clients=clients, cap=cap, total=total,
        components=components, system=system,
    )
