"""Resource allocator sketch (paper's conclusion): ``guarantees`` at work.

The conclusion contrasts the priority example with a resource-allocator
case study "[making] use only of existential properties".  This module
provides that flavour: a token pool shared between an allocator and
clients, specified through existential properties (``init``, ``transient``)
and one ``guarantees``:

- conservation — ``invariant avail + Σ_i hold_i = T``;
- the pool *guarantees* that if every client keeps
  ``⟨∀k ≥ 1 : transient (hold_i = k)⟩`` (clients always give tokens
  back), the system has ``conservation ↝ avail > 0`` — a token is always
  eventually available.  (The stronger ``↝ avail = T`` is *false* even
  with polite clients: a fair take/give ping-pong keeps the pool partially
  drained forever — the model checker finds that fair cycle, and a test
  pins it.)

``guarantees`` quantifies over all compatible environments, so it is not
finitely checkable; :meth:`AllocatorSystem.guarantee` is exercised by
:meth:`~repro.core.properties.Guarantees.check_against` over explicit
environment universes (well-behaved and misbehaving clients) in the tests
— including a misbehaving client that *refutes the premise* rather than
the guarantee, which is exactly how an existential specification is meant
to fail.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.commands import GuardedCommand
from repro.core.composition import compose_all
from repro.core.domains import IntRange
from repro.core.expressions import esum, land
from repro.core.predicates import ExprPredicate
from repro.core.program import Program
from repro.core.properties import (
    Guarantees,
    Invariant,
    LeadsTo,
    PropertyFamily,
    Transient,
)
from repro.core.variables import Var

__all__ = ["AllocatorSystem", "build_allocator_system", "build_greedy_client"]


def avail_var(total: int) -> Var:
    """The shared token pool."""
    return Var.shared("avail", IntRange(0, total))


def hold_var(i: int, total: int) -> Var:
    """Client ``i``'s held-token count (shared: the allocator reads it)."""
    return Var.indexed("hold", i, IntRange(0, total))


@dataclass
class AllocatorSystem:
    """Allocator + ``n`` polite clients over a pool of ``total`` tokens."""

    n: int
    total: int
    clients: list[Program]
    system: Program

    @property
    def avail(self) -> Var:
        return self.system.var_named("avail")

    def hold(self, i: int) -> Var:
        return self.system.var_named(f"hold[{i}]")

    # -- properties ----------------------------------------------------------

    def conservation(self) -> Invariant:
        """``invariant avail + Σ hold_i = T``."""
        total_expr = self.avail.ref() + esum(
            [self.hold(i).ref() for i in range(self.n)]
        )
        return Invariant(ExprPredicate(total_expr == self.total))

    def conservation_predicate(self) -> ExprPredicate:
        """``avail + Σ hold_i = T`` as a predicate."""
        total_expr = self.avail.ref() + esum(
            [self.hold(i).ref() for i in range(self.n)]
        )
        return ExprPredicate(total_expr == self.total)

    def clients_return_tokens(self) -> PropertyFamily:
        """``⟨∀i, k ≥ 1 : transient (conservation ∧ hold_i = k)⟩`` — every
        held level is eventually left (the fair ``give`` decrements it).

        Two deliberate weakenings, each pinned by a test:

        - ``transient (hold_i > 0)`` is too strong — a client holding two
          tokens still holds one after a give, and the paper's
          ``transient`` requires a **single** command to falsify the
          predicate from every state;
        - the conjunct ``conservation`` is needed because ``give`` is
          guarded by ``avail < T`` (domain safety): in the non-conserving
          state ``hold_i = k ∧ avail = T`` the give skips.  Under
          conservation that state does not exist.
        """
        conserve = self.conservation_predicate()
        members = []
        for i in range(self.n):
            for k in range(1, self.total + 1):
                members.append(Transient(
                    conserve & ExprPredicate(self.hold(i).ref() == k)
                ))
        return PropertyFamily(
            "forall i, k >= 1 : transient (conservation /\\ hold_i = k)",
            members,
        )

    def token_available(self) -> LeadsTo:
        """``conservation ↝ avail > 0`` — the pool is never starved for
        good.  (Conditioned on conservation for the same reason the §4
        liveness is conditioned on acyclicity: the inductive semantics
        quantifies over all states, including non-conserving ones where
        everything deadlocks.)"""
        return LeadsTo(
            self.conservation_predicate(),
            ExprPredicate(self.avail.ref() > 0),
        )

    def pool_refills_fully(self) -> LeadsTo:
        """``conservation ↝ avail = T`` — **false** for ``n ≥ 2, T ≥ 2``:
        the scheduler can ping-pong one token between take and give forever
        while a second stays held.  Kept as the negative exhibit."""
        return LeadsTo(
            self.conservation_predicate(),
            ExprPredicate(self.avail.ref() == self.total),
        )

    def guarantee(self) -> Guarantees:
        """``(∀i,k : transient hold_i = k) guarantees (conservation ↝ avail > 0)``."""
        return Guarantees(self.clients_return_tokens(), self.token_available())


def build_client(i: int, total: int, *, polite: bool = True) -> Program:
    """Client ``i``: takes one token when available, returns it (fairly).

    ``polite=False`` builds a hoarder whose *return* command is missing —
    it falsifies the ``transient hold_i`` premise of the guarantee, which
    tests use to show the guarantee's implication is vacuous (not violated)
    for such environments.
    """
    hold = hold_var(i, total)
    avail = avail_var(total)
    take = GuardedCommand(
        f"take[{i}]",
        land(avail.ref() > 0, hold.ref() < total),
        [(hold, hold.ref() + 1), (avail, avail.ref() - 1)],
    )
    commands = [take]
    fair = []
    if polite:
        give = GuardedCommand(
            f"give[{i}]",
            land(hold.ref() > 0, avail.ref() < total),
            [(hold, hold.ref() - 1), (avail, avail.ref() + 1)],
        )
        commands.append(give)
        fair.append(f"give[{i}]")
    return Program(
        f"Client[{i}]",
        [hold, avail],
        ExprPredicate(hold.ref() == 0),
        commands,
        fair=fair,
    )


def build_greedy_client(i: int, total: int) -> Program:
    """A client that never returns tokens (premise-refuting environment)."""
    return build_client(i, total, polite=False)


def build_allocator_system(n: int, total: int = 3) -> AllocatorSystem:
    """Pool initialized full, ``n`` polite clients."""
    if n < 1 or total < 1:
        raise ValueError("need n >= 1 clients and total >= 1 tokens")
    avail = avail_var(total)
    pool = Program(
        "Pool",
        [avail],
        ExprPredicate(avail.ref() == total),
        [],
    )
    clients = [build_client(i, total) for i in range(n)]
    system = compose_all([pool, *clients], name=f"Allocator[{n}]")
    return AllocatorSystem(n=n, total=total, clients=clients, system=system)
