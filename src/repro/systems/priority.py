"""The §4 priority mechanism: conflict resolution by edge reversal.

Perpetually conflicting components share an orientation of the conflict
graph ``P`` as a priority relation.  Component ``i``:

- waits until it has priority over all neighbours                    (5);
- yields in finite time after receiving priority — its single fair
  command reverses **all** its edges at once                       (6, 7);
- never touches edges that are not its own                           (8).

Program encoding.  Edge ``{i, j}`` (normalized ``i < j``) becomes one
shared boolean variable ``e[i,j]``; ``True`` means ``i → j`` (the
lower-numbered endpoint has priority over the other).  The system's state
space is therefore *exactly* the set of orientations of ``P`` — the
program semantics and the graph theory of :mod:`repro.graph` share one
representation, converted by :meth:`PrioritySystem.orientation_of_state`.

The system's ``initially`` is the **acyclicity predicate** (any acyclic
orientation), matching §4.1's "we give an orientation … so that it always
remains acyclic"; a specific initial orientation can be requested instead.

Note on (10).  The paper proves ``true ↝ Priority.i`` *under the standing
invariant* that the graph is (initially, hence always) acyclic — its proof
uses invariant (17).  Our checker quantifies leads-to over **all** states
(the paper's inductive semantics), where the unconditioned property is
false: from a cyclic orientation no node need ever gain priority.  The
faithful finite-state rendering is therefore
``Acyclicity ↝ Priority.i`` — see :meth:`PrioritySystem.liveness_property`
— and tests demonstrate the cyclic counterexample explicitly.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.core.composition import compose_all, lifted
from repro.core.expressions import Expr, land, lnot
from repro.core.predicates import ExprPredicate, MaskPredicate, Predicate
from repro.core.program import Program
from repro.core.commands import GuardedCommand
from repro.core.properties import (
    Invariant,
    LeadsTo,
    Next,
    PropertyFamily,
    Stable,
    Transient,
)
from repro.core.state import State, StateSpace
from repro.core.variables import Var
from repro.errors import GraphError
from repro.graph.neighborhood import NeighborhoodGraph
from repro.graph.orientation import Orientation
from repro.graph.reachability import above_star_all, reach_star_all
from repro.util.bitset import bit

__all__ = ["PrioritySystem", "build_priority_system", "edge_var"]


def edge_var(i: int, j: int) -> Var:
    """The shared boolean variable of edge ``{i, j}``; ``True ≡ min→max``."""
    from repro.core.domains import BoolDomain

    a, b = min(i, j), max(i, j)
    return Var.indexed("e", (a, b), BoolDomain())


class PrioritySystem:
    """The composed §4 system over a concrete conflict graph.

    The reachability data the §4 proofs quantify over — ``R*``, ``A*``,
    ``|A*|`` and acyclicity per orientation (state) — is precomputed
    **lazily** on first use, making every paper predicate an O(1) mask
    lookup (:class:`~repro.core.predicates.MaskPredicate`) once built.
    With ``init="canonical"`` construction touches none of it, so the
    substrate also works over conflict graphs whose orientation space
    exceeds the dense capacity (the philosopher grids).
    """

    def __init__(
        self,
        graph: NeighborhoodGraph,
        *,
        init: Orientation | str = "acyclic",
    ) -> None:
        for i in graph.nodes():
            if graph.degree(i) == 0:
                raise GraphError(
                    f"node {i} is isolated; the §4 components are "
                    "perpetually conflicting (degree ≥ 1)"
                )
        self.graph = graph
        self.edge_vars = [edge_var(i, j) for (i, j) in graph.edges]
        self.components = [
            self._build_component(i) for i in graph.nodes()
        ]
        # Skip the semantic initial-state probe: component `initially`
        # predicates are all TRUE here (satisfiability is trivial), and
        # the probe would materialize a full-orientation-space mask —
        # minutes of decode on conflict graphs with ~24+ edges.
        merged = compose_all(self.components, name="merged", check_init=False)
        space = StateSpace(self.edge_vars)
        self._space = space

        if isinstance(init, Orientation):
            if init.graph != graph:
                raise GraphError("initial orientation is for a different graph")
            # One-hot as an *expression* over the edge variables (each
            # pinned to its orientation bit) — no full-space mask, so a
            # specific start orientation works at any graph size, and the
            # sparse tier can enumerate it like the canonical one.
            init_pred: Predicate = ExprPredicate(land(*(
                var.ref() if init.bits & bit(k) else lnot(var.ref())
                for k, var in enumerate(self.edge_vars)
            )))
        elif init == "acyclic":
            init_pred = self.acyclicity_predicate()
        elif init == "canonical":
            # The id-ordered orientation (every edge min → max, i.e. all
            # edge variables true) — acyclic by construction, and an
            # *expression* predicate, so the sparse tier can enumerate it
            # without the precomputed full-space tables this class
            # otherwise builds lazily.
            init_pred = ExprPredicate(land(*(v.ref() for v in self.edge_vars)))
        else:
            raise GraphError(
                f"init must be an Orientation, 'acyclic', or 'canonical', "
                f"got {init!r}"
            )

        self.system = Program(
            f"PrioritySystem[n={graph.n},m={graph.m}]",
            self.edge_vars,
            init_pred,
            list(merged.commands),
            fair=sorted(merged.fair_names),
        )

    # -- component construction ------------------------------------------------

    def arrow_expr(self, i: int, j: int) -> Expr:
        """``(i → j)`` as a boolean expression on the edge variable."""
        var = self.edge_vars[self.graph.edge_id(i, j)]
        return var.ref() if i < j else lnot(var.ref())

    def priority_expr(self, i: int) -> Expr:
        """``Priority.i ≡ ⟨∀j ∈ N(i) : i → j⟩`` as an expression."""
        return land(*(self.arrow_expr(i, j) for j in self.graph.neighbors(i)))

    def _build_component(self, i: int) -> Program:
        incident_vars = [
            self.edge_vars[k] for k in self.graph.incident_edges(i)
        ]
        assignments = []
        for j in self.graph.neighbors(i):
            var = self.edge_vars[self.graph.edge_id(i, j)]
            # After yielding every edge points *at* i: j → i.
            assignments.append((var, j < i))
        yield_cmd = GuardedCommand(
            f"yield[{i}]", self.priority_expr(i), assignments
        )
        from repro.core.predicates import TRUE

        return Program(
            f"Node[{i}]", incident_vars, TRUE, [yield_cmd],
            fair=[f"yield[{i}]"],
        )

    # -- state ↔ orientation codec ------------------------------------------------

    @property
    def space(self) -> StateSpace:
        """The system's state space (= all orientations)."""
        return self.system.space

    def state_of_orientation(self, o: Orientation) -> State:
        """Encode an orientation as a program state."""
        values = {
            var: bool(o.bits & bit(k)) for k, var in enumerate(self.edge_vars)
        }
        return State(values)

    def orientation_of_state(self, state: State) -> Orientation:
        """Decode a program state into an orientation."""
        bits = 0
        for k, var in enumerate(self.edge_vars):
            if state[var]:
                bits |= bit(k)
        return Orientation(self.graph, bits)

    def index_of_orientation(self, o: Orientation) -> int:
        """Encoded state index of an orientation."""
        return self._space.index_of(self.state_of_orientation(o))

    def orientation_of_index(self, idx: int) -> Orientation:
        """Orientation at an encoded state index."""
        return Orientation(self.graph, int(self._bits_of_index[idx]))

    # -- precomputed graph tables ----------------------------------------------------

    @cached_property
    def _graph_tables(self) -> tuple[np.ndarray, ...]:
        """Per-orientation reachability tables, built **lazily** on first
        use.

        Only the mask-backed paper predicates (``A*``, ``R*``, acyclicity)
        need these full-space tables; ``priority_expr`` and the component
        programs do not.  Laziness is what lets downstream users (the
        philosopher grids) build the §4 substrate over conflict graphs
        whose orientation space dwarfs the dense capacity — as long as
        they stick to expression predicates, nothing of length ``2^m`` is
        ever allocated.
        """
        graph = self.graph
        space = self._space
        space.require_dense("precomputing the §4 reachability tables")
        n, m, size = graph.n, graph.m, space.size
        # Edge var k has stride 2^(m-1-k): state index ↔ bit-reversed bits.
        idx = np.arange(size, dtype=np.int64)
        bits = np.zeros(size, dtype=np.int64)
        for k in range(m):
            bits |= ((idx >> (m - 1 - k)) & 1) << k

        r_star = np.zeros((size, n), dtype=np.int64)
        a_star = np.zeros((size, n), dtype=np.int64)
        a_star_size = np.zeros((size, n), dtype=np.int64)
        acyclic_arr = np.zeros(size, dtype=bool)
        for s in range(size):
            o = Orientation(graph, int(bits[s]))
            r_all = reach_star_all(o)
            a_all = above_star_all(o)
            acyclic = True
            for i in range(n):
                r_star[s, i] = r_all[i]
                a_star[s, i] = a_all[i]
                a_star_size[s, i] = a_all[i].bit_count()
                if r_all[i] & bit(i):
                    acyclic = False
            acyclic_arr[s] = acyclic
        return bits, r_star, a_star, a_star_size, acyclic_arr

    @property
    def _bits_of_index(self) -> np.ndarray:
        return self._graph_tables[0]

    @property
    def _r_star(self) -> np.ndarray:
        return self._graph_tables[1]

    @property
    def _a_star(self) -> np.ndarray:
        return self._graph_tables[2]

    @property
    def _a_star_size(self) -> np.ndarray:
        return self._graph_tables[3]

    @property
    def _acyclic(self) -> np.ndarray:
        return self._graph_tables[4]

    # -- paper predicates --------------------------------------------------------------

    def priority_predicate(self, i: int) -> Predicate:
        """``Priority.i`` as an expression predicate."""
        return ExprPredicate(self.priority_expr(i))

    def acyclicity_predicate(self) -> Predicate:
        """``Acyclicity ≡ ⟨∀i : i ∉ R*(i)⟩`` (precomputed mask)."""
        return MaskPredicate(self._space, self._acyclic.copy(), "Acyclicity")

    def a_star_empty(self, i: int) -> Predicate:
        """``A*(i) = ∅`` — equivalent to ``Priority.i`` (the paper's (12))."""
        return MaskPredicate(
            self._space, self._a_star[:, i] == 0, f"A*({i}) = {{}}"
        )

    def r_star_empty(self, i: int) -> Predicate:
        """``R*(i) = ∅``."""
        return MaskPredicate(
            self._space, self._r_star[:, i] == 0, f"R*({i}) = {{}}"
        )

    def a_star_contains(self, i: int, j: int) -> Predicate:
        """``j ∈ A*(i)``."""
        return MaskPredicate(
            self._space,
            ((self._a_star[:, i] >> j) & 1).astype(bool),
            f"{j} in A*({i})",
        )

    def r_star_contains(self, i: int, j: int) -> Predicate:
        """``j ∈ R*(i)``."""
        return MaskPredicate(
            self._space,
            ((self._r_star[:, i] >> j) & 1).astype(bool),
            f"{j} in R*({i})",
        )

    def a_star_size_eq(self, i: int, value: int) -> Predicate:
        """``|A*(i)| = value`` — the paper's induction metric (§4.6)."""
        return MaskPredicate(
            self._space,
            self._a_star_size[:, i] == value,
            f"|A*({i})| = {value}",
        )

    # -- component specification (5)–(8) --------------------------------------------------

    def spec_wait(self, i: int) -> PropertyFamily:
        """(5): ``⟨∀b, j ∈ N(i) : (i→j) = b ∧ ¬Priority.i next (i→j) = b⟩``
        — without priority, ``i`` leaves its own edges alone.  A property
        of component ``i`` (checkable in its own space)."""
        members = []
        for j in self.graph.neighbors(i):
            for b in (False, True):
                edge_is_b = ExprPredicate(
                    self.arrow_expr(i, j) if b else lnot(self.arrow_expr(i, j))
                )
                lhs = edge_is_b & ExprPredicate(lnot(self.priority_expr(i)))
                members.append(Next(lhs, edge_is_b))
        return PropertyFamily(
            f"forall b, j in N({i}) : (({i}->j) = b /\\ ~Priority.{i}) "
            f"next (({i}->j) = b)",
            members,
        )

    def spec_transient(self, i: int) -> Transient:
        """(6): ``transient Priority.i`` — priority is always yielded."""
        return Transient(self.priority_predicate(i))

    def spec_yield(self, i: int) -> Next:
        """(7): ``Priority.i next Priority.i ∨ ⟨∀j ∈ N(i) : j → i⟩`` —
        yielding goes *below all neighbours at once* (the cycle-avoidance
        move of §4.1)."""
        all_in = land(
            *(self.arrow_expr(j, i) for j in self.graph.neighbors(i))
        )
        p = self.priority_predicate(i)
        return Next(p, p | ExprPredicate(all_in))

    def spec_locality(self, i: int) -> PropertyFamily:
        """(8): ``⟨∀b, {j,j'} with i ∉ {j,j'} : (j→j') = b next (j→j') = b⟩``
        — ``i`` never touches other components' edges.  Stated over the
        component *lifted* to the system's variables (the foreign edge
        variables do not exist in the component's own space — the same gap
        as the toy example's (4))."""
        members = []
        for k, (a, b_node) in enumerate(self.graph.edges):
            if a == i or b_node == i:
                continue
            var = self.edge_vars[k]
            for b in (False, True):
                eq = ExprPredicate(var.ref() if b else lnot(var.ref()))
                members.append(Next(eq, eq))
        if not members:
            # Every edge touches i (e.g. star centre): the family is empty,
            # hence vacuously true; represent it by a trivial member.
            from repro.core.predicates import TRUE

            members = [Next(TRUE, TRUE)]
        return PropertyFamily(
            f"forall b, edges (j,j') not incident to {i} : "
            f"(j->j') = b next (j->j') = b",
            members,
        )

    def lifted_component(self, i: int) -> Program:
        """Component ``i`` viewed over the system's variables."""
        return lifted(self.components[i], self.system)

    # -- system specification (9)–(10) ------------------------------------------------------

    def safety_predicate(self) -> Predicate:
        """``⟨∀i : Priority.i ⇒ ⟨∀j ∈ N(i) : ¬Priority.j⟩⟩``."""
        parts = []
        for i in self.graph.nodes():
            neigh = land(
                *(lnot(self.priority_expr(j)) for j in self.graph.neighbors(i))
            )
            from repro.core.expressions import implies

            parts.append(implies(self.priority_expr(i), neigh))
        return ExprPredicate(land(*parts))

    def safety_property(self) -> Invariant:
        """(9): two conflicting components never both have priority."""
        return Invariant(self.safety_predicate())

    def liveness_property(self, i: int) -> LeadsTo:
        """(10), conditioned on the paper's standing acyclicity invariant:
        ``Acyclicity ↝ Priority.i``  (see the module docstring)."""
        return LeadsTo(self.acyclicity_predicate(), self.priority_predicate(i))

    def unconditioned_liveness_property(self, i: int) -> LeadsTo:
        """The literal (10) ``true ↝ Priority.i`` — *false* over the full
        space (cyclic orientations can deadlock); kept so tests and benches
        can exhibit the counterexample the conditioning removes."""
        from repro.core.predicates import TRUE

        return LeadsTo(TRUE, self.priority_predicate(i))

    def stable_acyclicity_property(self) -> Stable:
        """(16) / Property 5: ``Acyclicity next Acyclicity``."""
        return Stable(self.acyclicity_predicate())

    # -- misc ----------------------------------------------------------------------------------

    @cached_property
    def acyclic_count(self) -> int:
        """Number of acyclic orientations (sanity metric for reports)."""
        return int(self._acyclic.sum())

    def __repr__(self) -> str:
        return (
            f"<PrioritySystem n={self.graph.n} m={self.graph.m} "
            f"states={self._space.size} acyclic={self.acyclic_count}>"
        )


def build_priority_system(
    graph: NeighborhoodGraph, *, init: Orientation | str = "acyclic"
) -> PrioritySystem:
    """Build the §4 system over ``graph`` (state space ``2^m``)."""
    return PrioritySystem(graph, init=init)
