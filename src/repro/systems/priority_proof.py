"""The §4 proof chain, mechanized: Definition 1, Lemmas 1–2,
Properties 1–8, and the liveness certificate.

Every numbered claim of §4.5–§4.6 becomes a checkable object:

==========  =================================================================
Paper item  Here
==========  =================================================================
(11)        duality ``i ∈ R*(j) ≡ j ∈ A*(i)`` — :func:`check_duality`
(12)        ``Priority.i ≡ A*(i) = ∅`` — :func:`check_priority_characterization`
(13) P1/P2  every system step is the identity or an edge-reversal
            derivation ``G →_i G'`` — :func:`check_derivation_property`
(14) P3     ``A*(i) ≠ ∅ ∧ i ∉ R*(j)  next  i ∉ R*(j)`` — :func:`property3`
(15) P4     ``A*(i) = ∅  next  A*(i) = ∅ ∨ R*(i) = ∅`` — :func:`property4`
(16) P5     ``Acyclicity next Acyclicity`` — :func:`property5`
(17) P6     ``invariant (Acyclicity ⇒ (A*(i) ≠ ∅ ⇒ ⟨∃j ∈ A*(i) : A*(j) = ∅⟩))``
            — :func:`property6`
(18) P7     ``A*(i) = ∅ ↝ i ∉ A*(j)`` — :func:`property7`
(19/20) P8  ``Acyclicity ↝ A*(i) = ∅`` (→ (10) via (12)) — :func:`property8`
==========  =================================================================

Two liveness certificates are produced for (10):

- :func:`synthesized_liveness_proof` — the fully mechanical certificate
  extracted from the fair-SCC analysis (``ensures`` chain + induction);
- :func:`cardinality_induction_proof` — the paper's own §4.6 structure:
  well-founded induction on ``|A*(i)|``, each level discharged by a
  synthesized sub-certificate.

Both check under the kernel, whose trusted base is the paper's five rules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.predicates import Predicate
from repro.core.rules import LeadsToProof, MetricInduction
from repro.core.properties import Invariant, LeadsTo, Next, Property, Stable
from repro.errors import ProofError
from repro.graph.derivation import is_derivation, lemma1_bound_holds
from repro.graph.reachability import duality_holds
from repro.semantics.checker import CheckResult
from repro.semantics.synthesis import synthesize_leadsto_proof
from repro.semantics.transition import TransitionSystem
from repro.systems.priority import PrioritySystem

__all__ = [
    "check_duality",
    "check_priority_characterization",
    "check_derivation_property",
    "property3",
    "property4",
    "property5",
    "property6",
    "property7",
    "property8",
    "paper_chain",
    "synthesized_liveness_proof",
    "cardinality_induction_proof",
]


# ---------------------------------------------------------------------------
# (11), (12): characterizations
# ---------------------------------------------------------------------------


def check_duality(psys: PrioritySystem) -> CheckResult:
    """(11): ``i ∈ R*(j) ≡ j ∈ A*(i)`` in every reachable orientation
    (checked over *all* orientations — stronger)."""
    for s in range(psys.space.size):
        if not duality_holds(psys.orientation_of_index(s)):
            return CheckResult(
                False, "duality", "i in R*(j) <=> j in A*(i)",
                message=f"violated at orientation index {s}",
            )
    return CheckResult(
        True, "duality", "i in R*(j) <=> j in A*(i)",
        message=f"checked on all {psys.space.size} orientations",
    )


def check_priority_characterization(psys: PrioritySystem) -> CheckResult:
    """(12): ``Priority.i ≡ A*(i) = ∅`` — mask equality per node."""
    space = psys.space
    for i in psys.graph.nodes():
        if not psys.priority_predicate(i).equivalent(psys.a_star_empty(i), space):
            return CheckResult(
                False, "characterization", f"Priority.{i} <=> A*({i}) = {{}}",
                message="masks differ",
            )
    return CheckResult(
        True, "characterization", "Priority.i <=> A*(i) = {} for all i",
        message=f"checked on all {space.size} orientations × {psys.graph.n} nodes",
    )


# ---------------------------------------------------------------------------
# (13): Properties 1–2 — the constructed universal property
# ---------------------------------------------------------------------------


def check_derivation_property(psys: PrioritySystem) -> CheckResult:
    """(13) / Properties 1–2: every step of every command either leaves the
    orientation unchanged or performs a Definition-1 derivation
    ``G →_{i₀} G'`` for some node ``i₀``.

    This is the paper's constructed *shared universal property*: each
    component's local property (Property 1) is weakened to a form every
    component satisfies, making it a system property (Property 2).
    """
    ts = TransitionSystem.for_program(psys.system)
    subject = "G' = G  \\/  <exists i0 :: G -i0-> G'>"
    checked = 0
    for cmd, table in ts.all_tables():
        changed = np.flatnonzero(table != np.arange(psys.space.size))
        for s in changed:
            g = psys.orientation_of_index(int(s))
            g2 = psys.orientation_of_index(int(table[s]))
            if not any(
                is_derivation(g, g2, i0) for i0 in psys.graph.nodes()
            ):
                return CheckResult(
                    False, "universal-property", subject,
                    message=(
                        f"command {cmd.name} performs a non-derivation step "
                        f"at orientation index {int(s)}"
                    ),
                )
            checked += 1
    return CheckResult(
        True, "universal-property", subject,
        message=f"all {checked} non-identity steps are derivations",
    )


def check_lemma1_on_system(psys: PrioritySystem) -> CheckResult:
    """Lemma 1 instantiated on every actual system step: reachability grows
    by at most the reversed node."""
    ts = TransitionSystem.for_program(psys.system)
    for cmd, table in ts.all_tables():
        changed = np.flatnonzero(table != np.arange(psys.space.size))
        for s in changed:
            g = psys.orientation_of_index(int(s))
            g2 = psys.orientation_of_index(int(table[s]))
            i0 = next(
                (i for i in psys.graph.nodes() if is_derivation(g, g2, i)), None
            )
            if i0 is None or not lemma1_bound_holds(g, g2, i0):
                return CheckResult(
                    False, "lemma1", "R*_{G'}(i) ⊆ R*_G(i) ∪ {i0}",
                    message=f"violated by {cmd.name} at index {int(s)}",
                )
    return CheckResult(True, "lemma1", "R*_{G'}(i) ⊆ R*_G(i) ∪ {i0}")


# ---------------------------------------------------------------------------
# (14)–(17): Properties 3–6
# ---------------------------------------------------------------------------


def property3(psys: PrioritySystem, i: int, j: int) -> Next:
    """(14): ``A*(i) ≠ ∅ ∧ i ∉ R*(j)  next  i ∉ R*(j)`` — a component
    cannot enter a reachability set before it has priority."""
    not_in = ~psys.r_star_contains(j, i)
    lhs = (~psys.a_star_empty(i)) & not_in
    return Next(lhs, not_in)


def property4(psys: PrioritySystem, i: int) -> Next:
    """(15): ``A*(i) = ∅  next  A*(i) = ∅ ∨ R*(i) = ∅`` — a priority
    component keeps its above-set empty until the moment it empties its
    own reachability set (the yield)."""
    p = psys.a_star_empty(i)
    return Next(p, p | psys.r_star_empty(i))


def property5(psys: PrioritySystem) -> Stable:
    """(16): ``Acyclicity next Acyclicity``."""
    return psys.stable_acyclicity_property()


def property6(psys: PrioritySystem, i: int) -> Invariant:
    """(17): ``invariant (Acyclicity ⇒ (A*(i) ≠ ∅ ⇒
    ⟨∃j ∈ A*(i) : A*(j) = ∅⟩))`` — Lemma 2 lifted to an invariant: a
    non-priority component always has a priority component above it."""
    space = psys.space
    exists_max = np.zeros(space.size, dtype=bool)
    for j in psys.graph.nodes():
        in_above = ((psys._a_star[:, i] >> j) & 1).astype(bool)
        exists_max |= in_above & (psys._a_star[:, j] == 0)
    from repro.core.predicates import MaskPredicate

    acyclic = psys.acyclicity_predicate()
    a_nonempty = ~psys.a_star_empty(i)
    consequent = MaskPredicate(
        space, exists_max, f"<exists j in A*({i}) : A*(j) = {{}}>"
    )
    body = (~acyclic) | (~a_nonempty) | consequent
    return Invariant(body)


# ---------------------------------------------------------------------------
# (18)–(20): Properties 7–8 and the liveness certificates
# ---------------------------------------------------------------------------


def property7(psys: PrioritySystem, i: int, j: int) -> LeadsTo:
    """(18): ``A*(i) = ∅ ↝ i ∉ A*(j)`` — a component with priority
    eventually escapes every above-set."""
    return LeadsTo(psys.a_star_empty(i), ~psys.a_star_contains(j, i))


def property8(psys: PrioritySystem, i: int) -> LeadsTo:
    """(19)/(20): ``Acyclicity ↝ A*(i) = ∅`` — under the standing
    acyclicity invariant, every component eventually gets priority (by
    (12) this is exactly the conditioned (10))."""
    return LeadsTo(psys.acyclicity_predicate(), psys.a_star_empty(i))


@dataclass
class ChainEntry:
    """One row of the §4 verification report."""

    label: str
    paper_ref: str
    result: CheckResult

    @property
    def holds(self) -> bool:
        return self.result.holds


def paper_chain(psys: PrioritySystem) -> list[ChainEntry]:
    """Verify the complete §4 chain on one concrete system; returns the
    rows reported in EXPERIMENTS.md (experiment E7)."""
    system = psys.system
    rows: list[ChainEntry] = []

    def prop(label: str, ref: str, p: Property) -> None:
        rows.append(ChainEntry(label, ref, p.check(system)))

    def raw(label: str, ref: str, res: CheckResult) -> None:
        rows.append(ChainEntry(label, ref, res))

    # Component specification, per node (checked in component spaces).
    for i in psys.graph.nodes():
        comp = psys.components[i]
        rows.append(ChainEntry(
            f"(5) wait, node {i}", "(5)", psys.spec_wait(i).check(comp)
        ))
        rows.append(ChainEntry(
            f"(6) transient Priority.{i}", "(6)", psys.spec_transient(i).check(comp)
        ))
        rows.append(ChainEntry(
            f"(7) yield below all, node {i}", "(7)", psys.spec_yield(i).check(comp)
        ))
        rows.append(ChainEntry(
            f"(8) locality, node {i}", "(8)",
            psys.spec_locality(i).check(psys.lifted_component(i)),
        ))

    raw("(11) duality", "(11)", check_duality(psys))
    raw("(12) Priority ≡ A*=∅", "(12)", check_priority_characterization(psys))
    raw("(13) steps are derivations", "(13)", check_derivation_property(psys))
    raw("Lemma 1 on system steps", "Lemma 1", check_lemma1_on_system(psys))

    for i in psys.graph.nodes():
        for j in psys.graph.nodes():
            if i != j:
                prop(f"(14) P3 i={i}, j={j}", "(14)", property3(psys, i, j))
        prop(f"(15) P4 i={i}", "(15)", property4(psys, i))
    prop("(16) P5 acyclicity stable", "(16)", property5(psys))
    for i in psys.graph.nodes():
        prop(f"(17) P6 i={i}", "(17)", property6(psys, i))
        for j in psys.graph.nodes():
            if i != j:
                prop(f"(18) P7 i={i}, j={j}", "(18)", property7(psys, i, j))
        prop(f"(19) P8 i={i}", "(19)", property8(psys, i))

    prop("(9) safety", "(9)", psys.safety_property())
    for i in psys.graph.nodes():
        prop(
            f"(10) liveness node {i} (conditioned)", "(10)",
            psys.liveness_property(i),
        )
    return rows


def synthesized_liveness_proof(psys: PrioritySystem, i: int) -> LeadsToProof:
    """Kernel certificate for ``Acyclicity ↝ Priority.i``, synthesized from
    the fair-SCC analysis (experiment E9 on this system)."""
    return synthesize_leadsto_proof(
        psys.system, psys.acyclicity_predicate(), psys.priority_predicate(i)
    )


def cardinality_induction_proof(psys: PrioritySystem, i: int) -> MetricInduction:
    """The paper's §4.6 closing argument, as a kernel certificate:
    *"Through induction on the cardinality of A*(i) this gives the
    liveness correctness (10)."*

    Levels are ``Acyclicity ∧ |A*(i)| = m`` for ``m = 1 … n-1``; each level
    obligation ``L_m ↝ (q ∨ lower)`` is discharged by a synthesized
    sub-certificate (itself built from the paper's rules).
    """
    acyclic = psys.acyclicity_predicate()
    q = psys.a_star_empty(i)  # ≡ Priority.i by (12)
    levels: list[Predicate] = []
    subs: list[LeadsToProof] = []
    lower: Predicate = q
    for m in range(1, psys.graph.n):
        level = acyclic & psys.a_star_size_eq(i, m)
        if not level.is_satisfiable(psys.space):
            continue
        target = lower  # q ∨ all lower levels accumulated so far
        sub = synthesize_leadsto_proof(psys.system, level, target)
        levels.append(level)
        subs.append(sub)
        lower = lower | level
    if not levels:
        raise ProofError(
            f"node {i}: every acyclic orientation already gives priority; "
            "use a direct Implication proof"
        )
    return MetricInduction(acyclic, q, levels, subs)
