"""Multi-pool allocator meshes: the conclusion's allocator, sharded.

:mod:`repro.systems.allocator` has one pool and ``n`` clients.  This
module shards the pool: ``P`` independent token pools, ``C`` clients, and
a **mesh** wiring in which client ``i`` is attached to pools ``i mod P``
and ``(i+1) mod P`` (so every pool serves several clients and every
client can draw from two pools — the smallest wiring that makes the
families' behaviours interlock).  Client ``i`` keeps one held-token
counter per attached pool, so every token stays owned by exactly one
pool and per-pool conservation is inductive:

- **conservation** — ``⟨∀p : avail_p + Σ_{i ∋ p} hold_{i,p} = T⟩``;
- **availability** — ``conservation ↝ avail_p > 0`` for every pool
  ``p``: takes are unfair but gives are fair, exactly the polite-client
  discipline of the single-pool allocator, so a drained pool always
  eventually gets a token back;
- **full refill** (negative exhibit) — ``conservation ↝ ⟨∀p : avail_p =
  T⟩`` is false for ``C ≥ 2``: a fair take/give ping-pong keeps some
  pool partially drained forever.

The encoded space is ``(T+1)^(P + 2C)`` — exponential in the client
count — while per-pool conservation keeps the reachable set polynomial
(a product of per-pool token compositions), so the default CLI scenario
(``pools=4, clients=6, total=2``) exceeds the sparse threshold yet
explores in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.commands import GuardedCommand
from repro.core.composition import compose_all
from repro.core.domains import IntRange
from repro.core.expressions import esum, land
from repro.core.predicates import ExprPredicate, Predicate
from repro.core.program import Program
from repro.core.properties import Invariant, LeadsTo
from repro.core.variables import Var

__all__ = ["MeshSystem", "build_mesh_system"]


def pool_var(p: int, total: int) -> Var:
    """Pool ``p``'s free-token counter ``avail[p]``."""
    return Var.indexed("avail", p, IntRange(0, total))


def hold_var(i: int, p: int, total: int) -> Var:
    """Client ``i``'s held-token counter against pool ``p``."""
    return Var.indexed("hold", (i, p), IntRange(0, total))


@dataclass
class MeshSystem:
    """The composed allocator mesh plus its verification interface."""

    pools: int
    clients: int
    total: int
    attachments: dict[int, tuple[int, ...]]
    components: list[Program]
    system: Program

    def avail(self, p: int) -> Var:
        return self.system.var_named(f"avail[{p}]")

    def hold(self, i: int, p: int) -> Var:
        return self.system.var_named(f"hold[{i},{p}]")

    def clients_of(self, p: int) -> list[int]:
        """The clients attached to pool ``p``."""
        return [i for i, ps in self.attachments.items() if p in ps]

    # -- properties ---------------------------------------------------------

    def pool_conservation_predicate(self, p: int) -> Predicate:
        """``avail_p + Σ_{i ∋ p} hold_{i,p} = T``."""
        held = esum([self.hold(i, p).ref() for i in self.clients_of(p)])
        return ExprPredicate(self.avail(p).ref() + held == self.total)

    def conservation_predicate(self) -> Predicate:
        """Conjunction of the per-pool conservation predicates."""
        parts = [
            self.pool_conservation_predicate(p).as_expr()
            for p in range(self.pools)
        ]
        return ExprPredicate(land(*parts))

    def conservation(self) -> Invariant:
        """``invariant ⟨∀p : conservation_p⟩`` — inductive."""
        return Invariant(self.conservation_predicate())

    def availability(self, p: int) -> LeadsTo:
        """``conservation ↝ avail_p > 0`` — pool ``p`` is never starved
        for good (fair gives return its tokens)."""
        return LeadsTo(
            self.conservation_predicate(),
            ExprPredicate(self.avail(p).ref() > 0),
        )

    def full_refill(self) -> LeadsTo:
        """``conservation ↝ ⟨∀p : avail_p = T⟩`` — **false** for ``C ≥ 2``:
        the fair take/give ping-pong (the single-pool allocator's negative
        exhibit) persists per pool."""
        full = land(
            *(self.avail(p).ref() == self.total for p in range(self.pools))
        )
        return LeadsTo(self.conservation_predicate(), ExprPredicate(full))


def build_mesh_client(
    i: int, attached: tuple[int, ...], total: int, pool_vars: dict[int, Var]
) -> Program:
    """Client ``i``: per attached pool, an unfair take and a fair give."""
    holds = {p: hold_var(i, p, total) for p in attached}
    commands = []
    fair = []
    for p in attached:
        avail, hold = pool_vars[p], holds[p]
        commands.append(
            GuardedCommand(
                f"take[{i},{p}]",
                land(avail.ref() > 0, hold.ref() < total),
                [(hold, hold.ref() + 1), (avail, avail.ref() - 1)],
            )
        )
        give = GuardedCommand(
            f"give[{i},{p}]",
            land(hold.ref() > 0, avail.ref() < total),
            [(hold, hold.ref() - 1), (avail, avail.ref() + 1)],
        )
        commands.append(give)
        fair.append(give.name)
    return Program(
        f"MeshClient[{i}]",
        [*holds.values(), *(pool_vars[p] for p in attached)],
        ExprPredicate(land(*(h.ref() == 0 for h in holds.values()))),
        commands,
        fair=fair,
    )


def build_mesh_system(
    pools: int = 4, clients: int = 6, *, total: int = 2
) -> MeshSystem:
    """Build the allocator mesh (client ``i`` → pools ``i%P, (i+1)%P``).

    Composition skips the semantic initial-state probe for the usual
    at-scale reason: the component ``initially`` predicates constrain
    disjoint variables (each pool full, each hold zero), so
    satisfiability is structural, and the probe would materialize a
    full-space mask on the larger meshes.
    """
    if pools < 2 or clients < 1 or total < 1:
        raise ValueError(
            f"need pools >= 2, clients >= 1, total >= 1, got "
            f"pools={pools}, clients={clients}, total={total}"
        )
    attachments = {
        i: tuple(sorted({i % pools, (i + 1) % pools})) for i in range(clients)
    }
    pool_vars = {p: pool_var(p, total) for p in range(pools)}
    components = [
        Program(
            f"Pool[{p}]",
            [pool_vars[p]],
            ExprPredicate(pool_vars[p].ref() == total),
            [],
        )
        for p in range(pools)
    ]
    components += [
        build_mesh_client(i, attachments[i], total, pool_vars)
        for i in range(clients)
    ]
    system = compose_all(
        components,
        name=f"Mesh[{pools}p{clients}c]",
        check_init=False,
    )
    return MeshSystem(
        pools=pools,
        clients=clients,
        total=total,
        attachments=attachments,
        components=components,
        system=system,
    )
