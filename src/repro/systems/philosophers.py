"""Dining philosophers on top of the §4 priority mechanism.

The paper motivates the priority mechanism with perpetually conflicting
components; the classic instantiation is dining philosophers: conflicts are
fork-sharing neighbours, and a philosopher may eat only while holding
priority over all neighbours.  This module *uses* the priority substrate as
a downstream application would:

- each node gains a local phase ``think | eat``;
- ``sit[i]``: a thinking philosopher with priority starts eating;
- ``yield[i]``: an eating philosopher stops, reverses all its edges
  (the §4 move) and returns to thinking.

Verified properties (tests + example):

- **mutual exclusion** — ``invariant ⟨∀(i,j) ∈ edges : ¬(eat_i ∧ eat_j)⟩``
  via the auxiliary inductive invariant ``eat_i ⇒ Priority.i``;
- **liveness** — ``(Acyclicity ∧ all thinking) ↝ eat_i`` for every ``i``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.commands import GuardedCommand
from repro.core.composition import compose_all
from repro.core.domains import EnumDomain
from repro.core.expressions import land, lnot
from repro.core.predicates import ExprPredicate, Predicate
from repro.core.program import Program
from repro.core.properties import Invariant, LeadsTo
from repro.core.variables import Locality, Var
from repro.errors import GraphError
from repro.graph.neighborhood import NeighborhoodGraph
from repro.systems.priority import PrioritySystem, edge_var

__all__ = [
    "PhilosopherSystem",
    "build_philosopher_system",
    "build_philosopher_ring",
    "build_philosopher_grid",
    "PHASES",
]

#: The philosopher phase domain.
PHASES = EnumDomain("phase", ("think", "eat"))


def phase_var(i: int) -> Var:
    """Local phase variable of philosopher ``i``."""
    return Var.indexed("ph", i, PHASES, locality=Locality.LOCAL)


@dataclass
class PhilosopherSystem:
    """The composed philosopher system plus its verification interface."""

    graph: NeighborhoodGraph
    priority: PrioritySystem
    components: list[Program]
    system: Program

    def phase(self, i: int) -> Var:
        """Phase variable of philosopher ``i``."""
        return self.system.var_named(f"ph[{i}]")

    def eating(self, i: int) -> Predicate:
        """``ph_i = eat``."""
        return ExprPredicate(self.phase(i).ref() == "eat")

    def thinking(self, i: int) -> Predicate:
        """``ph_i = think``."""
        return ExprPredicate(self.phase(i).ref() == "think")

    def priority_predicate(self, i: int) -> Predicate:
        """``Priority.i`` over the extended space (same expression)."""
        return ExprPredicate(self.priority.priority_expr(i))

    def acyclicity_predicate(self) -> Predicate:
        """Acyclicity of the orientation part of the state.

        The priority system's mask is indexed by its own (edge-only)
        space, so the predicate is rebuilt over the extended space — as a
        batch predicate whose ``mask_at`` runs the vectorized Kahn peel
        (:func:`repro.graph.acyclicity.acyclic_rows`) on the decoded edge
        columns of the queried index set, which is what makes grid-scale
        liveness checks feasible on the sparse tier (the old per-state
        callable walked a Python ``Orientation`` per reachable state).
        """
        return _AcyclicityPredicate(self)

    def _orientation_of(self, state):
        from repro.graph.orientation import Orientation
        from repro.util.bitset import bit

        bits = 0
        for k, (a, b) in enumerate(self.graph.edges):
            if state[self.system.var_named(f"e[{a},{b}]")]:
                bits |= bit(k)
        return Orientation(self.graph, bits)

    # -- properties -------------------------------------------------------------

    def eat_implies_priority(self) -> Invariant:
        """Auxiliary inductive invariant: ``⟨∀i : eat_i ⇒ Priority.i⟩``."""
        parts = []
        for i in self.graph.nodes():
            parts.append(
                lnot(self.phase(i).ref() == "eat") | self.priority.priority_expr(i)
            )
        return Invariant(ExprPredicate(land(*parts)))

    def mutual_exclusion(self) -> Invariant:
        """``invariant ⟨∀(i,j) ∈ edges : ¬(eat_i ∧ eat_j)⟩``.

        Follows from :meth:`eat_implies_priority` plus the §4 safety (9);
        checked directly as well.
        """
        parts = []
        for (i, j) in self.graph.edges:
            parts.append(lnot(land(
                self.phase(i).ref() == "eat", self.phase(j).ref() == "eat"
            )))
        body = ExprPredicate(land(*parts))
        # Mutual exclusion alone is not inductive (eat without priority
        # could step into a neighbour's meal); conjoin the auxiliary
        # invariant to make it so — the standard strengthening move.
        aux = self.eat_implies_priority()
        return Invariant(body & aux.p)

    def liveness(self, i: int) -> LeadsTo:
        """``(Acyclicity ∧ ⟨∀j : ph_j = think⟩ ) ↝ eat_i``."""
        all_think = land(*(
            self.phase(j).ref() == "think" for j in self.graph.nodes()
        ))
        start = self.acyclicity_predicate() & ExprPredicate(all_think)
        return LeadsTo(start, self.eating(i))


class _AcyclicityPredicate(Predicate):
    """Acyclicity of the fork orientation, batched over state indices.

    ``holds`` keeps the scalar graph-walk semantics; ``mask_at`` decodes
    only the edge columns of the queried indices and runs the vectorized
    Kahn peel, so the sparse tier never pays a per-state Python loop.
    ``mask`` densifies via ``mask_at`` (guarded by the space's dense
    capacity) for the small instances the differential suite covers.
    """

    def __init__(self, system: "PhilosopherSystem") -> None:
        self._system = system

    def holds(self, state) -> bool:
        from repro.graph.acyclicity import is_acyclic

        return is_acyclic(self._system._orientation_of(state))

    def mask_at(self, space, idx) -> np.ndarray:
        from repro.graph.acyclicity import acyclic_rows

        idx = np.asarray(idx, dtype=np.int64)
        graph = self._system.graph
        cols = np.empty((idx.shape[0], graph.m), dtype=bool)
        for k, (a, b) in enumerate(graph.edges):
            var = space.var_named(f"e[{a},{b}]")
            cols[:, k] = space.indices_at(var, idx).astype(bool)
        return acyclic_rows(graph, cols)

    def mask(self, space) -> np.ndarray:
        space.require_dense("acyclicity mask")
        return self.mask_at(space, np.arange(space.size, dtype=np.int64))

    def describe(self) -> str:
        return "Acyclicity"


def build_philosopher_component(
    graph: NeighborhoodGraph,
    i: int,
    priority: PrioritySystem,
    *,
    pin_initial_orientation: bool = False,
) -> Program:
    """Philosopher ``i``: phase plus the incident edge variables.

    With ``pin_initial_orientation`` the component's ``initially`` also
    pins every incident fork to the canonical (id-ordered, acyclic)
    orientation — shrinking the composed initial set to a single state,
    which is what keeps grid-scale reachable sets explorable.
    """
    ph = phase_var(i)
    incident = [edge_var(*graph.edges[k]) for k in graph.incident_edges(i)]
    pr = priority.priority_expr(i)

    sit = GuardedCommand(
        f"sit[{i}]",
        land(ph.ref() == "think", pr),
        [(ph, "eat")],
    )
    yield_assignments = [(ph, "think")]
    for j in graph.neighbors(i):
        var = edge_var(i, j)
        yield_assignments.append((var, j < i))
    yield_cmd = GuardedCommand(
        f"yield[{i}]",
        ph.ref() == "eat",
        yield_assignments,
    )
    init_conjuncts = [ph.ref() == "think"]
    if pin_initial_orientation:
        # Canonical orientation: every edge variable true (min → max).
        init_conjuncts.extend(v.ref() for v in incident)
    return Program(
        f"Philosopher[{i}]",
        [ph, *incident],
        ExprPredicate(land(*init_conjuncts)),
        [sit, yield_cmd],
        fair=[f"sit[{i}]", f"yield[{i}]"],
    )


def build_philosopher_system(
    graph: NeighborhoodGraph,
    *,
    check_init: bool = True,
    pin_initial_orientation: bool = False,
) -> PhilosopherSystem:
    """Build philosophers over ``graph`` (state space ``2^m · 2^n``).

    ``check_init=False`` skips the semantic initial-state probe of
    :func:`~repro.core.composition.compose_all` — required for graphs
    whose composed space exceeds the sparse threshold, where the probe
    would materialize a full-space mask (satisfiability is obvious here:
    the component ``initially`` predicates constrain disjoint phase
    variables).

    ``pin_initial_orientation=True`` starts every fork in the canonical
    acyclic orientation (single initial state) and builds the priority
    substrate with ``init="canonical"``, so no full-space table is touched
    even when the orientation space alone exceeds the dense capacity —
    the construction mode of :func:`build_philosopher_grid`.
    """
    for i in graph.nodes():
        if graph.degree(i) == 0:
            raise GraphError(f"philosopher {i} has no neighbours")
    priority = PrioritySystem(
        graph, init="canonical" if pin_initial_orientation else "acyclic"
    )
    components = [
        build_philosopher_component(
            graph, i, priority,
            pin_initial_orientation=pin_initial_orientation,
        )
        for i in graph.nodes()
    ]
    system = compose_all(
        components, name=f"Philosophers[n={graph.n}]", check_init=check_init
    )
    return PhilosopherSystem(
        graph=graph, priority=priority, components=components, system=system
    )


def build_philosopher_ring(n: int) -> PhilosopherSystem:
    """Philosophers around a ring of ``n`` — the scaling scenario.

    The composed space is exponential in ``n`` (one phase and one fork
    edge per philosopher), so ``n ≥ 10`` exceeds the sparse threshold and
    every liveness check runs through :mod:`repro.semantics.sparse`; the
    reachable set (acyclic-orientation dynamics × phases) stays a sliver
    of the encoded product.  The initial-state probe is always skipped:
    it would materialize a full-space mask at scale, and satisfiability
    is structural here (the component ``initially`` predicates constrain
    disjoint phase variables; tests pin it).
    """
    from repro.graph.generators import ring_graph

    return build_philosopher_system(ring_graph(n), check_init=False)


def build_philosopher_grid(rows: int, cols: int) -> PhilosopherSystem:
    """Philosophers on a ``rows × cols`` 4-neighbour grid — the
    beyond-the-old-cap scenario.

    The composed space is ``2^(n+m)`` for ``n = rows·cols`` nodes and
    ``m = 2·rows·cols − rows − cols`` fork edges, so even small grids
    blow through every dense capacity (5×5 is ``2^65``).  Forks start in
    the canonical acyclic orientation (a **single** initial state, pinned
    through ``pin_initial_orientation``): reachable orientations stay the
    edge-reversal dynamics' orbit instead of all ``2^m`` orientations,
    which is what keeps the reachable set explorable while the encoded
    space grows without bound.  The priority substrate is built with
    ``init="canonical"``, so nothing of length ``2^m`` is ever allocated.
    """
    from repro.graph.generators import grid_graph

    return build_philosopher_system(
        grid_graph(rows, cols), check_init=False, pin_initial_orientation=True
    )
