"""Heterogeneous fan-in/fan-out pipelines: tokens through a layered DAG.

:mod:`repro.systems.pipeline` is a chain — every stage has exactly one
upstream and one downstream buffer.  This module generalizes it to a
layered DAG described by a width profile ``(w_0, …, w_{L-1})``: the source
feeds any of the ``w_0`` first-layer buffers (**fan-out** as a first-match
alternative command), each buffer of layer ``k`` forwards to any buffer of
layer ``k+1`` (so a layer-``k+1`` buffer with several upstream movers is a
**fan-in** point), and every last-layer buffer drains into the shared
retirement counter.  Heterogeneity: buffer capacities alternate between
``total`` and ``total + 1`` by position, so no two adjacent layers have
identical shapes.

The verification story mirrors the chain pipeline:

- **conservation** — ``avail + Σ_b c_b + done = total`` is inductive;
- **delivery** — ``conservation ↝ done = total`` holds under weak
  fairness: a full successor buffer would have to hold ``cap ≥ total``
  tokens while its upstream holds at least one more, contradicting
  conservation, so every buffered token always has an enabled fair mover;
- **no recycling** (negative exhibit) — ``done = total ↝ avail > 0`` is
  false: the drained state is absorbing.

The encoded space is ``(total+1)² · Π_b (cap_b + 1)`` — exponential in the
buffer count — while conservation confines the reachable set to the weak
compositions of ``total`` tokens into ``#buffers + 2`` bins, so the default
CLI scenario (``widths = (2, 3, 3, 2)``) exceeds the sparse threshold yet
explores in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.commands import AltCommand, GuardedCommand
from repro.core.composition import compose_all
from repro.core.domains import IntRange
from repro.core.expressions import Expr, esum, land
from repro.core.predicates import ExprPredicate, Predicate
from repro.core.program import Program
from repro.core.properties import Invariant, LeadsTo
from repro.core.variables import Var

__all__ = ["FanoutSystem", "build_fanout_system"]


def buffer_var(layer: int, slot: int, cap: int) -> Var:
    """Buffer ``slot`` of layer ``layer`` (shared: movers on both sides)."""
    return Var.indexed("c", (layer, slot), IntRange(0, cap))


@dataclass
class FanoutSystem:
    """The composed fan-in/fan-out pipeline plus its verification interface."""

    widths: tuple[int, ...]
    caps: dict[tuple[int, int], int]
    total: int
    components: list[Program]
    system: Program

    @property
    def avail(self) -> Var:
        return self.system.var_named("avail")

    @property
    def done(self) -> Var:
        return self.system.var_named("done")

    def buffer(self, layer: int, slot: int) -> Var:
        """Buffer counter ``c[layer,slot]``."""
        return self.system.var_named(f"c[{layer},{slot}]")

    def buffers(self) -> list[Var]:
        """All buffer variables, layer-major."""
        return [
            self.buffer(layer, slot)
            for layer, width in enumerate(self.widths)
            for slot in range(width)
        ]

    def in_flight(self) -> Expr:
        """``Σ_b c_b`` — tokens currently inside the DAG."""
        return esum([b.ref() for b in self.buffers()])

    # -- properties ---------------------------------------------------------

    def conservation_predicate(self) -> Predicate:
        """``avail + Σ_b c_b + done = total``."""
        return ExprPredicate(
            self.avail.ref() + self.in_flight() + self.done.ref() == self.total
        )

    def conservation(self) -> Invariant:
        """``invariant conservation`` — inductive over the whole space."""
        return Invariant(self.conservation_predicate())

    def delivery(self) -> LeadsTo:
        """``conservation ↝ done = total`` — the DAG always drains."""
        return LeadsTo(
            self.conservation_predicate(),
            ExprPredicate(self.done.ref() == self.total),
        )

    def no_recycling(self) -> LeadsTo:
        """``done = total ↝ avail > 0`` — **false**: the drained state is
        absorbing (the negative exhibit shared with the chain pipeline)."""
        return LeadsTo(
            ExprPredicate(self.done.ref() == self.total),
            ExprPredicate(self.avail.ref() > 0),
        )


def _forward_branches(src: Var, dsts: list[tuple[Var, int]]):
    """First-match branches moving one token from ``src`` downstream."""
    return [
        (
            land(src.ref() > 0, dst.ref() < cap),
            [(src, src.ref() - 1), (dst, dst.ref() + 1)],
        )
        for dst, cap in dsts
    ]


def _mover(name: str, src: Var, dsts: list[tuple[Var, int]]) -> AltCommand | GuardedCommand:
    branches = _forward_branches(src, dsts)
    if len(branches) == 1:
        guard, assigns = branches[0]
        return GuardedCommand(name, guard, assigns)
    return AltCommand(name, branches)


def build_fanout_system(
    widths: tuple[int, ...] | list[int] = (2, 3, 3, 2),
    *,
    total: int = 3,
) -> FanoutSystem:
    """Build the fan-in/fan-out pipeline with layer profile ``widths``.

    Buffer ``(layer, slot)`` gets capacity ``total + (layer + slot) % 2``
    (the heterogeneity — all capacities stay ≥ ``total``, which rules out
    clogging the same way ``cap ≥ total`` does for the chain pipeline).
    Composition skips the semantic initial-state probe for the same
    reason the chain pipeline does: the probe would materialize a
    full-space mask, and the component ``initially`` predicates pin the
    unique start state structurally.
    """
    widths = tuple(int(w) for w in widths)
    if not widths or any(w < 1 for w in widths):
        raise ValueError(f"need a non-empty profile of widths >= 1, got {widths!r}")
    if total < 1:
        raise ValueError(f"need at least one token, got {total}")
    caps = {
        (layer, slot): total + (layer + slot) % 2
        for layer, width in enumerate(widths)
        for slot in range(width)
    }
    buf = {ls: buffer_var(*ls, cap) for ls, cap in caps.items()}
    avail = Var.shared("avail", IntRange(0, total))
    done = Var.shared("done", IntRange(0, total))

    components = []
    first = [(buf[(0, s)], caps[(0, s)]) for s in range(widths[0])]
    components.append(
        Program(
            "Source",
            [avail, *(v for v, _ in first)],
            ExprPredicate(
                land(avail.ref() == total, *(v.ref() == 0 for v, _ in first))
            ),
            [
                _mover(
                    "feed",
                    avail,
                    first,
                )
            ],
            fair=["feed"],
        )
    )
    # One mover component per interior buffer: forwards into the next layer.
    for layer in range(len(widths) - 1):
        dsts = [
            (buf[(layer + 1, s)], caps[(layer + 1, s)])
            for s in range(widths[layer + 1])
        ]
        for slot in range(widths[layer]):
            src = buf[(layer, slot)]
            name = f"fwd[{layer},{slot}]"
            components.append(
                Program(
                    f"Mover[{layer},{slot}]",
                    [src, *(v for v, _ in dsts)],
                    ExprPredicate(
                        land(*(v.ref() == 0 for v, _ in dsts))
                    ),
                    [_mover(name, src, dsts)],
                    fair=[name],
                )
            )
    # Sink movers: every last-layer buffer retires into `done`.
    last = len(widths) - 1
    sink_cmds = []
    for slot in range(widths[last]):
        src = buf[(last, slot)]
        sink_cmds.append(
            GuardedCommand(
                f"drain[{slot}]",
                land(src.ref() > 0, done.ref() < total),
                [(src, src.ref() - 1), (done, done.ref() + 1)],
            )
        )
    components.append(
        Program(
            "Sink",
            [*(buf[(last, s)] for s in range(widths[last])), done],
            ExprPredicate(done.ref() == 0),
            sink_cmds,
            fair=[c.name for c in sink_cmds],
        )
    )
    system = compose_all(
        components,
        name=f"Fanout[{'x'.join(str(w) for w in widths)}]",
        check_init=False,
    )
    return FanoutSystem(
        widths=widths,
        caps=caps,
        total=total,
        components=components,
        system=system,
    )
