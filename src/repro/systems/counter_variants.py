"""Generalizations of the §3 toy example — the reuse story.

§3.4: *"we can now use our local component specification in a variety of
systems, including those that we have not anticipated."*  This module
stress-tests that claim with two variants the paper did not anticipate:

- **heterogeneous caps** — each component saturates at its own ``cap_i``;
- **weighted actions** — component ``i`` bumps the shared counter by a
  weight ``w_i`` per action, so the system invariant becomes
  ``C = Σ_i w_i · c_i``.

Both reuse the *same* §3.3 proof skeleton unchanged:
:func:`build_weighted_invariant_proof` produces the identical rule tree —
``ConstantExpressions`` per lifted component (now with the constants
``C − w_i·c_i`` and the foreign ``c_j``), ``UniversalLift``,
``InitLift``/``InitConjunction``/``InitWeaken``, ``InvariantIntro`` — which
is precisely what the paper means by a specification that survives
unanticipated environments.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.commands import GuardedCommand
from repro.core.composition import compose_all, lifted
from repro.core.domains import IntRange
from repro.core.expressions import Expr, esum, land
from repro.core.predicates import ExprPredicate, Predicate
from repro.core.program import Program
from repro.core.proofs import (
    ConstantExpressions,
    InitConjunction,
    InitLeaf,
    InitLift,
    InitWeaken,
    InvariantIntro,
    UniversalLift,
)
from repro.core.variables import Locality, Var

__all__ = [
    "WeightedCounterSystem",
    "build_weighted_counter_system",
    "build_weighted_invariant_proof",
]


@dataclass
class WeightedCounterSystem:
    """§3 generalized: per-component caps and weights."""

    caps: tuple[int, ...]
    weights: tuple[int, ...]
    components: list[Program]
    system: Program

    @property
    def n(self) -> int:
        return len(self.caps)

    @property
    def C(self) -> Var:
        return self.system.var_named("C")

    def c(self, i: int) -> Var:
        return self.system.var_named(f"c[{i}]")

    def weighted_sum_expr(self) -> Expr:
        """``Σ_i w_i · c_i``."""
        return esum([
            self.c(i).ref() * self.weights[i] for i in range(self.n)
        ])

    def invariant_predicate(self) -> Predicate:
        """The generalized (1): ``C = Σ w_i · c_i``."""
        return ExprPredicate(self.C.ref() == self.weighted_sum_expr())

    def lifted_component(self, i: int) -> Program:
        return lifted(self.components[i], self.system)


def build_weighted_counter_system(
    caps: Sequence[int], weights: Sequence[int] | None = None
) -> WeightedCounterSystem:
    """Build the generalized system.

    ``caps[i]`` bounds component ``i``'s local counter; ``weights[i]``
    (default all 1) scales its contribution to ``C``.
    """
    caps = tuple(caps)
    weights = tuple(weights) if weights is not None else (1,) * len(caps)
    if len(weights) != len(caps):
        raise ValueError("caps and weights must have equal length")
    if not caps:
        raise ValueError("need at least one component")
    if any(c < 1 for c in caps) or any(w < 1 for w in weights):
        raise ValueError("caps and weights must be positive")

    total = sum(c * w for c, w in zip(caps, weights))
    C = Var.shared("C", IntRange(0, total))
    components = []
    for i, (cap, w) in enumerate(zip(caps, weights)):
        c_i = Var.indexed("c", i, IntRange(0, cap), locality=Locality.LOCAL)
        action = GuardedCommand(
            f"a[{i}]",
            land(c_i.ref() < cap, C.ref() <= total - w),
            [(c_i, c_i.ref() + 1), (C, C.ref() + w)],
        )
        components.append(Program(
            f"Component[{i}]",
            [c_i, C],
            land(c_i.ref() == 0, C.ref() == 0),
            [action],
            fair=[f"a[{i}]"],
        ))
    system = compose_all(components, name=f"WeightedCounter[{len(caps)}]")
    return WeightedCounterSystem(
        caps=caps, weights=weights, components=components, system=system
    )


def build_weighted_invariant_proof(ws: WeightedCounterSystem) -> InvariantIntro:
    """The §3.3 derivation, reused verbatim on the generalized system.

    The only change from :func:`repro.systems.counter_proof.
    build_invariant_proof` is the constant expression ``C − w_i·c_i``
    replacing ``C − c_i`` — the proof's *shape* is untouched.
    """
    target = ws.invariant_predicate()

    stable_parts = []
    for i in range(ws.n):
        comp = ws.lifted_component(i)
        constants = [ws.C.ref() - ws.c(i).ref() * ws.weights[i]]
        constants += [ws.c(j).ref() for j in range(ws.n) if j != i]
        stable_parts.append((comp, ConstantExpressions(constants, target)))
    stable_sys = UniversalLift(stable_parts)

    init_lifts = []
    for i, comp in enumerate(ws.components):
        local_init = ExprPredicate(
            land(ws.c(i).ref() == 0, ws.C.ref() == 0)
        )
        init_lifts.append(InitLift(comp, InitLeaf(local_init)))
    init_target = InitWeaken(InitConjunction(init_lifts), target)

    return InvariantIntro(init_target, stable_sys)
