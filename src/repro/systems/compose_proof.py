"""The 50-stage exhibit: a compositional delivery certificate at a scale
no explorer can touch.

:func:`build_hetero_stack` composes a *heterogeneous* pipeline (per-stage
buffer capacities cycling ``total``, ``total+1``, ``total+2``) with the
allocator clients of :mod:`repro.systems.allocator`.  At the flagship
size (``stages=50, clients=3, total=3``) the encoded product space is
``(total+1)² · Π(capᵢ+1) · (total+1)^clients ≈ 1.3 · 10³³`` states —
beyond not just the dense tier but the *sparse* tier too, whose int64
state indices overflow around ``9.2 · 10¹⁸``.  No tier can even index
this product, let alone explore it.

:func:`build_delivery_certificate` proves delivery anyway:

    ``conservation  ↝  done = total``   (strong fairness)

as a :class:`~repro.core.compositional.CompositionalCertificate` whose
every obligation is local — checkable by
:func:`repro.semantics.compositional.check_compositional` in time linear
in the stage count, with zero product-space exploration.

The rule tree, per retirement level ``d < total`` (writing ``Dd`` for
``done = d`` and ``D>`` for ``done ≥ d+1``):

- **stage chain** — ``Uᵢ : Dd ∧ cᵢ>0 ↝ D>`` by descending induction:
  ``U_{K-1}`` is an *ensures* via ``drain``; ``Uᵢ`` chains the ensures
  ``Tᵢ : Dd ∧ cᵢ>0 ↝ D> ∨ (Dd ∧ cᵢ₊₁>0)`` (via ``move[i+1]``) into
  ``Uᵢ₊₁`` through a disjunction;
- **pool-side progress** — ``P* : Dd ∧ avail+Σholdⱼ ≥ 1 ↝ D> ∨ (Dd ∧
  c₀>0)`` by :class:`~repro.core.compositional.StrongEnsures` around
  ``feed``: clients may soak up the pool under weak fairness (the
  starvation exhibit of :mod:`repro.systems.product`), but the fair
  ``give[j]`` commands make ``feed`` recurrently enabled and strong
  fairness forces it;
- **support split** — from ``conservation ∧ Dd``, *some* token variable
  is positive (:class:`~repro.core.compositional.SupportSplit`; the
  all-zero branch is unsatisfiable under conservation), and each branch
  routes into the stage chain or the pool-side tree;
- **conservation carry** — a PSP application with the stable
  conservation equality re-attaches ``conservation`` to the conclusion
  so the next retirement level can fire; its ``next`` obligation is
  discharged per command from weighted write deltas
  (:meth:`~repro.semantics.obligations.FootprintKernel.check_linear_stable`),
  never from a product mask.

Component lemmas (synthesized on each component's own ≤ tens-of-states
space by :func:`~repro.semantics.synthesis.synthesize_leadsto_proof`)
witness that every helpful command the tree leans on is genuinely
helpful in the component that contributes it, and a ``guarantees``
derivation (:mod:`repro.core.guarantees_calc`) assembles the per-
component universal properties into the delivery conclusion — the
paper's existential composition argument, recorded step by step in the
certificate's ``guarantee_trail``.
"""

from __future__ import annotations

from repro.core.compositional import (
    ComponentCertificate,
    CompositionalCertificate,
    StrongEnsures,
    SupportSplit,
)
from repro.core.composition import compose_all
from repro.core.expressions import esum, land
from repro.core.guarantees_calc import g_conjunction, g_transitivity
from repro.core.predicates import ExprPredicate, Predicate
from repro.core.program import Program
from repro.core.properties import Guarantees, LeadsTo, Transient
from repro.core.rules import (
    Disjunction,
    Ensures,
    Implication,
    LeadsToProof,
    PSP,
    Transitivity,
)
from repro.systems.allocator import build_client
from repro.systems.pipeline import (
    _build_sink,
    _build_source,
    stage_var,
)
from repro.systems.product import PipelineAllocatorSystem

__all__ = [
    "build_hetero_stack",
    "build_delivery_certificate",
    "encoded_size",
]


def _build_stage_hetero(i: int, cap_src: int, cap_dst: int) -> Program:
    """Stage ``i`` with *distinct* neighbour capacities.

    The homogeneous builder bakes one ``cap`` into both buffer domains;
    shared variables must agree on their domain across components, so a
    heterogeneous stack needs the source buffer declared with the
    *upstream* stage's capacity.
    """
    from repro.core.commands import GuardedCommand

    src = stage_var(i - 1, cap_src)
    dst = stage_var(i, cap_dst)
    move = GuardedCommand(
        f"move[{i}]",
        land(src.ref() > 0, dst.ref() < cap_dst),
        [(src, src.ref() - 1), (dst, dst.ref() + 1)],
    )
    return Program(
        f"Stage[{i}]",
        [src, dst],
        ExprPredicate(dst.ref() == 0),
        [move],
        fair=[f"move[{i}]"],
    )


def build_hetero_stack(
    stages: int, *, clients: int = 3, total: int = 3
) -> PipelineAllocatorSystem:
    """A heterogeneous pipeline ∘ allocator stack.

    Per-stage capacities cycle ``total, total+1, total+2`` (all ≥
    ``total``, so the pipeline never clogs).  Composition skips the
    semantic initial-state probe — at the flagship size there is no
    array the probe could allocate; the compositional checker verifies
    initially-consistency symbolically instead.
    """
    if stages < 1:
        raise ValueError(f"need at least one stage, got {stages}")
    if clients < 1:
        raise ValueError(f"need at least one client, got {clients}")
    if total < 1:
        raise ValueError(f"need at least one token, got {total}")
    caps = [total + (i % 3) for i in range(stages)]
    components = [_build_source(total, caps[0])]
    components += [
        _build_stage_hetero(i, caps[i - 1], caps[i]) for i in range(1, stages)
    ]
    components.append(_build_sink(stages, total, caps[-1]))
    components += [build_client(j, total) for j in range(clients)]
    system = compose_all(
        components,
        name=f"HeteroStack[{stages}x{clients}]",
        check_init=False,
    )
    return PipelineAllocatorSystem(
        stages=stages,
        clients=clients,
        cap=max(caps),
        total=total,
        components=components,
        system=system,
    )


def encoded_size(pa: PipelineAllocatorSystem) -> int:
    """Exact encoded product size (a plain Python int — it may exceed
    int64, which is the point of the exhibit)."""
    size = 1
    for v in pa.system.variables:
        size *= v.domain.size
    return size


# ---------------------------------------------------------------------------
# The delivery certificate
# ---------------------------------------------------------------------------


def _component_lemmas(
    pa: PipelineAllocatorSystem,
) -> tuple[ComponentCertificate, ...]:
    """Per-component helpfulness lemmas, each proved on its own space."""
    from repro.semantics.synthesis import synthesize_leadsto_proof

    certs: list[ComponentCertificate] = []
    total = pa.total
    for comp in pa.components:
        name = comp.name
        if name == "Source":
            avail = comp.var_named("avail")
            c0 = comp.var_named("c[0]")
            cap0 = c0.domain.hi
            p: Predicate = ExprPredicate(
                land(avail.ref() > 0, c0.ref() < cap0)
            )
            q: Predicate = ExprPredicate(c0.ref() > 0)
            role = "feed is helpful"
        elif name.startswith("Stage["):
            i = int(name[len("Stage[") : -1])
            src = comp.var_named(f"c[{i - 1}]")
            dst = comp.var_named(f"c[{i}]")
            cap = dst.domain.hi
            p = ExprPredicate(land(src.ref() > 0, dst.ref() < cap))
            q = ExprPredicate(dst.ref() > 0)
            role = f"move[{i}] is helpful"
        elif name == "Sink":
            last = next(v for v in comp.variables if v.name.startswith("c["))
            done = comp.var_named("done")
            p = ExprPredicate(land(last.ref() > 0, done.ref() < total))
            q = ExprPredicate(done.ref() > 0)
            role = "drain is helpful"
        elif name.startswith("Client["):
            hold = next(
                v for v in comp.variables if v.name.startswith("hold[")
            )
            avail = comp.var_named("avail")
            p = ExprPredicate(land(hold.ref() > 0, avail.ref() < total))
            q = ExprPredicate(avail.ref() > 0)
            role = f"{name}'s give returns tokens"
        else:  # pragma: no cover - unknown component shape
            continue
        proof = synthesize_leadsto_proof(comp, p, q, fairness="weak")
        certs.append(
            ComponentCertificate(
                component=comp,
                p=p,
                q=q,
                fairness="weak",
                proof=proof,
                role=role,
            )
        )
    return tuple(certs)


def _guarantee_derivation(
    pa: PipelineAllocatorSystem,
    lemmas: tuple[ComponentCertificate, ...],
    delivery: LeadsTo,
) -> tuple[Guarantees, tuple[str, ...]]:
    """Assemble per-component universal properties with the calculus.

    Each component contributes ``transient(pᵢ ∧ ¬qᵢ) guarantees
    (pᵢ ↝ qᵢ)`` — its helpful command survives any composition that
    keeps the exit transient.  ``g_conjunction`` folds the contributions
    into one guarantee; ``g_transitivity`` chains it into the delivery
    conclusion through the assembly guarantee whose evidence is the
    certificate's rule tree.
    """
    trail: list[str] = []
    parts: list[Guarantees] = []
    for cc in lemmas:
        g = Guarantees(Transient(cc.p & ~cc.q), LeadsTo(cc.p, cc.q))
        parts.append(g)
    folded = parts[0]
    for g in parts[1:]:
        folded = g_conjunction(folded, g)
    trail.append(
        f"g-conjunction over {len(parts)} component guarantees: "
        f"{folded.lhs.describe()[:60]}... g ..."
    )
    assembly = Guarantees(folded.rhs, delivery)
    trail.append(
        "assembly guarantee (evidence: the certificate rule tree): "
        f"(⋀ component lemmas) g ({delivery.describe()})"
    )
    final = g_transitivity(folded, assembly)
    trail.append(f"g-transitivity: {final.describe()}")
    return final, tuple(trail)


def build_delivery_certificate(
    pa: PipelineAllocatorSystem, *, component_lemmas: bool = True
) -> CompositionalCertificate:
    """The compositional delivery certificate for a pipeline ∘ allocator
    stack (homogeneous or heterogeneous): ``conservation ↝ done = total``
    under strong fairness, with every obligation footprint-local."""
    sys = pa.system
    K, J, N = pa.stages, pa.clients, pa.total
    C = pa.conservation_predicate()
    done, avail = pa.done, pa.avail
    holds = [pa.hold(j) for j in range(J)]
    cs = [pa.c(i) for i in range(K)]
    goal = ExprPredicate(done.ref() == N)
    deq = [ExprPredicate(done.ref() == d) for d in range(N + 1)]
    dge = [ExprPredicate(done.ref() >= d) for d in range(N + 1)]
    ps_expr = avail.ref() + esum([h.ref() for h in holds])
    feed = sys.command_named("feed")

    def level(d: int, after: LeadsToProof) -> LeadsToProof:
        """``conservation ∧ done ≥ d ↝ done = total`` given the same for
        ``d+1`` (``after``)."""
        Dd, Dgt = deq[d], dge[d + 1]
        toks = [ExprPredicate(c.ref() > 0) for c in cs]
        base = C & Dd

        # Stage chain: U[i] : Dd ∧ cᵢ>0 ↝ D>
        U: list[LeadsToProof] = [None] * K  # type: ignore[list-item]
        U[K - 1] = Ensures(Dd & toks[K - 1], Dgt)
        for i in range(K - 2, -1, -1):
            T = Ensures(Dd & toks[i], Dgt | (Dd & toks[i + 1]))
            U[i] = Transitivity(
                T,
                Disjunction(
                    [Implication(Dgt, Dgt), U[i + 1]], conclude_lhs=T.q
                ),
            )

        # Pool side: P* : Dd ∧ PS ≥ 1 ↝ D> ∨ (Dd ∧ c₀>0), strong
        # fairness around feed; give[j] makes feed recurrently enabled.
        pstar_p = Dd & ExprPredicate(ps_expr >= 1)
        q0 = Dgt | (Dd & toks[0])
        rho = pstar_p & ~q0
        target = q0 | (rho & ExprPredicate(feed.guard))
        c1 = Implication(rho & ExprPredicate(avail.ref() >= 1), target)
        c2 = [
            Ensures(
                rho
                & ExprPredicate(
                    land(avail.ref() == 0, holds[j].ref() >= 1)
                ),
                target,
            )
            for j in range(J)
        ]
        recurrence = Disjunction([c1, *c2], conclude_lhs=rho)
        pstar = StrongEnsures(
            pstar_p, q0, helpful="feed", recurrence=recurrence
        )
        pstree = Transitivity(
            pstar,
            Disjunction(
                [Implication(Dgt, Dgt), U[0]], conclude_lhs=q0
            ),
        )

        # Support split: some token variable is positive under
        # conservation ∧ Dd (d < total); route each case.
        split_vars = (avail, *holds, *cs)
        pos_subs: list[LeadsToProof] = []
        for v in split_vars:
            blhs = base & ExprPredicate(v.ref() > 0)
            if v is avail or v in holds:
                pos_subs.append(
                    Transitivity(Implication(blhs, pstar_p), pstree)
                )
            else:
                i = cs.index(v)
                pos_subs.append(
                    Transitivity(Implication(blhs, U[i].lhs()), U[i])
                )
        zero_pred: Predicate = base
        for v in split_vars:
            zero_pred = zero_pred & ExprPredicate(v.ref() == 0)
        zero_sub = Implication(zero_pred, Dgt)
        core = SupportSplit(base, split_vars, tuple(pos_subs), zero_sub)

        # Conservation carry: PSP with the stable linear equality.
        psp = PSP(core, s=C, t=C)
        entry = Implication(base, psp.lhs())
        exit_ = Implication(psp.rhs(), after.lhs())
        step = Transitivity(entry, Transitivity(psp, exit_))
        return Disjunction(
            [Transitivity(step, after), after],
            conclude_lhs=C & dge[d],
        )

    H: LeadsToProof = Implication(C & dge[N], goal)
    for d in range(N - 1, -1, -1):
        H = level(d, H)
    root: LeadsToProof = Transitivity(Implication(C, H.lhs()), H)

    lemmas = _component_lemmas(pa) if component_lemmas else ()
    guarantee = None
    trail: tuple[str, ...] = ()
    if lemmas:
        guarantee, trail = _guarantee_derivation(pa, lemmas, pa.delivery())
    return CompositionalCertificate(
        system=sys,
        components=tuple(pa.components),
        p=C,
        q=goal,
        fairness="strong",
        proof=root,
        component_certs=lemmas,
        guarantee=guarantee,
        guarantee_trail=trail,
        notes={
            "encoded_size": str(encoded_size(pa)),
            "stages": K,
            "clients": J,
            "total": N,
        },
    )
