"""A counter/allocator pipeline: the sparse tier's showcase composition.

The paper's thesis is that systems are built by composing components whose
specifications are stated in the property language.  This module pushes
the thesis to the scale where composition *hurts* the dense engine: a
source (allocator pool), ``K`` forwarding stages, and a sink, composed
with :func:`repro.core.composition.compose_all`:

- **Source** — owns the pool ``avail`` (initially ``total`` tokens) and
  feeds stage 0: ``avail > 0 ∧ c_0 < cap  →  c_0, avail := c_0+1, avail-1``;
- **Stage i** — forwards: ``c_{i-1} > 0 ∧ c_i < cap  →  transfer one``;
- **Sink** — retires: ``c_{K-1} > 0 ∧ done < total  →  done := done+1``.

All commands are weakly fair, so every token is eventually pushed through
the whole pipeline.  The composed ``initially`` (conjunction of the
component predicates) pins the unique start state ``avail = total ∧
⟨∀i : c_i = 0⟩ ∧ done = 0``.

Why this is the sparse showcase: the **encoded** space is the product
``(total+1) · (cap+1)^K · (total+1)`` — exponential in the stage count —
while **conservation** (``avail + Σ c_i + done = total``) confines the
reachable set to the compositions of ``total`` tokens into ``K + 2``
bins: polynomial.  With the default ``stages=10, total=3, cap=3`` the
encoded space is ≈ 1.7 · 10⁷ states and the reachable set is **364**
(``C(14, 11)`` weak compositions of 3 tokens into 12 bins) — five orders
of magnitude of slack that only the sparse tier
(:mod:`repro.semantics.sparse`) can exploit; the dense tiers would
allocate 130 MB *per successor table*.

Verified properties (tests, example, CLI scenario):

- ``invariant conservation`` (inductive; checked densely on small
  instances, as a reachable-invariant through the sparse tier at scale);
- **delivery** — ``conservation ↝ done = total``: every fair execution
  drains the pipeline (tokens only move forward, and in every conserving
  non-final state some fair command is enabled and strictly advances the
  progress measure);
- **no recycling** (negative exhibit) — ``done = total ↝ avail > 0`` is
  *false*: the final state is absorbing, and its singleton SCC (all fair
  commands disabled) is exactly a fair SCC of the ``¬q`` graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.commands import GuardedCommand
from repro.core.composition import compose_all
from repro.core.domains import IntRange
from repro.core.expressions import Expr, esum, land
from repro.core.predicates import ExprPredicate, Predicate
from repro.core.program import Program
from repro.core.properties import Invariant, LeadsTo
from repro.core.variables import Var

__all__ = ["PipelineSystem", "build_pipeline_system"]


def pool_var(total: int) -> Var:
    """The source's token pool ``avail``."""
    return Var.shared("avail", IntRange(0, total))


def stage_var(i: int, cap: int) -> Var:
    """Stage ``i``'s buffer counter ``c[i]`` (shared with its neighbours)."""
    return Var.indexed("c", i, IntRange(0, cap))


def done_var(total: int) -> Var:
    """The sink's retirement counter ``done``."""
    return Var.shared("done", IntRange(0, total))


@dataclass
class PipelineSystem:
    """The composed pipeline plus its verification interface."""

    stages: int
    cap: int
    total: int
    components: list[Program]
    system: Program

    @property
    def avail(self) -> Var:
        return self.system.var_named("avail")

    @property
    def done(self) -> Var:
        return self.system.var_named("done")

    def c(self, i: int) -> Var:
        """Buffer counter of stage ``i``."""
        return self.system.var_named(f"c[{i}]")

    def in_flight(self) -> Expr:
        """``Σ_i c_i`` — tokens currently inside the pipeline."""
        return esum([self.c(i).ref() for i in range(self.stages)])

    # -- properties -----------------------------------------------------------

    def conservation_predicate(self) -> Predicate:
        """``avail + Σ c_i + done = total``."""
        return ExprPredicate(
            self.avail.ref() + self.in_flight() + self.done.ref() == self.total
        )

    def conservation(self) -> Invariant:
        """``invariant conservation`` — inductive over the whole space."""
        return Invariant(self.conservation_predicate())

    def delivery(self) -> LeadsTo:
        """``conservation ↝ done = total`` — the pipeline always drains."""
        return LeadsTo(
            self.conservation_predicate(),
            ExprPredicate(self.done.ref() == self.total),
        )

    def no_recycling(self) -> LeadsTo:
        """``done = total ↝ avail > 0`` — **false**: nothing refills the
        pool.  Kept as the negative exhibit (its fair SCC is the absorbing
        final state)."""
        return LeadsTo(
            ExprPredicate(self.done.ref() == self.total),
            ExprPredicate(self.avail.ref() > 0),
        )


def _build_source(total: int, cap: int) -> Program:
    avail = pool_var(total)
    c0 = stage_var(0, cap)
    feed = GuardedCommand(
        "feed",
        land(avail.ref() > 0, c0.ref() < cap),
        [(c0, c0.ref() + 1), (avail, avail.ref() - 1)],
    )
    return Program(
        "Source",
        [avail, c0],
        land(avail.ref() == total, c0.ref() == 0),
        [feed],
        fair=["feed"],
    )


def _build_stage(i: int, cap: int) -> Program:
    src = stage_var(i - 1, cap)
    dst = stage_var(i, cap)
    move = GuardedCommand(
        f"move[{i}]",
        land(src.ref() > 0, dst.ref() < cap),
        [(src, src.ref() - 1), (dst, dst.ref() + 1)],
    )
    return Program(
        f"Stage[{i}]",
        [src, dst],
        ExprPredicate(dst.ref() == 0),
        [move],
        fair=[f"move[{i}]"],
    )


def _build_sink(stages: int, total: int, cap: int) -> Program:
    last = stage_var(stages - 1, cap)
    done = done_var(total)
    drain = GuardedCommand(
        "drain",
        land(last.ref() > 0, done.ref() < total),
        [(last, last.ref() - 1), (done, done.ref() + 1)],
    )
    return Program(
        "Sink",
        [last, done],
        ExprPredicate(done.ref() == 0),
        [drain],
        fair=["drain"],
    )


def build_pipeline_system(
    stages: int, *, total: int = 3, cap: int | None = None
) -> PipelineSystem:
    """Build a ``stages``-deep pipeline over ``total`` tokens.

    ``cap`` (default ``total``) bounds each stage buffer; ``cap ≥ total``
    guarantees the pipeline can never clog, which the delivery property
    relies on.  Composition skips the semantic initial-state probe
    (``check_init=False``): the probe would materialize a full-space mask,
    which is exactly what large pipelines must avoid — the sparse
    explorer's initial enumeration (and a test) covers satisfiability.
    """
    if stages < 1:
        raise ValueError(f"need at least one stage, got {stages}")
    if total < 1:
        raise ValueError(f"need at least one token, got {total}")
    if cap is None:
        cap = total
    if cap < total:
        raise ValueError(
            f"cap={cap} < total={total} can clog the pipeline; "
            "delivery needs cap >= total"
        )
    components = [_build_source(total, cap)]
    components += [_build_stage(i, cap) for i in range(1, stages)]
    components.append(_build_sink(stages, total, cap))
    system = compose_all(
        components,
        name=f"Pipeline[{stages}]",
        check_init=False,
    )
    return PipelineSystem(
        stages=stages, cap=cap, total=total,
        components=components, system=system,
    )
