"""The mechanized §3.3 proof of ``invariant C = Σ_i c_i``.

The paper's derivation, step for step::

    {Component specifications, rewriting (3) and (4)}
      ∀i :  init (c_i = 0 ∧ C = 0)                    in Component_i
      ∀i,k⃗ : stable (C = c_i + Σ_{j≠i} k_j)           in Component_i
      ∀i,k⃗ : stable ⟨∀j≠i : c_j = k_j⟩                in Component_i
    ⇒ {conjunction of stable properties, removing unused dummies}
      ∀i : stable (C = Σ_j c_j)                       in Component_i
    ⇒ {init properties are existential, stable properties are universal}
      init ⟨∀i : c_i = 0 ∧ C = 0⟩                     in System
      stable (C = Σ_j c_j)                            in System
    ⇒ {predicate calculus}
      init (C = Σ_j c_j)                              in System
    ⇒ {definition of invariant}
      invariant (C = Σ_j c_j)                         in System

:func:`build_invariant_proof` produces this derivation as a checkable
proof object:

- the ∀k-quantified ``stable`` families and the "removing unused dummies"
  conjunction are packaged by the
  :class:`~repro.core.proofs.ConstantExpressions` rule (the families say
  exactly that ``C - c_i`` and each foreign ``c_j`` are *constants* of
  component ``i``; the target is a function of those constants);
- the "stable is universal" step is
  :class:`~repro.core.proofs.UniversalLift` over the lifted components;
- the "init is existential" step is
  :class:`~repro.core.proofs.InitLift` + conjunction;
- the predicate-calculus and definition steps are
  :class:`~repro.core.proofs.InitWeaken` and
  :class:`~repro.core.proofs.InvariantIntro`.

For comparison, :func:`family_evidence` enumerates the paper's
∀k⃗-quantified premise families *explicitly* — every instance is a separate
semantically checkable ``stable`` property.  (The bridge from the family to
the target is the instantiation ``k := C - c_i``, ``k_j := c_j`` of the
universally quantified dummies — a step that is **not** a conjunction, which
is why the kernel packages it as the functional-dependence obligation of
``ConstantExpressions`` rather than as ``StableConjunction``.)
"""

from __future__ import annotations

from repro.core.expressions import land
from repro.core.predicates import ExprPredicate, Predicate
from repro.core.proofs import (
    ConstantExpressions,
    InitConjunction,
    InitLeaf,
    InitLift,
    InitWeaken,
    InvariantIntro,
    SafetyProof,
    StableConjunction,
    StableLeaf,
    UniversalLift,
)
from repro.systems.counter import CounterSystem

__all__ = [
    "invariant_predicate",
    "build_invariant_proof",
    "family_evidence",
    "build_conjunction_demo",
]


def invariant_predicate(cs: CounterSystem) -> Predicate:
    """The paper's (1): ``C = Σ_i c_i``."""
    return ExprPredicate(cs.C.ref() == cs.sum_expr())


def build_invariant_proof(cs: CounterSystem) -> InvariantIntro:
    """The full §3.3 derivation as one checkable proof object.

    Check it against the composed system::

        proof = build_invariant_proof(cs)
        assert proof.check(cs.system).ok
    """
    target = invariant_predicate(cs)

    # -- stable part: one ConstantExpressions proof per lifted component ----
    stable_parts: list[tuple] = []
    for i in range(cs.n):
        comp = cs.lifted_component(i)
        constants = [cs.C.ref() - cs.c(i).ref()]
        constants += [cs.c(j).ref() for j in range(cs.n) if j != i]
        stable_parts.append((comp, ConstantExpressions(constants, target)))
    stable_sys = UniversalLift(stable_parts)

    # -- init part: existential lifting then predicate calculus ---------------
    init_lifts = []
    for i, comp in enumerate(cs.components):
        local_init = ExprPredicate(
            land(cs.c(i).ref() == 0, cs.C.ref() == 0)
        )
        init_lifts.append(InitLift(comp, InitLeaf(local_init)))
    init_all = InitConjunction(init_lifts)
    init_target = InitWeaken(init_all, target)

    return InvariantIntro(init_target, stable_sys)


def family_evidence(cs: CounterSystem, i: int) -> list[SafetyProof]:
    """The paper's intermediate premise families for component ``i``,
    enumerated instance by instance::

        ∀ d :        stable (C = c_i + d)            — (3) rewritten
        ∀ j≠i, k_j : stable (c_j = k_j)              — (4), lifted view

    Each entry is a :class:`StableLeaf` checkable against the *lifted*
    component ``i`` (``cs.lifted_component(i)``).  The count grows with
    the domains — the size the ``ConstantExpressions`` packaging avoids;
    the bench harness reports both numbers side by side.
    """
    leaves: list[SafetyProof] = []
    for d in range(-cs.cap, cs.n * cs.cap + 1):
        leaves.append(
            StableLeaf(ExprPredicate(cs.C.ref() == cs.c(i).ref() + d))
        )
    for j in range(cs.n):
        if j == i:
            continue
        for k in range(cs.cap + 1):
            leaves.append(StableLeaf(ExprPredicate(cs.c(j).ref() == k)))
    return leaves


def build_conjunction_demo(cs: CounterSystem, i: int) -> StableConjunction:
    """A :class:`StableConjunction` over a *consistent* selection of family
    members (the ``d = 0``, ``k⃗ = 0`` instances) — the rule the paper's
    "conjunction of stable properties" step names.  Used by tests to
    exercise the rule itself; the dummy-elimination step is separate (see
    module docstring)."""
    parts: list[SafetyProof] = [
        StableLeaf(ExprPredicate(cs.C.ref() == cs.c(i).ref()))
    ]
    parts += [
        StableLeaf(ExprPredicate(cs.c(j).ref() == 0))
        for j in range(cs.n)
        if j != i
    ]
    return StableConjunction(parts)
