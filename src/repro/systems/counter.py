"""The §3 toy example: components sharing a global counter.

Each component ``i`` keeps a local counter ``c_i`` of the actions ``a`` it
has performed and increments the shared counter ``C`` along with it.  The
system property to establish compositionally is the paper's (1)::

    invariant  C = Σ_i c_i

The module builds the *repaired* component specification of §3.2 —

- ``init (c_i = 0 ∧ C = 0)``                                        (2)
- ``⟨∀k : stable (C = c_i + k)⟩``                                   (3)
- locality: ``⟨∀v ∉ {c_i, C}, k : stable (v = k)⟩``                 (4)

— and also the **naive** specification (``init C = c_i``,
``stable C = c_i``) whose two failure modes §3.2 diagnoses; tests
demonstrate both failures exactly as the paper describes.

Substitution note (recorded in DESIGN.md): the paper's counters are
unbounded; ours saturate at a cap, with command guards keeping every
transition inside the finite domain.  All paper properties are
guard-respecting ``next``-facts, so they are unaffected away from the cap,
and the cap behaviour itself is pinned by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.composition import compose_all, lifted
from repro.core.domains import IntRange
from repro.core.expressions import Expr, esum, land
from repro.core.predicates import ExprPredicate
from repro.core.program import Program
from repro.core.commands import GuardedCommand
from repro.core.properties import (
    Init,
    Invariant,
    PropertyFamily,
    Stable,
    forall_values,
)
from repro.core.variables import Locality, Var

__all__ = [
    "CounterSystem",
    "build_counter_component",
    "build_counter_system",
    "global_counter_var",
    "local_counter_var",
    "naive_component_spec",
]


def global_counter_var(n: int, cap: int) -> Var:
    """The shared counter ``C`` for an ``n``-component system; its domain
    ``[0, n·cap]`` accommodates every component saturating."""
    return Var.shared("C", IntRange(0, n * cap))


def local_counter_var(i: int, cap: int) -> Var:
    """The local counter ``c[i]`` with domain ``[0, cap]``."""
    return Var.indexed("c", i, IntRange(0, cap), locality=Locality.LOCAL)


def build_counter_component(i: int, n: int, cap: int) -> Program:
    """Component ``i`` of the §3 system.

    One fair action ``a[i]``: when neither counter is saturated, increment
    ``c_i`` and ``C`` together.  The ``initially`` is the paper's repaired
    local predicate (2): ``c_i = 0 ∧ C = 0``.
    """
    c_i = local_counter_var(i, cap)
    C = global_counter_var(n, cap)
    action = GuardedCommand(
        f"a[{i}]",
        land(c_i.ref() < cap, C.ref() < n * cap),
        [(c_i, c_i.ref() + 1), (C, C.ref() + 1)],
    )
    return Program(
        f"Component[{i}]",
        [c_i, C],
        land(c_i.ref() == 0, C.ref() == 0),
        [action],
        fair=[f"a[{i}]"],
    )


@dataclass
class CounterSystem:
    """The composed §3 system plus its specification objects."""

    n: int
    cap: int
    components: list[Program]
    system: Program

    # -- variables ------------------------------------------------------------

    @property
    def C(self) -> Var:
        """The shared counter."""
        return self.system.var_named("C")

    def c(self, i: int) -> Var:
        """Local counter of component ``i``."""
        return self.system.var_named(f"c[{i}]")

    def sum_expr(self) -> Expr:
        """``Σ_i c_i`` as an expression."""
        return esum([self.c(i).ref() for i in range(self.n)])

    # -- the paper's properties --------------------------------------------------

    def invariant_property(self) -> Invariant:
        """(1): ``invariant C = Σ_i c_i`` — the system correctness goal."""
        return Invariant(ExprPredicate(self.C.ref() == self.sum_expr()))

    def component_init_property(self, i: int) -> Init:
        """(2): ``init (c_i = 0 ∧ C = 0)`` — stated over component ``i``."""
        return Init(ExprPredicate(land(self.c(i).ref() == 0, self.C.ref() == 0)))

    def component_stable_family(self, i: int) -> PropertyFamily:
        """(3): ``⟨∀k : stable (C = c_i + k)⟩``.

        ``k`` ranges over every value ``C - c_i`` can take, which is finite
        here (the paper's ``k`` is universally quantified over ℤ; all other
        instances are vacuous).
        """
        c_i = self.c(i)
        return forall_values(
            range(-self.cap, self.n * self.cap + 1),
            lambda k: Stable(ExprPredicate(self.C.ref() == c_i.ref() + k)),
            description=f"forall k : stable (C = c[{i}] + k)",
        )

    def locality_family(self, i: int) -> PropertyFamily:
        """(4): for every variable ``v ∉ {c_i, C}`` and value ``k``,
        ``stable (v = k)`` — derived from the ``local`` declaration.

        Stated (and checked) over the component *lifted* to the system's
        variables, since the foreign ``c_j`` do not exist in the
        component's own space — exactly the gap §3.2 identifies.
        """
        members = []
        for j in range(self.n):
            if j == i:
                continue
            c_j = self.c(j)
            members.extend(
                Stable(ExprPredicate(c_j.ref() == k))
                for k in range(0, self.cap + 1)
            )
        return PropertyFamily(
            f"forall v not in {{c[{i}], C}}, k : stable (v = k)", members
        )

    def lifted_component(self, i: int) -> Program:
        """Component ``i`` viewed over the system's variables."""
        return lifted(self.components[i], self.system)

    def all_spec_properties(self, i: int) -> list:
        """The full repaired specification of component ``i``."""
        return [
            self.component_init_property(i),
            self.component_stable_family(i),
            self.locality_family(i),
        ]


def build_counter_system(n: int, cap: int = 3) -> CounterSystem:
    """Build the §3 system with ``n ≥ 1`` components saturating at ``cap``."""
    if n < 1:
        raise ValueError(f"need at least one component, got n={n}")
    if cap < 1:
        raise ValueError(f"cap must be positive, got {cap}")
    components = [build_counter_component(i, n, cap) for i in range(n)]
    system = compose_all(components, name=f"CounterSystem[{n}]")
    return CounterSystem(n=n, cap=cap, components=components, system=system)


def naive_component_spec(i: int, n: int, cap: int) -> tuple[Init, Stable]:
    """The naive specification of §3.2: ``init C = c_i`` and
    ``stable C = c_i``.

    The paper's two diagnosed problems, both demonstrated by tests:

    1. the conjunction of the naive ``init``s gives ``⟨∀i : C = c_i⟩``,
       from which ``C = Σ c_i`` does **not** follow for ``n > 1``;
    2. component ``j`` modifies ``C`` without touching ``c_i``, so
       ``stable (C = c_i)`` fails in the composed system.
    """
    c_i = local_counter_var(i, cap)
    C = global_counter_var(n, cap)
    return (
        Init(ExprPredicate(C.ref() == c_i.ref())),
        Stable(ExprPredicate(C.ref() == c_i.ref())),
    )
