"""The paper's case studies, built as library modules.

- :mod:`repro.systems.counter` / :mod:`repro.systems.counter_proof` — the
  §3 toy example (shared global counter) and the mechanized §3.3 proof of
  ``invariant C = Σ_i c_i``;
- :mod:`repro.systems.priority` / :mod:`repro.systems.priority_proof` —
  the §4 priority mechanism (edge-reversal on an acyclic conflict-graph
  orientation), its specification (5)–(8), safety (9), liveness (10) and
  the full property chain (11)–(20);
- :mod:`repro.systems.philosophers` — dining philosophers built *on top of*
  the priority mechanism (the conflicts the §4 intro motivates);
- :mod:`repro.systems.allocator` — the resource-allocator sketch from the
  paper's conclusion, exercising the ``guarantees`` operator;
- :mod:`repro.systems.pipeline` — the source → stages → sink token
  pipeline whose composed space only the sparse tier
  (:mod:`repro.semantics.sparse`) can check;
- :mod:`repro.systems.fanout` — the layered fan-in/fan-out DAG
  generalization of the pipeline (heterogeneous buffer capacities);
- :mod:`repro.systems.mesh` — the allocator sharded into a multi-pool
  client mesh with per-pool conservation.

The parameterized *scenario families* built from these (philosophers on
generated conflict graphs, fan-out profiles, mesh wirings — each with an
expected-property manifest) live in :mod:`repro.gen.families`.
"""

from repro.systems.counter import CounterSystem, build_counter_component, build_counter_system
from repro.systems.fanout import FanoutSystem, build_fanout_system
from repro.systems.mesh import MeshSystem, build_mesh_system
from repro.systems.philosophers import (
    PhilosopherSystem,
    build_philosopher_ring,
    build_philosopher_system,
)
from repro.systems.pipeline import PipelineSystem, build_pipeline_system
from repro.systems.priority import PrioritySystem, build_priority_system

__all__ = [
    "CounterSystem",
    "build_counter_component",
    "build_counter_system",
    "PrioritySystem",
    "build_priority_system",
    "PhilosopherSystem",
    "build_philosopher_system",
    "build_philosopher_ring",
    "PipelineSystem",
    "build_pipeline_system",
    "FanoutSystem",
    "build_fanout_system",
    "MeshSystem",
    "build_mesh_system",
]
