"""repro — compositional program verification with existential and
universal properties.

A complete, executable reproduction of *Charpentier & Chandy, "Examples of
Program Composition Illustrating the Use of Universal Properties"* (IPPS
1999 / Caltech CS-TR): the UNITY-derived programming model, program
composition with locality side conditions, the ``init / transient / next /
stable / invariant / leads-to / guarantees`` property language with its
existential/universal classification, a checkable proof kernel for the
paper's inference rules, a weak-fairness model checker with proof
synthesis, and both of the paper's case studies (the shared counter of §3
and the edge-reversal priority mechanism of §4) mechanized end to end.

Quickstart::

    from repro import systems
    cs = systems.build_counter_system(n=3, cap=3)
    assert cs.invariant_property().holds_in(cs.system)   # paper's (1)

    from repro.systems.counter_proof import build_invariant_proof
    proof = build_invariant_proof(cs)                    # the §3.3 proof
    assert proof.check(cs.system).ok

See ``examples/`` for runnable walkthroughs and ``DESIGN.md`` /
``EXPERIMENTS.md`` for the reproduction inventory.
"""

from repro import core, dsl, graph, semantics, systems, util
from repro._version import __version__
from repro.api import Verdict, Witness, verify
from repro.core import (
    AltCommand,
    BoolDomain,
    EnumDomain,
    Expr,
    ExprPredicate,
    FnPredicate,
    Guarantees,
    GuardedCommand,
    Init,
    IntRange,
    Invariant,
    LeadsTo,
    Locality,
    MaskPredicate,
    Next,
    Predicate,
    Program,
    PropertyFamily,
    Skip,
    Stable,
    State,
    StateSpace,
    Transient,
    Var,
    can_compose,
    compose,
    compose_all,
)

__all__ = [
    "__version__",
    "core", "semantics", "graph", "systems", "dsl", "util",
    # the unified verification facade
    "verify", "Verdict", "Witness",
    # re-exported core API
    "Var", "Locality", "BoolDomain", "IntRange", "EnumDomain",
    "Expr", "Predicate", "ExprPredicate", "FnPredicate", "MaskPredicate",
    "State", "StateSpace", "Program", "GuardedCommand", "AltCommand", "Skip",
    "compose", "compose_all", "can_compose",
    "Init", "Transient", "Next", "Stable", "Invariant", "LeadsTo",
    "Guarantees", "PropertyFamily",
]
