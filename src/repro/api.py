"""The unified verification facade: ``verify(program, property) -> Verdict``.

One entry point in front of the tiered engine.  Callers name *what* to
verify (a :class:`~repro.core.properties.Property`, a bare
:class:`~repro.core.predicates.Predicate` for a reachable invariant, or a
:class:`~repro.core.compositional.CompositionalCertificate`) and *how hard*
to try (``tier``, ``budget``, ``prove``); the facade routes to the dense
checker, the sparse reachable-subspace engine, the proof synthesizer, or
the compositional certificate checker and always returns a
:class:`Verdict` with the same shape:

- ``holds`` — ``True`` / ``False`` for a decided property, ``None`` when
  the engine *refused or ran out* (budget exhaustion, certificate
  refusal).  UNKNOWN is never conflated with FAILS: ``bool(verdict)``
  raises on an undecided verdict instead of silently reading it as
  ``False``.
- ``tier`` — which engine decided it (``"dense"`` / ``"sparse"`` /
  ``"compositional"``).
- ``witness`` — the engine's structured facts (counterexample state,
  violation counts, …) behind a read-only mapping.
- ``certificate`` — the kernel-checked proof object when ``prove=True``
  (or the compositional certificate that was checked).
- ``partial`` — the resumable
  :class:`~repro.semantics.budget.PartialResult` when a budget ran out.

Tier routing
------------
``tier="auto"`` (default)
    The engine's normal size-based routing: dense below the sparse
    threshold, reachable-subspace sparse above it.
``tier="sparse"``
    Force the sparse tier: the reachable subspace is explored (under
    ``budget`` if given) and every check runs over it.
``tier="dense"``
    Require the dense tier; refused with a
    :class:`~repro.errors.CapacityError` if the space routes sparse —
    forcing full-space arrays on a 10¹²-state space is exactly what the
    capacity system exists to prevent.
``tier="compositional"``
    Check a :class:`~repro.core.compositional.CompositionalCertificate`
    (passed as the property itself, or via ``certificate=``) without ever
    materializing the product space.

Migration from the dict-shaped results of earlier revisions: see
``docs/composition.md``.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.errors import CapacityError, PropertyError

__all__ = ["verify", "Verdict", "Witness", "TIERS"]

#: The recognized ``tier=`` values, in routing order.
TIERS = ("auto", "dense", "sparse", "compositional")


class Witness(Mapping):
    """Read-only view of a verdict's structured facts.

    Wraps the checker's witness dict (counterexample ``state``, violation
    counts, engine ``tier``, confining paths, …) behind the mapping
    protocol; iteration order is the engine's insertion order.
    """

    __slots__ = ("_data",)

    def __init__(self, data: Mapping[str, Any] | None = None) -> None:
        self._data = dict(data or {})

    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"Witness({self._data!r})"

    @property
    def state(self) -> Any:
        """The counterexample state, or ``None``."""
        return self._data.get("state")


def _shim_warning(key: str) -> None:
    warnings.warn(
        f"Verdict[{key!r}] is deprecated; use the Verdict attributes "
        "(verdict.holds, verdict.tier, ...) or verdict.witness[...] for "
        "engine facts",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class Verdict:
    """The uniform result of :func:`verify`.

    ``holds`` is three-valued: ``True`` / ``False`` are decided verdicts;
    ``None`` means the engine refused or ran out (see ``partial`` /
    ``metrics["message"]``).  ``bool(verdict)`` raises on ``None`` so
    UNKNOWN can never be read as FAILS by accident.
    """

    holds: bool | None
    tier: str
    witness: Witness = field(default_factory=Witness)
    certificate: Any = None
    metrics: Mapping[str, Any] = field(default_factory=dict)
    partial: Any = None

    def __bool__(self) -> bool:
        if self.holds is None:
            raise TypeError(
                "undecided Verdict (holds=None) has no truth value; "
                "inspect .partial / .metrics['message']"
            )
        return self.holds

    # -- dict-shaped shims (deprecated) ---------------------------------
    # Earlier revisions returned the checker's witness dict directly;
    # these keep `result["state"]`-style call sites working, loudly.

    def __getitem__(self, key: str) -> Any:
        _shim_warning(key)
        if key in ("holds", "tier", "certificate", "metrics", "partial"):
            return getattr(self, key)
        return self.witness[key]

    def __contains__(self, key: str) -> bool:
        _shim_warning(key)
        if key in ("holds", "tier", "certificate", "metrics", "partial"):
            return True
        return key in self.witness

    def get(self, key: str, default: Any = None) -> Any:
        """Deprecated dict-shim; use attributes or ``witness.get``."""
        _shim_warning(key)
        if key in ("holds", "tier", "certificate", "metrics", "partial"):
            return getattr(self, key)
        return self.witness._data.get(key, default)

    # -------------------------------------------------------------------

    def explain(self) -> str:
        """One-line human rendering, mirroring ``CheckResult.explain``."""
        subject = self.metrics.get("subject", "")
        if self.holds is None:
            status = "UNKNOWN"
        else:
            status = "HOLDS" if self.holds else "FAILS"
        msg = self.metrics.get("message", "")
        tail = f" — {msg}" if msg else ""
        return f"{status} [{self.tier}] {subject}{tail}".rstrip()


def _verdict_from_check(result, *, certificate=None) -> Verdict:
    """Lift a :class:`~repro.semantics.checker.CheckResult`."""
    witness = result.witness or {}
    return Verdict(
        holds=result.holds,
        tier=witness.get("tier", "dense"),
        witness=Witness(witness),
        certificate=certificate,
        metrics={
            "kind": result.kind,
            "subject": result.subject,
            "message": result.message,
        },
    )


def _verdict_from_partial(partial, tier: str = "sparse") -> Verdict:
    return Verdict(
        holds=None,
        tier=tier,
        witness=Witness(partial.witness),
        metrics={
            "kind": partial.kind,
            "subject": partial.subject,
            "message": f"budget exhausted ({partial.reason}); "
            f"checkpoint={partial.checkpoint_path or '-'}",
            "explored": int(partial.explored),
            "levels": int(partial.levels),
        },
        partial=partial,
    )


def _is_partial(result) -> bool:
    return getattr(result, "status", None) == "unknown"


def _verify_compositional(program, prop, certificate, max_states) -> Verdict:
    from repro.core.compositional import CompositionalCertificate
    from repro.core.properties import LeadsTo
    from repro.semantics.compositional import check_compositional

    cert = prop if isinstance(prop, CompositionalCertificate) else certificate
    if cert is None:
        raise PropertyError(
            "tier='compositional' needs a CompositionalCertificate — pass "
            "it as the property or via certificate="
        )
    if isinstance(prop, LeadsTo):
        if (
            prop.p.describe() != cert.p.describe()
            or prop.q.describe() != cert.q.describe()
        ):
            raise PropertyError(
                f"certificate concludes {cert.conclusion_text()}, not "
                f"{prop.describe()}"
            )
    if program is not None and program is not cert.system:
        raise PropertyError(
            "the certificate was built for a different composed system; "
            "pass cert.system (or None) as the program"
        )
    kwargs = {} if max_states is None else {"max_states": max_states}
    res = check_compositional(cert, **kwargs)
    metrics = {
        "kind": "compositional",
        "subject": cert.conclusion_text(),
        "message": res.explain().splitlines()[0],
        "obligations": int(res.obligations_checked),
        "rule_applications": int(res.nodes_checked),
        "components": int(res.components_checked),
        "frame_skips": int(res.frame_skips),
        "footprint_evaluations": int(res.footprint_evaluations),
    }
    return Verdict(
        holds=True if res.ok else None,
        tier="compositional",
        witness=Witness({"failures": [str(f) for f in res.failures]}),
        certificate=cert,
        metrics=metrics,
    )


def verify(
    program,
    prop,
    *,
    tier: str = "auto",
    fairness: str = "weak",
    budget=None,
    prove: bool = False,
    subspace=None,
    recorder=None,
    certificate=None,
    max_states=None,
) -> Verdict:
    """Verify ``prop`` of ``program`` and return a :class:`Verdict`.

    ``prop`` may be a :class:`~repro.core.properties.Property`, a bare
    :class:`~repro.core.predicates.Predicate` (checked as a *reachable*
    invariant), or a
    :class:`~repro.core.compositional.CompositionalCertificate`.

    ``fairness`` (``"weak"`` / ``"strong"``) selects the scheduler
    assumption for leads-to; ``prove=True`` additionally synthesizes and
    kernel-checks a certificate for a holding leads-to (attached as
    ``verdict.certificate``); ``budget`` / ``subspace`` / ``recorder``
    are the normalized engine keywords shared with the underlying
    checkers.  ``max_states`` caps the footprint kernel on the
    compositional tier.
    """
    from repro.core.compositional import CompositionalCertificate

    if tier not in TIERS:
        raise PropertyError(f"unknown tier {tier!r}; expected one of {TIERS}")
    if fairness not in ("weak", "strong"):
        raise PropertyError(
            f"unknown fairness {fairness!r}; expected 'weak' or 'strong'"
        )
    if recorder is not None:
        from repro import obs

        with obs.use_recorder(recorder):
            return verify(
                program,
                prop,
                tier=tier,
                fairness=fairness,
                budget=budget,
                prove=prove,
                subspace=subspace,
                certificate=certificate,
                max_states=max_states,
            )

    if tier == "compositional" or isinstance(prop, CompositionalCertificate):
        return _verify_compositional(program, prop, certificate, max_states)

    from repro.core.predicates import Predicate
    from repro.core.properties import Invariant, LeadsTo, Property
    from repro.semantics.sparse import sparse_enabled

    if tier == "dense":
        if subspace is not None:
            raise PropertyError("tier='dense' contradicts subspace=")
        if sparse_enabled(program.space):
            raise CapacityError(
                f"tier='dense' refused: {program.space.size} encoded "
                "states routes sparse; use tier='auto' or tier='sparse'"
            )
    if tier == "sparse" and subspace is None:
        from repro.errors import BudgetExhausted
        from repro.semantics.budget import PartialResult
        from repro.semantics.sparse.explorer import reachable_subspace

        try:
            subspace = reachable_subspace(program, budget=budget)
        except BudgetExhausted as exc:
            return _verdict_from_partial(
                PartialResult.from_exhaustion(
                    exc, kind="exploration", subject=program.name
                )
            )

    if isinstance(prop, LeadsTo):
        return _verify_leadsto(
            program,
            prop,
            fairness=fairness,
            budget=budget,
            subspace=subspace,
            prove=prove,
        )
    if isinstance(prop, Predicate):
        from repro.semantics.checker import check_reachable_invariant

        result = check_reachable_invariant(
            program, prop, budget=budget, subspace=subspace
        )
        if _is_partial(result):
            return _verdict_from_partial(result)
        return _verdict_from_check(result)
    if isinstance(prop, Property):
        if subspace is not None and not isinstance(prop, Invariant):
            raise PropertyError(
                f"subspace= is not supported for {type(prop).__name__} "
                "properties (they quantify over all states)"
            )
        return _verdict_from_check(prop.check(program))
    raise PropertyError(f"cannot verify {prop!r}: not a property")


def _verify_leadsto(program, prop, *, fairness, budget, subspace, prove) -> Verdict:
    from repro.semantics.leadsto import check_leadsto
    from repro.semantics.strong_fairness import check_leadsto_strong

    checker = check_leadsto_strong if fairness == "strong" else check_leadsto
    result = checker(program, prop.p, prop.q, budget=budget, subspace=subspace)
    if _is_partial(result):
        return _verdict_from_partial(result)
    cert = None
    if prove and result.holds:
        from repro.semantics.synthesis import (
            check_certificate_batched,
            synthesize_leadsto_proof,
        )

        proof = synthesize_leadsto_proof(
            program, prop.p, prop.q, fairness=fairness, budget=budget, subspace=subspace
        )
        if _is_partial(proof):
            return _verdict_from_partial(proof)
        check = check_certificate_batched(proof, program)
        if not check.ok:
            raise PropertyError(
                f"synthesized certificate failed its kernel check: "
                f"{check.explain()}"
            )
        cert = proof
    return _verdict_from_check(result, certificate=cert)
