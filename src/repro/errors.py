"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing genuine bugs (``TypeError`` etc. still propagate).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DomainError",
    "ExpressionError",
    "EvaluationError",
    "StateError",
    "CapacityError",
    "CommandError",
    "ProgramError",
    "CompositionError",
    "PropertyError",
    "ExplorationError",
    "BudgetExhausted",
    "CheckpointError",
    "ProofError",
    "GraphError",
    "DslError",
    "DslSyntaxError",
    "ElaborationError",
]


class ReproError(Exception):
    """Base class of all library-specific errors."""


class DomainError(ReproError):
    """A value is outside its declared finite domain, or a domain is invalid."""


class ExpressionError(ReproError):
    """An expression tree is malformed (arity, typing, unknown variable)."""


class EvaluationError(ReproError):
    """Evaluation of an expression or predicate failed at runtime."""


class StateError(ReproError):
    """A state or state space is inconsistent with its variable declarations."""


class CapacityError(StateError):
    """A dense-tier operation was asked to materialize full-space arrays over
    a state space beyond its capacity (``StateSpace.DENSE_MAX``).

    Capacity is a **per-tier policy**, not a property of the space: building
    a :class:`~repro.core.state.StateSpace` of any size is legal, and the
    sparse tier (:mod:`repro.semantics.sparse`) explores it up to its
    ``node_limit`` without full-space arrays.  Subclasses
    :class:`StateError` so pre-existing ``except StateError`` sites keep
    catching the old constructor-time size failures.
    """


class CommandError(ReproError):
    """A command is malformed (duplicate targets, type mismatch, bad guard)."""


class ProgramError(ReproError):
    """A program violates the model of §2 (e.g. writes an undeclared variable)."""


class CompositionError(ReproError):
    """Two programs cannot be composed (locality or initial-condition clash)."""


class PropertyError(ReproError):
    """A property is malformed or applied to an incompatible program."""


class ExplorationError(ReproError, ValueError):
    """State-space exploration exceeded a limit or cannot enumerate a set.

    Also a :class:`ValueError` for backward compatibility with callers that
    caught the old bare ``ValueError`` from ``reachable_states``.
    """


class BudgetExhausted(ReproError):
    """A run budget (deadline, soft node limit, level cap) ran out.

    Deliberately **not** an :class:`ExplorationError`: the sparse→dense
    fallback sites catch ``ExplorationError`` to mean "the sparse tier
    cannot decide this instance", and a budget running out is neither a
    tier failure nor grounds for silently restarting the same work on the
    dense tier.  Budget-aware callers (the routed checkers, the proof
    synthesizer, the CLI) catch this class explicitly and degrade to a
    structured ``status="unknown"`` :class:`~repro.semantics.budget.
    PartialResult`; everyone else fails loudly.

    Attributes
    ----------
    reason:
        Which budget ran out: ``"deadline"``, ``"node-budget"`` or
        ``"level-budget"``.
    explored:
        Number of states interned when the budget ran out.
    levels:
        Number of **completed** BFS levels (the checkpoint, if any,
        reflects exactly these).
    elapsed:
        Wall-clock seconds spent exploring.
    checkpoint_path:
        Path of the checkpoint emitted on exhaustion, or ``None`` when no
        checkpoint policy was active.
    rate:
        Cumulative discovery rate in states per second (``explored``
        over the total exploration wall time, including any resumed
        prefix's recorded elapsed time); ``0.0`` when unknown.
    frontier:
        Size of the last completed BFS level — how wide the exploration
        front was when the budget ran out; ``0`` when unknown.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str,
        explored: int,
        levels: int,
        elapsed: float,
        checkpoint_path: "str | None" = None,
        rate: float = 0.0,
        frontier: int = 0,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.explored = explored
        self.levels = levels
        self.elapsed = elapsed
        self.checkpoint_path = checkpoint_path
        self.rate = rate
        self.frontier = frontier


class CheckpointError(ReproError):
    """A checkpoint file was refused (corrupt, truncated, wrong program).

    Fail-closed by design: a checkpoint that does not validate end to end
    — magic, header, payload digest, program digest — is never partially
    loaded, and exploration never resumes from it.

    Attributes
    ----------
    reason:
        Structured refusal code, for callers (the certification service's
        cache, CLI diagnostics) that dispatch on *why* the file was
        refused rather than re-parsing the message: ``"bad-magic"``,
        ``"truncated"``, ``"corrupt-header"``, ``"payload-digest"``,
        ``"inconsistent"``, ``"trailing-bytes"``, ``"program-digest"``,
        ``"command-set"``, ``"io"``, ``"missing"``; ``None`` for legacy
        raise sites.
    """

    def __init__(self, message: str, *, reason: "str | None" = None) -> None:
        super().__init__(message)
        self.reason = reason


class ProofError(ReproError):
    """A proof object failed to check (invalid rule application or leaf)."""


class GraphError(ReproError):
    """A neighbourhood graph or orientation is malformed."""


class DslError(ReproError):
    """Base class for surface-language errors."""


class DslSyntaxError(DslError):
    """The DSL source text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = -1, column: int = -1) -> None:
        self.line = line
        self.column = column
        if line >= 0:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class ElaborationError(DslError):
    """A parsed DSL tree could not be elaborated into core objects."""
