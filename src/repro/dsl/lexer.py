"""Tokenizer for the UNITY-like surface language.

Longest-match lexing over :data:`repro.dsl.tokens.SYMBOLS`, identifiers and
decimal integers; ``#`` starts a comment running to end of line.
"""

from __future__ import annotations

from repro.dsl.tokens import KEYWORDS, SYMBOLS, Token
from repro.errors import DslSyntaxError

__all__ = ["tokenize"]

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`DslSyntaxError` on bad input."""
    tokens: list[Token] = []
    line, col = 1, 1
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch in _IDENT_START:
            j = i
            while j < n and source[j] in _IDENT_CONT:
                j += 1
            text = source[i:j]
            kind = text if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            col += j - i
            i = j
            continue
        if ch in _DIGITS:
            j = i
            while j < n and source[j] in _DIGITS:
                j += 1
            tokens.append(Token("int", source[i:j], line, col))
            col += j - i
            i = j
            continue
        for sym in SYMBOLS:
            if source.startswith(sym, i):
                # '[]' is the branch separator, but '[' directly followed
                # by an index must stay an opening bracket: 'c[0]' never
                # contains '[]', so no special case is required beyond
                # longest-match ordering.
                tokens.append(Token(sym, sym, line, col))
                col += len(sym)
                i += len(sym)
                break
        else:
            raise DslSyntaxError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", line, col))
    return tokens
