"""A small UNITY-like surface language for programs and properties.

The paper writes programs and specifications in UNITY-style notation; this
package provides a textual form of the same notation so that systems can be
written, stored and pretty-printed as text::

    program Counter
    declare
      local c : int[0..3];
      shared C : int[0..9]
    initially
      c = 0 /\\ C = 0
    assign
      fair a: c < 3 /\\ C < 9 -> c := c + 1 || C := C + 1
    end

Pipeline: :mod:`repro.dsl.lexer` → :mod:`repro.dsl.parser` (AST in
:mod:`repro.dsl.ast_nodes`) → :mod:`repro.dsl.elaborate` (core objects);
:mod:`repro.dsl.pretty` is the inverse, and round-tripping is tested.
Property syntax (``invariant …``, ``p ~> q``, ``transient …``, …) is
parsed by :func:`repro.dsl.parse_property`.
"""

from repro.dsl.elaborate import (
    elaborate_module,
    elaborate_program,
    elaborate_property,
)
from repro.dsl.parser import (
    parse_expression_text,
    parse_module_text,
    parse_program_text,
    parse_property_text,
)
from repro.dsl.pretty import pretty_program

__all__ = [
    "parse_program",
    "parse_module",
    "parse_property",
    "parse_program_text",
    "parse_module_text",
    "parse_property_text",
    "parse_expression_text",
    "elaborate_program",
    "elaborate_module",
    "elaborate_property",
    "pretty_program",
]


def parse_program(source: str):
    """Parse and elaborate DSL source into a :class:`repro.core.Program`."""
    return elaborate_program(parse_program_text(source))


def parse_module(source: str):
    """Parse and elaborate a multi-program module.

    Returns a name → Program mapping containing every ``program`` unit and
    every ``system Name = A || B`` composition.
    """
    return elaborate_module(parse_module_text(source))


def parse_property(source: str, program):
    """Parse and elaborate a property line against ``program``'s variables."""
    return elaborate_property(parse_property_text(source), program)
