"""Elaboration: surface ASTs → core objects.

Resolves names (declared variable vs. enum label), applies the strict
expression typing of :mod:`repro.core.expressions`, and assembles
:class:`~repro.core.program.Program` /
:class:`~repro.core.properties.Property` values.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.commands import AltCommand, GuardedCommand, Skip
from repro.core.domains import BoolDomain, EnumDomain, IntRange
from repro.core.expressions import (
    Add,
    BoolConst,
    Const,
    EqE,
    Expr,
    FloorDiv,
    Ge,
    Gt,
    Iff,
    Implies,
    IntConst,
    Ite,
    Le,
    Lt,
    MaxE,
    MinE,
    Mod,
    Mul,
    NeE,
    Neg,
    Not,
    Sub,
    land,
    lor,
)
from repro.core.predicates import ExprPredicate
from repro.core.program import Program
from repro.core.properties import (
    Init,
    Invariant,
    LeadsTo,
    Next,
    Property,
    Stable,
    Transient,
)
from repro.core.variables import Locality, Var
from repro.dsl import ast_nodes as ast
from repro.errors import ElaborationError, ExpressionError

__all__ = ["elaborate_program", "elaborate_property", "elaborate_expression"]

_BINARY = {
    "+": Add, "-": Sub, "*": Mul, "//": FloorDiv, "%": Mod,
    "=": EqE, "!=": NeE, "<": Lt, "<=": Le, ">": Gt, ">=": Ge,
    "=>": Implies, "<=>": Iff,
}


def _elab_type(name: str, spec: ast.TypeAst):
    if isinstance(spec, ast.PTypeBool):
        return BoolDomain()
    if isinstance(spec, ast.PTypeInt):
        return IntRange(spec.lo, spec.hi)
    if isinstance(spec, ast.PTypeEnum):
        # Anonymous enums are named by their label tuple so that identical
        # declarations in different components merge under composition.
        return EnumDomain("_".join(spec.labels), spec.labels)
    raise ElaborationError(f"unknown type spec {spec!r} for {name}")


def elaborate_expression(
    node: ast.ExprAst, variables: Mapping[str, Var]
) -> Expr:
    """Elaborate a surface expression against a variable environment.

    Unresolved names become enum-label constants — the strict typing of
    the core expression layer rejects them unless an enum comparison or
    assignment gives them a domain.
    """
    try:
        return _elab(node, variables)
    except ExpressionError as exc:
        raise ElaborationError(str(exc)) from exc


def _elab(node: ast.ExprAst, env: Mapping[str, Var]) -> Expr:
    if isinstance(node, ast.EInt):
        return IntConst(node.value)
    if isinstance(node, ast.EBool):
        return BoolConst(node.value)
    if isinstance(node, ast.EName):
        var = env.get(node.name)
        if var is not None:
            return var.ref()
        return Const(node.name, None)  # enum label, typed by context
    if isinstance(node, ast.EUnary):
        inner = _elab(node.operand, env)
        return Neg(inner) if node.op == "-" else Not(inner)
    if isinstance(node, ast.EBinary):
        left = _elab(node.left, env)
        right = _elab(node.right, env)
        if node.op == "/\\":
            return land(left, right)
        if node.op == "\\/":
            return lor(left, right)
        ctor = _BINARY.get(node.op)
        if ctor is None:
            raise ElaborationError(f"unknown operator {node.op!r}")
        return ctor(left, right)
    if isinstance(node, ast.EIte):
        return Ite(
            _elab(node.cond, env), _elab(node.then, env), _elab(node.orelse, env)
        )
    if isinstance(node, ast.ECall):
        args = [_elab(a, env) for a in node.args]
        return MinE(*args) if node.func == "min" else MaxE(*args)
    raise ElaborationError(f"unknown expression node {node!r}")


def elaborate_program(tree: ast.PProgram) -> Program:
    """Elaborate a parsed program into a :class:`~repro.core.program.Program`."""
    env: dict[str, Var] = {}
    variables: list[Var] = []
    for decl in tree.decls:
        if decl.name in env:
            raise ElaborationError(
                f"program {tree.name}: duplicate declaration of {decl.name}"
            )
        locality = Locality.LOCAL if decl.locality == "local" else Locality.SHARED
        var = Var(decl.name, _elab_type(decl.name, decl.type_spec), locality)
        env[decl.name] = var
        variables.append(var)
    if not variables:
        raise ElaborationError(f"program {tree.name}: no variables declared")

    if tree.init is None:
        init = ExprPredicate(BoolConst(True))
    else:
        init_expr = elaborate_expression(tree.init, env)
        if init_expr.typ != "bool":
            raise ElaborationError(
                f"program {tree.name}: initially must be boolean"
            )
        init = ExprPredicate(init_expr)

    commands = []
    fair: list[str] = []
    for cmd in tree.commands:
        if cmd.is_skip:
            commands.append(Skip(cmd.name))
        else:
            branches = []
            for br in cmd.branches:
                guard = (
                    BoolConst(True)
                    if br.guard is None
                    else elaborate_expression(br.guard, env)
                )
                assigns = []
                for name, rhs in br.assigns:
                    var = env.get(name)
                    if var is None:
                        raise ElaborationError(
                            f"command {cmd.name}: assignment to undeclared "
                            f"variable {name}"
                        )
                    assigns.append((var, elaborate_expression(rhs, env)))
                branches.append((guard, assigns))
            if len(branches) == 1:
                commands.append(
                    GuardedCommand(cmd.name, branches[0][0], branches[0][1])
                )
            else:
                commands.append(AltCommand(cmd.name, branches))
        if cmd.fair:
            fair.append(cmd.name)
    return Program(tree.name, variables, init, commands, fair=fair)


def elaborate_property(tree: ast.PProperty, program: Program) -> Property:
    """Elaborate a parsed property against ``program``'s variables."""
    env = {v.name: v for v in program.variables}

    def pred(node: ast.ExprAst) -> ExprPredicate:
        expr = elaborate_expression(node, env)
        if expr.typ != "bool":
            raise ElaborationError("property predicates must be boolean")
        return ExprPredicate(expr)

    if tree.kind == "init":
        return Init(pred(tree.first))
    if tree.kind == "transient":
        return Transient(pred(tree.first))
    if tree.kind == "stable":
        return Stable(pred(tree.first))
    if tree.kind == "invariant":
        return Invariant(pred(tree.first))
    if tree.kind == "next":
        assert tree.second is not None
        return Next(pred(tree.first), pred(tree.second))
    if tree.kind == "leadsto":
        assert tree.second is not None
        return LeadsTo(pred(tree.first), pred(tree.second))
    raise ElaborationError(f"unknown property kind {tree.kind!r}")


def elaborate_module(tree) -> dict[str, Program]:
    """Elaborate a parsed module: every program, plus every declared
    composed system (via :func:`repro.core.composition.compose_all`).

    Returns a name → :class:`~repro.core.program.Program` mapping in which
    component programs and composed systems share one namespace.
    """
    from repro.core.composition import compose_all

    out: dict[str, Program] = {}
    for ptree in tree.programs:
        prog = elaborate_program(ptree)
        if prog.name in out:
            raise ElaborationError(f"duplicate program name {prog.name!r}")
        out[prog.name] = prog
    for sys_decl in tree.systems:
        if sys_decl.name in out:
            raise ElaborationError(
                f"system {sys_decl.name!r} clashes with an existing name"
            )
        try:
            components = [out[c] for c in sys_decl.components]
        except KeyError as exc:
            raise ElaborationError(
                f"system {sys_decl.name}: unknown component {exc.args[0]!r}"
            ) from None
        from repro.errors import CompositionError

        try:
            out[sys_decl.name] = compose_all(components, name=sys_decl.name)
        except CompositionError as exc:
            raise ElaborationError(
                f"system {sys_decl.name}: {exc}"
            ) from exc
    return out
