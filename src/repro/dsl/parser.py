"""Recursive-descent parser for the UNITY-like surface language.

Grammar (EBNF; ``{}`` repetition, ``[]`` option)::

    program   = "program" name [decls] [init] [assigns] "end"
    decls     = "declare" decl {";" decl}
    decl      = ("local"|"shared") name ":" type
    type      = "bool" | "int" "[" INT ".." INT "]"
              | "enum" "{" IDENT {"," IDENT} "}"
    init      = "initially" expr
    assigns   = "assign" command {";" command}
    command   = ["fair"] name ":" ("skip" | branch {"[]" branch})
    branch    = [expr "->"] assign {"||" assign}
    assign    = name ":=" expr
    name      = IDENT ["[" INT {"," INT} "]"]

    property  = ("init"|"transient"|"stable"|"invariant") expr
              | expr ("next"|"~>") expr

    expr      = iff ;  iff = impl {"<=>" impl} ;  impl = or ["=>" impl]
    or        = and {"\\/" and} ;  and = not {"/\\" not}
    not       = "~" not | cmp
    cmp       = sum [("="|"!="|"<"|"<="|">"|">=") sum]
    sum       = term {("+"|"-") term} ;  term = factor {("*"|"//"|"%") factor}
    factor    = "-" factor | atom
    atom      = INT | "true" | "false" | name | "(" expr ")"
              | "(" "if" expr "then" expr "else" expr ")"
              | ("min"|"max") "(" expr "," expr ")"
"""

from __future__ import annotations

from repro.dsl.ast_nodes import (
    EBinary,
    EBool,
    ECall,
    EInt,
    EIte,
    EName,
    EUnary,
    ExprAst,
    PBranch,
    PCommand,
    PDecl,
    PProgram,
    PProperty,
    PTypeBool,
    PTypeEnum,
    PTypeInt,
    TypeAst,
)
from repro.dsl.lexer import tokenize
from repro.dsl.tokens import Token
from repro.errors import DslSyntaxError

__all__ = [
    "parse_program_text",
    "parse_module_text",
    "parse_property_text",
    "parse_expression_text",
]

_CMP_OPS = ("=", "!=", "<", "<=", ">", ">=")


class _Stream:
    """Token cursor with friendly error reporting."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def at(self, *kinds: str) -> bool:
        return self.peek().kind in kinds

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, kind: str) -> Token:
        tok = self.peek()
        if tok.kind != kind:
            raise DslSyntaxError(
                f"expected {kind!r}, found {tok.text or 'end of input'!r}",
                tok.line, tok.column,
            )
        return self.advance()

    def error(self, message: str) -> DslSyntaxError:
        tok = self.peek()
        return DslSyntaxError(message, tok.line, tok.column)


# ---------------------------------------------------------------------------
# names
# ---------------------------------------------------------------------------


def _parse_name(s: _Stream) -> str:
    base = s.expect("ident").text
    if s.at("[") and s.peek(1).kind == "int":
        s.advance()  # '['
        indices = [s.expect("int").text]
        while s.at(","):
            s.advance()
            indices.append(s.expect("int").text)
        s.expect("]")
        return f"{base}[{','.join(indices)}]"
    return base


# ---------------------------------------------------------------------------
# expressions (precedence climbing via nested functions)
# ---------------------------------------------------------------------------


def _parse_expr(s: _Stream) -> ExprAst:
    return _parse_iff(s)


def _parse_iff(s: _Stream) -> ExprAst:
    left = _parse_impl(s)
    while s.at("<=>"):
        s.advance()
        left = EBinary("<=>", left, _parse_impl(s))
    return left


def _parse_impl(s: _Stream) -> ExprAst:
    left = _parse_or(s)
    if s.at("=>"):
        s.advance()
        return EBinary("=>", left, _parse_impl(s))  # right-assoc
    return left


def _parse_or(s: _Stream) -> ExprAst:
    left = _parse_and(s)
    while s.at("\\/"):
        s.advance()
        left = EBinary("\\/", left, _parse_and(s))
    return left


def _parse_and(s: _Stream) -> ExprAst:
    left = _parse_not(s)
    while s.at("/\\"):
        s.advance()
        left = EBinary("/\\", left, _parse_not(s))
    return left


def _parse_not(s: _Stream) -> ExprAst:
    if s.at("~"):
        s.advance()
        return EUnary("~", _parse_not(s))
    return _parse_cmp(s)


def _parse_cmp(s: _Stream) -> ExprAst:
    left = _parse_sum(s)
    if s.peek().kind in _CMP_OPS:
        op = s.advance().kind
        return EBinary(op, left, _parse_sum(s))
    return left


def _parse_sum(s: _Stream) -> ExprAst:
    left = _parse_term(s)
    while s.at("+", "-"):
        op = s.advance().kind
        left = EBinary(op, left, _parse_term(s))
    return left


def _parse_term(s: _Stream) -> ExprAst:
    left = _parse_factor(s)
    while s.at("*", "//", "%"):
        op = s.advance().kind
        left = EBinary(op, left, _parse_factor(s))
    return left


def _parse_factor(s: _Stream) -> ExprAst:
    if s.at("-"):
        s.advance()
        return EUnary("-", _parse_factor(s))
    return _parse_atom(s)


def _parse_atom(s: _Stream) -> ExprAst:
    tok = s.peek()
    if tok.kind == "int":
        s.advance()
        return EInt(int(tok.text))
    if tok.kind == "true":
        s.advance()
        return EBool(True)
    if tok.kind == "false":
        s.advance()
        return EBool(False)
    if tok.kind in ("min", "max"):
        s.advance()
        s.expect("(")
        first = _parse_expr(s)
        s.expect(",")
        second = _parse_expr(s)
        s.expect(")")
        return ECall(tok.kind, (first, second))
    if tok.kind == "ident":
        return EName(_parse_name(s))
    if tok.kind == "(":
        s.advance()
        if s.at("if"):
            s.advance()
            cond = _parse_expr(s)
            s.expect("then")
            then = _parse_expr(s)
            s.expect("else")
            orelse = _parse_expr(s)
            s.expect(")")
            return EIte(cond, then, orelse)
        inner = _parse_expr(s)
        s.expect(")")
        return inner
    raise s.error(f"expected an expression, found {tok.text or 'end of input'!r}")


# ---------------------------------------------------------------------------
# declarations / commands / programs
# ---------------------------------------------------------------------------


def _parse_type(s: _Stream) -> TypeAst:
    if s.at("bool"):
        s.advance()
        return PTypeBool()
    if s.at("int"):
        s.advance()
        s.expect("[")
        neg_lo = s.at("-") and (s.advance() or True)
        lo = int(s.expect("int").text) * (-1 if neg_lo else 1)
        s.expect("..")
        neg_hi = s.at("-") and (s.advance() or True)
        hi = int(s.expect("int").text) * (-1 if neg_hi else 1)
        s.expect("]")
        return PTypeInt(lo, hi)
    if s.at("enum"):
        s.advance()
        s.expect("{")
        labels = [s.expect("ident").text]
        while s.at(","):
            s.advance()
            labels.append(s.expect("ident").text)
        s.expect("}")
        return PTypeEnum(tuple(labels))
    raise s.error("expected a type (bool, int[lo..hi] or enum {…})")


def _parse_decl(s: _Stream) -> PDecl:
    if not s.at("local", "shared"):
        raise s.error("expected 'local' or 'shared'")
    locality = s.advance().kind
    name = _parse_name(s)
    s.expect(":")
    return PDecl(locality, name, _parse_type(s))


def _parse_branch(s: _Stream) -> PBranch:
    # Lookahead: a branch is either 'expr -> assigns' or bare 'assigns'.
    # Try the guarded form first by scanning for '->' before ':=' at depth 0.
    start = s.pos
    guard: ExprAst | None = None
    try:
        candidate = _parse_expr(s)
        if s.at("->"):
            s.advance()
            guard = candidate
        else:
            s.pos = start  # bare assignment list: re-parse as assigns
    except DslSyntaxError:
        s.pos = start
    assigns = [_parse_assign(s)]
    while s.at("||"):
        s.advance()
        assigns.append(_parse_assign(s))
    return PBranch(guard, tuple(assigns))


def _parse_assign(s: _Stream) -> tuple[str, ExprAst]:
    name = _parse_name(s)
    s.expect(":=")
    return (name, _parse_expr(s))


def _parse_command(s: _Stream) -> PCommand:
    fair = False
    if s.at("fair"):
        s.advance()
        fair = True
    if s.at("skip") and s.peek(1).kind == ":":
        # The canonical identity command is itself named "skip".
        s.advance()
        name = "skip"
    else:
        name = _parse_name(s)
    s.expect(":")
    if s.at("skip"):
        s.advance()
        return PCommand(name, fair, True, ())
    branches = [_parse_branch(s)]
    while s.at("[]"):
        s.advance()
        branches.append(_parse_branch(s))
    return PCommand(name, fair, False, tuple(branches))


def _parse_program_unit(s: _Stream) -> PProgram:
    s.expect("program")
    prog = PProgram(name=_parse_name(s))
    if s.at("declare"):
        s.advance()
        prog.decls.append(_parse_decl(s))
        while s.at(";"):
            s.advance()
            prog.decls.append(_parse_decl(s))
    if s.at("initially"):
        s.advance()
        prog.init = _parse_expr(s)
    if s.at("assign"):
        s.advance()
        prog.commands.append(_parse_command(s))
        while s.at(";"):
            s.advance()
            prog.commands.append(_parse_command(s))
    s.expect("end")
    return prog


def parse_program_text(source: str) -> PProgram:
    """Parse a single ``program … end`` unit into a surface AST."""
    s = _Stream(tokenize(source))
    prog = _parse_program_unit(s)
    s.expect("eof")
    return prog


def parse_module_text(source: str):
    """Parse a module: any number of programs plus ``system`` directives.

    Grammar extension::

        module  = { program | systemdecl }
        systemdecl = "system" name "=" name {"||" name}
    """
    from repro.dsl.ast_nodes import PModule, PSystem

    s = _Stream(tokenize(source))
    module = PModule()
    while not s.at("eof"):
        if s.at("program"):
            module.programs.append(_parse_program_unit(s))
        elif s.at("system"):
            s.advance()
            name = _parse_name(s)
            s.expect("=")
            components = [_parse_name(s)]
            while s.at("||"):
                s.advance()
                components.append(_parse_name(s))
            module.systems.append(PSystem(name, tuple(components)))
        else:
            raise s.error("expected 'program' or 'system'")
    if not module.programs:
        raise s.error("module contains no programs")
    return module


def parse_property_text(source: str) -> PProperty:
    """Parse one property line into a surface AST."""
    s = _Stream(tokenize(source))
    if s.at("init", "transient", "stable", "invariant"):
        kind = s.advance().kind
        expr = _parse_expr(s)
        s.expect("eof")
        return PProperty(kind, expr)
    first = _parse_expr(s)
    if s.at("next"):
        s.advance()
        second = _parse_expr(s)
        s.expect("eof")
        return PProperty("next", first, second)
    if s.at("~>"):
        s.advance()
        second = _parse_expr(s)
        s.expect("eof")
        return PProperty("leadsto", first, second)
    raise s.error("expected 'next' or '~>' after the first predicate")


def parse_expression_text(source: str) -> ExprAst:
    """Parse a standalone expression (used by tests and the REPL helper)."""
    s = _Stream(tokenize(source))
    expr = _parse_expr(s)
    s.expect("eof")
    return expr
