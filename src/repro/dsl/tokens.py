"""Token definitions for the UNITY-like surface language."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "KEYWORDS", "SYMBOLS"]


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position (1-based)."""

    kind: str   # 'int', 'ident', a keyword, or a symbol string
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind!r}, {self.text!r} @{self.line}:{self.column})"


#: Reserved words; an identifier matching one of these lexes as its own kind.
KEYWORDS = frozenset({
    "program", "end", "declare", "initially", "assign",
    "local", "shared", "fair", "skip", "system",
    "int", "bool", "enum",
    "if", "then", "else", "true", "false",
    "min", "max",
    "init", "transient", "stable", "invariant", "next",
})

#: Multi-character symbols first — the lexer matches longest-first.
SYMBOLS = (
    "<=>", "~>",
    ":=", "->", "=>", "<=", ">=", "!=", "..", "||", "[]", "/\\", "\\/", "//",
    ";", ":", ",", "[", "]", "(", ")", "{", "}",
    "=", "<", ">", "+", "-", "*", "%", "~",
)
