"""Surface-syntax AST (the parser's output, the elaborator's input).

Kept deliberately separate from :mod:`repro.core.expressions`: surface
names are unresolved (``EName`` may be a variable or an enum label) and
types are unchecked until elaboration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "EInt", "EBool", "EName", "EUnary", "EBinary", "EIte", "ECall", "ExprAst",
    "PTypeBool", "PTypeInt", "PTypeEnum", "TypeAst",
    "PDecl", "PBranch", "PCommand", "PProgram", "PProperty",
]


# -- expressions -----------------------------------------------------------


@dataclass(frozen=True)
class EInt:
    """Integer literal."""
    value: int


@dataclass(frozen=True)
class EBool:
    """Boolean literal."""
    value: bool


@dataclass(frozen=True)
class EName:
    """Unresolved name: variable reference or enum label."""
    name: str


@dataclass(frozen=True)
class EUnary:
    """Unary operation; ``op`` in {'-', '~'}."""
    op: str
    operand: "ExprAst"


@dataclass(frozen=True)
class EBinary:
    """Binary operation; ``op`` is the surface symbol."""
    op: str
    left: "ExprAst"
    right: "ExprAst"


@dataclass(frozen=True)
class EIte:
    """Conditional expression."""
    cond: "ExprAst"
    then: "ExprAst"
    orelse: "ExprAst"


@dataclass(frozen=True)
class ECall:
    """Builtin call: ``min`` / ``max``."""
    func: str
    args: tuple["ExprAst", ...]


ExprAst = EInt | EBool | EName | EUnary | EBinary | EIte | ECall


# -- declarations / types -----------------------------------------------------


@dataclass(frozen=True)
class PTypeBool:
    """``bool``."""


@dataclass(frozen=True)
class PTypeInt:
    """``int[lo..hi]``."""
    lo: int
    hi: int


@dataclass(frozen=True)
class PTypeEnum:
    """``enum { a, b, … }``."""
    labels: tuple[str, ...]


TypeAst = PTypeBool | PTypeInt | PTypeEnum


@dataclass(frozen=True)
class PDecl:
    """``local|shared name : type``."""
    locality: str
    name: str
    type_spec: TypeAst


# -- commands -----------------------------------------------------------------


@dataclass(frozen=True)
class PBranch:
    """``guard -> x := e || y := f`` (guard ``None`` means ``true``)."""
    guard: ExprAst | None
    assigns: tuple[tuple[str, ExprAst], ...]


@dataclass(frozen=True)
class PCommand:
    """``[fair] name: body`` — ``skip``, one branch, or ``[]``-separated
    branches (first-match alternative)."""
    name: str
    fair: bool
    is_skip: bool
    branches: tuple[PBranch, ...]


@dataclass
class PProgram:
    """A full ``program … end`` unit."""
    name: str
    decls: list[PDecl] = field(default_factory=list)
    init: ExprAst | None = None
    commands: list[PCommand] = field(default_factory=list)


# -- properties ------------------------------------------------------------------


@dataclass(frozen=True)
class PProperty:
    """``init e | transient e | stable e | invariant e | e next e | e ~> e``."""
    kind: str  # 'init' | 'transient' | 'stable' | 'invariant' | 'next' | 'leadsto'
    first: ExprAst
    second: ExprAst | None = None


@dataclass
class PSystem:
    """``system Name = A || B || C`` — composition directive."""

    name: str
    components: tuple[str, ...]


@dataclass
class PModule:
    """A source file: several programs plus composition directives."""

    programs: list[PProgram] = field(default_factory=list)
    systems: list[PSystem] = field(default_factory=list)
