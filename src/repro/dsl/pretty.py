"""Pretty-printer: core programs back to surface syntax.

``parse_program(pretty_program(p))`` reconstructs a program with the same
variables, initial states and command semantics — the round-trip the DSL
tests assert (semantic equality: identical masks and successor tables).
"""

from __future__ import annotations

from repro.core.commands import AltCommand, Command, GuardedCommand, Skip
from repro.core.domains import BoolDomain, EnumDomain, IntRange
from repro.core.program import Program
from repro.core.variables import Var
from repro.errors import DslError

__all__ = ["pretty_program", "pretty_command", "pretty_type"]


def pretty_type(var: Var) -> str:
    """Surface syntax of a variable's domain."""
    dom = var.domain
    if isinstance(dom, BoolDomain):
        return "bool"
    if isinstance(dom, IntRange):
        return f"int[{dom.lo}..{dom.hi}]"
    if isinstance(dom, EnumDomain):
        return "enum {" + ", ".join(str(label) for label in dom.labels) + "}"
    raise DslError(f"cannot render domain {dom!r}")


def pretty_command(cmd: Command) -> str:
    """Surface syntax of one command body."""
    if isinstance(cmd, Skip):
        return "skip"
    if isinstance(cmd, GuardedCommand):
        assigns = " || ".join(f"{a.var.name} := {a.expr}" for a in cmd.assignments)
        guard = str(cmd.guard)
        return assigns if guard == "true" else f"{guard} -> {assigns}"
    if isinstance(cmd, AltCommand):
        parts = []
        for guard, assigns in cmd.branches:
            body = " || ".join(f"{a.var.name} := {a.expr}" for a in assigns)
            parts.append(f"{guard} -> {body}")
        return " [] ".join(parts)
    raise DslError(f"cannot render command {cmd!r}")


def pretty_program(program: Program) -> str:
    """Full surface rendering of a program (parseable by the DSL)."""
    lines = [f"program {program.name}" if _plain(program.name) else "program P"]
    lines.append("declare")
    decls = [
        f"  {v.locality.value} {v.name} : {pretty_type(v)}"
        for v in program.variables
    ]
    lines.append(";\n".join(decls))
    init_text = str(program.init.as_expr()) if _has_expr(program) else None
    if init_text is not None:
        lines.append("initially")
        lines.append(f"  {init_text}")
    lines.append("assign")
    cmds = []
    for cmd in program.commands:
        fair = "fair " if cmd.name in program.fair_names else ""
        cmds.append(f"  {fair}{_cmd_name(cmd.name)}: {pretty_command(cmd)}")
    lines.append(";\n".join(cmds))
    lines.append("end")
    return "\n".join(lines)


def _plain(name: str) -> bool:
    import re

    return re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*(\[[0-9]+(,[0-9]+)*\])?", name) is not None


def _cmd_name(name: str) -> str:
    return name if _plain(name) else f"c_{abs(hash(name)) % 10_000}"


def _has_expr(program: Program) -> bool:
    from repro.errors import PropertyError

    try:
        program.init.as_expr()
    except PropertyError:
        return False
    return True
