"""Seeded DSL program fuzzer and the tier differential harness.

The engine answers the same question several ways: weak/strong leads-to
on the dense tables vs. the sparse reachable subspace, reachable
invariants on both tiers, and synthesized certificates checked per-level
vs. through the batched columnar kernel.  Hand-written tests pin each
pair on a few programs; this module generates *unbounded* well-typed
programs through the surface grammar and cross-checks every pair on each
one.

Generation is **domain-safe by construction** — every integer update is
either clamped (``min``/``max``) or guarded to stay in range, so a
generated program exercises semantics, never ``DomainError`` paths — and
**deterministic**: a case is fully reproduced by its seed (retries after
an elaboration collision draw from the same stream).

The harness is itself tested for sensitivity: :data:`FAULTS` names
verdict-level corruptions (drop fairness from the sparse oracle, flip
the sparse weak verdict, judge the dense invariant on the full encoded
space) that :func:`run_differential` can inject, and the fuzz loop must
then *find* a disagreeing program — a harness that cannot see an
injected bug would silently pass on a real one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.expressions import land
from repro.core.predicates import ExprPredicate
from repro.core.program import Program
from repro.dsl import parse_program, pretty_program
from repro.dsl.ast_nodes import (
    EBinary,
    EBool,
    ECall,
    EInt,
    EName,
    EUnary,
    ExprAst,
    PBranch,
    PCommand,
    PDecl,
    PProgram,
    PTypeBool,
    PTypeEnum,
    PTypeInt,
)
from repro.dsl.elaborate import elaborate_expression, elaborate_program
from repro.dsl.parser import parse_expression_text
from repro.errors import ReproError
from repro.semantics.transition import TransitionSystem
from repro.util.rng import make_rng

__all__ = [
    "FuzzConfig",
    "FuzzCase",
    "CheckOutcome",
    "DiffReport",
    "FAULTS",
    "random_program_ast",
    "fuzz_case",
    "fuzz_run",
    "run_differential",
    "predicate_from_conjuncts",
    "programs_equivalent",
    "check_roundtrip",
]


# -- program generation -------------------------------------------------------


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs for the generator; the defaults keep spaces dense-checkable."""

    min_vars: int = 2
    max_vars: int = 4
    min_commands: int = 2
    max_commands: int = 5
    max_int_hi: int = 4
    p_bool: float = 0.3
    p_enum: float = 0.15
    p_fair: float = 0.7
    p_init_bind: float = 0.6
    #: Elaboration retries per case (command-merge collisions regenerate).
    max_attempts: int = 25


DEFAULT_CONFIG = FuzzConfig()

_ENUM_LABELS = ("idle", "busy", "done")


def _decls(rng, config: FuzzConfig) -> list[PDecl]:
    nvars = int(rng.integers(config.min_vars, config.max_vars + 1))
    decls = []
    for k in range(nvars):
        locality = "shared" if rng.random() < 0.7 else "local"
        roll = rng.random()
        if roll < config.p_bool:
            decls.append(PDecl(locality, f"b{k}", PTypeBool()))
        elif roll < config.p_bool + config.p_enum:
            n_labels = int(rng.integers(2, len(_ENUM_LABELS) + 1))
            decls.append(
                PDecl(locality, f"m{k}", PTypeEnum(_ENUM_LABELS[:n_labels]))
            )
        else:
            hi = int(rng.integers(1, config.max_int_hi + 1))
            decls.append(PDecl(locality, f"x{k}", PTypeInt(0, hi)))
    return decls


def _guard(rng, decls: list[PDecl]) -> ExprAst:
    """A random atomic guard over one declared variable."""
    d = decls[int(rng.integers(len(decls)))]
    ref = EName(d.name)
    if isinstance(d.type_spec, PTypeBool):
        return ref if rng.random() < 0.5 else EUnary("~", ref)
    if isinstance(d.type_spec, PTypeEnum):
        label = d.type_spec.labels[int(rng.integers(len(d.type_spec.labels)))]
        op = "=" if rng.random() < 0.7 else "!="
        return EBinary(op, ref, EName(label))
    pivot = int(rng.integers(d.type_spec.lo, d.type_spec.hi + 1))
    op = "<=" if rng.random() < 0.5 else ">"
    return EBinary(op, ref, EInt(pivot))


def _update_branches(rng, d: PDecl, decls: list[PDecl]) -> list[PBranch]:
    """Domain-safe branches updating ``d`` (guarded or clamped in range)."""
    ref = EName(d.name)
    if isinstance(d.type_spec, PTypeBool):
        return [PBranch(_guard(rng, decls), ((d.name, EUnary("~", ref)),))]
    if isinstance(d.type_spec, PTypeEnum):
        labels = d.type_spec.labels
        # Cycle: each label steps to its successor (first-match alternative).
        return [
            PBranch(
                EBinary("=", ref, EName(labels[i])),
                ((d.name, EName(labels[(i + 1) % len(labels)])),),
            )
            for i in range(len(labels))
        ]
    lo, hi = d.type_spec.lo, d.type_spec.hi
    style = rng.random()
    if style < 0.35:
        # Clamped increment: x := min(x + 1, hi).
        return [
            PBranch(
                _guard(rng, decls),
                ((d.name, ECall("min", (EBinary("+", ref, EInt(1)), EInt(hi)))),),
            )
        ]
    if style < 0.6:
        # Guarded increment: x < hi /\ g -> x := x + 1.
        return [
            PBranch(
                EBinary("/\\", EBinary("<", ref, EInt(hi)), _guard(rng, decls)),
                ((d.name, EBinary("+", ref, EInt(1))),),
            )
        ]
    # Decrement-or-reset alternative.
    return [
        PBranch(
            EBinary(">", ref, EInt(lo)),
            ((d.name, EBinary("-", ref, EInt(1))),),
        ),
        PBranch(_guard(rng, decls), ((d.name, EInt(lo)),)),
    ]


def _command(rng, k: int, decls: list[PDecl], config: FuzzConfig) -> PCommand:
    d = decls[int(rng.integers(len(decls)))]
    branches = _update_branches(rng, d, decls)
    # Occasionally add a parallel assignment to a second variable on the
    # first branch (domain-safe: clamped or toggled).
    other = decls[int(rng.integers(len(decls)))]
    if other.name != d.name and rng.random() < 0.3:
        oref = EName(other.name)
        if isinstance(other.type_spec, PTypeBool):
            extra = (other.name, EUnary("~", oref))
        elif isinstance(other.type_spec, PTypeEnum):
            extra = (other.name, EName(other.type_spec.labels[0]))
        else:
            extra = (
                other.name,
                ECall("max", (EBinary("-", oref, EInt(1)), EInt(other.type_spec.lo))),
            )
        first = branches[0]
        branches[0] = PBranch(first.guard, (*first.assigns, extra))
    return PCommand(
        name=f"cmd{k}",
        fair=bool(rng.random() < config.p_fair),
        is_skip=False,
        branches=tuple(branches),
    )


def _init(rng, decls: list[PDecl], config: FuzzConfig) -> ExprAst | None:
    parts: list[ExprAst] = []
    for d in decls:
        if rng.random() >= config.p_init_bind:
            continue
        ref = EName(d.name)
        if isinstance(d.type_spec, PTypeBool):
            parts.append(ref if rng.random() < 0.5 else EUnary("~", ref))
        elif isinstance(d.type_spec, PTypeEnum):
            label = d.type_spec.labels[int(rng.integers(len(d.type_spec.labels)))]
            parts.append(EBinary("=", ref, EName(label)))
        else:
            v = int(rng.integers(d.type_spec.lo, d.type_spec.hi + 1))
            parts.append(EBinary("=", ref, EInt(v)))
    if not parts:
        return None
    out = parts[0]
    for p in parts[1:]:
        out = EBinary("/\\", out, p)
    return out


def random_program_ast(rng, config: FuzzConfig = DEFAULT_CONFIG) -> PProgram:
    """One random well-typed surface program (may still collide on merge)."""
    decls = _decls(rng, config)
    ncmds = int(rng.integers(config.min_commands, config.max_commands + 1))
    commands = [_command(rng, k, decls, config) for k in range(ncmds)]
    return PProgram(
        name="Fuzzed",
        decls=decls,
        init=_init(rng, decls, config),
        commands=commands,
    )


def _conjuncts(rng, program: Program) -> list[str]:
    """Random predicate conjuncts as DSL expression text over ``program``."""
    from repro.core.domains import BoolDomain, EnumDomain

    parts: list[str] = []
    for v in program.variables:
        if rng.random() < 0.5:
            continue
        if isinstance(v.domain, BoolDomain):
            parts.append(v.name if rng.random() < 0.5 else f"~{v.name}")
        elif isinstance(v.domain, EnumDomain):
            label = v.domain.labels[int(rng.integers(len(v.domain.labels)))]
            parts.append(f"{v.name} = {label}")
        else:
            pivot = int(rng.integers(v.domain.lo, v.domain.hi + 1))
            parts.append(f"{v.name} <= {pivot}")
    if not parts:
        v = program.variables[0]
        if isinstance(v.domain, BoolDomain):
            parts = [v.name]
        elif isinstance(v.domain, EnumDomain):
            parts = [f"{v.name} = {v.domain.labels[0]}"]
        else:
            parts = [f"{v.name} = {v.domain.lo}"]
    return parts


def predicate_from_conjuncts(program: Program, conjuncts) -> ExprPredicate:
    """Parse + elaborate DSL conjunct texts against ``program``'s variables."""
    variables = {v.name: v for v in program.variables}
    exprs = [
        elaborate_expression(parse_expression_text(text), variables)
        for text in conjuncts
    ]
    return ExprPredicate(land(*exprs))


@dataclass
class FuzzCase:
    """One generated case: surface AST, core program, and two predicates."""

    seed: int
    ast: PProgram
    program: Program
    p_conjuncts: tuple[str, ...]
    q_conjuncts: tuple[str, ...]
    attempts: int

    @property
    def p(self) -> ExprPredicate:
        return predicate_from_conjuncts(self.program, self.p_conjuncts)

    @property
    def q(self) -> ExprPredicate:
        return predicate_from_conjuncts(self.program, self.q_conjuncts)

    @property
    def source(self) -> str:
        return pretty_program(self.program)


def fuzz_case(seed: int, config: FuzzConfig = DEFAULT_CONFIG) -> FuzzCase:
    """Generate the deterministic case for ``seed``.

    Structurally identical commands merge inside :class:`Program` and can
    orphan a fair name (``ProgramError``); such draws are discarded and
    the next attempt continues from the same stream, so the retry
    sequence — hence the final case — is a pure function of the seed.
    """
    rng = make_rng(seed)
    last_error: Exception | None = None
    for attempt in range(1, config.max_attempts + 1):
        ast = random_program_ast(rng, config)
        try:
            program = elaborate_program(ast)
        except ReproError as exc:
            last_error = exc
            continue
        p = tuple(_conjuncts(rng, program))
        q = tuple(_conjuncts(rng, program))
        return FuzzCase(seed, ast, program, p, q, attempt)
    raise ReproError(
        f"seed {seed}: no elaborable program in {config.max_attempts} attempts "
        f"(last: {last_error})"
    )


# -- round-trip ---------------------------------------------------------------


def programs_equivalent(a: Program, b: Program) -> bool:
    """Semantic equality: same variables, initial mask, successor tables
    (keyed by command body, names aside) and fair command bodies."""
    if [v.name for v in a.variables] != [v.name for v in b.variables]:
        return False
    if not np.array_equal(a.initial_mask(), b.initial_mask()):
        return False
    ta = TransitionSystem.for_program(a)
    tb = TransitionSystem.for_program(b)
    akeys = {c.body_key(): ta.tables[c.name] for c in a.commands}
    bkeys = {c.body_key(): tb.tables[c.name] for c in b.commands}
    if set(akeys) != set(bkeys):
        return False
    if any(not np.array_equal(akeys[k], bkeys[k]) for k in akeys):
        return False
    afair = {a.command_named(n).body_key() for n in a.fair_names}
    bfair = {b.command_named(n).body_key() for n in b.fair_names}
    return afair == bfair


def check_roundtrip(program: Program) -> str:
    """Assert ``parse(pretty(program))`` is semantically identical and the
    rendering is a fixpoint; returns the rendered source."""
    text = pretty_program(program)
    again = parse_program(text)
    if not programs_equivalent(program, again):
        raise AssertionError(f"round-trip changed semantics:\n{text}")
    if pretty_program(again) != text:
        raise AssertionError(f"pretty-printing is not idempotent:\n{text}")
    return text


# -- the differential harness -------------------------------------------------

#: Injectable harness faults (verdict-level corruptions).  Each simulates a
#: realistic engine bug; the sensitivity tests require the fuzz loop to
#: *detect* every one of them.
FAULTS: dict[str, str] = {
    "sparse-unfair": (
        "sparse tier silently drops all fairness assumptions "
        "(leads-to judged on a defaired copy of the program)"
    ),
    "sparse-flip-weak": "sparse weak leads-to verdict inverted",
    "dense-forget-reach": (
        "dense invariant oracle judges the full encoded space "
        "instead of the reachable set"
    ),
}


@dataclass(frozen=True)
class CheckOutcome:
    """One tier pair's verdicts on one case."""

    name: str  # 'leadsto-weak' | 'leadsto-strong' | 'invariant' | 'certificate'
    agreed: bool
    expected: object
    got: object


@dataclass
class DiffReport:
    """All tier-pair outcomes for one (program, p, q) triple."""

    checks: list[CheckOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.agreed for c in self.checks)

    @property
    def disagreements(self) -> list[CheckOutcome]:
        return [c for c in self.checks if not c.agreed]

    def describe(self) -> str:
        return ", ".join(
            f"{c.name}:{'ok' if c.agreed else f'{c.expected}!={c.got}'}"
            for c in self.checks
        )


def _defair(program: Program) -> Program:
    return Program(
        program.name, program.variables, program.init, program.commands, fair=()
    )


def run_differential(
    program: Program,
    p: ExprPredicate,
    q: ExprPredicate,
    *,
    fault: str | None = None,
) -> DiffReport:
    """Cross-check every tier pair on one case, optionally under a fault.

    Checks (oracle vs. subject):

    - ``leadsto-weak`` / ``leadsto-strong`` — the dense SCC analysis
      restricted to reachable ``p``-states (the sparse tier's documented
      judgment) vs. the sparse checkers;
    - ``invariant`` — dense vs. sparse reachable-invariant verdicts;
    - ``certificate`` — per-level proof walk vs. the batched columnar
      kernel on a synthesized weak leads-to certificate (skipped when
      synthesis declines, e.g. the property fails).
    """
    if fault is not None and fault not in FAULTS:
        raise ValueError(f"unknown fault {fault!r}; known: {sorted(FAULTS)}")
    from repro.semantics.checker import check_reachable_invariant
    from repro.semantics.explorer import reachable_mask
    from repro.semantics.leadsto import fair_scc_analysis
    from repro.semantics.sparse.checkers import (
        check_leadsto_sparse,
        check_leadsto_strong_sparse,
        check_reachable_invariant_sparse,
    )
    from repro.semantics.strong_fairness import strong_fair_scc_analysis
    from repro.semantics.synthesis import (
        check_certificate_batched,
        synthesize_leadsto_proof,
    )

    report = DiffReport()
    reach = reachable_mask(program)
    pm = p.mask(program.space)
    sparse_subject = _defair(program) if fault == "sparse-unfair" else program

    expect_weak = not (pm & fair_scc_analysis(program, q).avoid_mask & reach).any()
    got_weak = bool(check_leadsto_sparse(sparse_subject, p, q).holds)
    if fault == "sparse-flip-weak":
        got_weak = not got_weak
    report.checks.append(
        CheckOutcome("leadsto-weak", got_weak == expect_weak, expect_weak, got_weak)
    )

    expect_strong = not (
        pm & strong_fair_scc_analysis(program, q).avoid_mask & reach
    ).any()
    got_strong = bool(check_leadsto_strong_sparse(sparse_subject, p, q).holds)
    report.checks.append(
        CheckOutcome(
            "leadsto-strong", got_strong == expect_strong, expect_strong, got_strong
        )
    )

    if fault == "dense-forget-reach":
        dense_inv = bool(pm.all())
    else:
        dense_inv = bool(check_reachable_invariant(program, p).holds)
    sparse_inv = bool(check_reachable_invariant_sparse(program, p).holds)
    report.checks.append(
        CheckOutcome("invariant", dense_inv == sparse_inv, dense_inv, sparse_inv)
    )

    try:
        proof = synthesize_leadsto_proof(program, p, q)
    except ReproError:
        proof = None
    if proof is not None:
        per = proof.check(program)
        bat = check_certificate_batched(proof, program)
        agreed = (
            per.ok == bat.ok
            and per.obligations_checked == bat.obligations_checked
        )
        report.checks.append(
            CheckOutcome(
                "certificate",
                agreed,
                (per.ok, per.obligations_checked),
                (bat.ok, bat.obligations_checked),
            )
        )
    return report


@dataclass
class FuzzResult:
    """Outcome of a fuzz sweep."""

    cases: int
    checks: int
    disagreeing: list[tuple[FuzzCase, DiffReport]]

    @property
    def ok(self) -> bool:
        return not self.disagreeing


def fuzz_run(
    count: int = 100,
    *,
    seed: int = 0,
    fault: str | None = None,
    config: FuzzConfig = DEFAULT_CONFIG,
    roundtrip: bool = True,
    stop_at: int | None = None,
    on_case=None,
) -> FuzzResult:
    """Run ``count`` seeded cases through the differential harness.

    With no fault, every disagreement is an engine bug.  With a fault
    armed, disagreements are the *expected* outcome — the caller (CLI,
    sensitivity test, shrinker) asserts at least one is found.
    ``stop_at`` ends the sweep early after that many disagreements;
    ``on_case`` is an optional callback ``(case, report) -> None``.
    """
    disagreeing: list[tuple[FuzzCase, DiffReport]] = []
    checks = 0
    cases = 0
    for s in range(seed, seed + count):
        case = fuzz_case(s, config)
        if roundtrip:
            check_roundtrip(case.program)
        report = run_differential(case.program, case.p, case.q, fault=fault)
        cases += 1
        checks += len(report.checks)
        if not report.ok:
            disagreeing.append((case, report))
        if on_case is not None:
            on_case(case, report)
        if stop_at is not None and len(disagreeing) >= stop_at:
            break
    return FuzzResult(cases=cases, checks=checks, disagreeing=disagreeing)
