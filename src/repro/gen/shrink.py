"""Delta-debugging shrinker and the fuzz-corpus format.

A fuzzer that finds a disagreeing 5-variable, 5-command program has found
a bug *somewhere*; a repro a human can read needs most of that program
gone.  :func:`shrink` reduces a disagreeing case with classic ddmin plus
structural passes, re-running the differential harness (same fault, same
check) on every candidate and keeping only reductions that still
disagree:

1. ddmin over the command list;
2. per-command branch and parallel-assignment reduction;
3. ddmin over the declarations (commands referencing a dropped variable
   no longer elaborate, so this also prunes dead commands);
4. integer-domain shrinking (lower each ``int[lo..hi]`` bound toward a
   singleton);
5. ddmin over the ``initially`` conjuncts and over the ``p``/``q``
   predicate conjuncts.

The passes repeat to a fixpoint, so the result is 1-minimal with respect
to every move the shrinker knows.  Minimal repros are serialized as JSON
corpus entries (``schema: repro.fuzz-corpus/1``) holding the program's
DSL text and the predicate conjuncts; :func:`replay_entry` re-runs an
entry end-to-end through the parser, which is what ``tests/test_corpus.py``
does for every file under ``tests/corpus/``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

from repro.core.program import Program
from repro.dsl import parse_program, pretty_program
from repro.dsl.ast_nodes import EBinary, ExprAst, PBranch, PCommand, PProgram, PTypeInt
from repro.dsl.elaborate import elaborate_program
from repro.errors import ReproError
from repro.gen.fuzz import (
    DiffReport,
    FuzzCase,
    predicate_from_conjuncts,
    run_differential,
)

__all__ = [
    "CORPUS_SCHEMA",
    "ShrinkResult",
    "ddmin",
    "shrink",
    "corpus_entry",
    "write_corpus_entry",
    "load_corpus_entry",
    "replay_entry",
]

CORPUS_SCHEMA = "repro.fuzz-corpus/1"


def ddmin(items: list, interesting) -> list:
    """Classic delta debugging: a 1-minimal sublist of ``items`` such that
    ``interesting(sublist)`` stays true (``interesting(items)`` must hold)."""
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        reduced = False
        start = 0
        while start < len(items):
            candidate = items[:start] + items[start + chunk :]
            if candidate and interesting(candidate):
                items = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
            else:
                start += chunk
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    if len(items) == 1 and not interesting(items):
        raise AssertionError("ddmin invariant violated: input was not interesting")
    return items


@dataclass
class ShrinkResult:
    """A minimized disagreeing case."""

    ast: PProgram
    program: Program
    p_conjuncts: tuple[str, ...]
    q_conjuncts: tuple[str, ...]
    fault: str | None
    check: str
    seed: int
    evaluations: int

    @property
    def source(self) -> str:
        return pretty_program(self.program)

    @property
    def command_count(self) -> int:
        return len(self.ast.commands)


class _Shrinker:
    def __init__(self, fault: str | None, check: str):
        self.fault = fault
        self.check = check
        self.evaluations = 0

    def disagrees(self, ast: PProgram, p, q) -> bool:
        """Does this candidate still reproduce the targeted disagreement?"""
        self.evaluations += 1
        try:
            program = elaborate_program(ast)
            pp = predicate_from_conjuncts(program, p)
            qq = predicate_from_conjuncts(program, q)
            report = run_differential(program, pp, qq, fault=self.fault)
        except ReproError:
            return False
        return any(c.name == self.check and not c.agreed for c in report.checks)


def _split_conjuncts(expr: ExprAst | None) -> list[ExprAst]:
    if expr is None:
        return []
    if isinstance(expr, EBinary) and expr.op == "/\\":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _join_conjuncts(parts: list[ExprAst]) -> ExprAst | None:
    if not parts:
        return None
    out = parts[0]
    for p in parts[1:]:
        out = EBinary("/\\", out, p)
    return out


def _shrink_commands(state, sh: _Shrinker):
    ast, p, q = state
    if len(ast.commands) > 1:
        kept = ddmin(
            list(ast.commands),
            lambda cmds: sh.disagrees(replace_commands(ast, cmds), p, q),
        )
        if len(kept) < len(ast.commands):
            ast = replace_commands(ast, kept)
    return ast, p, q


def replace_commands(ast: PProgram, commands) -> PProgram:
    return PProgram(ast.name, list(ast.decls), ast.init, list(commands))


def _shrink_branches(state, sh: _Shrinker):
    """Drop alternative branches and parallel assignments command by command."""
    ast, p, q = state
    changed = True
    while changed:
        changed = False
        for i, cmd in enumerate(ast.commands):
            if len(cmd.branches) > 1:
                for j in range(len(cmd.branches)):
                    branches = cmd.branches[:j] + cmd.branches[j + 1 :]
                    cand = _with_command(ast, i, replace(cmd, branches=branches))
                    if sh.disagrees(cand, p, q):
                        ast, changed = cand, True
                        break
                if changed:
                    break
            for j, branch in enumerate(cmd.branches):
                if len(branch.assigns) <= 1:
                    continue
                for k in range(len(branch.assigns)):
                    assigns = branch.assigns[:k] + branch.assigns[k + 1 :]
                    branches = (
                        cmd.branches[:j]
                        + (PBranch(branch.guard, assigns),)
                        + cmd.branches[j + 1 :]
                    )
                    cand = _with_command(ast, i, replace(cmd, branches=branches))
                    if sh.disagrees(cand, p, q):
                        ast, changed = cand, True
                        break
                if changed:
                    break
            if changed:
                break
    return ast, p, q


def _with_command(ast: PProgram, i: int, cmd: PCommand) -> PProgram:
    commands = list(ast.commands)
    commands[i] = cmd
    return replace_commands(ast, commands)


def _shrink_decls(state, sh: _Shrinker):
    ast, p, q = state
    if len(ast.decls) > 1:
        kept = ddmin(
            list(ast.decls),
            lambda decls: sh.disagrees(
                PProgram(ast.name, list(decls), ast.init, list(ast.commands)), p, q
            ),
        )
        if len(kept) < len(ast.decls):
            ast = PProgram(ast.name, list(kept), ast.init, list(ast.commands))
    return ast, p, q


def _shrink_domains(state, sh: _Shrinker):
    ast, p, q = state
    for i, d in enumerate(ast.decls):
        if not isinstance(d.type_spec, PTypeInt):
            continue
        hi = d.type_spec.hi
        while hi > d.type_spec.lo:
            decls = list(ast.decls)
            decls[i] = replace(d, type_spec=PTypeInt(d.type_spec.lo, hi - 1))
            cand = PProgram(ast.name, decls, ast.init, list(ast.commands))
            if not sh.disagrees(cand, p, q):
                break
            ast, hi = cand, hi - 1
            d = ast.decls[i]
    return ast, p, q


def _shrink_init(state, sh: _Shrinker):
    ast, p, q = state
    parts = _split_conjuncts(ast.init)
    if len(parts) >= 1:
        def try_parts(kept):
            cand = PProgram(
                ast.name, list(ast.decls), _join_conjuncts(kept), list(ast.commands)
            )
            return sh.disagrees(cand, p, q)

        # Try dropping init entirely first, then ddmin the conjuncts.
        if try_parts([]):
            return (
                PProgram(ast.name, list(ast.decls), None, list(ast.commands)),
                p,
                q,
            )
        if len(parts) > 1:
            kept = ddmin(parts, try_parts)
            if len(kept) < len(parts):
                ast = PProgram(
                    ast.name, list(ast.decls), _join_conjuncts(kept), list(ast.commands)
                )
    return ast, p, q


def _shrink_predicates(state, sh: _Shrinker):
    ast, p, q = state
    if len(p) > 1:
        p = tuple(ddmin(list(p), lambda c: sh.disagrees(ast, tuple(c), q)))
    if len(q) > 1:
        q = tuple(ddmin(list(q), lambda c: sh.disagrees(ast, p, tuple(c))))
    return ast, p, q


_PASSES = (
    _shrink_commands,
    _shrink_branches,
    _shrink_decls,
    _shrink_domains,
    _shrink_init,
    _shrink_predicates,
)


def shrink(
    case: FuzzCase,
    report: DiffReport,
    *,
    fault: str | None = None,
    check: str | None = None,
    max_rounds: int = 10,
) -> ShrinkResult:
    """Reduce a disagreeing case to a minimal repro.

    ``check`` picks which disagreement to preserve (default: the first
    one in ``report``); shrinking never trades it for a different one.
    """
    if check is None:
        bad = report.disagreements
        if not bad:
            raise ValueError("nothing to shrink: the report has no disagreement")
        check = bad[0].name
    sh = _Shrinker(fault, check)
    state = (case.ast, case.p_conjuncts, case.q_conjuncts)
    if not sh.disagrees(*state):
        raise ValueError(
            f"case does not reproduce a {check!r} disagreement under "
            f"fault={fault!r}"
        )
    for _ in range(max_rounds):
        before = state
        for p in _PASSES:
            state = p(state, sh)
        if state == before:
            break
    ast, p_conj, q_conj = state
    return ShrinkResult(
        ast=ast,
        program=elaborate_program(ast),
        p_conjuncts=tuple(p_conj),
        q_conjuncts=tuple(q_conj),
        fault=fault,
        check=check,
        seed=case.seed,
        evaluations=sh.evaluations,
    )


# -- the corpus ---------------------------------------------------------------


def corpus_entry(result: ShrinkResult, *, note: str = "") -> dict:
    """Serialize a minimal repro as a corpus entry (JSON-ready dict)."""
    return {
        "schema": CORPUS_SCHEMA,
        "seed": result.seed,
        "fault": result.fault,
        "check": result.check,
        "program": result.source,
        "p": list(result.p_conjuncts),
        "q": list(result.q_conjuncts),
        "commands": result.command_count,
        "note": note,
    }


def write_corpus_entry(directory, entry: dict, *, name: str | None = None) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if name is None:
        fault = entry.get("fault") or "clean"
        name = f"{fault}-{entry['check']}-seed{entry['seed']}.json"
    path = directory / name
    path.write_text(json.dumps(entry, indent=2) + "\n")
    return path


def load_corpus_entry(path) -> dict:
    entry = json.loads(Path(path).read_text())
    if entry.get("schema") != CORPUS_SCHEMA:
        raise ValueError(
            f"{path}: unknown corpus schema {entry.get('schema')!r} "
            f"(expected {CORPUS_SCHEMA})"
        )
    return entry


def replay_entry(entry: dict) -> DiffReport:
    """Re-run a corpus entry end-to-end: parse the stored DSL text,
    rebuild the predicates, run the differential under the stored fault."""
    program = parse_program(entry["program"])
    p = predicate_from_conjuncts(program, entry["p"])
    q = predicate_from_conjuncts(program, entry["q"])
    return run_differential(program, p, q, fault=entry["fault"])
