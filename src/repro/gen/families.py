"""Parameterized scenario families with expected-property manifests.

The hand-built catalog (counter, philosophers ring/grid, pipeline,
allocator, product) pins the engine on five fixed examples; the paper's
composition calculus claims universality over program *families*.  This
module closes the gap: each family is a deterministic builder from a
small parameter vector to a composed :class:`~repro.core.program.Program`
**plus a manifest** of expected verdicts, so a single driver
(:func:`run_scenario`, the ``scenario`` CLI, the differential tests, the
benchmarks) can sweep generated instances nobody hand-wrote.

Families
--------
``torus`` / ``hypercube`` / ``regular``
    Dining philosophers over generated conflict graphs
    (:func:`repro.graph.generators.torus_graph` /
    :func:`~repro.graph.generators.hypercube_graph` /
    :func:`~repro.graph.generators.random_regular_graph`), forks pinned
    to the canonical acyclic orientation.  Expected: mutual exclusion
    holds; liveness of philosopher 0 holds.
``fanout``
    Heterogeneous fan-in/fan-out pipeline
    (:mod:`repro.systems.fanout`).  Expected: conservation holds,
    delivery holds, recycling fails.
``mesh``
    Multi-pool allocator mesh (:mod:`repro.systems.mesh`).  Expected:
    per-pool conservation holds, availability holds, full refill fails.

Every check in a manifest carries its expected verdict — negative
exhibits are first-class, so a family sweep proves the engine *rejects*
what it must, not just that it accepts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.properties import LeadsTo

__all__ = [
    "ExpectedCheck",
    "Scenario",
    "FAMILIES",
    "build_scenario",
    "run_scenario",
]


@dataclass(frozen=True)
class ExpectedCheck:
    """One manifest row: a property plus the verdict the family predicts."""

    label: str
    kind: str  # 'invariant' (reachable) | 'leadsto'
    expected: bool
    prop: LeadsTo | None = None
    pred: Predicate | None = None
    fairness: str = "weak"


@dataclass
class Scenario:
    """A generated instance: the composed program plus its manifest."""

    family: str
    params: dict
    program: Program
    checks: list[ExpectedCheck]
    #: The underlying system object (PhilosopherSystem / FanoutSystem / …).
    system: object = None

    def describe(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return f"{self.family}({parts}): {self.program.name}"


def _philosopher_scenario(family: str, graph, params: dict) -> Scenario:
    from repro.systems.philosophers import build_philosopher_system

    ps = build_philosopher_system(
        graph, check_init=False, pin_initial_orientation=True
    )
    return Scenario(
        family=family,
        params=params,
        program=ps.system,
        system=ps,
        checks=[
            ExpectedCheck(
                "mutual_exclusion", "invariant", True, pred=ps.mutual_exclusion().p
            ),
            ExpectedCheck("liveness(0)", "leadsto", True, prop=ps.liveness(0)),
        ],
    )


def build_torus(rows: int = 3, cols: int = 3) -> Scenario:
    """Philosophers on the ``rows × cols`` torus (4-regular wraparound)."""
    from repro.graph.generators import torus_graph

    return _philosopher_scenario(
        "torus", torus_graph(rows, cols), {"rows": rows, "cols": cols}
    )


def build_hypercube(d: int = 3) -> Scenario:
    """Philosophers on the ``d``-dimensional hypercube ``Q_d``."""
    from repro.graph.generators import hypercube_graph

    return _philosopher_scenario("hypercube", hypercube_graph(d), {"d": d})


def build_regular(n: int = 10, d: int = 3, seed: int = 0) -> Scenario:
    """Philosophers on a seeded random ``d``-regular conflict graph."""
    from repro.graph.generators import random_regular_graph

    return _philosopher_scenario(
        "regular",
        random_regular_graph(n, d, seed=seed),
        {"n": n, "d": d, "seed": seed},
    )


def build_fanout(
    widths: tuple[int, ...] = (2, 3, 3, 2), total: int = 3
) -> Scenario:
    """Heterogeneous fan-in/fan-out pipeline with layer profile ``widths``."""
    from repro.systems.fanout import build_fanout_system

    fs = build_fanout_system(widths, total=total)
    return Scenario(
        family="fanout",
        params={"widths": tuple(widths), "total": total},
        program=fs.system,
        system=fs,
        checks=[
            ExpectedCheck(
                "conservation", "invariant", True,
                pred=fs.conservation_predicate(),
            ),
            ExpectedCheck("delivery", "leadsto", True, prop=fs.delivery()),
            ExpectedCheck(
                "no_recycling (negative exhibit)", "leadsto", False,
                prop=fs.no_recycling(),
            ),
        ],
    )


def build_mesh(pools: int = 4, clients: int = 6, total: int = 2) -> Scenario:
    """Multi-pool allocator mesh (client ``i`` → pools ``i%P, (i+1)%P``)."""
    from repro.systems.mesh import build_mesh_system

    ms = build_mesh_system(pools, clients, total=total)
    return Scenario(
        family="mesh",
        params={"pools": pools, "clients": clients, "total": total},
        program=ms.system,
        system=ms,
        checks=[
            ExpectedCheck(
                "conservation", "invariant", True,
                pred=ms.conservation_predicate(),
            ),
            ExpectedCheck(
                "availability(0)", "leadsto", True, prop=ms.availability(0)
            ),
            ExpectedCheck(
                "full_refill (negative exhibit)", "leadsto", False,
                prop=ms.full_refill(),
            ),
        ],
    )


@dataclass(frozen=True)
class Family:
    """Registry row: the builder plus the CLI parameter wiring."""

    name: str
    build: Callable[..., Scenario]
    summary: str
    #: CLI argument names consumed by the builder (``scenario`` flags).
    cli_params: tuple[str, ...] = field(default_factory=tuple)


#: The generator-driven scenario catalog, keyed by family name.
FAMILIES: dict[str, Family] = {
    f.name: f
    for f in (
        Family(
            "torus",
            build_torus,
            "philosophers on the rows x cols torus (wraparound grid; "
            "--rows, --cols; 3x3 is ~1.3e8 encoded states)",
            ("rows", "cols"),
        ),
        Family(
            "hypercube",
            build_hypercube,
            "philosophers on the d-dimensional hypercube Q_d (--dim)",
            ("d",),
        ),
        Family(
            "regular",
            build_regular,
            "philosophers on a seeded random d-regular conflict graph "
            "(--n, --dim, --graph-seed)",
            ("n", "d", "seed"),
        ),
        Family(
            "fanout",
            build_fanout,
            "heterogeneous fan-in/fan-out token pipeline over a layered "
            "DAG (--widths, --total; delivery holds, recycling fails)",
            ("widths", "total"),
        ),
        Family(
            "mesh",
            build_mesh,
            "multi-pool allocator mesh, clients attached to two pools "
            "each (--pools, --clients, --total; availability holds, "
            "full refill fails)",
            ("pools", "clients", "total"),
        ),
    )
}


def build_scenario(family: str, **params) -> Scenario:
    """Build one instance of a registered family (unknown keys rejected)."""
    try:
        spec = FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown scenario family {family!r}; registered: "
            f"{sorted(FAMILIES)}"
        ) from None
    params = {k: v for k, v in params.items() if v is not None}
    return spec.build(**params)


def run_scenario(
    scenario: Scenario, *, budget=None
) -> list[tuple[ExpectedCheck, object]]:
    """Run every manifest check through the tier-routed engine.

    Returns ``[(check, result), …]`` where ``result`` is the engine's
    :class:`~repro.semantics.checker.CheckResult` (or a
    :class:`~repro.semantics.budget.PartialResult` under an exhausted
    budget).  Callers compare ``result.holds`` against
    ``check.expected``; the scenario CLI and the family tests both drive
    this single entry point.
    """
    from repro.semantics import check_leadsto, check_reachable_invariant
    from repro.semantics.strong_fairness import check_leadsto_strong

    out = []
    for check in scenario.checks:
        if check.kind == "invariant":
            result = check_reachable_invariant(
                scenario.program, check.pred, budget=budget
            )
        else:
            checker = (
                check_leadsto_strong
                if check.fairness == "strong"
                else check_leadsto
            )
            result = checker(
                scenario.program, check.prop.p, check.prop.q, budget=budget
            )
        out.append((check, result))
    return out
