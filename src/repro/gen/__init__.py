"""Generated workloads: scenario families, the DSL fuzzer, the shrinker.

- :mod:`repro.gen.families` — parameterized scenario families (philosophers
  on generated conflict graphs, fan-out pipelines, allocator meshes), each
  returning a composed program plus an expected-property manifest;
- :mod:`repro.gen.fuzz` — a seeded randomized DSL program generator and
  the differential harness that cross-checks engine tiers on each program;
- :mod:`repro.gen.shrink` — delta-debugging reduction of a disagreeing
  program to a minimal repro, and the corpus format the regression tests
  replay.
"""

from repro.gen.families import FAMILIES, Scenario, build_scenario, run_scenario

__all__ = ["FAMILIES", "Scenario", "build_scenario", "run_scenario"]
