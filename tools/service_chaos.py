#!/usr/bin/env python3
"""CI chaos driver: a live certification server under injected failure.

Boots ``python -m repro serve`` as a real subprocess, arms worker kills
through ``REPRO_FAULTS`` (forwarded by the supervisor to every worker it
spawns), fires a concurrent request mix with *known* expected verdicts
over HTTP, and asserts the service's chaos contract:

- **zero wrong answers** — every decided verdict matches the expected
  truth value;
- **no hangs** — every request returns within the client timeout;
- **structured degradation only** — non-verdict outcomes are UNKNOWN,
  load-shed, or coded errors from the protocol registry;
- **the server survives** — the health endpoint answers after the mix,
  with the crash counters proving the chaos actually landed.

Usage (CI runs exactly this)::

    PYTHONPATH=src python tools/service_chaos.py

Exits non-zero with a report on any violation.  The same scenarios run
in-process (faster, finer-grained) in ``tests/test_service_chaos.py``;
this driver exists to exercise the *deployed* shape — real server
process, real sockets, real worker subprocesses — in the CI service
job.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.client import ServiceClient  # noqa: E402
from repro.service.protocol import ERROR_CODES  # noqa: E402

COUNTER = """
program counter
declare
  local c : int[0..3]
initially
  c = 0
assign
  fair step: c < 3 -> c := c + 1
end
"""

STUCK = COUNTER.replace("c < 3", "c < 2").replace(
    "program counter", "program stuck"
)

#: (request, expected holds) — None expected means "any structured
#: non-verdict outcome is acceptable, a verdict must still be correct".
MIX = [
    ({"program": COUNTER, "property": "true ~> c = 3"}, True),
    ({"program": COUNTER, "property": "invariant c <= 3"}, True),
    ({"program": STUCK, "property": "true ~> c = 3"}, False),
    ({"program": COUNTER, "property": "c = 0 ~> c >= 2"}, True),
    ({"program": COUNTER, "property": "true ~> c = 3", "prove": True}, True),
]

PORT = int(os.environ.get("SERVICE_CHAOS_PORT", "8431"))
ROUNDS = int(os.environ.get("SERVICE_CHAOS_ROUNDS", "4"))
THREADS = int(os.environ.get("SERVICE_CHAOS_THREADS", "4"))


def wait_for_health(client: ServiceClient, deadline: float = 30.0) -> None:
    t0 = time.monotonic()
    while True:
        try:
            if client.health()["status"] == "ok":
                return
        except (OSError, urllib.error.URLError):
            pass
        if time.monotonic() - t0 > deadline:
            raise SystemExit("service never became healthy")
        time.sleep(0.2)


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    # Each worker's second check dies (per-process hit counters), so
    # crashes recur for the whole run as workers are respawned.
    env["REPRO_FAULTS"] = "service.worker.check=kill:after=1:times=1"

    with tempfile.TemporaryDirectory(prefix="service-chaos-") as tmp:
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", str(PORT), "--workers", "2",
                "--cache-dir", str(Path(tmp) / "cache"),
                "--max-pending", "16", "--max-retries", "3",
                "--breaker-threshold", "1000",  # keep the chaos flowing
            ],
            env=env,
            cwd=REPO_ROOT,
        )
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{PORT}", timeout=120.0, max_retries=5
            )
            wait_for_health(client)

            wrong: list[str] = []
            malformed: list[str] = []
            outcomes = {"ok": 0, "unknown": 0, "error": 0, "shed": 0}
            lock = threading.Lock()

            def run_mix() -> None:
                for _ in range(ROUNDS):
                    for request, expected in MIX:
                        doc = client.verify(dict(request))
                        status = doc.get("status")
                        with lock:
                            if status not in outcomes:
                                malformed.append(f"bad status in {doc!r}")
                                continue
                            outcomes[status] += 1
                            if status == "ok" and doc.get("holds") is not expected:
                                wrong.append(
                                    f"{request['property']!r}: holds="
                                    f"{doc.get('holds')} expected {expected}"
                                )
                            if status == "error":
                                code = (doc.get("error") or {}).get("code")
                                if code not in ERROR_CODES:
                                    malformed.append(f"unknown code in {doc!r}")

            threads = [
                threading.Thread(target=run_mix) for _ in range(THREADS)
            ]
            t0 = time.monotonic()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.monotonic() - t0

            health = client.health()
            crashes = health["pool"]["crashes"]
            total = sum(outcomes.values())
            print(
                f"chaos mix: {total} requests in {elapsed:.1f}s -> "
                f"{outcomes} | worker crashes {crashes}, "
                f"retries {health['pool']['retries']}, "
                f"cache {health['cache']}"
            )
            failures = []
            if wrong:
                failures.append(f"WRONG ANSWERS ({len(wrong)}): {wrong[:5]}")
            if malformed:
                failures.append(f"MALFORMED ({len(malformed)}): {malformed[:5]}")
            if outcomes["ok"] == 0:
                failures.append("no request ever succeeded")
            if crashes == 0:
                failures.append(
                    "no worker crashes recorded: the chaos never landed"
                )
            if failures:
                print("service chaos FAILED:\n  " + "\n  ".join(failures))
                return 1
            print("service chaos ok: zero wrong answers under worker kills")
            return 0
        finally:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()


if __name__ == "__main__":
    raise SystemExit(main())
