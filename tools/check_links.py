#!/usr/bin/env python3
"""Fail on broken relative links in Markdown files.

Usage::

    python tools/check_links.py README.md docs/*.md

Checks every inline Markdown link ``[text](target)`` whose target is a
relative path: the referenced file (or directory) must exist relative to
the Markdown file containing the link.  External schemes (``http://``,
``https://``, ``mailto:``) and pure in-page anchors (``#section``) are
skipped; an anchor suffix on a relative link (``file.md#section``) is
stripped before the existence check.

Exits non-zero listing every broken link — the CI docs step runs this
over ``README.md`` and ``docs/*.md`` so the project documentation never
dangles.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def broken_links(path: Path) -> list[tuple[int, str]]:
    """``(line number, target)`` pairs for broken relative links."""
    out: list[tuple[int, str]] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            resolved = path.parent / target.split("#", 1)[0]
            if not resolved.exists():
                out.append((lineno, target))
    return out


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    failures = 0
    for name in argv:
        path = Path(name)
        if not path.exists():
            print(f"{name}: file not found", file=sys.stderr)
            failures += 1
            continue
        for lineno, target in broken_links(path):
            print(f"{name}:{lineno}: broken link -> {target}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures} broken link(s)", file=sys.stderr)
        return 1
    print(f"all relative links resolve across {len(argv)} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
