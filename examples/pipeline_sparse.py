#!/usr/bin/env python3
"""The token pipeline: composition at a scale only the sparse tier reaches.

The paper builds systems by composing components — and composition
*multiplies* the encoded state space while the reachable set stays a
sliver.  This example composes a source, ``K`` forwarding stages, and a
sink (``repro.systems.pipeline``, built with ``compose_all``); with the
default ``K = 10`` stages and 3 tokens the composed space is

    (T+1) · (cap+1)^K · (T+1)  =  16_777_216 encoded states,

yet token conservation confines the dynamics to **364** reachable states.
The dense engine tiers (successor tables, union CSR) would allocate a
130 MB ``int64`` array *per command* here; the sparse tier
(``repro.semantics.sparse``) instead

1. enumerates the initial states directly from the ``initially``
   conjuncts (a vectorized join — no full-space mask),
2. BFS-expands the reachable subspace through per-command frontier
   kernels (``Command.succ_of``) with sorted-array interning,
3. assembles a union sub-CSR on compact local ids, and
4. runs the *same* fair-SCC leads-to machinery as the dense tier on it.

The routing is automatic: ``check_leadsto`` / ``check_reachable_invariant``
pick the tier from the space size, so the verification code below is
identical to what you would write for a 200-state toy.

Run:  python examples/pipeline_sparse.py [stages]
"""

import sys
import time

from repro.semantics import check_leadsto, check_reachable_invariant
from repro.semantics.sparse import sparse_enabled
from repro.semantics.sparse.explorer import reachable_subspace
from repro.systems.pipeline import build_pipeline_system


def main(stages: int = 10) -> None:
    pl = build_pipeline_system(stages)
    program = pl.system
    tier = "sparse" if sparse_enabled(program.space) else "dense"
    print(f"{program!r}")
    print(f"encoded space : {program.space.size:,} states -> {tier} tier")

    t0 = time.perf_counter()
    sub = reachable_subspace(program)
    dt = time.perf_counter() - t0
    ratio = program.space.size / max(sub.size, 1)
    print(f"reachable     : {sub.size:,} states "
          f"({ratio:,.0f}x smaller), {sub.levels} BFS levels, {dt * 1e3:.1f} ms")
    print(f"pipeline drains in at most {int(sub.dist.max())} steps\n")

    # -- verification (identical API to the dense tier) -------------------
    print(check_reachable_invariant(program, pl.conservation_predicate()).explain())
    delivery = pl.delivery()
    print(check_leadsto(program, delivery.p, delivery.q).explain())
    negative = pl.no_recycling()
    print(check_leadsto(program, negative.p, negative.q).explain())
    print("\n(the last FAILS is the designed negative exhibit: the final "
          "state is absorbing)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10)
