#!/usr/bin/env python3
"""Quickstart: build two components, compose them, verify properties.

Demonstrates the core workflow in under a minute:

1. declare variables (with the paper's locality discipline),
2. write UNITY-style guarded commands,
3. compose programs (the paper's ``F ∘ G`` with side conditions),
4. check properties of every type against the composed system,
5. watch a property fail with a decoded counterexample.

Run:  python examples/quickstart.py
"""

from repro import (
    GuardedCommand,
    Init,
    IntRange,
    Invariant,
    LeadsTo,
    Program,
    Stable,
    Transient,
    Var,
    compose,
)
from repro.core.expressions import land
from repro.core.predicates import ExprPredicate, TRUE


def main() -> None:
    # -- 1. variables -------------------------------------------------------
    # `tank` is shared between the two components; each pump keeps a local
    # count of how much it moved.
    tank = Var.shared("tank", IntRange(0, 8))
    moved_in = Var.local("moved_in", IntRange(0, 8))
    moved_out = Var.local("moved_out", IntRange(0, 8))

    # -- 2. components ------------------------------------------------------
    fill = GuardedCommand(
        "fill",
        land(tank.ref() < 8, moved_in.ref() < 8),
        [(tank, tank.ref() + 1), (moved_in, moved_in.ref() + 1)],
    )
    filler = Program(
        "Filler", [tank, moved_in],
        ExprPredicate(land(tank.ref() == 0, moved_in.ref() == 0)),
        [fill], fair=["fill"],
    )

    drain = GuardedCommand(
        "drain",
        land(tank.ref() > 0, moved_out.ref() < 8),
        [(tank, tank.ref() - 1), (moved_out, moved_out.ref() + 1)],
    )
    drainer = Program(
        "Drainer", [tank, moved_out],
        ExprPredicate(moved_out.ref() == 0),
        [drain], fair=["drain"],
    )

    # -- 3. composition ------------------------------------------------------
    system = compose(filler, drainer)
    print(system.describe())
    print(f"\nstate space: {system.space.size} states\n")

    # -- 4. properties of every type -----------------------------------------
    props = [
        Init(ExprPredicate(tank.ref() == 0)),
        Invariant(ExprPredicate(tank.ref() == moved_in.ref() - moved_out.ref())),
        Stable(ExprPredicate(moved_in.ref() >= 3)),
        Transient(ExprPredicate(land(tank.ref() == 0, moved_in.ref() < 8))),
        LeadsTo(TRUE, ExprPredicate(moved_out.ref() == 8)),
    ]
    for prop in props:
        print(prop.check(system).explain())

    # -- 5. a failing property, with counterexample ---------------------------
    print()
    bad = Stable(ExprPredicate(tank.ref() == 0))
    res = bad.check(system)
    print(res.explain())
    print(f"  counterexample command: {res.witness['command']}")
    print(f"  from state:  {res.witness['state']!r}")
    print(f"  to state:    {res.witness['successor']!r}")


if __name__ == "__main__":
    main()
