#!/usr/bin/env python3
"""Beyond the dense cap: capacity-tiered verification at 10^12 states.

Capacity is a **per-tier policy**, not a constructor wall: a
``StateSpace`` of any size builds instantly (its ``size`` is an exact
Python int), dense operations refuse to materialize full-space arrays
above ``StateSpace.DENSE_MAX`` with a ``CapacityError``, and the sparse
tier decides properties over the *discovered* states only, capped by its
``node_limit``.

Two scenarios whose encoded spaces dwarf the old 64M cap:

- ``product``: a 16-stage token pipeline composed with 3 allocator
  clients competing for the same pool — ``4^21 ≈ 4.4 · 10^12`` encoded,
  1 771 reachable.  Composition changes the verdict: delivery fails under
  weak fairness (the clients can starve the pipeline forever) and holds
  under strong fairness.
- ``grid``: dining philosophers on a 4×4 grid with forks pinned to the
  canonical acyclic orientation — ``2^40 ≈ 1.1 · 10^12`` encoded, 54 368
  reachable; liveness of philosopher 0 holds.

Run:  python examples/beyond_dense.py
"""

import time

from repro.errors import CapacityError
from repro.semantics import check_leadsto, check_reachable_invariant
from repro.semantics.strong_fairness import check_leadsto_strong
from repro.semantics.transition import TransitionSystem
from repro.systems.philosophers import build_philosopher_grid
from repro.systems.product import build_pipeline_allocator


def main() -> None:
    pa = build_pipeline_allocator(16)
    program = pa.system
    print(f"{program!r}")
    print(f"encoded space : {program.space.size:,} states "
          f"({program.space.size / program.space.DENSE_MAX:,.0f}x the dense cap)")

    # The dense tier refuses, loudly and early:
    try:
        TransitionSystem.for_program(program)
    except CapacityError as exc:
        print(f"dense tier    : CapacityError — {str(exc)[:72]}...")

    # The sparse tier decides; same checker API as a 200-state toy:
    t0 = time.perf_counter()
    d = pa.delivery()
    weak = check_leadsto(program, d.p, d.q)
    strong = check_leadsto_strong(program, d.p, d.q)
    cons = check_reachable_invariant(program, pa.conservation_predicate())
    dt = time.perf_counter() - t0
    print(f"sparse tier   : 3 checks over "
          f"{weak.witness['reachable']:,} reachable states in {dt * 1e3:.0f} ms")
    print(cons.explain()[:100])
    print(f"delivery weak fairness  : {'HOLDS' if weak.holds else 'FAILS'} "
          "(clients starve the pipeline — composition broke the proof)")
    print(f"delivery strong fairness: {'HOLDS' if strong.holds else 'FAILS'}")

    ps = build_philosopher_grid(4, 4)
    lv = ps.liveness(0)
    t0 = time.perf_counter()
    res = check_leadsto(ps.system, lv.p, lv.q)
    dt = time.perf_counter() - t0
    print(f"\n{ps.system!r}")
    print(f"encoded space : {ps.system.space.size:,} states")
    print(f"liveness(0)   : {'HOLDS' if res.holds else 'FAILS'} over "
          f"{res.witness['reachable']:,} reachable states in {dt * 1e3:.0f} ms")


if __name__ == "__main__":
    main()
