#!/usr/bin/env python3
"""The UNITY-like surface language: write programs as text, verify, and
round-trip through the pretty-printer.

Run:  python examples/dsl_demo.py
"""

from repro.dsl import parse_program, parse_property, pretty_program

MUTEX_SRC = """
# Two processes sharing a turn-based lock (Peterson-lite).
program TurnLock
declare
  shared turn : int[0..1];
  shared in0 : bool;
  shared in1 : bool
initially
  ~in0 /\\ ~in1 /\\ turn = 0
assign
  fair enter0: ~in0 /\\ ~in1 /\\ turn = 0 -> in0 := true;
  fair exit0:  in0 -> in0 := false || turn := 1;
  fair enter1: ~in0 /\\ ~in1 /\\ turn = 1 -> in1 := true;
  fair exit1:  in1 -> in1 := false || turn := 0
end
"""

PROPERTIES = [
    "invariant ~(in0 /\\ in1)",          # mutual exclusion
    "init turn = 0",
    "stable in0 \\/ ~in0",                # tautology: sanity
    "transient in0",                      # the fair exit releases
    "turn = 0 ~> turn = 1",               # the turn alternates
    "true ~> in1",                        # process 1 eventually enters
]


def main() -> None:
    program = parse_program(MUTEX_SRC)
    print(program.describe())
    print(f"\nstate space: {program.space.size} states\n")

    print("— properties (parsed from text) —")
    for text in PROPERTIES:
        prop = parse_property(text, program)
        print(f"  {prop.check(program).explain()}")

    print("\n— pretty-printed back to surface syntax —")
    rendered = pretty_program(program)
    print(rendered)

    reparsed = parse_program(rendered)
    same_init = bool((reparsed.initial_mask() == program.initial_mask()).all())
    same_cmds = {c.body_key() for c in reparsed.commands} == {
        c.body_key() for c in program.commands
    }
    print(f"\nround-trip: initial states preserved={same_init}, "
          f"command bodies preserved={same_cmds}")


if __name__ == "__main__":
    main()
