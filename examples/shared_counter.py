#!/usr/bin/env python3
"""The §3 toy example end to end: specification, failure of the naive
spec, the repaired local spec, and the verified system invariant.

Run:  python examples/shared_counter.py [n] [cap]
"""

import sys

from repro.semantics.simulate import simulate
from repro.systems.counter import build_counter_system, naive_component_spec
from repro.util.tables import format_table


def main(n: int = 3, cap: int = 3) -> None:
    cs = build_counter_system(n, cap)
    print(f"System: {n} components, counters capped at {cap}, "
          f"{cs.system.space.size} states\n")

    # -- the naive specification and its two problems (§3.2) ----------------
    print("— naive specification (init C = c_i, stable C = c_i) —")
    _, naive_stable = naive_component_spec(0, n, cap)
    alone = naive_stable.check(cs.components[0])
    together = naive_stable.check(cs.system)
    print(f"  in Component[0] alone: {'holds' if alone.holds else 'fails'}")
    print(f"  in the composed system: {'holds' if together.holds else 'FAILS'}"
          f"  ({together.message})")

    # -- the repaired local specification (2)–(4) -----------------------------
    print("\n— repaired local specification —")
    rows = []
    for i in range(n):
        comp = cs.components[i]
        rows.append([
            f"Component[{i}]",
            "holds" if cs.component_init_property(i).holds_in(comp) else "FAILS",
            "holds" if cs.component_stable_family(i).holds_in(comp) else "FAILS",
            "holds" if cs.locality_family(i).holds_in(cs.lifted_component(i)) else "FAILS",
        ])
    print(format_table(
        ["component", "(2) init", "(3) ∀k stable", "(4) locality"], rows
    ))

    # -- the system invariant (1) ----------------------------------------------
    print("\n— system correctness —")
    inv = cs.invariant_property()
    print(" ", inv.check(cs.system).explain())

    # -- observe it operationally -----------------------------------------------
    trace = simulate(cs.system, 25)
    print("\n— a round-robin trace (every state satisfies C = Σ c_i) —")
    for k, state in enumerate(trace.states):
        total = sum(state[cs.c(i)] for i in range(n))
        line = ", ".join(f"c[{i}]={state[cs.c(i)]}" for i in range(n))
        if k % 5 == 0:
            print(f"  step {k:3d}: C={state[cs.C]}  {line}  (Σ={total})")
    ok = trace.satisfies_throughout(inv.p)
    print(f"\ninvariant observed on all {len(trace.states)} trace states: {ok}")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    cap = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    main(n, cap)
